//! `course::pipeline` — the fault-tolerant parallel auto-marking
//! pipeline: exactly-once marking of millions of generated
//! submissions under seeded fault storms.
//!
//! This is the paper's own workload (Section III-C assessment) at
//! production scale. Submissions are real directive programs from
//! [`parc_analyze::genprog`], arriving via a
//! [`parc_loadgen::ArrivalProcess`] (steady / diurnal /
//! flash-crowd-at-the-deadline); a seeded hash shards them into
//! bounded per-shard queues with explicit
//! [`ledger::ShedCause`]-attributed backpressure; marker workers run
//! under a **real** [`parc_supervise::Supervisor`] (one-for-one,
//! seeded restart budgets) and execute the three marking stages —
//! parc-analyze lint, an explorer spot-check on a sampled subset, and
//! rubric scoring — as `partask` [`TaskRuntime::spawn_batch`]
//! fan-outs.
//!
//! # Exactly-once under storms
//!
//! [`faultsim::FaultStorm`] phases kill markers mid-batch. The
//! [`ledger::MarkLedger`] claim/complete checkpoint protocol makes
//! marking exactly-once anyway: a marker claims its batch, acks each
//! submission as it completes, and a kill tears up only the
//! *unacknowledged* tail — which the restarted incarnation (a real
//! supervised restart, gated on the supervisor actually granting it)
//! re-claims later. Stale acks from dead incarnations bounce off the
//! ledger. The final [`CellReport`] asserts the conservation
//! identities — `submitted == marked + shed`, zero in flight, zero
//! duplicates, per-shard and per-marker sums closing — and carries a
//! fingerprint that is bit-identical across reruns *and* worker-pool
//! sizes, because the model makes every decision sequentially and
//! parallelism lives only inside pure per-submission closures joined
//! in index order.
//!
//! # Graceful degradation
//!
//! Under backlog pressure (or once a marker escalates for good) the
//! pipeline sheds the *expensive* stage first: explorer spot-checks
//! are skipped, each skip counted as `spot_degraded` and the toggle
//! logged — degradation is always explicit and quantified, never
//! silent. Rubric marking itself is never skipped; admission-level
//! shedding is the only way a submission goes unmarked, and every
//! shed carries its cause.

pub mod cohort;
pub mod ledger;
pub mod report;

use std::collections::VecDeque;
use std::sync::{mpsc, Arc};
use std::time::Duration;

use faultsim::{FaultInjector, FaultStorm, RetryPolicy, StormPhase};
use parc_loadgen::ArrivalProcess;
use parc_supervise::{ChildError, Supervisor, SupervisionReport};
use parc_trace::{LatencyHistogram, MarkKind, MarkingTag, SpanKind, TraceHandle};
use parc_util::rng::{SplitMix64, Xoshiro256};
use partask::TaskRuntime;

use crate::assessment::AutoMarkRubric;
use cohort::{generate_tick, mark_submission, shard_for, spot_eligible, SpotVerdict};
use ledger::{MarkLedger, ShedCause};
pub use report::{CellReport, MarkerStats, ShardStats};

/// Everything a pipeline cell needs beyond its arrival process and
/// storm. All sizes are model knobs; determinism never depends on
/// them being "right", only conservation and throughput do.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Root seed; every stream below derives from it.
    pub seed: u64,
    /// Bounded submission queues (seeded-hash sharded).
    pub shards: u16,
    /// Supervised marker workers.
    pub markers: u32,
    /// Submissions one marker claims per tick.
    pub batch_per_marker: usize,
    /// Per-shard queue capacity; arrivals beyond it are shed
    /// (`queue_full`).
    pub queue_cap: usize,
    /// Ticks during which submissions arrive.
    pub arrival_ticks: u32,
    /// Extra ticks allowed to drain the backlog before the remainder
    /// is shed (`drain_overrun`).
    pub drain_max_ticks: u32,
    /// Model-milliseconds per tick (latency accounting only).
    pub tick_ms: f64,
    /// One in `spot_every` submissions gets the expensive explorer
    /// spot-check (0 disables the stage).
    pub spot_every: u64,
    /// Queued-submission backlog above which the expensive stage is
    /// degraded.
    pub degrade_backlog: usize,
    /// Supervised restarts each marker may use before its next kill
    /// escalates and its shards are reassigned.
    pub restart_budget: u32,
    /// Synthetic cohort size submissions are attributed to.
    pub students: u32,
    /// The marking rubric.
    pub rubric: AutoMarkRubric,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            seed: 0x751_0C0DE,
            shards: 8,
            markers: 4,
            batch_per_marker: 900,
            queue_cap: 1500,
            arrival_ticks: 60,
            drain_max_ticks: 40,
            tick_ms: 250.0,
            spot_every: 4096,
            degrade_backlog: 2500,
            restart_budget: 25,
            students: 4000,
            rubric: AutoMarkRubric::default(),
        }
    }
}

/// Commands the tick loop sends a marker's supervised guard child.
enum GuardCmd {
    /// The storm killed this marker: the current incarnation must
    /// fail (charging the restart budget).
    Kill,
    /// The cell is over: complete.
    Done,
}

/// The real supervision tree behind the markers: one guard child per
/// marker, run by a [`Supervisor`] on its own thread. A scripted kill
/// *is* the child's failure, and the model's restart is gated on the
/// supervisor actually granting one — so "supervised restart" and
/// "escalation" in the report are literal, not simulated. (This is
/// the `websim::cluster` outage-guard protocol, generalised to a
/// pool.)
struct MarkerGuards {
    cmd_tx: Vec<mpsc::Sender<GuardCmd>>,
    ready_rx: Vec<mpsc::Receiver<u32>>,
    join: Option<std::thread::JoinHandle<SupervisionReport>>,
}

impl MarkerGuards {
    fn spawn(markers: u32, restart_budget: u32, seed: u64, trace: &TraceHandle) -> Self {
        let mut cmd_tx = Vec::new();
        let mut ready_rx = Vec::new();
        let mut builder = Supervisor::builder("marker-pool")
            .restart_policy(
                RetryPolicy::fixed(Duration::from_millis(1))
                    .with_max_attempts(restart_budget + 1),
            )
            .backoff_seed(seed)
            .backoff_time_scale(1e-3)
            .trace(trace);
        for m in 0..markers {
            let (ctx_tx, crx) = mpsc::channel::<GuardCmd>();
            let (rtx, rrx) = mpsc::channel::<u32>();
            cmd_tx.push(ctx_tx);
            ready_rx.push(rrx);
            let crx = Arc::new(parking_lot::Mutex::new(crx));
            builder = builder.child(&format!("marker-{m}"), move |ctx| {
                // Announce this incarnation, then wait for the tick
                // loop's verdict on it.
                let _ = rtx.send(ctx.incarnation);
                match crx.lock().recv() {
                    Ok(GuardCmd::Kill) => {
                        Err(ChildError::Failed("marker killed by storm".into()))
                    }
                    Ok(GuardCmd::Done) | Err(_) => Ok(()),
                }
            });
        }
        let join = std::thread::Builder::new()
            .name("marker-pool-supervisor".into())
            .spawn(move || builder.run())
            .expect("spawn marker supervisor thread");
        let guards = Self { cmd_tx, ready_rx, join: Some(join) };
        // Consume every first incarnation's ready signal so a later
        // `await_restart` blocks on the *restarted* incarnation.
        for rx in &guards.ready_rx {
            assert_eq!(rx.recv().expect("guard must start"), 1);
        }
        guards
    }

    /// Fail the marker's current incarnation; the supervisor will
    /// restart it (budget permitting).
    fn kill(&self, marker: u32) {
        self.cmd_tx[marker as usize].send(GuardCmd::Kill).expect("guard alive at kill");
    }

    /// Block until the supervisor restarts the marker; returns the
    /// new incarnation number.
    fn await_restart(&self, marker: u32) -> u32 {
        self.ready_rx[marker as usize].recv().expect("supervisor must restart the marker")
    }

    /// Finish the run: complete every surviving guard and collect the
    /// supervision report.
    fn finish(mut self) -> SupervisionReport {
        for tx in &self.cmd_tx {
            // Escalated children are already gone; a dead receiver is
            // expected for them.
            let _ = tx.send(GuardCmd::Done);
        }
        self.join
            .take()
            .expect("finish called once")
            .join()
            .expect("marker supervisor thread must not panic")
    }
}

/// Run one cell — one arrival process crossed with one fault storm —
/// to completion and return its conservation-checked report.
///
/// Deterministic contract: the report's
/// [`CellReport::fingerprint`] depends only on `(arrival, storm,
/// cfg)`; the worker count of `rt` and wall-clock timing never leak
/// in, because the tick loop owns all state sequentially and
/// `spawn_batch` results are joined in index order.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_cell(
    rt: &TaskRuntime,
    arrival: &ArrivalProcess,
    storm: &FaultStorm,
    cfg: &PipelineConfig,
    trace: &TraceHandle,
) -> CellReport {
    assert!(cfg.markers > 0 && cfg.shards > 0 && cfg.batch_per_marker > 0);
    let started = std::time::Instant::now();
    let cell_seed = SplitMix64::mix(
        cfg.seed ^ fnv_str(arrival.name()).rotate_left(17) ^ fnv_str(storm.name),
    );
    let shard_seed = SplitMix64::mix(cell_seed ^ 0x5AAD);
    let spot_seed = SplitMix64::mix(cell_seed ^ 0x590F);
    let mut arrivals_rng = Xoshiro256::seed_from_u64(SplitMix64::mix(cell_seed ^ 0xA221));

    let pid = trace.register_track(&format!("pipeline/{}/{}", arrival.name(), storm.name));
    let guards = MarkerGuards::spawn(cfg.markers, cfg.restart_budget, cell_seed, trace);

    let mut ledger = MarkLedger::new();
    // Sources and student attribution, indexed by ledger id; a source
    // is dropped the moment its slot goes terminal, bounding memory
    // to the queued backlog.
    let mut sources: Vec<String> = Vec::new();
    let mut students_of: Vec<u32> = Vec::new();
    let mut queues: Vec<VecDeque<u64>> = (0..cfg.shards).map(|_| VecDeque::new()).collect();

    let mut shard_stats = vec![ShardStats::default(); cfg.shards as usize];
    let mut marker_stats = vec![MarkerStats::default(); cfg.markers as usize];
    let mut incarnation = vec![1u32; cfg.markers as usize];
    let mut alive = vec![true; cfg.markers as usize];
    // Shard ownership: recomputed round-robin over live markers when
    // one escalates.
    let mut owner: Vec<u32> = (0..cfg.shards).map(|s| u32::from(s) % cfg.markers).collect();

    let mut best_mark = vec![-1.0_f32; cfg.students as usize];
    let mut latency = LatencyHistogram::new(1.0, 1e7, 8);
    let mut events: Vec<String> = Vec::new();
    let mut mark_digest = 0u64;
    let (mut kills, mut restarts, mut escalations) = (0u64, 0u64, 0u64);
    let (mut spot_elig, mut spot_run, mut spot_deg, mut spot_missed) = (0u64, 0u64, 0u64, 0u64);
    let mut degraded_ticks = 0u32;
    let mut was_degraded = false;
    let mut last_phase: Option<&'static str> = None;

    let total_ticks = cfg.arrival_ticks as usize;
    let rubric = Arc::new(cfg.rubric.clone());
    let mut tick = 0u32;
    loop {
        let phase = storm.phase_at(tick as usize, total_ticks);
        if last_phase != Some(phase.label) {
            events.push(format!("tick {tick:03} phase {}", phase.label));
            last_phase = Some(phase.label);
        }
        let _tick_span = trace.span(pid, SpanKind::MarkingTick { tick: u64::from(tick) });

        // ---- arrivals: generate, shard, admit or shed ----
        if tick < cfg.arrival_ticks {
            let n = arrival.sample(tick as usize, &mut arrivals_rng);
            let batch = generate_tick(cell_seed, tick, n, cfg.students);
            let mut shed_this_tick = 0u32;
            for sub in batch {
                // Ledger ids are dense and admission-ordered, so the
                // shard hash can be computed before admitting.
                let shard = shard_for(shard_seed, ledger.admitted(), cfg.shards);
                let id = ledger.admit(shard, tick);
                debug_assert_eq!(id as usize, sources.len());
                let st = &mut shard_stats[shard as usize];
                st.arrived += 1;
                if queues[shard as usize].len() >= cfg.queue_cap {
                    ledger.shed(id, ShedCause::QueueFull);
                    st.shed_full += 1;
                    shed_this_tick += 1;
                    sources.push(String::new());
                    students_of.push(sub.student);
                } else {
                    queues[shard as usize].push_back(id);
                    st.enqueued += 1;
                    st.peak_depth = st.peak_depth.max(queues[shard as usize].len() as u64);
                    sources.push(sub.source);
                    students_of.push(sub.student);
                }
            }
            if shed_this_tick > 0 {
                trace.mark(
                    pid,
                    MarkKind::MarkingStage {
                        stage: MarkingTag::Shed,
                        lane: 0,
                        count: shed_this_tick,
                    },
                );
            }
        }

        // ---- degradation decision (backlog or escalations) ----
        let backlog: usize = queues.iter().map(VecDeque::len).sum();
        let degraded = backlog > cfg.degrade_backlog || escalations > 0;
        if degraded != was_degraded {
            events.push(format!(
                "tick {tick:03} degradation {} (backlog {backlog}, escalations {escalations})",
                if degraded { "ON: shedding explorer spot-checks" } else { "off" }
            ));
            was_degraded = degraded;
        }
        if degraded {
            degraded_ticks += 1;
        }

        // ---- markers: claim, mark (parallel fan-out), ack ----
        for m in 0..cfg.markers {
            if !alive[m as usize] {
                continue;
            }
            // Assemble this marker's batch round-robin over its
            // shards, front of each queue.
            let my_shards: Vec<u16> =
                (0..cfg.shards).filter(|&s| owner[s as usize] == m).collect();
            if my_shards.is_empty() {
                continue;
            }
            let mut batch: Vec<u64> = Vec::with_capacity(cfg.batch_per_marker);
            'fill: loop {
                let mut any = false;
                for &s in &my_shards {
                    if let Some(id) = queues[s as usize].pop_front() {
                        batch.push(id);
                        any = true;
                        if batch.len() == cfg.batch_per_marker {
                            break 'fill;
                        }
                    }
                }
                if !any {
                    break;
                }
            }
            if batch.is_empty() {
                continue;
            }
            let inc = incarnation[m as usize];
            for &id in &batch {
                assert!(ledger.claim(id, m, inc), "queued work must be claimable");
            }
            trace.mark(
                pid,
                MarkKind::MarkingStage {
                    stage: MarkingTag::Claim,
                    lane: m,
                    count: batch.len() as u32,
                },
            );

            // The storm's verdict on this marker, decided *before*
            // the batch runs so killed work is genuinely never
            // computed by this incarnation: a kill cuts the batch at
            // a deterministic point, the prefix is marked and acked,
            // the tail stays claimed until the restart reclaims it.
            let killed = storm_kills_marker(phase, cell_seed, m, tick);
            let cut = if killed {
                (SplitMix64::mix(cell_seed ^ (u64::from(tick) << 24) ^ u64::from(m))
                    % batch.len() as u64) as usize
            } else {
                batch.len()
            };

            // Pure parallel fan-out over the surviving prefix.
            let items: Arc<Vec<(u64, String, bool)>> = Arc::new(
                batch[..cut]
                    .iter()
                    .map(|&id| {
                        let run_spot =
                            spot_eligible(spot_seed, id, cfg.spot_every) && !degraded;
                        (id, sources[id as usize].clone(), run_spot)
                    })
                    .collect(),
            );
            let rubric = Arc::clone(&rubric);
            let worker_items = Arc::clone(&items);
            let results = rt
                .spawn_batch(items.len(), move |i| {
                    let (_, source, run_spot) = &worker_items[i];
                    mark_submission(source, &rubric, *run_spot)
                })
                .join();

            // Sequential ack walk, index order: this is what makes
            // acks (and the digest) pool-size independent.
            let mut acked = 0u32;
            for (i, res) in results.into_iter().enumerate() {
                let (id, _, ran_spot) = items[i];
                let result = res.expect("marking closures neither panic nor cancel");
                assert!(ledger.ack(id, m, inc), "prefix acks cannot be stale");
                acked += 1;
                marker_stats[m as usize].marked += 1;
                shard_stats[ledger.shard_of(id) as usize].served += 1;
                let wait_ticks = f64::from(tick - ledger.arrival_tick_of(id));
                latency.record(
                    (wait_ticks * cfg.tick_ms + result.service_ms * phase.latency_factor)
                        .max(1.0),
                );
                mark_digest =
                    report::fold_mark_digest(mark_digest, id, result.score.mark.to_bits());
                let student = students_of[id as usize] as usize;
                best_mark[student] = best_mark[student].max(result.score.mark as f32);
                if spot_eligible(spot_seed, id, cfg.spot_every) {
                    spot_elig += 1;
                    if ran_spot {
                        spot_run += 1;
                        trace.mark(
                            pid,
                            MarkKind::MarkingStage { stage: MarkingTag::Spot, lane: m, count: 1 },
                        );
                        if result.spot == Some(SpotVerdict::MissedFinding) {
                            spot_missed += 1;
                        }
                    } else {
                        spot_deg += 1;
                        trace.mark(
                            pid,
                            MarkKind::MarkingStage {
                                stage: MarkingTag::Degraded,
                                lane: m,
                                count: 1,
                            },
                        );
                    }
                }
                if ledger.was_reclaimed(id) {
                    trace.mark(
                        pid,
                        MarkKind::MarkingStage { stage: MarkingTag::Redone, lane: m, count: 1 },
                    );
                }
                sources[id as usize] = String::new();
            }
            if acked > 0 {
                trace.mark(
                    pid,
                    MarkKind::MarkingStage { stage: MarkingTag::Ack, lane: m, count: acked },
                );
            }

            if killed {
                kills += 1;
                marker_stats[m as usize].kills += 1;
                let tail = &batch[cut..];
                events.push(format!(
                    "tick {tick:03} marker {m} killed mid-batch (acked {cut}, reclaiming {})",
                    tail.len()
                ));
                trace.mark(
                    pid,
                    MarkKind::MarkingStage {
                        stage: MarkingTag::Reclaim,
                        lane: m,
                        count: tail.len() as u32,
                    },
                );
                // Tear up the unacked tail: back to the front of its
                // shard queues (reverse order preserves FIFO).
                for &id in tail.iter().rev() {
                    ledger.reclaim(id, m, inc);
                    marker_stats[m as usize].reclaimed += 1;
                    queues[ledger.shard_of(id) as usize].push_front(id);
                }
                if marker_stats[m as usize].kills > u64::from(cfg.restart_budget) {
                    // Budget exhausted: the real supervisor escalates
                    // (no restart); the marker is dead for good and
                    // its shards are reassigned to the survivors.
                    guards.kill(m);
                    alive[m as usize] = false;
                    marker_stats[m as usize].escalated = true;
                    escalations += 1;
                    events.push(format!(
                        "tick {tick:03} marker {m} escalated after {} kills; shards reassigned",
                        marker_stats[m as usize].kills
                    ));
                    reassign_shards(&mut owner, &alive);
                } else {
                    // A real supervised restart: the model does not
                    // proceed until the supervisor has granted it.
                    guards.kill(m);
                    let next = guards.await_restart(m);
                    assert_eq!(next, inc + 1, "incarnations are dense");
                    incarnation[m as usize] = next;
                    restarts += 1;
                    marker_stats[m as usize].restarts += 1;
                    // The restarted marker sits out the rest of this
                    // tick; its reclaimed work is waiting in the
                    // queues for the next one.
                }
            }
        }

        // ---- termination ----
        let backlog: usize = queues.iter().map(VecDeque::len).sum();
        if tick + 1 >= cfg.arrival_ticks && backlog == 0 {
            tick += 1;
            break;
        }
        if tick + 1 >= cfg.arrival_ticks + cfg.drain_max_ticks {
            // Drain window closed: shed the remainder, attributed.
            let mut shed = 0u64;
            for s in 0..cfg.shards {
                while let Some(id) = queues[s as usize].pop_front() {
                    ledger.shed(id, ShedCause::DrainOverrun);
                    shard_stats[s as usize].shed_drain += 1;
                    sources[id as usize] = String::new();
                    shed += 1;
                }
            }
            if shed > 0 {
                events.push(format!("tick {tick:03} drain window closed: shed {shed} queued"));
                trace.mark(
                    pid,
                    MarkKind::MarkingStage {
                        stage: MarkingTag::Shed,
                        lane: 0,
                        count: shed as u32,
                    },
                );
            }
            tick += 1;
            break;
        }
        tick += 1;
    }

    let supervision = guards.finish();
    for (m, stat) in marker_stats.iter_mut().enumerate() {
        stat.final_incarnation = incarnation[m];
    }

    // Cohort roll-up: per-student best marks, sequential fold.
    let mut students_marked = 0u64;
    let mut best_sum = 0.0_f64;
    for &b in &best_mark {
        if b >= 0.0 {
            students_marked += 1;
            best_sum += f64::from(b);
        }
    }
    let cohort_mean_best = if students_marked > 0 {
        best_sum / students_marked as f64
    } else {
        0.0
    };

    CellReport {
        arrival: arrival.name(),
        storm: storm.name,
        seed: cell_seed,
        submitted: ledger.admitted(),
        marked: ledger.marked(),
        shed: ledger.shed_total(),
        claims: ledger.claims(),
        reclaims: ledger.reclaims(),
        redone: ledger.redone(),
        duplicates: ledger.duplicate_acks_rejected(),
        stale_acks: ledger.stale_acks_rejected(),
        in_flight: ledger.in_flight(),
        kills,
        restarts,
        escalations,
        ticks: tick,
        degraded_ticks,
        spot_eligible: spot_elig,
        spot_run,
        spot_degraded: spot_deg,
        spot_missed,
        students_marked,
        cohort_mean_best,
        mark_digest,
        shards: shard_stats,
        markers: marker_stats,
        latency,
        events,
        supervision,
        elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

/// Does the storm kill marker `m` on this tick? Pure in
/// `(phase, seed, m, tick)`. The phase's fault plan drives the
/// decision (storm peaks kill often, calm phases never), thinned 4×
/// so markers spend most of a storm marking rather than restarting.
fn storm_kills_marker(phase: &StormPhase, seed: u64, m: u32, tick: u32) -> bool {
    let mut plan = phase.plan.clone();
    plan.seed = SplitMix64::mix(plan.seed ^ (0xBEEF ^ (u64::from(m) << 8)));
    let fault = FaultInjector::new(plan).decide(u64::from(m), tick + 1);
    fault.is_failure()
        && SplitMix64::mix(seed ^ (u64::from(tick) << 32) ^ u64::from(m).rotate_left(51))
            .is_multiple_of(4)
}

/// Round-robin the shards over the surviving markers (deterministic:
/// shard index order over live marker index order).
fn reassign_shards(owner: &mut [u32], alive: &[bool]) {
    let live: Vec<u32> = (0..alive.len() as u32).filter(|&m| alive[m as usize]).collect();
    if live.is_empty() {
        return; // final shed path will drain the queues
    }
    for (s, o) in owner.iter_mut().enumerate() {
        *o = live[s % live.len()];
    }
}

fn fnv_str(s: &str) -> u64 {
    report::fnv1a(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(seed: u64) -> PipelineConfig {
        PipelineConfig {
            seed,
            shards: 4,
            markers: 2,
            batch_per_marker: 40,
            queue_cap: 120,
            arrival_ticks: 12,
            drain_max_ticks: 10,
            spot_every: 64,
            degrade_backlog: 200,
            restart_budget: 10,
            students: 100,
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn small_cell_conserves_and_marks_everything_reachable() {
        let rt = TaskRuntime::builder().workers(2).build();
        let cfg = small_cfg(7);
        let arrival = ArrivalProcess::PoissonSteady { rate: 50.0 };
        let storm = FaultStorm::burst(0xB00);
        let report =
            run_cell(&rt, &arrival, &storm, &cfg, &parc_trace::TraceHandle::default());
        assert!(report.violations().is_empty(), "violations: {:?}", report.violations());
        assert!(report.submitted > 300, "submitted {}", report.submitted);
        assert_eq!(report.submitted, report.marked + report.shed);
        assert_eq!(report.duplicates, 0);
        assert_eq!(report.in_flight, 0);
    }

    #[test]
    fn kills_mid_batch_never_lose_or_double_mark() {
        let rt = TaskRuntime::builder().workers(3).build();
        let cfg = small_cfg(0xD1E);
        let arrival = ArrivalProcess::PoissonSteady { rate: 60.0 };
        // Burst storm: the peak phase kills hard.
        let storm = FaultStorm::burst(0x5707);
        let report =
            run_cell(&rt, &arrival, &storm, &cfg, &parc_trace::TraceHandle::default());
        assert!(report.violations().is_empty(), "violations: {:?}", report.violations());
        assert!(report.kills > 0, "the storm must actually kill markers");
        assert!(report.restarts > 0, "kills must flow through supervised restarts");
        assert!(report.reclaims > 0, "mid-batch kills must tear up unacked claims");
        assert!(report.redone > 0, "reclaimed work must be genuinely re-marked");
        assert_eq!(report.duplicates, 0);
        assert_eq!(report.stale_acks, 0);
        // The real supervision tree saw the same story.
        assert_eq!(u64::from(report.supervision.restarts_total), report.restarts);
    }

    #[test]
    fn fingerprints_are_identical_across_pools_and_reruns() {
        let cfg = small_cfg(0xF1F0);
        let arrival = ArrivalProcess::FlashCrowd {
            base: 30.0,
            peak: 120.0,
            at_tick: 4,
            decay_ticks: 3,
        };
        let storm = FaultStorm::flapping(0xF1A9);
        let run = |workers: usize| {
            let rt = TaskRuntime::builder().workers(workers).build();
            run_cell(&rt, &arrival, &storm, &cfg, &parc_trace::TraceHandle::default())
        };
        let base = run(1);
        assert!(base.violations().is_empty(), "violations: {:?}", base.violations());
        let rerun = run(1);
        assert_eq!(base.fingerprint(), rerun.fingerprint(), "rerun diverged");
        let wide = run(4);
        assert_eq!(
            base.fingerprint(),
            wide.fingerprint(),
            "worker-pool size leaked into the model:\n{}",
            diff_hint(&base.render_deterministic(), &wide.render_deterministic())
        );
    }

    #[test]
    fn exhausted_budget_escalates_and_reassigns_shards() {
        let rt = TaskRuntime::builder().workers(2).build();
        let mut cfg = small_cfg(0xE5C);
        cfg.restart_budget = 0; // first kill escalates
        cfg.arrival_ticks = 16;
        let arrival = ArrivalProcess::PoissonSteady { rate: 60.0 };
        let storm = FaultStorm::burst(0xE5C4);
        let report =
            run_cell(&rt, &arrival, &storm, &cfg, &parc_trace::TraceHandle::default());
        assert!(report.violations().is_empty(), "violations: {:?}", report.violations());
        assert!(report.escalations > 0, "budget 0 must escalate on the first kill");
        assert!(report.supervision.has_escalations());
        assert!(!report.supervision.escalated_children().is_empty());
        // Submissions kept getting marked by the survivors.
        assert!(report.marked > 0);
        assert_eq!(report.submitted, report.marked + report.shed);
        assert!(report.events.iter().any(|e| e.contains("shards reassigned")));
    }

    #[test]
    fn degradation_is_explicit_and_quantified() {
        let rt = TaskRuntime::builder().workers(2).build();
        let mut cfg = small_cfg(0xDE6);
        // Tiny backlog threshold and dense sampling: degradation is
        // guaranteed under a flash crowd.
        cfg.degrade_backlog = 20;
        cfg.spot_every = 8;
        cfg.batch_per_marker = 25;
        let arrival =
            ArrivalProcess::FlashCrowd { base: 40.0, peak: 200.0, at_tick: 3, decay_ticks: 4 };
        let storm = FaultStorm::brownout(0xDE64);
        let report =
            run_cell(&rt, &arrival, &storm, &cfg, &parc_trace::TraceHandle::default());
        assert!(report.violations().is_empty(), "violations: {:?}", report.violations());
        assert!(report.degraded_ticks > 0, "flash crowd must trigger degradation");
        assert!(report.spot_degraded > 0, "skipped spot-checks must be counted");
        assert_eq!(report.spot_eligible, report.spot_run + report.spot_degraded);
        assert!(
            report.events.iter().any(|e| e.contains("degradation ON")),
            "the toggle must be logged: {:?}",
            report.events
        );
    }

    #[test]
    fn pipeline_stages_are_traced() {
        let col = parc_trace::Collector::new();
        let rt = TaskRuntime::builder().workers(2).build();
        let cfg = small_cfg(0x7124);
        let arrival = ArrivalProcess::PoissonSteady { rate: 50.0 };
        let storm = FaultStorm::burst(0x7124);
        let report = run_cell(&rt, &arrival, &storm, &cfg, &col.handle());
        assert!(report.violations().is_empty());
        let counts = col.snapshot().counts_by_name();
        assert!(counts.get("mark.claim").copied().unwrap_or(0) > 0);
        assert!(counts.get("mark.ack").copied().unwrap_or(0) > 0);
        assert!(counts.get("mark.tick").copied().unwrap_or(0) > 0);
        if report.kills > 0 {
            assert!(counts.get("mark.reclaim").copied().unwrap_or(0) > 0);
        }
        // Supervision marks flow through the same collector.
        assert!(counts.get("sup.child_start").copied().unwrap_or(0) > 0);
    }

    fn diff_hint(a: &str, b: &str) -> String {
        for (la, lb) in a.lines().zip(b.lines()) {
            if la != lb {
                return format!("first divergence:\n  a: {la}\n  b: {lb}");
            }
        }
        "renderings equal-length prefix".to_string()
    }
}
