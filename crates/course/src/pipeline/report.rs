//! The deterministic marking report: per-cell counters, conservation
//! identities and the rerun/pool-size-stable fingerprint.

use parc_supervise::SupervisionReport;
use parc_trace::LatencyHistogram;

/// Per-shard accounting.
#[derive(Clone, Debug, Default)]
pub struct ShardStats {
    /// Submissions hashed to this shard (admitted or shed at the
    /// gate).
    pub arrived: u64,
    /// Submissions that entered the bounded queue.
    pub enqueued: u64,
    /// Submissions shed at admission because the queue was full.
    pub shed_full: u64,
    /// Submissions shed from the queue when the drain window closed.
    pub shed_drain: u64,
    /// Submissions marked (acked) out of this shard.
    pub served: u64,
    /// High-water mark of the queue depth.
    pub peak_depth: u64,
}

/// Per-marker accounting.
#[derive(Clone, Debug, Default)]
pub struct MarkerStats {
    /// Submissions this marker acked across all incarnations.
    pub marked: u64,
    /// Storm kills suffered (each tears up the unacked tail of the
    /// in-progress batch).
    pub kills: u64,
    /// Supervised restarts granted (kills minus a final escalating
    /// kill, if any).
    pub restarts: u64,
    /// Claims torn up by this marker's deaths.
    pub reclaimed: u64,
    /// Did the marker exhaust its restart budget and die for good?
    pub escalated: bool,
    /// Final supervised incarnation number.
    pub final_incarnation: u32,
}

/// Everything one pipeline cell (arrival process × fault storm)
/// produced. All fields except the embedded wall-clock are pure
/// functions of the cell seed — [`CellReport::fingerprint`] pins
/// that.
#[derive(Clone, Debug)]
pub struct CellReport {
    /// Arrival-process name (`"poisson_steady"`, ...).
    pub arrival: &'static str,
    /// Storm shape name (`"burst"`, ...).
    pub storm: &'static str,
    /// Cell seed.
    pub seed: u64,
    /// Submissions generated (== admitted to the ledger).
    pub submitted: u64,
    /// Submissions marked exactly once.
    pub marked: u64,
    /// Submissions shed (queue-full + drain), always attributed.
    pub shed: u64,
    /// Ledger claims granted.
    pub claims: u64,
    /// Claims torn up by marker deaths.
    pub reclaims: u64,
    /// Submissions re-marked after a lost first attempt.
    pub redone: u64,
    /// Rejected duplicate acks (must be 0).
    pub duplicates: u64,
    /// Rejected zombie acks (must be 0 in the model).
    pub stale_acks: u64,
    /// Ledger slots still in flight at the end (must be 0).
    pub in_flight: u64,
    /// Marker kills dealt by the storm.
    pub kills: u64,
    /// Supervised restarts granted.
    pub restarts: u64,
    /// Markers that exhausted their budget and were reassigned.
    pub escalations: u64,
    /// Ticks that ran (arrivals + drain).
    pub ticks: u32,
    /// Ticks the expensive stage was degraded.
    pub degraded_ticks: u32,
    /// Spot-checks eligible by sampling.
    pub spot_eligible: u64,
    /// Spot-checks actually run.
    pub spot_run: u64,
    /// Spot-checks skipped under degradation (quantified, explicit).
    pub spot_degraded: u64,
    /// Spot-checks whose dynamic findings the static stage missed
    /// (must be 0: the PR 9 engine is sound on generated programs).
    pub spot_missed: u64,
    /// Distinct students with at least one marked submission.
    pub students_marked: u64,
    /// Mean of per-student best marks, percent.
    pub cohort_mean_best: f64,
    /// Order-stable digest of every `(id, mark)` ack.
    pub mark_digest: u64,
    /// Per-shard accounting.
    pub shards: Vec<ShardStats>,
    /// Per-marker accounting.
    pub markers: Vec<MarkerStats>,
    /// Model-time marking latency (arrival tick → ack), milliseconds.
    pub latency: LatencyHistogram,
    /// Narrative event log (phase changes, kills, restarts,
    /// degradation toggles), deterministic.
    pub events: Vec<String>,
    /// The supervision tree's own report for the marker guards.
    pub supervision: SupervisionReport,
    /// Wall-clock for the whole cell — the only nondeterministic
    /// field, excluded from the fingerprint.
    pub elapsed_ms: f64,
}

impl CellReport {
    /// Check every conservation identity the pipeline promises.
    /// Returns the violated ones (empty = clean).
    #[must_use]
    pub fn violations(&self) -> Vec<String> {
        let mut bad = Vec::new();
        let mut check = |ok: bool, msg: String| {
            if !ok {
                bad.push(msg);
            }
        };
        check(
            self.submitted == self.marked + self.shed,
            format!(
                "submitted {} != marked {} + shed {}",
                self.submitted, self.marked, self.shed
            ),
        );
        check(self.in_flight == 0, format!("{} submissions still in flight", self.in_flight));
        check(self.duplicates == 0, format!("{} duplicate marks", self.duplicates));
        check(self.stale_acks == 0, format!("{} stale acks reached the ledger", self.stale_acks));
        check(
            self.claims == self.marked + self.reclaims,
            format!(
                "claims {} != marked {} + reclaims {}",
                self.claims, self.marked, self.reclaims
            ),
        );
        let shard_served: u64 = self.shards.iter().map(|s| s.served).sum();
        check(
            shard_served == self.marked,
            format!("per-shard served {shard_served} != marked {}", self.marked),
        );
        let shard_arrived: u64 = self.shards.iter().map(|s| s.arrived).sum();
        check(
            shard_arrived == self.submitted,
            format!("per-shard arrived {shard_arrived} != submitted {}", self.submitted),
        );
        let marker_marked: u64 = self.markers.iter().map(|m| m.marked).sum();
        check(
            marker_marked == self.marked,
            format!("per-marker marked {marker_marked} != marked {}", self.marked),
        );
        let marker_kills: u64 = self.markers.iter().map(|m| m.kills).sum();
        check(
            marker_kills == self.kills,
            format!("per-marker kills {marker_kills} != kills {}", self.kills),
        );
        check(
            self.spot_eligible == self.spot_run + self.spot_degraded,
            format!(
                "spot eligible {} != run {} + degraded {} — degradation must be quantified",
                self.spot_eligible, self.spot_run, self.spot_degraded
            ),
        );
        check(self.spot_missed == 0, format!("{} spot-checks missed findings", self.spot_missed));
        check(
            self.latency.total() == self.marked,
            format!(
                "latency samples {} != marked {}",
                self.latency.total(),
                self.marked
            ),
        );
        // The real supervision tree must agree with the model.
        check(
            u64::from(self.supervision.restarts_total) == self.restarts,
            format!(
                "supervised restarts {} != model restarts {}",
                self.supervision.restarts_total, self.restarts
            ),
        );
        check(
            u64::from(self.supervision.escalations) == self.escalations,
            format!(
                "supervised escalations {} != model escalations {}",
                self.supervision.escalations, self.escalations
            ),
        );
        for v in self.supervision.conservation_violations() {
            bad.push(format!("supervision: {v}"));
        }
        bad
    }

    /// The deterministic block: every model-derived field rendered
    /// canonically. Bit-identical across reruns and worker-pool
    /// sizes; excludes only wall-clock.
    #[must_use]
    pub fn render_deterministic(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "cell {} x {} seed {:#x}", self.arrival, self.storm, self.seed);
        let _ = writeln!(
            out,
            "submitted {} marked {} shed {} in_flight {} duplicates {} stale {}",
            self.submitted, self.marked, self.shed, self.in_flight, self.duplicates,
            self.stale_acks
        );
        let _ = writeln!(
            out,
            "claims {} reclaims {} redone {} kills {} restarts {} escalations {}",
            self.claims, self.reclaims, self.redone, self.kills, self.restarts, self.escalations
        );
        let _ = writeln!(
            out,
            "ticks {} degraded_ticks {} spot {}/{}/{} missed {}",
            self.ticks,
            self.degraded_ticks,
            self.spot_run,
            self.spot_degraded,
            self.spot_eligible,
            self.spot_missed
        );
        let _ = writeln!(
            out,
            "students_marked {} cohort_mean_best {:.4} mark_digest {:#018x}",
            self.students_marked, self.cohort_mean_best, self.mark_digest
        );
        let _ = writeln!(
            out,
            "latency_ms p50 {:.3} p99 {:.3} p999 {:.3} samples {}",
            self.latency.p50(),
            self.latency.p99(),
            self.latency.p999(),
            self.latency.total()
        );
        for (i, s) in self.shards.iter().enumerate() {
            let _ = writeln!(
                out,
                "shard {i}: arrived {} enqueued {} served {} shed_full {} shed_drain {} peak {}",
                s.arrived, s.enqueued, s.served, s.shed_full, s.shed_drain, s.peak_depth
            );
        }
        for (i, m) in self.markers.iter().enumerate() {
            let _ = writeln!(
                out,
                "marker {i}: marked {} kills {} restarts {} reclaimed {} escalated {} inc {}",
                m.marked, m.kills, m.restarts, m.reclaimed, m.escalated, m.final_incarnation
            );
        }
        for ev in &self.events {
            let _ = writeln!(out, "event {ev}");
        }
        out.push_str("supervision:\n");
        out.push_str(&self.supervision.event_log());
        out
    }

    /// FNV-1a fingerprint of [`CellReport::render_deterministic`].
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        fnv1a(self.render_deterministic().as_bytes())
    }
}

/// 64-bit FNV-1a.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fold one `(id, mark)` ack into the running order-stable digest.
/// Acks happen in deterministic model order, so a sequential fold is
/// stable across pools; mixing per-entry keeps it sensitive to both
/// value and position.
#[must_use]
pub fn fold_mark_digest(digest: u64, id: u64, mark_bits: u64) -> u64 {
    let mut h = digest ^ id.rotate_left(31) ^ mark_bits;
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 29;
    h
}
