//! The per-submission claim/complete checkpoint ledger — the
//! exactly-once core of the marking pipeline.
//!
//! Every generated submission owns one slot that walks a strict state
//! machine:
//!
//! ```text
//! Pending ──claim──▶ Claimed{marker, incarnation} ──ack──▶ Done
//!    ▲                        │
//!    └──────── reclaim ───────┘        (marker incarnation died)
//!
//! Pending / (never admitted) ──shed──▶ Shed{cause}
//! ```
//!
//! The transitions are checked, not assumed: an ack from a stale
//! incarnation (a zombie marker that was already declared dead and
//! had its work reclaimed) is **rejected and counted**, a second ack
//! on a `Done` slot is rejected and counted as a duplicate attempt,
//! and a claim on anything but a `Pending` slot is refused. The final
//! conservation identity — `admitted == marked + shed`, zero slots
//! in flight, zero duplicates — is what [`super::CellReport`] asserts
//! per cell.

/// Why a submission was shed instead of marked. Mirrors the
/// `ShedReason` idiom of `websim::server`: shedding is always an
/// explicit, attributed decision, never a silent drop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedCause {
    /// The submission's shard queue was at capacity on arrival — the
    /// end-to-end backpressure signal.
    QueueFull,
    /// The drain window closed with the submission still queued.
    DrainOverrun,
}

impl ShedCause {
    /// Stable label for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ShedCause::QueueFull => "queue_full",
            ShedCause::DrainOverrun => "drain_overrun",
        }
    }
}

/// One slot's position in the marking state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SlotState {
    /// Admitted, waiting in its shard queue.
    Pending,
    /// Claimed by a marker incarnation, not yet acknowledged.
    Claimed {
        /// The claiming marker.
        marker: u32,
        /// The claiming incarnation (restarts increment it).
        incarnation: u32,
    },
    /// Marked exactly once; terminal.
    Done,
    /// Shed without marking; terminal.
    Shed,
}

/// One submission's checkpoint record.
#[derive(Clone, Copy, Debug)]
struct Slot {
    state: SlotState,
    shard: u16,
    arrival_tick: u32,
    /// Times this slot's claim was torn up by a marker death. A slot
    /// acked after `reclaims > 0` had its first marking attempt lost
    /// and was genuinely re-marked.
    reclaims: u16,
}

/// The checkpoint ledger for one pipeline cell. Purely sequential:
/// the tick loop owns it, and all parallelism happens in the pure
/// marking closures *between* claim and ack.
#[derive(Clone, Debug, Default)]
pub struct MarkLedger {
    slots: Vec<Slot>,
    admitted: u64,
    marked: u64,
    shed_queue_full: u64,
    shed_drain: u64,
    claims: u64,
    reclaims: u64,
    redone: u64,
    /// Acks refused because the slot was already `Done`.
    duplicate_acks_rejected: u64,
    /// Acks refused because the acking incarnation no longer owns the
    /// claim (zombie marker).
    stale_acks_rejected: u64,
}

impl MarkLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a newly arrived submission as `Pending`; returns its
    /// ledger id (dense, admission-ordered).
    pub fn admit(&mut self, shard: u16, arrival_tick: u32) -> u64 {
        let id = self.slots.len() as u64;
        self.slots.push(Slot { state: SlotState::Pending, shard, arrival_tick, reclaims: 0 });
        self.admitted += 1;
        id
    }

    /// Shed a `Pending` submission. Panics on a non-pending slot:
    /// shedding claimed or finished work would lose a mark, and the
    /// sequential tick loop can never legitimately try.
    pub fn shed(&mut self, id: u64, cause: ShedCause) {
        let slot = &mut self.slots[id as usize];
        assert_eq!(slot.state, SlotState::Pending, "only pending work can be shed");
        slot.state = SlotState::Shed;
        match cause {
            ShedCause::QueueFull => self.shed_queue_full += 1,
            ShedCause::DrainOverrun => self.shed_drain += 1,
        }
    }

    /// Claim a `Pending` slot for `(marker, incarnation)`. Returns
    /// false (and leaves the slot untouched) if it is not pending.
    pub fn claim(&mut self, id: u64, marker: u32, incarnation: u32) -> bool {
        let slot = &mut self.slots[id as usize];
        if slot.state != SlotState::Pending {
            return false;
        }
        slot.state = SlotState::Claimed { marker, incarnation };
        self.claims += 1;
        true
    }

    /// Acknowledge a marked submission. Succeeds only when the slot is
    /// currently claimed by exactly `(marker, incarnation)`; a zombie
    /// ack (stale incarnation) or a double ack is rejected and
    /// counted, never applied.
    pub fn ack(&mut self, id: u64, marker: u32, incarnation: u32) -> bool {
        let slot = &mut self.slots[id as usize];
        match slot.state {
            SlotState::Claimed { marker: m, incarnation: i } if m == marker && i == incarnation => {
                slot.state = SlotState::Done;
                self.marked += 1;
                if slot.reclaims > 0 {
                    self.redone += 1;
                }
                true
            }
            SlotState::Done => {
                self.duplicate_acks_rejected += 1;
                false
            }
            _ => {
                self.stale_acks_rejected += 1;
                false
            }
        }
    }

    /// Tear up an unacknowledged claim after its marker incarnation
    /// died: the slot returns to `Pending` for a later re-claim.
    /// Panics if the slot is not claimed by `(marker, incarnation)` —
    /// reclaiming acked work would double-mark it.
    pub fn reclaim(&mut self, id: u64, marker: u32, incarnation: u32) {
        let slot = &mut self.slots[id as usize];
        assert_eq!(
            slot.state,
            SlotState::Claimed { marker, incarnation },
            "reclaim must match the dead claim exactly"
        );
        slot.state = SlotState::Pending;
        slot.reclaims += 1;
        self.reclaims += 1;
    }

    /// The shard a slot was admitted to.
    #[must_use]
    pub fn shard_of(&self, id: u64) -> u16 {
        self.slots[id as usize].shard
    }

    /// The tick a slot arrived on.
    #[must_use]
    pub fn arrival_tick_of(&self, id: u64) -> u32 {
        self.slots[id as usize].arrival_tick
    }

    /// Was this slot's claim ever torn up (so an eventual ack is a
    /// genuine re-marking)?
    #[must_use]
    pub fn was_reclaimed(&self, id: u64) -> bool {
        self.slots[id as usize].reclaims > 0
    }

    /// Submissions admitted (slots ever created).
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Submissions marked exactly once.
    #[must_use]
    pub fn marked(&self) -> u64 {
        self.marked
    }

    /// Submissions shed, by cause.
    #[must_use]
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full + self.shed_drain
    }

    /// Submissions shed because their shard queue was full.
    #[must_use]
    pub fn shed_queue_full(&self) -> u64 {
        self.shed_queue_full
    }

    /// Submissions shed when the drain window closed.
    #[must_use]
    pub fn shed_drain(&self) -> u64 {
        self.shed_drain
    }

    /// Successful claims (including re-claims after reclaim).
    #[must_use]
    pub fn claims(&self) -> u64 {
        self.claims
    }

    /// Claims torn up by marker deaths.
    #[must_use]
    pub fn reclaims(&self) -> u64 {
        self.reclaims
    }

    /// Submissions whose final ack followed at least one reclaim.
    #[must_use]
    pub fn redone(&self) -> u64 {
        self.redone
    }

    /// Rejected double-acks on `Done` slots (must stay 0 in a healthy
    /// run; the rejection itself is the ledger working as designed).
    #[must_use]
    pub fn duplicate_acks_rejected(&self) -> u64 {
        self.duplicate_acks_rejected
    }

    /// Rejected acks from stale incarnations.
    #[must_use]
    pub fn stale_acks_rejected(&self) -> u64 {
        self.stale_acks_rejected
    }

    /// Slots still `Pending` or `Claimed` — must be 0 when a cell
    /// finishes.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.slots
            .iter()
            .filter(|s| matches!(s.state, SlotState::Pending | SlotState::Claimed { .. }))
            .count() as u64
    }

    /// Structural conservation check over every slot and counter.
    /// Returns violated identities (empty = conserved).
    #[must_use]
    pub fn conservation_violations(&self) -> Vec<String> {
        let mut bad = Vec::new();
        let done = self.slots.iter().filter(|s| s.state == SlotState::Done).count() as u64;
        let shed = self.slots.iter().filter(|s| s.state == SlotState::Shed).count() as u64;
        if done != self.marked {
            bad.push(format!("ledger: {done} done slots but marked counter {}", self.marked));
        }
        if shed != self.shed_total() {
            bad.push(format!("ledger: {shed} shed slots but shed counter {}", self.shed_total()));
        }
        if self.admitted != self.slots.len() as u64 {
            bad.push(format!(
                "ledger: admitted {} != slots {}",
                self.admitted,
                self.slots.len()
            ));
        }
        let in_flight = self.in_flight();
        if self.admitted != self.marked + self.shed_total() + in_flight {
            bad.push(format!(
                "ledger: admitted {} != marked {} + shed {} + in-flight {in_flight}",
                self.admitted,
                self.marked,
                self.shed_total()
            ));
        }
        if self.claims != self.marked + self.reclaims + in_flight_claimed(&self.slots) {
            bad.push(format!(
                "ledger: claims {} != marked {} + reclaims {} + claimed-in-flight {}",
                self.claims,
                self.marked,
                self.reclaims,
                in_flight_claimed(&self.slots)
            ));
        }
        bad
    }
}

fn in_flight_claimed(slots: &[Slot]) -> u64 {
    slots.iter().filter(|s| matches!(s.state, SlotState::Claimed { .. })).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path_claim_ack_conserves() {
        let mut ledger = MarkLedger::new();
        let a = ledger.admit(0, 0);
        let b = ledger.admit(1, 0);
        assert!(ledger.claim(a, 0, 1));
        assert!(ledger.claim(b, 0, 1));
        assert!(ledger.ack(a, 0, 1));
        assert!(ledger.ack(b, 0, 1));
        assert_eq!(ledger.marked(), 2);
        assert_eq!(ledger.in_flight(), 0);
        assert!(ledger.conservation_violations().is_empty());
    }

    #[test]
    fn double_ack_is_rejected_and_counted() {
        let mut ledger = MarkLedger::new();
        let a = ledger.admit(0, 0);
        assert!(ledger.claim(a, 0, 1));
        assert!(ledger.ack(a, 0, 1));
        assert!(!ledger.ack(a, 0, 1), "second ack must be refused");
        assert_eq!(ledger.marked(), 1, "the mark is not double-counted");
        assert_eq!(ledger.duplicate_acks_rejected(), 1);
        assert!(ledger.conservation_violations().is_empty());
    }

    #[test]
    fn zombie_incarnation_cannot_ack_reclaimed_work() {
        // Marker 3 incarnation 1 claims, dies; the work is reclaimed
        // and re-claimed by incarnation 2. A late ack from the dead
        // incarnation must bounce; the live incarnation's ack lands.
        let mut ledger = MarkLedger::new();
        let a = ledger.admit(0, 0);
        assert!(ledger.claim(a, 3, 1));
        ledger.reclaim(a, 3, 1);
        assert!(ledger.claim(a, 3, 2));
        assert!(!ledger.ack(a, 3, 1), "zombie ack must be refused");
        assert_eq!(ledger.stale_acks_rejected(), 1);
        assert!(ledger.ack(a, 3, 2));
        assert_eq!(ledger.marked(), 1);
        assert_eq!(ledger.redone(), 1, "the re-marking is on record");
        assert!(ledger.was_reclaimed(a));
        assert!(ledger.conservation_violations().is_empty());
    }

    #[test]
    fn claim_requires_pending() {
        let mut ledger = MarkLedger::new();
        let a = ledger.admit(0, 0);
        assert!(ledger.claim(a, 0, 1));
        assert!(!ledger.claim(a, 1, 1), "claimed work cannot be claimed again");
        assert!(ledger.ack(a, 0, 1));
        assert!(!ledger.claim(a, 1, 1), "done work cannot be claimed");
    }

    #[test]
    fn shed_causes_are_attributed() {
        let mut ledger = MarkLedger::new();
        let a = ledger.admit(0, 0);
        let b = ledger.admit(0, 1);
        ledger.shed(a, ShedCause::QueueFull);
        ledger.shed(b, ShedCause::DrainOverrun);
        assert_eq!(ledger.shed_queue_full(), 1);
        assert_eq!(ledger.shed_drain(), 1);
        assert_eq!(ledger.shed_total(), 2);
        assert_eq!(ledger.in_flight(), 0);
        assert!(ledger.conservation_violations().is_empty());
    }

    #[test]
    #[should_panic(expected = "reclaim must match")]
    fn reclaiming_acked_work_is_a_bug() {
        let mut ledger = MarkLedger::new();
        let a = ledger.admit(0, 0);
        assert!(ledger.claim(a, 0, 1));
        assert!(ledger.ack(a, 0, 1));
        ledger.reclaim(a, 0, 1);
    }
}
