//! The assessment scheme (Section III-C) and a grade ledger.

/// One assessed component.
#[derive(Clone, Debug, PartialEq)]
pub struct Component {
    /// Component name.
    pub name: &'static str,
    /// Weight in percent of the final grade.
    pub weight: f64,
    /// Is it assessed per group (vs individually)?
    pub group_work: bool,
}

/// The course's assessment scheme.
#[derive(Clone, Debug)]
pub struct AssessmentScheme {
    components: Vec<Component>,
}

impl AssessmentScheme {
    /// The SoftEng 751 scheme: Test 1 25 %, group seminar 20 %,
    /// Test 2 10 %, project implementation 25 %, report 20 %.
    #[must_use]
    pub fn softeng751() -> Self {
        Self {
            components: vec![
                Component {
                    name: "Test 1 (core concepts, week 6)",
                    weight: 25.0,
                    group_work: false,
                },
                Component {
                    name: "Group seminar (weeks 7-10)",
                    weight: 20.0,
                    group_work: true,
                },
                Component {
                    name: "Test 2 (seminar content, week 11)",
                    weight: 10.0,
                    group_work: false,
                },
                Component {
                    name: "Project implementation",
                    weight: 25.0,
                    group_work: true,
                },
                Component {
                    name: "Project report",
                    weight: 20.0,
                    group_work: true,
                },
            ],
        }
    }

    /// The components.
    #[must_use]
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Sum of weights (must be 100).
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.components.iter().map(|c| c.weight).sum()
    }

    /// Percentage of the grade that is group work — the paper: "a
    /// large component of the SoftEng 751 grade" reflects group work,
    /// with "only 25 % … targeted individual understanding of the
    /// lecture-style material".
    #[must_use]
    pub fn group_weight(&self) -> f64 {
        self.components
            .iter()
            .filter(|c| c.group_work)
            .map(|c| c.weight)
            .sum()
    }

    /// Weighted final mark given per-component marks in `[0, 100]`,
    /// in component order.
    #[must_use]
    pub fn final_mark(&self, marks: &[f64]) -> f64 {
        assert_eq!(marks.len(), self.components.len(), "one mark per component");
        assert!(
            marks.iter().all(|m| (0.0..=100.0).contains(m)),
            "marks must be percentages"
        );
        self.components
            .iter()
            .zip(marks)
            .map(|(c, m)| c.weight / 100.0 * m)
            .sum()
    }
}

/// Per-student marks for a cohort.
#[derive(Clone, Debug, Default)]
pub struct GradeLedger {
    entries: Vec<(String, Vec<f64>)>,
}

impl GradeLedger {
    /// Empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a student's component marks.
    pub fn record(&mut self, student: &str, marks: Vec<f64>) {
        self.entries.push((student.to_string(), marks));
    }

    /// Number of students.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Final marks under a scheme, in recording order.
    #[must_use]
    pub fn final_marks(&self, scheme: &AssessmentScheme) -> Vec<(String, f64)> {
        self.entries
            .iter()
            .map(|(s, marks)| (s.clone(), scheme.final_mark(marks)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_100() {
        let s = AssessmentScheme::softeng751();
        assert!((s.total_weight() - 100.0).abs() < 1e-12);
        assert_eq!(s.components().len(), 5);
    }

    #[test]
    fn individual_tests_are_35_percent() {
        // Paper: "only 25% of the grade targeted individual
        // understanding of the lecture-style material" (Test 1);
        // Test 2 adds 10% individual, so group work is 65%.
        let s = AssessmentScheme::softeng751();
        assert!((s.group_weight() - 65.0).abs() < 1e-12);
        let test1 = &s.components()[0];
        assert_eq!(test1.weight, 25.0);
        assert!(!test1.group_work);
    }

    #[test]
    fn final_mark_weighted_correctly() {
        let s = AssessmentScheme::softeng751();
        // All 100s -> 100.
        assert!((s.final_mark(&[100.0; 5]) - 100.0).abs() < 1e-12);
        // Only Test 1 perfect -> 25.
        assert!((s.final_mark(&[100.0, 0.0, 0.0, 0.0, 0.0]) - 25.0).abs() < 1e-12);
        // Mixed.
        let m = s.final_mark(&[80.0, 70.0, 60.0, 90.0, 75.0]);
        assert!((m - (20.0 + 14.0 + 6.0 + 22.5 + 15.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one mark per component")]
    fn wrong_mark_count_rejected() {
        let _ = AssessmentScheme::softeng751().final_mark(&[50.0]);
    }

    #[test]
    #[should_panic(expected = "percentages")]
    fn out_of_range_mark_rejected() {
        let _ = AssessmentScheme::softeng751().final_mark(&[101.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn ledger_computes_cohort() {
        let s = AssessmentScheme::softeng751();
        let mut ledger = GradeLedger::new();
        ledger.record("alice", vec![90.0, 85.0, 80.0, 95.0, 88.0]);
        ledger.record("bob", vec![60.0, 70.0, 65.0, 75.0, 70.0]);
        let finals = ledger.final_marks(&s);
        assert_eq!(finals.len(), 2);
        assert!(finals[0].1 > finals[1].1);
        assert_eq!(finals[0].0, "alice");
        assert!(!ledger.is_empty());
        assert_eq!(ledger.len(), 2);
    }
}
