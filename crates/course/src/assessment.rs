//! The assessment scheme (Section III-C), a grade ledger, and the
//! auto-marking hook that maps `parc-analyze` static diagnostics onto
//! the project-implementation rubric.

use parc_analyze::diag::{Code, Severity};

/// One assessed component.
#[derive(Clone, Debug, PartialEq)]
pub struct Component {
    /// Component name.
    pub name: &'static str,
    /// Weight in percent of the final grade.
    pub weight: f64,
    /// Is it assessed per group (vs individually)?
    pub group_work: bool,
}

/// The course's assessment scheme.
#[derive(Clone, Debug)]
pub struct AssessmentScheme {
    components: Vec<Component>,
}

impl AssessmentScheme {
    /// The SoftEng 751 scheme: Test 1 25 %, group seminar 20 %,
    /// Test 2 10 %, project implementation 25 %, report 20 %.
    #[must_use]
    pub fn softeng751() -> Self {
        Self {
            components: vec![
                Component {
                    name: "Test 1 (core concepts, week 6)",
                    weight: 25.0,
                    group_work: false,
                },
                Component {
                    name: "Group seminar (weeks 7-10)",
                    weight: 20.0,
                    group_work: true,
                },
                Component {
                    name: "Test 2 (seminar content, week 11)",
                    weight: 10.0,
                    group_work: false,
                },
                Component {
                    name: "Project implementation",
                    weight: 25.0,
                    group_work: true,
                },
                Component {
                    name: "Project report",
                    weight: 20.0,
                    group_work: true,
                },
            ],
        }
    }

    /// The components.
    #[must_use]
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Sum of weights (must be 100).
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.components.iter().map(|c| c.weight).sum()
    }

    /// Percentage of the grade that is group work — the paper: "a
    /// large component of the SoftEng 751 grade" reflects group work,
    /// with "only 25 % … targeted individual understanding of the
    /// lecture-style material".
    #[must_use]
    pub fn group_weight(&self) -> f64 {
        self.components
            .iter()
            .filter(|c| c.group_work)
            .map(|c| c.weight)
            .sum()
    }

    /// Weighted final mark given per-component marks in `[0, 100]`,
    /// in component order.
    #[must_use]
    pub fn final_mark(&self, marks: &[f64]) -> f64 {
        assert_eq!(marks.len(), self.components.len(), "one mark per component");
        assert!(
            marks.iter().all(|m| (0.0..=100.0).contains(m)),
            "marks must be percentages"
        );
        self.components
            .iter()
            .zip(marks)
            .map(|(c, m)| c.weight / 100.0 * m)
            .sum()
    }
}

/// Per-student marks for a cohort.
#[derive(Clone, Debug, Default)]
pub struct GradeLedger {
    entries: Vec<(String, Vec<f64>)>,
}

impl GradeLedger {
    /// Empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a student's component marks.
    pub fn record(&mut self, student: &str, marks: Vec<f64>) {
        self.entries.push((student.to_string(), marks));
    }

    /// Number of students.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Final marks under a scheme, in recording order.
    #[must_use]
    pub fn final_marks(&self, scheme: &AssessmentScheme) -> Vec<(String, f64)> {
        self.entries
            .iter()
            .map(|(s, marks)| (s.clone(), scheme.final_mark(marks)))
            .collect()
    }
}

/// How static diagnostics translate into marks for a directive-program
/// submission (the "marker's eye" of the project-implementation
/// component): every `E`-class diagnostic is a correctness defect and
/// deducts heavily, every `W`-class one is a style/hazard note with a
/// smaller deduction, and a submission that does not even parse is
/// capped outright.
#[derive(Clone, Debug)]
pub struct AutoMarkRubric {
    /// Mark for a clean submission.
    pub full_marks: f64,
    /// Deduction per `E`-class (correctness) diagnostic.
    pub error_deduction: f64,
    /// Deduction per `W`-class (style/hazard) diagnostic.
    pub warning_deduction: f64,
    /// Deduction per `E006` phase-ordering deadlock. A proved
    /// deterministic deadlock is as severe as any correctness defect,
    /// so it defaults to the error weight.
    pub e006_deduction: f64,
    /// Deduction per `W104` redundant critical. A lock that protects
    /// nothing is an efficiency nit, not a hazard, so it costs less
    /// than the other warnings.
    pub w104_deduction: f64,
    /// Upper bound on the mark when the submission fails to parse.
    pub parse_failure_cap: f64,
}

impl AutoMarkRubric {
    /// The marks removed for one diagnostic of the given code.
    #[must_use]
    pub fn deduction_for(&self, code: Code) -> f64 {
        match code {
            Code::E006 => self.e006_deduction,
            Code::W104 => self.w104_deduction,
            c if c.severity() == Severity::Error => self.error_deduction,
            _ => self.warning_deduction,
        }
    }
}

impl Default for AutoMarkRubric {
    /// The defaults used for the SoftEng 751-style implementation
    /// component: out of 100, −15 per error, −5 per warning, parse
    /// failures capped at 40.
    fn default() -> Self {
        Self {
            full_marks: 100.0,
            error_deduction: 15.0,
            warning_deduction: 5.0,
            e006_deduction: 15.0,
            w104_deduction: 2.0,
            parse_failure_cap: 40.0,
        }
    }
}

/// What [`auto_mark`] concluded about one submission.
#[derive(Clone, Debug)]
pub struct AutoMarkOutcome {
    /// The awarded mark, always in `[0, min(full_marks, 100)]` so it
    /// satisfies [`AssessmentScheme::final_mark`]'s percentage
    /// contract whatever the rubric says.
    pub mark: f64,
    /// Did the submission parse at all?
    pub parsed: bool,
    /// Number of `E`-class diagnostics (correctness deductions).
    pub errors: usize,
    /// Number of `W`-class diagnostics (style notes).
    pub warnings: usize,
    /// One human-readable note per diagnostic, in report order.
    pub notes: Vec<String>,
}

/// The allocation-free core of [`auto_mark`]: just the awarded mark
/// and the diagnostic tallies, no notes. This is what the marking
/// pipeline calls per submission (millions of times per run) on an
/// analysis it already has in hand for the lint stage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MarkScore {
    /// The awarded mark, in `[0, min(full_marks, 100)]`.
    pub mark: f64,
    /// Did the submission parse at all?
    pub parsed: bool,
    /// Number of `E`-class diagnostics.
    pub errors: u32,
    /// Number of `W`-class diagnostics.
    pub warnings: u32,
}

/// Score an already-run analysis through the rubric without
/// allocating notes. [`auto_mark`] delegates here, so the two can
/// never disagree on arithmetic.
///
/// The awarded mark is clamped into `[0, min(full_marks, 100)]`: a
/// pile of deductions cannot push it below zero, and a rubric marked
/// out of more than 100 cannot leak a value that
/// [`AssessmentScheme::final_mark`] would reject as a percentage. The
/// clamp is a max/min chain (never `f64::clamp`) so a pathological
/// rubric with negative `full_marks` degrades to 0 instead of
/// panicking.
#[must_use]
pub fn score_analysis(analysis: &parc_analyze::Analysis, rubric: &AutoMarkRubric) -> MarkScore {
    let parsed = analysis.program.is_some();
    let mut errors = 0u32;
    let mut warnings = 0u32;
    let mut deducted = 0.0;
    for d in &analysis.diagnostics {
        match d.code.severity() {
            Severity::Error => errors += 1,
            Severity::Warning => warnings += 1,
        }
        deducted += rubric.deduction_for(d.code);
    }
    let mut mark = rubric.full_marks - deducted;
    if !parsed {
        mark = mark.min(rubric.parse_failure_cap);
    }
    let ceiling = rubric.full_marks.min(100.0);
    MarkScore { mark: mark.min(ceiling).max(0.0), parsed, errors, warnings }
}

/// Auto-mark a directive-program submission: run the static analyser
/// and fold its diagnostics through the rubric. The notes carry the
/// code, line and title, prefixed by how the rubric treated them.
#[must_use]
pub fn auto_mark(source: &str, rubric: &AutoMarkRubric) -> AutoMarkOutcome {
    let analysis = parc_analyze::analyze(source);
    let score = score_analysis(&analysis, rubric);
    let mut notes = Vec::with_capacity(analysis.diagnostics.len());
    for d in &analysis.diagnostics {
        let treatment = match d.code.severity() {
            Severity::Error => "correctness",
            Severity::Warning => "style",
        };
        notes.push(format!(
            "{treatment}: {} (line {}) — {}",
            d.code.as_str(),
            d.span.line,
            d.code.title()
        ));
    }
    if !score.parsed {
        notes.push("submission did not parse; mark capped".to_string());
    }
    AutoMarkOutcome {
        mark: score.mark,
        parsed: score.parsed,
        errors: score.errors as usize,
        warnings: score.warnings as usize,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_100() {
        let s = AssessmentScheme::softeng751();
        assert!((s.total_weight() - 100.0).abs() < 1e-12);
        assert_eq!(s.components().len(), 5);
    }

    #[test]
    fn individual_tests_are_35_percent() {
        // Paper: "only 25% of the grade targeted individual
        // understanding of the lecture-style material" (Test 1);
        // Test 2 adds 10% individual, so group work is 65%.
        let s = AssessmentScheme::softeng751();
        assert!((s.group_weight() - 65.0).abs() < 1e-12);
        let test1 = &s.components()[0];
        assert_eq!(test1.weight, 25.0);
        assert!(!test1.group_work);
    }

    #[test]
    fn final_mark_weighted_correctly() {
        let s = AssessmentScheme::softeng751();
        // All 100s -> 100.
        assert!((s.final_mark(&[100.0; 5]) - 100.0).abs() < 1e-12);
        // Only Test 1 perfect -> 25.
        assert!((s.final_mark(&[100.0, 0.0, 0.0, 0.0, 0.0]) - 25.0).abs() < 1e-12);
        // Mixed.
        let m = s.final_mark(&[80.0, 70.0, 60.0, 90.0, 75.0]);
        assert!((m - (20.0 + 14.0 + 6.0 + 22.5 + 15.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one mark per component")]
    fn wrong_mark_count_rejected() {
        let _ = AssessmentScheme::softeng751().final_mark(&[50.0]);
    }

    #[test]
    #[should_panic(expected = "percentages")]
    fn out_of_range_mark_rejected() {
        let _ = AssessmentScheme::softeng751().final_mark(&[101.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn auto_mark_ranks_fixture_submissions() {
        // Two "student submissions" from the shared fixture corpus:
        // the racy unprotected counter vs the critical-section fix.
        let rubric = AutoMarkRubric::default();
        let racy = auto_mark(
            parc_analyze::fixtures::by_name("counter/racy").unwrap().source,
            &rubric,
        );
        let clean = auto_mark(
            parc_analyze::fixtures::by_name("counter/critical").unwrap().source,
            &rubric,
        );
        assert!(clean.parsed && racy.parsed);
        assert_eq!(clean.mark, rubric.full_marks);
        assert!(clean.notes.is_empty());
        assert!(racy.mark < clean.mark, "hazardous submission must mark lower");
        assert_eq!(racy.warnings, 1);
        assert_eq!(racy.errors, 0);
        assert!(racy.notes[0].starts_with("style: W101"));
    }

    #[test]
    fn auto_mark_caps_unparseable_submissions() {
        let rubric = AutoMarkRubric::default();
        let broken = auto_mark("//#omp parallel\n{\nx = 1;\n", &rubric);
        assert!(!broken.parsed);
        assert!(broken.mark <= rubric.parse_failure_cap);
        assert!(broken.errors >= 1, "E005 expected");
    }

    #[test]
    fn auto_mark_never_goes_negative() {
        // Stack enough defects that raw deductions exceed 100.
        let rubric =
            AutoMarkRubric { error_deduction: 200.0, ..AutoMarkRubric::default() };
        let racy = auto_mark(
            parc_analyze::fixtures::by_name("lock-order/cycle").unwrap().source,
            &rubric,
        );
        assert_eq!(racy.mark, 0.0);
    }

    #[test]
    fn auto_mark_never_exceeds_100_even_on_generous_rubrics() {
        // Regression: a rubric marked out of 120 used to award 120 to
        // a clean submission, which `AssessmentScheme::final_mark`
        // then rejected as "marks must be percentages".
        let generous = AutoMarkRubric { full_marks: 120.0, ..AutoMarkRubric::default() };
        let clean = auto_mark(
            parc_analyze::fixtures::by_name("counter/critical").unwrap().source,
            &generous,
        );
        assert_eq!(clean.mark, 100.0, "marks are percentages, whatever the rubric says");
        let scheme = AssessmentScheme::softeng751();
        // Must be accepted by the percentage contract, not panic.
        let _ = scheme.final_mark(&[clean.mark; 5]);

        // A pathological negative-full-marks rubric degrades to 0
        // instead of panicking in `f64::clamp`.
        let broken = AutoMarkRubric { full_marks: -10.0, ..AutoMarkRubric::default() };
        let out = auto_mark("x = 1;\n", &broken);
        assert_eq!(out.mark, 0.0);
    }

    #[test]
    fn score_analysis_agrees_with_auto_mark() {
        let rubric = AutoMarkRubric::default();
        for name in ["counter/racy", "counter/critical", "lock-order/cycle", "barrier/in-gui"] {
            let src = parc_analyze::fixtures::by_name(name).unwrap().source;
            let full = auto_mark(src, &rubric);
            let light = score_analysis(&parc_analyze::analyze(src), &rubric);
            assert_eq!(full.mark, light.mark, "{name}");
            assert_eq!(full.errors, light.errors as usize, "{name}");
            assert_eq!(full.warnings, light.warnings as usize, "{name}");
            assert_eq!(full.parsed, light.parsed, "{name}");
        }
    }

    #[test]
    fn e006_deducts_at_error_weight() {
        let rubric = AutoMarkRubric::default();
        assert_eq!(rubric.deduction_for(Code::E006), rubric.error_deduction);
        let gui = auto_mark(
            parc_analyze::fixtures::by_name("barrier/in-gui").unwrap().source,
            &rubric,
        );
        assert_eq!(gui.errors, 1, "E006 counts as a correctness defect");
        assert_eq!(gui.mark, rubric.full_marks - rubric.e006_deduction);
        assert!(gui.notes[0].starts_with("correctness: E006"));
    }

    #[test]
    fn w104_deducts_at_the_nit_weight() {
        let rubric = AutoMarkRubric::default();
        assert!(rubric.deduction_for(Code::W104) < rubric.warning_deduction);
        let redundant = auto_mark(
            parc_analyze::fixtures::by_name("critical/redundant").unwrap().source,
            &rubric,
        );
        assert_eq!(redundant.warnings, 1);
        assert_eq!(redundant.mark, rubric.full_marks - rubric.w104_deduction);
        assert!(redundant.notes[0].starts_with("style: W104"));
    }

    #[test]
    fn ledger_computes_cohort() {
        let s = AssessmentScheme::softeng751();
        let mut ledger = GradeLedger::new();
        ledger.record("alice", vec![90.0, 85.0, 80.0, 95.0, 88.0]);
        ledger.record("bob", vec![60.0, 70.0, 65.0, 75.0, 70.0]);
        let finals = ledger.final_marks(&s);
        assert_eq!(finals.len(), 2);
        assert!(finals[0].1 > finals[1].1);
        assert_eq!(finals[0].0, "alice");
        assert!(!ledger.is_empty());
        assert_eq!(ledger.len(), 2);
    }
}
