//! The first-in-first-served doodle-poll topic allocation
//! (Section III-D).
//!
//! "A doodle poll was released for groups to select which of the 10
//! topics they wanted. The doodle poll was set up to allow only two
//! groups per topic, and each group could only make one selection."
//! Groups arrive in some order (network race) holding a preference
//! list; each takes its most-preferred topic with remaining capacity.
//! The simulation measures how fair FIFS turns out across arrival
//! orders — the property the instructors valued ("worked extremely
//! well … the fair first-in first-served nature of the process was
//! appreciated by students").

use parc_util::rng::Xoshiro256;

/// Poll parameters.
#[derive(Clone, Debug)]
pub struct AllocationConfig {
    /// Number of groups (paper: ~60 students / 3 = 20).
    pub groups: usize,
    /// Number of topics (paper: 10).
    pub topics: usize,
    /// Groups allowed per topic (paper: 2).
    pub capacity_per_topic: usize,
    /// Concentration of preferences: 0 = uniform random preference
    /// lists; larger values make every group prefer the same "hot"
    /// topics (the realistic case the FIFS poll resolves).
    pub popularity_skew: f64,
    /// Seed controlling preferences and arrival order.
    pub seed: u64,
}

impl Default for AllocationConfig {
    fn default() -> Self {
        Self {
            groups: 20,
            topics: 10,
            capacity_per_topic: 2,
            popularity_skew: 1.5,
            seed: 0x751,
        }
    }
}

/// Result of one poll run.
#[derive(Clone, Debug)]
pub struct AllocationOutcome {
    /// `assignment[g]` = topic taken by group `g`.
    pub assignment: Vec<usize>,
    /// `choice_rank[g]` = 0-based rank of the taken topic in group
    /// `g`'s preference list.
    pub choice_rank: Vec<usize>,
    /// Remaining capacity per topic after the poll.
    pub leftover_capacity: Vec<usize>,
}

impl AllocationOutcome {
    /// Fraction of groups that got their first choice.
    #[must_use]
    pub fn first_choice_rate(&self) -> f64 {
        let hits = self.choice_rank.iter().filter(|&&r| r == 0).count();
        hits as f64 / self.choice_rank.len().max(1) as f64
    }

    /// Fraction of groups that got a top-`k` choice.
    #[must_use]
    pub fn top_k_rate(&self, k: usize) -> f64 {
        let hits = self.choice_rank.iter().filter(|&&r| r < k).count();
        hits as f64 / self.choice_rank.len().max(1) as f64
    }

    /// Mean rank of the received choice (0 = everyone got their
    /// favourite).
    #[must_use]
    pub fn mean_rank(&self) -> f64 {
        self.choice_rank.iter().sum::<usize>() as f64 / self.choice_rank.len().max(1) as f64
    }
}

/// Generate each group's preference list. With skew, topic `t` gets
/// base weight `(topics - t)^skew`, so low-numbered topics are hot.
fn preferences(cfg: &AllocationConfig, rng: &mut Xoshiro256) -> Vec<Vec<usize>> {
    (0..cfg.groups)
        .map(|_| {
            let mut remaining: Vec<usize> = (0..cfg.topics).collect();
            let mut prefs = Vec::with_capacity(cfg.topics);
            while !remaining.is_empty() {
                let weights: Vec<f64> = remaining
                    .iter()
                    .map(|&t| ((cfg.topics - t) as f64).powf(cfg.popularity_skew))
                    .collect();
                let pick = rng.choose_weighted(&weights);
                prefs.push(remaining.remove(pick));
            }
            prefs
        })
        .collect()
}

/// Run the poll: groups arrive in a seeded random order; each takes
/// its most-preferred topic with capacity left.
///
/// Panics if total capacity is below the number of groups (the
/// instructors sized the poll so everyone fits: 10 × 2 = 20).
#[must_use]
pub fn run_poll(cfg: &AllocationConfig) -> AllocationOutcome {
    assert!(
        cfg.topics * cfg.capacity_per_topic >= cfg.groups,
        "poll must have capacity for every group"
    );
    let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
    let prefs = preferences(cfg, &mut rng);
    let mut arrival: Vec<usize> = (0..cfg.groups).collect();
    rng.shuffle(&mut arrival);
    let mut capacity = vec![cfg.capacity_per_topic; cfg.topics];
    let mut assignment = vec![usize::MAX; cfg.groups];
    let mut choice_rank = vec![usize::MAX; cfg.groups];
    for &g in &arrival {
        for (rank, &topic) in prefs[g].iter().enumerate() {
            if capacity[topic] > 0 {
                capacity[topic] -= 1;
                assignment[g] = topic;
                choice_rank[g] = rank;
                break;
            }
        }
        assert_ne!(assignment[g], usize::MAX, "capacity proof above");
    }
    AllocationOutcome {
        assignment,
        choice_rank,
        leftover_capacity: capacity,
    }
}

/// Run the poll across `trials` arrival orders and return the mean
/// first-choice rate, mean top-3 rate and mean rank — the fairness
/// summary for the E-ALLOC report.
#[must_use]
pub fn fairness_summary(cfg: &AllocationConfig, trials: usize) -> (f64, f64, f64) {
    assert!(trials > 0);
    let mut first = 0.0;
    let mut top3 = 0.0;
    let mut rank = 0.0;
    for t in 0..trials {
        let outcome = run_poll(&AllocationConfig {
            seed: cfg.seed.wrapping_add(t as u64),
            ..cfg.clone()
        });
        first += outcome.first_choice_rate();
        top3 += outcome.top_k_rate(3);
        rank += outcome.mean_rank();
    }
    (
        first / trials as f64,
        top3 / trials as f64,
        rank / trials as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_group_assigned_within_capacity() {
        let outcome = run_poll(&AllocationConfig::default());
        assert_eq!(outcome.assignment.len(), 20);
        let mut per_topic = [0usize; 10];
        for &t in &outcome.assignment {
            per_topic[t] += 1;
        }
        assert!(per_topic.iter().all(|&c| c <= 2), "capacity respected");
        // 20 groups into 10 topics x 2: every slot used.
        assert!(per_topic.iter().all(|&c| c == 2));
        assert!(outcome.leftover_capacity.iter().all(|&c| c == 0));
    }

    #[test]
    fn uniform_preferences_mostly_first_choice() {
        let cfg = AllocationConfig {
            popularity_skew: 0.0,
            ..AllocationConfig::default()
        };
        let (first, top3, _) = fairness_summary(&cfg, 50);
        assert!(first > 0.55, "uniform demand: most get first choice ({first})");
        assert!(top3 > 0.75, "top-3 rate {top3} too low for uniform demand");
    }

    #[test]
    fn skewed_preferences_reduce_first_choice_rate() {
        let uniform = fairness_summary(
            &AllocationConfig {
                popularity_skew: 0.0,
                ..AllocationConfig::default()
            },
            50,
        );
        let skewed = fairness_summary(
            &AllocationConfig {
                popularity_skew: 3.0,
                ..AllocationConfig::default()
            },
            50,
        );
        assert!(
            skewed.0 < uniform.0,
            "contention for hot topics must cost first choices ({} vs {})",
            skewed.0,
            uniform.0
        );
        assert!(skewed.2 > uniform.2, "mean rank degrades under skew");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = AllocationConfig::default();
        let a = run_poll(&cfg);
        let b = run_poll(&cfg);
        assert_eq!(a.assignment, b.assignment);
        let c = run_poll(&AllocationConfig {
            seed: 999,
            ..cfg
        });
        assert_ne!(a.assignment, c.assignment, "different order, different result");
    }

    #[test]
    #[should_panic(expected = "capacity for every group")]
    fn undersized_poll_rejected() {
        let _ = run_poll(&AllocationConfig {
            groups: 21,
            ..AllocationConfig::default()
        });
    }

    #[test]
    fn spare_capacity_leaves_leftovers() {
        let outcome = run_poll(&AllocationConfig {
            groups: 15,
            ..AllocationConfig::default()
        });
        let leftover: usize = outcome.leftover_capacity.iter().sum();
        assert_eq!(leftover, 5);
    }
}
