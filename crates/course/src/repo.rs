//! Version-control contribution assessment (Sections III-C and IV-A).
//!
//! The paper: "subversion logs were assessed to gauge individual
//! member contributions. Students were also required to submit peer
//! evaluations discussing the contributions made by each member; in
//! most cases, students within a team were awarded equal marks."
//!
//! This module models a group's commit log, computes per-member
//! contribution shares and an imbalance measure (Gini coefficient),
//! aggregates the peer-evaluation matrix, and combines both into the
//! equal-or-adjusted marking decision the instructors describe.

use std::collections::HashMap;

use parc_util::rng::Xoshiro256;

/// One commit in a group's repository.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Commit {
    /// Committing member (index into the group).
    pub author: usize,
    /// Teaching week of the commit (1-based).
    pub week: usize,
    /// Lines added.
    pub added: usize,
    /// Lines removed.
    pub removed: usize,
}

impl Commit {
    /// The size credited to a commit: added + removed/2 (removals
    /// count, but less — refactoring credit without gaming).
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.added as f64 + self.removed as f64 / 2.0
    }
}

/// A group's commit history.
#[derive(Clone, Debug, Default)]
pub struct CommitLog {
    members: usize,
    commits: Vec<Commit>,
}

impl CommitLog {
    /// Empty log for a group of `members`.
    #[must_use]
    pub fn new(members: usize) -> Self {
        assert!(members > 0, "a group needs members");
        Self {
            members,
            commits: Vec::new(),
        }
    }

    /// Record a commit. Panics on an unknown author.
    pub fn commit(&mut self, c: Commit) {
        assert!(c.author < self.members, "unknown author");
        self.commits.push(c);
    }

    /// Number of members.
    #[must_use]
    pub fn members(&self) -> usize {
        self.members
    }

    /// Number of commits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.commits.len()
    }

    /// True when no commits exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.commits.is_empty()
    }

    /// Per-member contribution share (weights normalised to sum 1).
    /// An empty log yields equal shares — no evidence either way.
    #[must_use]
    pub fn shares(&self) -> Vec<f64> {
        let mut weights = vec![0.0f64; self.members];
        for c in &self.commits {
            weights[c.author] += c.weight();
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return vec![1.0 / self.members as f64; self.members];
        }
        weights.iter().map(|w| w / total).collect()
    }

    /// Gini coefficient of the contribution shares: 0 = perfectly
    /// equal, →1 = one member did everything.
    #[must_use]
    pub fn gini(&self) -> f64 {
        let mut shares = self.shares();
        shares.sort_by(f64::total_cmp);
        let n = shares.len() as f64;
        let mean = shares.iter().sum::<f64>() / n;
        if mean <= 0.0 {
            return 0.0;
        }
        let mut abs_diff_sum = 0.0;
        for &a in &shares {
            for &b in &shares {
                abs_diff_sum += (a - b).abs();
            }
        }
        abs_diff_sum / (2.0 * n * n * mean)
    }

    /// Commits per teaching week — the "project history" view the
    /// instructors used to administer progress.
    #[must_use]
    pub fn weekly_activity(&self) -> HashMap<usize, usize> {
        let mut weeks = HashMap::new();
        for c in &self.commits {
            *weeks.entry(c.week).or_insert(0) += 1;
        }
        weeks
    }
}

/// Peer-evaluation matrix: `ratings[rater][ratee]` in 1..=5, raters
/// do not rate themselves (diagonal ignored).
#[derive(Clone, Debug)]
pub struct PeerEvaluation {
    ratings: Vec<Vec<u8>>,
}

impl PeerEvaluation {
    /// Build from a square matrix. Panics when not square or when an
    /// off-diagonal rating is outside 1..=5.
    #[must_use]
    pub fn new(ratings: Vec<Vec<u8>>) -> Self {
        let n = ratings.len();
        for (i, row) in ratings.iter().enumerate() {
            assert_eq!(row.len(), n, "matrix must be square");
            for (j, &r) in row.iter().enumerate() {
                if i != j {
                    assert!((1..=5).contains(&r), "rating {r} out of 1..=5");
                }
            }
        }
        Self { ratings }
    }

    /// Mean rating received by each member (diagonal excluded).
    #[must_use]
    pub fn received_means(&self) -> Vec<f64> {
        let n = self.ratings.len();
        (0..n)
            .map(|ratee| {
                let (sum, cnt) = (0..n)
                    .filter(|&rater| rater != ratee)
                    .fold((0.0, 0usize), |(s, c), rater| {
                        (s + f64::from(self.ratings[rater][ratee]), c + 1)
                    });
                if cnt == 0 {
                    5.0
                } else {
                    sum / cnt as f64
                }
            })
            .collect()
    }
}

/// The instructors' marking decision for one group.
#[derive(Clone, Debug, PartialEq)]
pub enum MarkDecision {
    /// Contributions balanced: everyone gets the group mark
    /// ("in most cases, students within a team were awarded equal
    /// marks").
    Equal,
    /// Evidence of imbalance: per-member multipliers on the group
    /// mark (ordered by member index, each in `[0.5, 1.0]`).
    Adjusted(Vec<f64>),
}

/// Combine commit evidence and peer evaluations into a decision.
/// Adjustment triggers only when *both* signals agree that someone
/// under-contributed: commit Gini above `gini_threshold` **and** at
/// least one member's peer mean below `peer_threshold`.
#[must_use]
pub fn decide_marks(
    log: &CommitLog,
    peers: &PeerEvaluation,
    gini_threshold: f64,
    peer_threshold: f64,
) -> MarkDecision {
    let gini = log.gini();
    let peer_means = peers.received_means();
    let weakest = peer_means.iter().copied().fold(f64::INFINITY, f64::min);
    if gini <= gini_threshold || weakest >= peer_threshold {
        return MarkDecision::Equal;
    }
    let shares = log.shares();
    let fair = 1.0 / log.members() as f64;
    let multipliers = shares
        .iter()
        .zip(&peer_means)
        .map(|(&share, &peer)| {
            if share >= fair * 0.5 || peer >= peer_threshold {
                1.0
            } else {
                // Under-contributor on both signals: scale by how far
                // below the fair share they fell, floored at 0.5.
                (0.5 + share / fair).clamp(0.5, 1.0)
            }
        })
        .collect();
    MarkDecision::Adjusted(multipliers)
}

/// Synthesize a group's commit log: `balanced` groups commit evenly;
/// unbalanced ones concentrate work on member 0. Deterministic per
/// seed.
#[must_use]
pub fn synth_log(members: usize, commits: usize, balanced: bool, seed: u64) -> CommitLog {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut log = CommitLog::new(members);
    for _ in 0..commits {
        let author = if balanced {
            rng.gen_range_usize(0..members)
        } else {
            // 80 % of commits from member 0.
            if rng.gen_bool(0.8) {
                0
            } else {
                rng.gen_range_usize(0..members)
            }
        };
        log.commit(Commit {
            author,
            week: rng.gen_range_usize(7..15),
            added: rng.gen_range_usize(5..200),
            removed: rng.gen_range_usize(0..80),
        });
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let log = synth_log(3, 60, true, 1);
        let shares = log.shares();
        assert_eq!(shares.len(), 3);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_log_gives_equal_shares() {
        let log = CommitLog::new(4);
        assert!(log.is_empty());
        assert_eq!(log.shares(), vec![0.25; 4]);
        assert!(log.gini() < 1e-12);
    }

    #[test]
    fn balanced_gini_low_unbalanced_high() {
        let balanced = synth_log(3, 120, true, 2);
        let skewed = synth_log(3, 120, false, 2);
        assert!(
            balanced.gini() < 0.25,
            "balanced gini {} too high",
            balanced.gini()
        );
        assert!(
            skewed.gini() > balanced.gini() + 0.15,
            "skewed {} vs balanced {}",
            skewed.gini(),
            balanced.gini()
        );
    }

    #[test]
    fn commit_weight_discounts_removals() {
        let c = Commit {
            author: 0,
            week: 9,
            added: 100,
            removed: 50,
        };
        assert!((c.weight() - 125.0).abs() < 1e-12);
    }

    #[test]
    fn weekly_activity_counts() {
        let mut log = CommitLog::new(2);
        for week in [9, 9, 10, 12] {
            log.commit(Commit {
                author: 0,
                week,
                added: 10,
                removed: 0,
            });
        }
        let weeks = log.weekly_activity();
        assert_eq!(weeks[&9], 2);
        assert_eq!(weeks[&10], 1);
        assert_eq!(weeks[&12], 1);
        assert_eq!(log.len(), 4);
    }

    #[test]
    #[should_panic(expected = "unknown author")]
    fn unknown_author_rejected() {
        let mut log = CommitLog::new(2);
        log.commit(Commit {
            author: 5,
            week: 9,
            added: 1,
            removed: 0,
        });
    }

    #[test]
    fn peer_means_exclude_self() {
        // Member 1 rates others 5 but receives 2s.
        let peers = PeerEvaluation::new(vec![
            vec![0, 2, 4], // rater 0
            vec![5, 0, 5], // rater 1
            vec![5, 2, 0], // rater 2
        ]);
        let means = peers.received_means();
        assert!((means[0] - 5.0).abs() < 1e-12);
        assert!((means[1] - 2.0).abs() < 1e-12);
        assert!((means[2] - 4.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of 1..=5")]
    fn bad_rating_rejected() {
        let _ = PeerEvaluation::new(vec![vec![0, 9], vec![3, 0]]);
    }

    #[test]
    fn balanced_groups_get_equal_marks() {
        let log = synth_log(3, 100, true, 3);
        let peers = PeerEvaluation::new(vec![
            vec![0, 4, 5],
            vec![5, 0, 4],
            vec![4, 5, 0],
        ]);
        assert_eq!(decide_marks(&log, &peers, 0.3, 3.0), MarkDecision::Equal);
    }

    #[test]
    fn double_evidence_triggers_adjustment() {
        // Member 2 commits almost nothing and gets poor peer ratings.
        let mut log = CommitLog::new(3);
        for i in 0..40 {
            log.commit(Commit {
                author: i % 2, // members 0 and 1 only
                week: 9 + i % 5,
                added: 100,
                removed: 10,
            });
        }
        log.commit(Commit {
            author: 2,
            week: 13,
            added: 3,
            removed: 0,
        });
        let peers = PeerEvaluation::new(vec![
            vec![0, 5, 2],
            vec![5, 0, 1],
            vec![4, 4, 0],
        ]);
        match decide_marks(&log, &peers, 0.3, 3.0) {
            MarkDecision::Adjusted(mult) => {
                assert!((mult[0] - 1.0).abs() < 1e-12);
                assert!((mult[1] - 1.0).abs() < 1e-12);
                assert!(mult[2] < 1.0 && mult[2] >= 0.5, "got {}", mult[2]);
            }
            other => panic!("expected adjustment, got {other:?}"),
        }
    }

    #[test]
    fn peer_praise_overrides_low_commits() {
        // Low committer but peers vouch (e.g. did the report):
        // no adjustment.
        let mut log = CommitLog::new(2);
        for _ in 0..30 {
            log.commit(Commit {
                author: 0,
                week: 10,
                added: 100,
                removed: 0,
            });
        }
        let peers = PeerEvaluation::new(vec![vec![0, 5], vec![5, 0]]);
        assert_eq!(decide_marks(&log, &peers, 0.3, 3.0), MarkDecision::Equal);
    }
}
