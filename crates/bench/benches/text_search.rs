//! E4 — Project 4: folder text search, literal vs regex, worker sweep.

use criterion::{BenchmarkId, Criterion};
use docsearch::corpus::{generate_tree, CorpusConfig};
use docsearch::{search_folder, Query, Regex};
use partask::TaskRuntime;

fn bench(c: &mut Criterion) {
    let cfg = CorpusConfig {
        files_per_dir: 8,
        dirs_per_level: 3,
        depth: 2,
        lines_per_file: 40,
        needle_rate: 0.02,
        ..CorpusConfig::default()
    };
    let (tree, _) = generate_tree(&cfg);

    {
        let rt = TaskRuntime::builder().workers(4).build();
        let mut group = c.benchmark_group("E4/query-kind");
        let literal = Query::literal(&cfg.needle);
        group.bench_function("literal", |b| {
            b.iter(|| search_folder(&rt, &tree, &literal, None, None));
        });
        let ci = Query::literal_ci(&cfg.needle);
        group.bench_function("literal-ci", |b| {
            b.iter(|| search_folder(&rt, &tree, &ci, None, None));
        });
        let regex = Query::regex(Regex::new("concurrency (bug|task)").unwrap());
        group.bench_function("regex-alt", |b| {
            b.iter(|| search_folder(&rt, &tree, &regex, None, None));
        });
        let regex_class = Query::regex(Regex::new(r"\w+ncy b\w+").unwrap());
        group.bench_function("regex-class", |b| {
            b.iter(|| search_folder(&rt, &tree, &regex_class, None, None));
        });
        group.finish();
        rt.shutdown();
    }

    {
        let mut group = c.benchmark_group("E4/workers");
        let query = Query::literal(&cfg.needle);
        for &workers in &[1usize, 2, 4] {
            let rt = TaskRuntime::builder().workers(workers).build();
            group.bench_with_input(BenchmarkId::from_parameter(workers), &rt, |b, rt| {
                b.iter(|| search_folder(rt, &tree, &query, None, None));
            });
            rt.shutdown();
        }
        group.finish();
    }
}

fn main() {
    let mut c = parc_bench::criterion();
    bench(&mut c);
    c.final_summary();
}
