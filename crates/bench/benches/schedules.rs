//! A2 — ablation: pyjama loop schedules on uniform and skewed loops.
//!
//! Static wins on uniform work (no coordination); dynamic/guided win
//! on skewed work (balance) at the price of a shared counter. SpMV
//! over a skewed matrix is the canonical carrier.

use criterion::{BenchmarkId, Criterion};
use kernels::sparse::{spmv_par, spmv_seq, CsrMatrix};
use pyjama::{Schedule, Team};

fn schedules() -> Vec<(&'static str, Schedule)> {
    vec![
        ("static", Schedule::Static),
        ("static-16", Schedule::StaticChunk(16)),
        ("dynamic-16", Schedule::Dynamic(16)),
        ("guided-4", Schedule::Guided(4)),
    ]
}

fn bench(c: &mut Criterion) {
    let team = Team::new(4);

    {
        // Uniform loop: same cost per iteration.
        let mut group = c.benchmark_group("A2/uniform-loop");
        let data: Vec<f64> = (0..100_000).map(|i| f64::from(i as u32)).collect();
        for (label, schedule) in schedules() {
            group.bench_function(label, |b| {
                b.iter(|| {
                    team.par_reduce(0..data.len(), schedule, &pyjama::SumRed, |i| {
                        data[i].sqrt()
                    })
                });
            });
        }
        group.finish();
    }

    {
        // Skewed loop: cost grows with the index (triangular work).
        let mut group = c.benchmark_group("A2/skewed-loop");
        for (label, schedule) in schedules() {
            group.bench_function(label, |b| {
                b.iter(|| {
                    team.par_reduce(0..1_200usize, schedule, &pyjama::SumRed, |i| {
                        let mut acc = 0u64;
                        for k in 0..i {
                            acc = acc.wrapping_add(k as u64);
                        }
                        acc
                    })
                });
            });
        }
        group.finish();
    }

    {
        // SpMV over a skewed CSR matrix, plus the sequential baseline.
        let a = CsrMatrix::random_skewed(2_000, 1_000, 6, 6.0, 0xA2);
        let x: Vec<f64> = (0..1_000).map(|i| (f64::from(i as u32) * 0.01).sin()).collect();
        let mut group = c.benchmark_group("A2/spmv-skewed");
        group.bench_function("sequential", |b| {
            b.iter(|| spmv_seq(&a, &x));
        });
        for (label, schedule) in schedules() {
            group.bench_with_input(BenchmarkId::from_parameter(label), &schedule, |b, &s| {
                b.iter(|| spmv_par(&team, &a, &x, s));
            });
        }
        group.finish();
    }
}

fn main() {
    let mut c = parc_bench::criterion();
    bench(&mut c);
    c.final_summary();
}
