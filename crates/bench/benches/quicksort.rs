//! E2 — Project 2: parallel quicksort.
//!
//! Paper row: "three versions using object-oriented language support
//! (using Parallel Task, Pyjama and standard Java threads)". Series:
//! variant × array size, plus std sort as the library baseline.

use criterion::{BenchmarkId, Criterion};
use parsort::{data, quicksort_partask, quicksort_pyjama, quicksort_seq, quicksort_threads};
use partask::TaskRuntime;
use pyjama::Team;

fn bench(c: &mut Criterion) {
    let rt = TaskRuntime::builder().workers(4).build();
    let team = Team::new(4);
    let mut group = c.benchmark_group("E2/quicksort");
    for &n in &[1_000usize, 10_000, 50_000] {
        let input = data::random(n, 0x5EED ^ n as u64);
        group.bench_with_input(BenchmarkId::new("sequential", n), &input, |b, input| {
            b.iter(|| {
                let mut v = input.clone();
                quicksort_seq(&mut v);
                v
            });
        });
        group.bench_with_input(BenchmarkId::new("partask", n), &input, |b, input| {
            b.iter(|| {
                let mut v = input.clone();
                quicksort_partask(&rt, &mut v);
                v
            });
        });
        group.bench_with_input(BenchmarkId::new("pyjama", n), &input, |b, input| {
            b.iter(|| {
                let mut v = input.clone();
                quicksort_pyjama(&team, &mut v);
                v
            });
        });
        group.bench_with_input(BenchmarkId::new("threads", n), &input, |b, input| {
            b.iter(|| {
                let mut v = input.clone();
                quicksort_threads(&mut v, 3);
                v
            });
        });
        group.bench_with_input(BenchmarkId::new("std-sort", n), &input, |b, input| {
            b.iter(|| {
                let mut v = input.clone();
                v.sort_unstable();
                v
            });
        });
    }
    group.finish();
    rt.shutdown();
}

fn main() {
    let mut c = parc_bench::criterion();
    bench(&mut c);
    c.final_summary();
}
