//! E7 — Project 7: PDF search granularity and worker-count sweep.

use std::sync::Arc;

use criterion::{BenchmarkId, Criterion};
use docsearch::corpus::{generate_documents, CorpusConfig};
use docsearch::{search_documents, Granularity, Query};
use partask::TaskRuntime;

fn bench(c: &mut Criterion) {
    let cfg = CorpusConfig {
        needle_rate: 0.01,
        ..CorpusConfig::default()
    };
    let (docs, _) = generate_documents(20, 8, 12, &cfg);
    let docs = Arc::new(docs);
    let query = Query::literal(&cfg.needle);

    {
        let rt = TaskRuntime::builder().workers(4).build();
        let mut group = c.benchmark_group("E7/granularity");
        for g in [
            Granularity::PerDocument,
            Granularity::PerChunk(4),
            Granularity::PerChunk(2),
            Granularity::PerPage,
        ] {
            group.bench_function(BenchmarkId::from_parameter(g.label()), |b| {
                b.iter(|| search_documents(&rt, &docs, &query, g, None));
            });
        }
        group.finish();
        rt.shutdown();
    }

    {
        let mut group = c.benchmark_group("E7/workers-per-page");
        for &workers in &[1usize, 2, 4] {
            let rt = TaskRuntime::builder().workers(workers).build();
            group.bench_with_input(BenchmarkId::from_parameter(workers), &rt, |b, rt| {
                b.iter(|| search_documents(rt, &docs, &query, Granularity::PerPage, None));
            });
            rt.shutdown();
        }
        group.finish();
    }
}

fn main() {
    let mut c = parc_bench::criterion();
    bench(&mut c);
    c.final_summary();
}
