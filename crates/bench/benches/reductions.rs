//! E5 — Project 5: reductions in Pyjama.
//!
//! Paper row: reductions as "an efficient solution to sharing
//! variables", extended to object-oriented data types. Series: the
//! reduction clause vs the critical-section baseline, and the OO
//! reduction family.

use std::collections::{HashMap, HashSet};

use criterion::Criterion;
use parking_lot::Mutex;
use pyjama::{MapMerge, Schedule, SetUnion, SumRed, Team, TopK, VecConcat};

fn bench(c: &mut Criterion) {
    let team = Team::new(4);
    let n = 20_000usize;

    {
        let mut group = c.benchmark_group("E5/sum-vs-critical");
        group.bench_function("reduction-clause", |b| {
            b.iter(|| team.par_reduce(0..n, Schedule::Static, &SumRed, |i| i as u64));
        });
        group.bench_function("critical-section", |b| {
            // The naive phrasing: every update inside a critical.
            b.iter(|| {
                let total = Mutex::new(0u64);
                team.parallel(|ctx| {
                    ctx.pfor(0..n, Schedule::Static, |i| {
                        ctx.critical("sum", || {
                            *total.lock() += i as u64;
                        });
                    });
                });
                total.into_inner()
            });
        });
        group.bench_function("per-thread-then-critical", |b| {
            // The intermediate student solution: accumulate a local
            // sum over the thread's static share, then one critical
            // per thread.
            b.iter(|| {
                let total = Mutex::new(0u64);
                team.parallel(|ctx| {
                    let t = ctx.thread_num();
                    let k = ctx.num_threads();
                    let mut local = 0u64;
                    for i in (n * t / k)..(n * (t + 1) / k) {
                        local += i as u64;
                    }
                    ctx.critical("sum2", || {
                        *total.lock() += local;
                    });
                    ctx.barrier();
                });
                total.into_inner()
            });
        });
        group.finish();
    }

    {
        let mut group = c.benchmark_group("E5/oo-reductions");
        group.bench_function("vec-concat", |b| {
            b.iter(|| -> Vec<u32> {
                team.par_reduce(0..10_000, Schedule::Static, &VecConcat::new(), |i| {
                    vec![i as u32]
                })
            });
        });
        group.bench_function("set-union", |b| {
            b.iter(|| -> HashSet<u64> {
                team.par_reduce(0..10_000, Schedule::Dynamic(128), &SetUnion::new(), |i| {
                    let mut s = HashSet::with_capacity(1);
                    s.insert((i % 512) as u64);
                    s
                })
            });
        });
        group.bench_function("map-merge", |b| {
            let red = MapMerge::new(|a: u64, bb: u64| a + bb);
            b.iter(|| -> HashMap<u64, u64> {
                team.par_reduce(0..10_000, Schedule::Dynamic(128), &red, |i| {
                    let mut m = HashMap::with_capacity(1);
                    m.insert((i % 64) as u64, 1);
                    m
                })
            });
        });
        group.bench_function("top-16", |b| {
            let red = TopK::new(16);
            b.iter(|| -> Vec<u64> {
                team.par_reduce(0..10_000, Schedule::Static, &red, |i| {
                    vec![(i as u64).wrapping_mul(0x9E37_79B9) % 100_000]
                })
            });
        });
        group.finish();
    }
}

fn main() {
    let mut c = parc_bench::criterion();
    bench(&mut c);
    c.final_summary();
}
