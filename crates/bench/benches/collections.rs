//! E6 + E9 — Projects 6 and 9: collections under synchronisation
//! strategies.
//!
//! Paper rows: "comparing the performance of the different
//! approaches … different locking mechanisms, such as synchronized,
//! atomic variables, locks and different types of collections", and
//! the task-safe wrappers of project 6.

use std::sync::Arc;

use criterion::{BenchmarkId, Criterion};
use partask::TaskRuntime;
use taskcol::workload::{run_map_workload, run_queue_workload, MapWorkload};
use taskcol::{
    AtomicCounter, ConcurrentStack, MutexCounter, MutexMap, MutexQueue,
    MutexStack, RwLockMap, SegLockFreeQueue, ShardedCounter, ShardedMap, SharedCounter,
    SpinStack, TaskAwareQueue, TreiberStack, TwoLockQueue,
};

fn bench(c: &mut Criterion) {
    // E9a: counters.
    {
        let mut group = c.benchmark_group("E9/counter-4-threads");
        let hammer = |counter: Arc<dyn SharedCounter>| {
            let mut joins = Vec::new();
            for _ in 0..4 {
                let ctr = Arc::clone(&counter);
                joins.push(std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        ctr.add(1);
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            counter.value()
        };
        group.bench_function("mutex", |b| {
            b.iter(|| hammer(Arc::new(MutexCounter::new())));
        });
        group.bench_function("atomic", |b| {
            b.iter(|| hammer(Arc::new(AtomicCounter::new())));
        });
        group.bench_function("sharded", |b| {
            b.iter(|| hammer(Arc::new(ShardedCounter::new(8))));
        });
        group.finish();
    }

    // E9b: queues (producer/consumer).
    {
        let mut group = c.benchmark_group("E9/queue-2p2c");
        group.bench_function("mutex", |b| {
            b.iter(|| {
                let q = Arc::new(MutexQueue::new());
                run_queue_workload(&q, 2, 1_500)
            });
        });
        group.bench_function("two-lock", |b| {
            b.iter(|| {
                let q = Arc::new(TwoLockQueue::new());
                run_queue_workload(&q, 2, 1_500)
            });
        });
        group.bench_function("lock-free", |b| {
            b.iter(|| {
                let q = Arc::new(SegLockFreeQueue::new());
                run_queue_workload(&q, 2, 1_500)
            });
        });
        group.finish();
    }

    // E9c: maps across read/write mixes.
    {
        let mut group = c.benchmark_group("E9/map");
        for &(label, read_frac) in &[("read-90", 0.9f64), ("read-50", 0.5)] {
            let cfg = MapWorkload {
                threads: 4,
                ops_per_thread: 3_000,
                read_fraction: read_frac,
                ..MapWorkload::default()
            };
            group.bench_with_input(BenchmarkId::new("mutex", label), &cfg, |b, cfg| {
                b.iter(|| {
                    let m = Arc::new(MutexMap::new());
                    run_map_workload(&m, cfg)
                });
            });
            group.bench_with_input(BenchmarkId::new("rwlock", label), &cfg, |b, cfg| {
                b.iter(|| {
                    let m = Arc::new(RwLockMap::new());
                    run_map_workload(&m, cfg)
                });
            });
            group.bench_with_input(BenchmarkId::new("sharded", label), &cfg, |b, cfg| {
                b.iter(|| {
                    let m = Arc::new(ShardedMap::new(16));
                    run_map_workload(&m, cfg)
                });
            });
        }
        group.finish();
    }

    // E9d: stacks, single-threaded op cost (structure overhead).
    {
        let mut group = c.benchmark_group("E9/stack-ops");
        group.bench_function("mutex", |b| {
            let s = MutexStack::new();
            b.iter(|| {
                for i in 0..1000u64 {
                    s.push(i);
                }
                while s.pop().is_some() {}
            });
        });
        group.bench_function("spin", |b| {
            let s = SpinStack::new();
            b.iter(|| {
                for i in 0..1000u64 {
                    s.push(i);
                }
                while s.pop().is_some() {}
            });
        });
        group.bench_function("treiber", |b| {
            let s = TreiberStack::new();
            b.iter(|| {
                for i in 0..1000u64 {
                    ConcurrentStack::push(&s, i);
                }
                while ConcurrentStack::pop(&s).is_some() {}
            });
        });
        group.finish();
    }

    // E9e: sorted sets — coarse lock vs hand-over-hand coupling.
    {
        use taskcol::{CoarseSet, ConcurrentSet, FineSet};
        let mut group = c.benchmark_group("E9/set-mixed-ops");
        let drive = |set: Arc<dyn ConcurrentSet<u64>>| {
            let mut joins = Vec::new();
            for t in 0..2u64 {
                let set = Arc::clone(&set);
                joins.push(std::thread::spawn(move || {
                    for i in 0..600u64 {
                        let key = (i * 7 + t) % 512;
                        if i % 3 == 0 {
                            set.remove(&key);
                        } else {
                            set.insert(key);
                        }
                        set.contains(&key);
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            set.len()
        };
        group.bench_function("coarse", |b| {
            b.iter(|| drive(Arc::new(CoarseSet::new())));
        });
        group.bench_function("lock-coupling", |b| {
            b.iter(|| drive(Arc::new(FineSet::new())));
        });
        group.finish();
    }

    // E6: task-aware queue — help-while-waiting vs plain try loop.
    {
        let mut group = c.benchmark_group("E6/task-aware");
        group.bench_function("pop_wait-helping", |b| {
            b.iter(|| {
                let rt = TaskRuntime::builder().workers(1).build();
                let h = rt.handle();
                let q: Arc<TaskAwareQueue<u32>> = Arc::new(TaskAwareQueue::new());
                let consumer = {
                    let q = Arc::clone(&q);
                    let h = h.clone();
                    rt.spawn(move || {
                        let q2 = Arc::clone(&q);
                        let _p = h.spawn(move || q2.push(1));
                        q.pop_wait(&h)
                    })
                };
                let out = consumer.join().unwrap();
                rt.shutdown();
                out
            });
        });
        group.bench_function("uncontended-push-pop", |b| {
            let q: TaskAwareQueue<u32> = TaskAwareQueue::new();
            b.iter(|| {
                for i in 0..100 {
                    q.push(i);
                }
                let mut sum = 0u32;
                while let Some(v) = q.try_pop() {
                    sum += v;
                }
                sum
            });
        });
        group.finish();
    }
}

fn main() {
    let mut c = parc_bench::criterion();
    bench(&mut c);
    c.final_summary();
}
