//! E3 — Project 3: computational kernels, sequential vs parallel.
//!
//! Paper row: "implementing basic algorithms … FFT, molecular
//! dynamics, graph processing and linear algebra … the groups compared
//! Pyjama to parallelisation using standard Java concurrency
//! libraries" (here: pyjama vs partask vs sequential).

use criterion::{BenchmarkId, Criterion};
use kernels::{fft, graph, linalg, md};
use partask::TaskRuntime;
use pyjama::Team;

fn bench(c: &mut Criterion) {
    let rt = TaskRuntime::builder().workers(4).build();
    let team = Team::new(4);

    {
        let mut group = c.benchmark_group("E3/fft-2048");
        let signal = fft::test_signal(2048, 3);
        group.bench_function("sequential", |b| {
            b.iter(|| {
                let mut v = signal.clone();
                fft::fft_seq(&mut v);
                v
            });
        });
        group.bench_function("pyjama", |b| {
            b.iter(|| {
                let mut v = signal.clone();
                fft::fft_par(&team, &mut v);
                v
            });
        });
        group.finish();
    }

    {
        let mut group = c.benchmark_group("E3/matmul-96");
        let a = linalg::Matrix::random(96, 96, 5);
        let bm = linalg::Matrix::random(96, 96, 6);
        group.bench_function("sequential", |b| {
            b.iter(|| linalg::matmul_seq(&a, &bm));
        });
        group.bench_function("pyjama", |b| {
            b.iter(|| linalg::matmul_par(&team, &a, &bm));
        });
        group.bench_function("partask", |b| {
            b.iter(|| linalg::matmul_partask(&rt, &a, &bm, 8));
        });
        group.finish();
    }

    {
        let mut group = c.benchmark_group("E3/pagerank");
        let g = graph::CsrGraph::random(1000, 5_000, 4);
        group.bench_function("sequential", |b| {
            b.iter(|| graph::pagerank_seq(&g, 0.85, 10));
        });
        group.bench_function("pyjama", |b| {
            b.iter(|| graph::pagerank_par(&team, &g, 0.85, 10));
        });
        group.finish();
    }

    {
        let mut group = c.benchmark_group("E3/md-96");
        let sys = md::System::new(96, 7);
        group.bench_function("forces-sequential", |b| {
            b.iter_batched(
                || sys.clone(),
                |mut s| {
                    s.compute_forces_seq();
                    s
                },
                criterion::BatchSize::SmallInput,
            );
        });
        group.bench_function("forces-pyjama", |b| {
            b.iter_batched(
                || sys.clone(),
                |mut s| {
                    s.compute_forces_par(&team);
                    s
                },
                criterion::BatchSize::SmallInput,
            );
        });
        group.finish();
    }

    {
        // BFS size sweep: frontier-parallel vs sequential.
        let mut group = c.benchmark_group("E3/bfs");
        for &n in &[1_000usize, 5_000] {
            let g = graph::CsrGraph::random(n, n * 8, 11);
            group.bench_with_input(BenchmarkId::new("sequential", n), &g, |b, g| {
                b.iter(|| graph::bfs_seq(g, 0));
            });
            group.bench_with_input(BenchmarkId::new("pyjama", n), &g, |b, g| {
                b.iter(|| graph::bfs_par(&team, g, 0));
            });
        }
        group.finish();
    }

    rt.shutdown();
}

fn main() {
    let mut c = parc_bench::criterion();
    bench(&mut c);
    c.final_summary();
}
