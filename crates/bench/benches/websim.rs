//! E10 — Project 10: the connection-count sweep.
//!
//! Paper row: "the question arises how many connections should be
//! opened at the same time". The curve: steep improvement from 1 to a
//! handful, an optimum near the server's connection budget, then
//! degradation from bandwidth thinning + queue penalties.

use std::sync::Arc;

use criterion::{BenchmarkId, Criterion};
use partask::TaskRuntime;
use websim::{fetch_all, ServerConfig, SimServer};

fn bench(c: &mut Criterion) {
    let rt = TaskRuntime::builder().workers(48).build();
    let server = Arc::new(SimServer::new(ServerConfig {
        pages: 40,
        time_scale: 2e-6, // 2 µs per simulated ms keeps rounds short
        ..ServerConfig::default()
    }));
    let mut group = c.benchmark_group("E10/connections");
    for &k in &[1usize, 2, 4, 8, 16, 24, 32, 48] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| fetch_all(&rt, &server, k));
        });
    }
    group.finish();
    rt.shutdown();
}

fn main() {
    let mut c = parc_bench::criterion();
    bench(&mut c);
    c.final_summary();
}
