//! A1 — ablation: partask runtime design choices.
//!
//! Spawn/join overhead, work-stealing vs work-sharing scheduling,
//! dependence-gate overhead and multi-task vs N spawns — the design
//! points DESIGN.md calls out for the Parallel Task analogue.

use criterion::{BenchmarkId, Criterion};
use partask::{SchedulerKind, TaskRuntime};

fn bench(c: &mut Criterion) {
    {
        // Raw spawn+join round-trip per scheduler.
        let mut group = c.benchmark_group("A1/spawn-join");
        for (label, kind) in [
            ("stealing", SchedulerKind::WorkStealing),
            ("sharing", SchedulerKind::WorkSharing),
        ] {
            let rt = TaskRuntime::builder().workers(2).scheduler(kind).build();
            group.bench_function(label, |b| {
                b.iter(|| rt.spawn(|| 1u64).join().unwrap());
            });
            rt.shutdown();
        }
        group.finish();
    }

    {
        // Task storm: 1000 trivial tasks, per scheduler.
        let mut group = c.benchmark_group("A1/task-storm-1000");
        for (label, kind) in [
            ("stealing", SchedulerKind::WorkStealing),
            ("sharing", SchedulerKind::WorkSharing),
        ] {
            let rt = TaskRuntime::builder().workers(2).scheduler(kind).build();
            group.bench_function(label, |b| {
                b.iter(|| {
                    let handles: Vec<_> = (0..1000).map(|i| rt.spawn(move || i)).collect();
                    handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
                });
            });
            rt.shutdown();
        }
        group.finish();
    }

    {
        // Dependence gate vs free task.
        let rt = TaskRuntime::builder().workers(2).build();
        let mut group = c.benchmark_group("A1/dependences");
        group.bench_function("free-task", |b| {
            b.iter(|| rt.spawn(|| 1u64).join().unwrap());
        });
        group.bench_function("after-one", |b| {
            b.iter(|| {
                let a = rt.spawn(|| 1u64);
                let w = a.watcher();
                let bt = rt.spawn_after(&[w], || 2u64);
                a.join().unwrap() + bt.join().unwrap()
            });
        });
        group.bench_function("after-chain-8", |b| {
            b.iter(|| {
                let mut prev = rt.spawn(|| 0u64).watcher();
                let mut last = None;
                for _ in 0..8 {
                    let t = rt.spawn_after(&[prev.clone()], || 1u64);
                    prev = t.watcher();
                    last = Some(t);
                }
                last.unwrap().join().unwrap()
            });
        });
        group.finish();
        rt.shutdown();
    }

    {
        // Multi-task vs N individual spawns for the same work.
        let rt = TaskRuntime::builder().workers(2).build();
        let mut group = c.benchmark_group("A1/multi-vs-spawns");
        for &n in &[8usize, 64] {
            group.bench_with_input(BenchmarkId::new("multi-task", n), &n, |b, &n| {
                b.iter(|| {
                    rt.spawn_multi(n, |i| i as u64)
                        .join_reduce(0, |a, v| a + v)
                        .unwrap()
                });
            });
            group.bench_with_input(BenchmarkId::new("n-spawns", n), &n, |b, &n| {
                b.iter(|| {
                    let hs: Vec<_> = (0..n).map(|i| rt.spawn(move || i as u64)).collect();
                    hs.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
                });
            });
        }
        group.finish();
        rt.shutdown();
    }

    {
        // Nested fork/join (helping) depth cost.
        let rt = TaskRuntime::builder().workers(2).build();
        let mut group = c.benchmark_group("A1/nested-forkjoin");
        fn fib(h: &partask::RuntimeHandle, n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let h2 = h.clone();
            let left = h.spawn(move || fib(&h2, n - 1));
            let right = fib(h, n - 2);
            left.join().unwrap() + right
        }
        let handle = rt.handle();
        group.bench_function("fib-12", |b| {
            b.iter(|| fib(&handle, 12));
        });
        group.finish();
        rt.shutdown();
    }
}

fn main() {
    let mut c = parc_bench::criterion();
    bench(&mut c);
    c.final_summary();
}
