//! E8 — Project 8: the cost of each memory-model fix, plus demo
//! round costs.
//!
//! Paper row: "discussing what their respective pros/cons are (for
//! example, simplicity, performance cost, etc)".

use criterion::Criterion;
use memmodel::demos::{self, FixStrategy};

fn bench(c: &mut Criterion) {
    {
        let mut group = c.benchmark_group("E8/increment-cost");
        group.bench_function("plain", |b| {
            b.iter(|| {
                let mut x = 0u64;
                for _ in 0..10_000 {
                    x = std::hint::black_box(x + 1);
                }
                x
            });
        });
        group.bench_function("atomic-relaxed", |b| {
            let x = std::sync::atomic::AtomicU64::new(0);
            b.iter(|| {
                for _ in 0..10_000 {
                    x.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        });
        group.bench_function("atomic-seqcst", |b| {
            let x = std::sync::atomic::AtomicU64::new(0);
            b.iter(|| {
                for _ in 0..10_000 {
                    x.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                }
            });
        });
        group.bench_function("mutex", |b| {
            let x = parking_lot::Mutex::new(0u64);
            b.iter(|| {
                for _ in 0..10_000 {
                    *x.lock() += 1;
                }
            });
        });
        group.finish();
    }

    {
        // Cost of a correctly synchronised multi-threaded counter, per
        // strategy (4 threads x 10k increments per round).
        let mut group = c.benchmark_group("E8/contended-counter");
        for fix in [FixStrategy::AtomicRmw, FixStrategy::SeqCst, FixStrategy::Mutex] {
            group.bench_function(format!("{fix:?}"), |b| {
                b.iter(|| demos::lost_update_fixed(4, 3_000, fix));
            });
        }
        group.finish();
    }

    {
        // Litmus-round throughput (thread spawn + run), SeqCst vs Relaxed.
        let mut group = c.benchmark_group("E8/store-buffer-round");
        group.bench_function("relaxed", |b| {
            b.iter(|| demos::store_buffer(8, std::sync::atomic::Ordering::Relaxed));
        });
        group.bench_function("seqcst", |b| {
            b.iter(|| demos::store_buffer(8, std::sync::atomic::Ordering::SeqCst));
        });
        group.finish();
    }
}

fn main() {
    let mut c = parc_bench::criterion();
    bench(&mut c);
    c.final_summary();
}
