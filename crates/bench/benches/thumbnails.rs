//! E1 — Project 1: thumbnail gallery strategies and input-size sweep.
//!
//! Paper row: "comparing the performance across a number of Java
//! parallelisation strategies … investigating different ways to
//! schedule the workload, and using different image input sizes".

use std::sync::Arc;

use criterion::{BenchmarkId, Criterion};
use imaging::{gen, render_gallery, GalleryConfig, Strategy};
use partask::TaskRuntime;
use pyjama::Team;

fn bench(c: &mut Criterion) {
    let rt = TaskRuntime::builder().workers(4).build();
    let team = Team::new(4);

    // Strategy comparison at a fixed gallery.
    {
        let images = Arc::new(gen::generate_folder(8, 40, 80, 0xA11));
        let mut group = c.benchmark_group("E1/strategies");
        for strategy in [
            Strategy::Sequential,
            Strategy::TaskPerImage,
            Strategy::MultiTask(4),
            Strategy::PyjamaDynamic(2),
            Strategy::PyjamaStatic,
        ] {
            let cfg = GalleryConfig {
                thumb_w: 32,
                thumb_h: 32,
                strategy,
                ..GalleryConfig::default()
            };
            group.bench_function(BenchmarkId::from_parameter(strategy.label()), |b| {
                b.iter(|| render_gallery(&images, &cfg, &rt, &team, None));
            });
        }
        group.finish();
    }

    // Input-size sweep under the dynamic strategy.
    {
        let mut group = c.benchmark_group("E1/input-size");
        for &side in &[32u32, 64, 96] {
            let images = Arc::new(gen::generate_folder(8, side, side, 0xB22));
            let cfg = GalleryConfig {
                thumb_w: 24,
                thumb_h: 24,
                strategy: Strategy::PyjamaDynamic(1),
                ..GalleryConfig::default()
            };
            group.bench_with_input(BenchmarkId::from_parameter(side), &images, |b, images| {
                b.iter(|| render_gallery(images, &cfg, &rt, &team, None));
            });
        }
        group.finish();
    }
    rt.shutdown();
}

fn main() {
    let mut c = parc_bench::criterion();
    bench(&mut c);
    c.final_summary();
}
