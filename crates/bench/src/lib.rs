//! # parc-bench — the experiment harness
//!
//! One Criterion bench target per experiment of EXPERIMENTS.md:
//!
//! | target | experiment |
//! |---|---|
//! | `thumbnails` | E1 — gallery strategies × input sizes |
//! | `quicksort` | E2 — sort variants × array sizes |
//! | `kernels` | E3 — FFT/matmul/PageRank/MD, seq vs parallel |
//! | `text_search` | E4 — literal vs regex folder search |
//! | `reductions` | E5 — reduction vs critical-section baseline, OO reductions |
//! | `collections` | E6+E9 — counters/queues/maps across sync strategies |
//! | `pdf_search` | E7 — granularity sweep |
//! | `memmodel` | E8 — cost of each synchronisation fix |
//! | `websim` | E10 — connection-count sweep |
//! | `runtime` | A1 — partask spawn/dependence overhead, stealing vs sharing |
//! | `schedules` | A2 — static/dynamic/guided on uniform and skewed loops |
//!
//! Run everything with `cargo bench --workspace`; a single experiment
//! with e.g. `cargo bench -p parc-bench --bench quicksort`.

use criterion::Criterion;

/// Shared Criterion configuration: short, single-CPU-friendly runs.
/// Statistical precision is deliberately traded for total wall time —
/// EXPERIMENTS.md records shapes, not microsecond-exact numbers.
#[must_use]
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(100))
        .measurement_time(std::time::Duration::from_millis(300))
        .configure_from_args()
}
