//! Shim synchronisation primitives — drop-in lookalikes for the
//! `std::sync` (and `shims/parking_lot`) types used by the demos,
//! with every operation a controlled yield point.
//!
//! Mirroring the workspace's `shims/*` pattern, the types keep the
//! familiar call shapes (`AtomicU64::load(Ordering)`, `Mutex::lock()`
//! guard, `thread::spawn` + `JoinHandle::join`) so porting a demo is
//! a `use` swap. Two deliberate differences:
//!
//! * constructors take a **name** (`AtomicU64::new("flag", false)`)
//!   so race reports and interleaving diagrams can talk about
//!   locations the way the lab handout does;
//! * [`PlainCell`] exists to model genuinely non-atomic data (the
//!   `count++` split, unsynchronised publication targets). Its
//!   accesses always participate in race reports; shim atomics
//!   participate only at `Ordering::Relaxed` (see [`crate::op::Op::racy`]).
//!
//! All shim state lives behind the controller's serialisation — only
//! one simulated thread runs at a time, and consecutive steps are
//! ordered by the controller's own mutex — so the `unsafe` interior
//! access below never constitutes a real data race.

use std::cell::UnsafeCell;
use std::sync::atomic::Ordering;
use std::sync::Mutex as StdMutex;

pub use std::sync::Arc;

use crate::ctl::{register_loc, sched_point};
use crate::op::{Op, OpKind};

macro_rules! shim_atomic {
    ($name:ident, $ty:ty, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug)]
        pub struct $name {
            loc: usize,
            value: UnsafeCell<$ty>,
        }

        // SAFETY: the controller runs exactly one simulated thread at
        // a time and orders consecutive steps through its own mutex,
        // so interior accesses are serialised and synchronised.
        unsafe impl Send for $name {}
        unsafe impl Sync for $name {}

        impl $name {
            /// New shim atomic registered under `name`.
            #[must_use]
            pub fn new(name: &str, value: $ty) -> Self {
                Self { loc: register_loc(name), value: UnsafeCell::new(value) }
            }

            /// Atomic load at `ord` (a yield point).
            pub fn load(&self, ord: Ordering) -> $ty {
                sched_point(Op { kind: OpKind::Load { ord, atomic: true }, loc: Some(self.loc) });
                // SAFETY: serialised by the controller (see type docs).
                unsafe { *self.value.get() }
            }

            /// Atomic store at `ord` (a yield point).
            pub fn store(&self, value: $ty, ord: Ordering) {
                sched_point(Op { kind: OpKind::Store { ord, atomic: true }, loc: Some(self.loc) });
                // SAFETY: serialised by the controller (see type docs).
                unsafe { *self.value.get() = value };
            }
        }
    };
}

shim_atomic!(AtomicU64, u64, "Shim `AtomicU64`: every access is a controlled yield point.");
shim_atomic!(AtomicUsize, usize, "Shim `AtomicUsize`: every access is a controlled yield point.");
shim_atomic!(AtomicBool, bool, "Shim `AtomicBool`: every access is a controlled yield point.");

macro_rules! shim_fetch_add {
    ($name:ident, $ty:ty) => {
        impl $name {
            /// Atomic `fetch_add` (indivisible — a single yield point).
            pub fn fetch_add(&self, n: $ty, ord: Ordering) -> $ty {
                sched_point(Op { kind: OpKind::Rmw { ord }, loc: Some(self.loc) });
                // SAFETY: serialised by the controller (see type docs).
                unsafe {
                    let p = self.value.get();
                    let prev = *p;
                    *p = prev.wrapping_add(n);
                    prev
                }
            }

            /// Atomic compare-exchange (indivisible — a single yield
            /// point; recorded as an RMW at `ord` even on failure).
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                ord: Ordering,
                _failure: Ordering,
            ) -> Result<$ty, $ty> {
                sched_point(Op { kind: OpKind::Rmw { ord }, loc: Some(self.loc) });
                // SAFETY: serialised by the controller (see type docs).
                unsafe {
                    let p = self.value.get();
                    let prev = *p;
                    if prev == current {
                        *p = new;
                        Ok(prev)
                    } else {
                        Err(prev)
                    }
                }
            }
        }
    };
}

shim_fetch_add!(AtomicU64, u64);
shim_fetch_add!(AtomicUsize, usize);

impl AtomicBool {
    /// Atomic compare-exchange on the flag (indivisible).
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        ord: Ordering,
        _failure: Ordering,
    ) -> Result<bool, bool> {
        sched_point(Op { kind: OpKind::Rmw { ord }, loc: Some(self.loc) });
        // SAFETY: serialised by the controller (see type docs).
        unsafe {
            let p = self.value.get();
            let prev = *p;
            if prev == current {
                *p = new;
                Ok(prev)
            } else {
                Err(prev)
            }
        }
    }
}

/// A genuinely non-atomic shared cell — what `count++` on a plain
/// field compiles to. Every `get`/`set` is a racy access candidate;
/// safety must come from happens-before (locks, joins), and the
/// detector verifies exactly that.
#[derive(Debug)]
pub struct PlainCell<T: Copy> {
    loc: usize,
    value: UnsafeCell<T>,
}

// SAFETY: serialised by the controller (see module docs).
unsafe impl<T: Copy + Send> Send for PlainCell<T> {}
unsafe impl<T: Copy + Send> Sync for PlainCell<T> {}

impl<T: Copy> PlainCell<T> {
    /// New plain cell registered under `name`.
    #[must_use]
    pub fn new(name: &str, value: T) -> Self {
        Self { loc: register_loc(name), value: UnsafeCell::new(value) }
    }

    /// Plain read (a racy-access candidate and a yield point).
    pub fn get(&self) -> T {
        sched_point(Op {
            kind: OpKind::Load { ord: Ordering::Relaxed, atomic: false },
            loc: Some(self.loc),
        });
        // SAFETY: serialised by the controller (see module docs).
        unsafe { *self.value.get() }
    }

    /// Plain write (a racy-access candidate and a yield point).
    pub fn set(&self, value: T) {
        sched_point(Op {
            kind: OpKind::Store { ord: Ordering::Relaxed, atomic: false },
            loc: Some(self.loc),
        });
        // SAFETY: serialised by the controller (see module docs).
        unsafe { *self.value.get() = value };
    }
}

/// Shim mutex: `lock()` blocks (the scheduler never grants a `Lock`
/// on a held mutex), establishes the usual acquire/release
/// happens-before edges, and returns a guard. Mirrors the
/// `parking_lot::Mutex` call shape (`lock()`, no poisoning).
#[derive(Debug)]
pub struct Mutex<T> {
    loc: usize,
    value: UnsafeCell<T>,
}

// SAFETY: mutual exclusion is enforced by the scheduler (a Lock op is
// never granted while the mutex is held), and steps are serialised by
// the controller.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// New shim mutex registered under `name`.
    #[must_use]
    pub fn new(name: &str, value: T) -> Self {
        Self { loc: register_loc(name), value: UnsafeCell::new(value) }
    }

    /// Acquire the mutex (blocks; a yield point).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        sched_point(Op { kind: OpKind::Lock, loc: Some(self.loc) });
        MutexGuard { mutex: self }
    }
}

/// Guard for the shim [`Mutex`]; releases (a yield point) on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the scheduler guarantees exclusive ownership while
        // this guard lives.
        unsafe { &*self.mutex.value.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as for `deref`.
        unsafe { &mut *self.mutex.value.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        sched_point(Op { kind: OpKind::Unlock, loc: Some(self.mutex.loc) });
    }
}

/// Shim cyclic barrier with a fixed participant count, the analogue of
/// a pyjama team barrier. `wait()` blocks until `participants` threads
/// have arrived, then releases them all; like [`std::sync::Barrier`]
/// it is reusable (episodes are counted, so the same object serves
/// every barrier point of a region).
///
/// Two properties matter for the static/dynamic cross-validation:
///
/// * a completed episode is a happens-before edge from every arrival
///   to every departure (writes before the barrier are visible — and
///   non-racing — to reads after it);
/// * *mismatched* barrier counts (a thread waiting at a barrier its
///   siblings never reach — the `//#omp barrier`-inside-worksharing
///   student bug) leave the waiter permanently blocked, which the
///   explorer reports as a deadlock with the blocked-thread diagram.
#[derive(Debug)]
pub struct Barrier {
    loc: usize,
    participants: usize,
}

impl Barrier {
    /// New shim barrier for `participants` threads, registered under
    /// `name` for reports.
    #[must_use]
    pub fn new(name: &str, participants: usize) -> Self {
        assert!(participants >= 1, "a barrier needs at least one participant");
        Self { loc: register_loc(name), participants }
    }

    /// Arrive and wait for the episode to complete (two yield points:
    /// the arrival, then the — possibly blocking — departure).
    pub fn wait(&self) {
        sched_point(Op {
            kind: OpKind::BarrierArrive { participants: self.participants },
            loc: Some(self.loc),
        });
        sched_point(Op { kind: OpKind::BarrierWait, loc: Some(self.loc) });
    }
}

/// Controlled threads: `spawn`/`join` with the std call shape.
pub mod thread {
    use super::*;
    use crate::ctl::register_thread;

    /// Handle to a simulated thread; `join` blocks until it finished
    /// and establishes the join happens-before edge.
    pub struct JoinHandle<T> {
        target: usize,
        slot: Arc<StdMutex<Option<T>>>,
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread and take its return value.
        pub fn join(self) -> T {
            sched_point(Op { kind: OpKind::Join { target: self.target }, loc: None });
            self.slot
                .lock()
                .unwrap()
                .take()
                .expect("joined thread completed, so its slot is filled")
        }
    }

    /// Spawn a simulated thread. It becomes *schedulable* here; its
    /// first step (`start`) is a scheduling decision like any other.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let slot: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
        let out = Arc::clone(&slot);
        let target = register_thread(Box::new(move || {
            let value = f();
            *out.lock().unwrap() = Some(value);
        }));
        JoinHandle { target, slot }
    }

    /// A pure scheduling point (the ported demos' `yield_now`).
    pub fn yield_now() {
        sched_point(Op { kind: OpKind::Yield, loc: None });
    }
}
