//! The ported litmus catalogue.
//!
//! Each entry is one of the `memmodel::demos` litmus tests or a
//! `taskcol` collection strategy, rewritten against the shim
//! primitives in [`crate::sync`] so the explorer can enumerate its
//! interleavings. `expect_race` is the ground-truth verdict the CI
//! `explore` job (and the `memmodel`/`taskcol` test suites) assert:
//! every racy variant must have a concrete racing schedule, every
//! fixed variant must be race-free over the whole explored space.
//!
//! Porting notes:
//!
//! * The originals spin (`while !flag.load() {}`); spinning under a
//!   controlled scheduler yields unbounded executions, so the ported
//!   readers *branch* on the flag instead and record which arm ran.
//!   Both arms are explored, which is strictly more coverage than one
//!   lucky spin exit.
//! * `Relaxed` atomic loads/stores model the demos' "unsynchronised"
//!   accesses (see [`crate::op::Op::racy`]); genuinely non-atomic data
//!   uses [`PlainCell`].

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::ctl::record;
use crate::sync::{thread, AtomicBool, AtomicU64, Mutex, PlainCell};

/// A named litmus program with its ground-truth race verdict.
#[derive(Clone)]
pub struct Litmus {
    /// Catalogue key, e.g. `lost-update/racy`.
    pub name: &'static str,
    /// Ground truth: must the explorer find a race?
    pub expect_race: bool,
    /// The program body (re-run once per explored schedule).
    pub body: Arc<dyn Fn() + Send + Sync>,
}

impl std::fmt::Debug for Litmus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Litmus")
            .field("name", &self.name)
            .field("expect_race", &self.expect_race)
            .finish_non_exhaustive()
    }
}

fn litmus(
    name: &'static str,
    expect_race: bool,
    body: impl Fn() + Send + Sync + 'static,
) -> Litmus {
    Litmus { name, expect_race, body: Arc::new(body) }
}

/// The full catalogue: the four `memmodel::demos` litmus tests (racy
/// and fixed variants) plus `taskcol` counter and stack strategies.
#[must_use]
pub fn catalogue() -> Vec<Litmus> {
    vec![
        // ---- memmodel: lost update -------------------------------
        litmus("lost-update/racy", true, || {
            // Two threads do a split `count++` (load then store) —
            // the classic lost update from `demos::lost_update`.
            let count = Arc::new(AtomicU64::new("count", 0));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let count = Arc::clone(&count);
                handles.push(thread::spawn(move || {
                    let v = count.load(Ordering::Relaxed);
                    count.store(v + 1, Ordering::Relaxed);
                }));
            }
            for h in handles {
                h.join();
            }
            record("final", count.load(Ordering::Relaxed) as i64);
        }),
        litmus("lost-update/fixed-rmw", false, || {
            let count = Arc::new(AtomicU64::new("count", 0));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let count = Arc::clone(&count);
                handles.push(thread::spawn(move || {
                    count.fetch_add(1, Ordering::Relaxed);
                }));
            }
            for h in handles {
                h.join();
            }
            record("final", count.load(Ordering::Relaxed) as i64);
        }),
        litmus("lost-update/fixed-mutex", false, || {
            let count = Arc::new(PlainCell::new("count", 0i64));
            let lock = Arc::new(Mutex::new("count_lock", ()));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let count = Arc::clone(&count);
                let lock = Arc::clone(&lock);
                handles.push(thread::spawn(move || {
                    let guard = lock.lock();
                    let v = count.get();
                    count.set(v + 1);
                    drop(guard);
                }));
            }
            for h in handles {
                h.join();
            }
            record("final", count.get());
        }),
        // ---- memmodel: message passing ---------------------------
        litmus("message-passing/racy", true, || {
            // Writer publishes plain data behind a Relaxed flag; the
            // reader branches on the flag (the ported spin loop).
            let data = Arc::new(PlainCell::new("data", 0i64));
            let flag = Arc::new(AtomicBool::new("flag", false));
            let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
            let writer = thread::spawn(move || {
                d.set(42);
                f.store(true, Ordering::Relaxed);
            });
            let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
            let reader = thread::spawn(move || {
                if f.load(Ordering::Relaxed) {
                    record("read", d.get());
                } else {
                    record("read", -1);
                }
            });
            writer.join();
            reader.join();
        }),
        litmus("message-passing/fixed-relacq", false, || {
            let data = Arc::new(PlainCell::new("data", 0i64));
            let flag = Arc::new(AtomicBool::new("flag", false));
            let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
            let writer = thread::spawn(move || {
                d.set(42);
                f.store(true, Ordering::Release);
            });
            let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
            let reader = thread::spawn(move || {
                if f.load(Ordering::Acquire) {
                    record("read", d.get());
                } else {
                    record("read", -1);
                }
            });
            writer.join();
            reader.join();
        }),
        // ---- memmodel: store buffer ------------------------------
        litmus("store-buffer/relaxed", true, || {
            // Dekker-style core: each thread stores its own flag then
            // loads the other's, all Relaxed. Under interleaving
            // semantics `r1 = r2 = 0` cannot appear; what the explorer
            // proves is the *data race* on x and y — the license a
            // weak memory model needs to produce it.
            let x = Arc::new(AtomicU64::new("x", 0));
            let y = Arc::new(AtomicU64::new("y", 0));
            let (xs, ys) = (Arc::clone(&x), Arc::clone(&y));
            let t1 = thread::spawn(move || {
                xs.store(1, Ordering::Relaxed);
                ys.load(Ordering::Relaxed) as i64
            });
            let (xs, ys) = (Arc::clone(&x), Arc::clone(&y));
            let t2 = thread::spawn(move || {
                ys.store(1, Ordering::Relaxed);
                xs.load(Ordering::Relaxed) as i64
            });
            let r1 = t1.join();
            let r2 = t2.join();
            record("r1", r1);
            record("r2", r2);
        }),
        litmus("store-buffer/seqcst", false, || {
            let x = Arc::new(AtomicU64::new("x", 0));
            let y = Arc::new(AtomicU64::new("y", 0));
            let (xs, ys) = (Arc::clone(&x), Arc::clone(&y));
            let t1 = thread::spawn(move || {
                xs.store(1, Ordering::SeqCst);
                ys.load(Ordering::SeqCst) as i64
            });
            let (xs, ys) = (Arc::clone(&x), Arc::clone(&y));
            let t2 = thread::spawn(move || {
                ys.store(1, Ordering::SeqCst);
                xs.load(Ordering::SeqCst) as i64
            });
            let r1 = t1.join();
            let r2 = t2.join();
            record("r1", r1);
            record("r2", r2);
            assert!(r1 == 1 || r2 == 1, "SeqCst store buffer forbids r1 = r2 = 0");
        }),
        // ---- memmodel: lazy init ---------------------------------
        litmus("lazy-init/racy", true, || {
            // Check-then-act on a Relaxed flag: both threads can see
            // "uninitialised" and both construct.
            let ready = Arc::new(AtomicBool::new("ready", false));
            let constructions = Arc::new(AtomicU64::new("constructions", 0));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let ready = Arc::clone(&ready);
                let constructions = Arc::clone(&constructions);
                handles.push(thread::spawn(move || {
                    if !ready.load(Ordering::Relaxed) {
                        constructions.fetch_add(1, Ordering::SeqCst);
                        ready.store(true, Ordering::Relaxed);
                    }
                }));
            }
            for h in handles {
                h.join();
            }
            record("constructions", constructions.load(Ordering::SeqCst) as i64);
        }),
        litmus("lazy-init/fixed-mutex", false, || {
            let ready = Arc::new(PlainCell::new("ready", false));
            let constructions = Arc::new(PlainCell::new("constructions", 0i64));
            let lock = Arc::new(Mutex::new("init_lock", ()));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let ready = Arc::clone(&ready);
                let constructions = Arc::clone(&constructions);
                let lock = Arc::clone(&lock);
                handles.push(thread::spawn(move || {
                    let guard = lock.lock();
                    if !ready.get() {
                        constructions.set(constructions.get() + 1);
                        ready.set(true);
                    }
                    drop(guard);
                }));
            }
            for h in handles {
                h.join();
            }
            record("constructions", constructions.get());
        }),
        // ---- taskcol: counter strategies -------------------------
        litmus("taskcol-counter/unsync", true, || {
            // `taskcol::counter` unsynchronised strategy: plain
            // read-modify-write from two workers.
            let count = Arc::new(PlainCell::new("count", 0i64));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let count = Arc::clone(&count);
                handles.push(thread::spawn(move || {
                    let v = count.get();
                    count.set(v + 1);
                }));
            }
            for h in handles {
                h.join();
            }
            record("final", count.get());
        }),
        litmus("taskcol-counter/atomic", false, || {
            let count = Arc::new(AtomicU64::new("count", 0));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let count = Arc::clone(&count);
                handles.push(thread::spawn(move || {
                    count.fetch_add(1, Ordering::SeqCst);
                }));
            }
            for h in handles {
                h.join();
            }
            record("final", count.load(Ordering::SeqCst) as i64);
        }),
        litmus("taskcol-counter/mutex", false, || {
            let count = Arc::new(Mutex::new("count", 0i64));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let count = Arc::clone(&count);
                handles.push(thread::spawn(move || {
                    *count.lock() += 1;
                }));
            }
            for h in handles {
                h.join();
            }
            record("final", *count.lock());
        }),
        // ---- taskcol: stack strategies ---------------------------
        litmus("taskcol-stack/racy", true, || {
            // An unsynchronised Vec-style push: read `top`, write the
            // slot, bump `top`. Two pushers can target the same slot.
            let top = Arc::new(PlainCell::new("top", 0i64));
            let slot0 = Arc::new(PlainCell::new("slot0", 0i64));
            let slot1 = Arc::new(PlainCell::new("slot1", 0i64));
            let mut handles = Vec::new();
            for item in 1..=2i64 {
                let top = Arc::clone(&top);
                let slot0 = Arc::clone(&slot0);
                let slot1 = Arc::clone(&slot1);
                handles.push(thread::spawn(move || {
                    let t = top.get();
                    if t == 0 {
                        slot0.set(item);
                    } else {
                        slot1.set(item);
                    }
                    top.set(t + 1);
                }));
            }
            for h in handles {
                h.join();
            }
            record("top", top.get());
            record("sum", slot0.get() + slot1.get());
        }),
        litmus("taskcol-stack/mutex", false, || {
            // `taskcol::MutexStack`: the whole push is one critical
            // section, so every interleaving yields top = 2 and both
            // items present.
            let top = Arc::new(PlainCell::new("top", 0i64));
            let slot0 = Arc::new(PlainCell::new("slot0", 0i64));
            let slot1 = Arc::new(PlainCell::new("slot1", 0i64));
            let lock = Arc::new(Mutex::new("stack_lock", ()));
            let mut handles = Vec::new();
            for item in 1..=2i64 {
                let top = Arc::clone(&top);
                let slot0 = Arc::clone(&slot0);
                let slot1 = Arc::clone(&slot1);
                let lock = Arc::clone(&lock);
                handles.push(thread::spawn(move || {
                    let guard = lock.lock();
                    let t = top.get();
                    if t == 0 {
                        slot0.set(item);
                    } else {
                        slot1.set(item);
                    }
                    top.set(t + 1);
                    drop(guard);
                }));
            }
            for h in handles {
                h.join();
            }
            record("top", top.get());
            record("sum", slot0.get() + slot1.get());
        }),
    ]
}

/// Look up one catalogue entry by name.
#[must_use]
pub fn by_name(name: &str) -> Option<Litmus> {
    catalogue().into_iter().find(|l| l.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{explore, Config};
    use std::collections::BTreeSet;

    #[test]
    fn catalogue_names_are_unique_and_paired() {
        let cat = catalogue();
        let names: BTreeSet<&str> = cat.iter().map(|l| l.name).collect();
        assert_eq!(names.len(), cat.len(), "duplicate litmus names");
        assert_eq!(cat.len(), 14);
        // Every demo family has at least one racy and one fixed entry.
        for family in ["lost-update", "message-passing", "store-buffer", "lazy-init"] {
            assert!(cat.iter().any(|l| l.name.starts_with(family) && l.expect_race));
            assert!(cat.iter().any(|l| l.name.starts_with(family) && !l.expect_race));
        }
    }

    #[test]
    fn every_verdict_matches_ground_truth() {
        for entry in catalogue() {
            let body = Arc::clone(&entry.body);
            let report = explore(Config::dfs(entry.name), move || body());
            assert!(report.exhausted, "{}: space not exhausted", entry.name);
            assert_eq!(
                !report.race_free(),
                entry.expect_race,
                "{}: wrong verdict ({} races found)\n{}",
                entry.name,
                report.races.len(),
                report.render()
            );
            assert_eq!(report.deadlocks, 0, "{}: unexpected deadlock", entry.name);
        }
    }

    #[test]
    fn racy_lost_update_witnesses_the_lost_update() {
        let entry = by_name("lost-update/racy").unwrap();
        let body = Arc::clone(&entry.body);
        let report = explore(Config::dfs(entry.name), move || body());
        let outcomes = &report.observations["final"];
        assert!(outcomes.contains(&1), "lost update outcome: {outcomes:?}");
        assert!(outcomes.contains(&2));
    }

    #[test]
    fn fixed_variants_have_exact_outcomes() {
        for (name, key, want) in [
            ("lost-update/fixed-rmw", "final", 2i64),
            ("lost-update/fixed-mutex", "final", 2),
            ("lazy-init/fixed-mutex", "constructions", 1),
            ("taskcol-counter/atomic", "final", 2),
            ("taskcol-counter/mutex", "final", 2),
            ("taskcol-stack/mutex", "top", 2),
        ] {
            let entry = by_name(name).unwrap();
            let body = Arc::clone(&entry.body);
            let report = explore(Config::dfs(name), move || body());
            assert_eq!(
                report.observations[key],
                BTreeSet::from([want]),
                "{name}: {key} not exact"
            );
        }
    }

    #[test]
    fn racy_lazy_init_can_double_construct() {
        let entry = by_name("lazy-init/racy").unwrap();
        let body = Arc::clone(&entry.body);
        let report = explore(Config::dfs(entry.name), move || body());
        let outcomes = &report.observations["constructions"];
        assert!(outcomes.contains(&2), "double construction: {outcomes:?}");
        assert!(outcomes.contains(&1));
    }
}
