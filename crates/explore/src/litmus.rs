//! The ported litmus catalogue.
//!
//! Each entry is one of the `memmodel::demos` litmus tests or a
//! `taskcol` collection strategy, rewritten against the shim
//! primitives in [`crate::sync`] so the explorer can enumerate its
//! interleavings. `expect_race` is the ground-truth verdict the CI
//! `explore` job (and the `memmodel`/`taskcol` test suites) assert:
//! every racy variant must have a concrete racing schedule, every
//! fixed variant must be race-free over the whole explored space.
//!
//! Porting notes:
//!
//! * The originals spin (`while !flag.load() {}`); spinning under a
//!   controlled scheduler yields unbounded executions, so the ported
//!   readers *branch* on the flag instead and record which arm ran.
//!   Both arms are explored, which is strictly more coverage than one
//!   lucky spin exit.
//! * `Relaxed` atomic loads/stores model the demos' "unsynchronised"
//!   accesses (see [`crate::op::Op::racy`]); genuinely non-atomic data
//!   uses [`PlainCell`].

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::ctl::record;
use crate::sync::{thread, AtomicBool, AtomicU64, Mutex, PlainCell};

/// Sentinel for a pop/steal that found the deque empty.
const EMPTY: i64 = -1;
/// Sentinel for a steal whose claiming CAS lost to a competitor.
const RETRY: i64 = -2;

/// A model of the workspace's Chase–Lev work-stealing deque
/// (`crossbeam::deque`), sized down to a fixed ring so the explorer
/// can enumerate every interleaving.
///
/// Port of the real deque's orderings:
///
/// * The ring slots are **plain memory** ([`PlainCell`]) — exactly as
///   in the real deque, where the buffer is unsynchronised and the
///   `top`/`bottom` protocol is the only thing ordering slot accesses.
///   Every race the detector could find lives here.
/// * `Relaxed`-plus-`SeqCst`-fence in the real code is ported as a
///   `SeqCst` access: the explorer has no fence operation and reserves
///   `Relaxed` for modelling deliberately-unsynchronised code.
/// * Steals read the slot **speculatively, before the claiming CAS**
///   (as the real deque must): the CAS's release then publishes the
///   read, which is what makes slot reuse after ring wraparound safe —
///   see `chase-lev/wraparound-reuse`.
struct ModelDeque {
    /// Steal frontier. Only ever incremented (by a successful claiming
    /// CAS) — monotonicity is the ABA guard: a slot index repeats after
    /// wraparound, but a `top` *value* never does.
    top: AtomicU64,
    /// Owner's push/pop end.
    bottom: AtomicU64,
    /// The ring; index `i % slots.len()`, plain unsynchronised memory.
    slots: Vec<PlainCell<i64>>,
}

impl ModelDeque {
    fn new(cap: usize) -> Self {
        Self {
            top: AtomicU64::new("top", 0),
            bottom: AtomicU64::new("bottom", 0),
            slots: (0..cap).map(|i| PlainCell::new(&format!("slot{i}"), 0)).collect(),
        }
    }

    fn slot(&self, index: u64) -> &PlainCell<i64> {
        &self.slots[index as usize % self.slots.len()]
    }

    /// Owner push. The `Acquire` load of `top` is the capacity check
    /// *and* the wraparound guard: it reads-from the steal CAS that
    /// retired the slot about to be reused, ordering the thief's
    /// speculative read before this overwrite. Returns `false` when
    /// the ring is full (the real deque grows; growth is not modelled).
    fn push(&self, value: i64) -> bool {
        let b = self.bottom.load(Ordering::Relaxed); // owner-only end
        let t = self.top.load(Ordering::Acquire);
        if b - t >= self.slots.len() as u64 {
            return false;
        }
        self.slot(b).set(value);
        self.bottom.store(b + 1, Ordering::Release);
        true
    }

    /// Broken push for the racy variant: reuses the slot without the
    /// `Acquire` top load, so nothing orders a thief's speculative
    /// read before the overwrite.
    fn push_skipping_capacity_check(&self, value: i64) {
        let b = self.bottom.load(Ordering::Relaxed);
        self.slot(b).set(value);
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner pop. `SeqCst` where the real code is `Relaxed` around a
    /// `SeqCst` fence: the store of the reserved `bottom` and the load
    /// of `top` must not reorder, or owner and thief can both take the
    /// last element. On `t == b` the element is also the steal
    /// frontier and must be *claimed* with the same CAS thieves use.
    fn pop(&self) -> i64 {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        if t > b {
            // Already emptied by thieves; restore the canonical state.
            self.bottom.store(b + 1, Ordering::SeqCst);
            return EMPTY;
        }
        let value = self.slot(b).get();
        if t < b {
            return value; // not the last element: no thief can reach it
        }
        let won = self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok();
        self.bottom.store(b + 1, Ordering::SeqCst);
        if won { value } else { EMPTY }
    }

    /// Broken pop for `chase-lev/pop-skips-cas-broken`: takes the last
    /// element without claiming it, so a concurrent steal can take the
    /// same value. Note every slot access is still a *read* — this bug
    /// is a protocol-atomicity bug, not a data race.
    fn pop_without_claiming(&self) -> i64 {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        let value = if t > b { EMPTY } else { self.slot(b).get() };
        self.bottom.store(b + 1, Ordering::SeqCst);
        value
    }

    /// Thief steal: speculative slot read, then a `SeqCst` CAS to
    /// claim. A lost CAS discards the speculated value ([`RETRY`]).
    fn steal(&self) -> i64 {
        let t = self.top.load(Ordering::Acquire);
        let b = self.bottom.load(Ordering::Acquire);
        if b as i64 - t as i64 <= 0 {
            return EMPTY;
        }
        let value = self.slot(t).get();
        match self.top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => value,
            Err(_) => RETRY,
        }
    }

    /// Batch steal: claim up to `max` items (at least one, at most
    /// half the initially observed length, as in the real deque),
    /// **one CAS per element**, re-reading `bottom` between claims.
    /// Returns the claimed values, oldest first; empty on
    /// [`EMPTY`] or a first claim lost ([`RETRY`]).
    ///
    /// Per-element claiming is load-bearing, not style: the owner's
    /// [`ModelDeque::pop`] removes bottom-end elements *without* any
    /// CAS while it sees more than one element, so a single CAS
    /// spanning several elements can win elements the owner already
    /// popped (see [`ModelDeque::steal_batch_single_cas`], the broken
    /// twin `chase-lev/batch-steal-vs-pop-single-cas-broken` keeps).
    fn steal_batch(&self, max: u64) -> Vec<i64> {
        let mut t = self.top.load(Ordering::Acquire);
        let b = self.bottom.load(Ordering::Acquire);
        let len = b as i64 - t as i64;
        if len <= 0 {
            return Vec::new();
        }
        let n = (((len + 1) / 2) as u64).min(max);
        let mut values = Vec::new();
        while (values.len() as u64) < n {
            if !values.is_empty() {
                // Re-validate the owner's end before each further
                // claim (`SeqCst`, porting the real code's
                // fence-then-Acquire preamble): either the thief sees
                // the owner's `bottom` reservation and stops, or its
                // claim is ordered before it and the element is ours.
                let b = self.bottom.load(Ordering::SeqCst);
                if b as i64 - t as i64 <= 0 {
                    break;
                }
            }
            let value = self.slot(t).get();
            if self.top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst).is_err() {
                break;
            }
            values.push(value);
            t += 1;
        }
        values
    }

    /// Broken batch steal for
    /// `chase-lev/batch-steal-vs-pop-single-cas-broken`: reads the
    /// whole run `[t, t+n)` speculatively and claims it with ONE CAS
    /// on `top` — the algorithm the real deque shipped with before
    /// the per-element fix. Unsound against concurrent owner pops:
    /// the CAS only proves `top` did not move, while `pop` retires
    /// bottom-end elements without ever touching `top`.
    fn steal_batch_single_cas(&self, max: u64) -> Vec<i64> {
        let t = self.top.load(Ordering::Acquire);
        let b = self.bottom.load(Ordering::Acquire);
        let len = b as i64 - t as i64;
        if len <= 0 {
            return Vec::new();
        }
        let n = (((len + 1) / 2) as u64).min(max);
        let values: Vec<i64> = (t..t + n).map(|i| self.slot(i).get()).collect();
        match self.top.compare_exchange(t, t + n, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => values,
            Err(_) => Vec::new(),
        }
    }
}

/// A named litmus program with its ground-truth race verdict.
#[derive(Clone)]
pub struct Litmus {
    /// Catalogue key, e.g. `lost-update/racy`.
    pub name: &'static str,
    /// Ground truth: must the explorer find a race?
    pub expect_race: bool,
    /// The program body (re-run once per explored schedule).
    pub body: Arc<dyn Fn() + Send + Sync>,
}

impl std::fmt::Debug for Litmus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Litmus")
            .field("name", &self.name)
            .field("expect_race", &self.expect_race)
            .finish_non_exhaustive()
    }
}

fn litmus(
    name: &'static str,
    expect_race: bool,
    body: impl Fn() + Send + Sync + 'static,
) -> Litmus {
    Litmus { name, expect_race, body: Arc::new(body) }
}

/// The full catalogue: the four `memmodel::demos` litmus tests (racy
/// and fixed variants) plus `taskcol` counter and stack strategies.
#[must_use]
pub fn catalogue() -> Vec<Litmus> {
    vec![
        // ---- memmodel: lost update -------------------------------
        litmus("lost-update/racy", true, || {
            // Two threads do a split `count++` (load then store) —
            // the classic lost update from `demos::lost_update`.
            let count = Arc::new(AtomicU64::new("count", 0));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let count = Arc::clone(&count);
                handles.push(thread::spawn(move || {
                    let v = count.load(Ordering::Relaxed);
                    count.store(v + 1, Ordering::Relaxed);
                }));
            }
            for h in handles {
                h.join();
            }
            record("final", count.load(Ordering::Relaxed) as i64);
        }),
        litmus("lost-update/fixed-rmw", false, || {
            let count = Arc::new(AtomicU64::new("count", 0));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let count = Arc::clone(&count);
                handles.push(thread::spawn(move || {
                    count.fetch_add(1, Ordering::Relaxed);
                }));
            }
            for h in handles {
                h.join();
            }
            record("final", count.load(Ordering::Relaxed) as i64);
        }),
        litmus("lost-update/fixed-mutex", false, || {
            let count = Arc::new(PlainCell::new("count", 0i64));
            let lock = Arc::new(Mutex::new("count_lock", ()));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let count = Arc::clone(&count);
                let lock = Arc::clone(&lock);
                handles.push(thread::spawn(move || {
                    let guard = lock.lock();
                    let v = count.get();
                    count.set(v + 1);
                    drop(guard);
                }));
            }
            for h in handles {
                h.join();
            }
            record("final", count.get());
        }),
        // ---- memmodel: message passing ---------------------------
        litmus("message-passing/racy", true, || {
            // Writer publishes plain data behind a Relaxed flag; the
            // reader branches on the flag (the ported spin loop).
            let data = Arc::new(PlainCell::new("data", 0i64));
            let flag = Arc::new(AtomicBool::new("flag", false));
            let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
            let writer = thread::spawn(move || {
                d.set(42);
                f.store(true, Ordering::Relaxed);
            });
            let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
            let reader = thread::spawn(move || {
                if f.load(Ordering::Relaxed) {
                    record("read", d.get());
                } else {
                    record("read", -1);
                }
            });
            writer.join();
            reader.join();
        }),
        litmus("message-passing/fixed-relacq", false, || {
            let data = Arc::new(PlainCell::new("data", 0i64));
            let flag = Arc::new(AtomicBool::new("flag", false));
            let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
            let writer = thread::spawn(move || {
                d.set(42);
                f.store(true, Ordering::Release);
            });
            let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
            let reader = thread::spawn(move || {
                if f.load(Ordering::Acquire) {
                    record("read", d.get());
                } else {
                    record("read", -1);
                }
            });
            writer.join();
            reader.join();
        }),
        // ---- memmodel: store buffer ------------------------------
        litmus("store-buffer/relaxed", true, || {
            // Dekker-style core: each thread stores its own flag then
            // loads the other's, all Relaxed. Under interleaving
            // semantics `r1 = r2 = 0` cannot appear; what the explorer
            // proves is the *data race* on x and y — the license a
            // weak memory model needs to produce it.
            let x = Arc::new(AtomicU64::new("x", 0));
            let y = Arc::new(AtomicU64::new("y", 0));
            let (xs, ys) = (Arc::clone(&x), Arc::clone(&y));
            let t1 = thread::spawn(move || {
                xs.store(1, Ordering::Relaxed);
                ys.load(Ordering::Relaxed) as i64
            });
            let (xs, ys) = (Arc::clone(&x), Arc::clone(&y));
            let t2 = thread::spawn(move || {
                ys.store(1, Ordering::Relaxed);
                xs.load(Ordering::Relaxed) as i64
            });
            let r1 = t1.join();
            let r2 = t2.join();
            record("r1", r1);
            record("r2", r2);
        }),
        litmus("store-buffer/seqcst", false, || {
            let x = Arc::new(AtomicU64::new("x", 0));
            let y = Arc::new(AtomicU64::new("y", 0));
            let (xs, ys) = (Arc::clone(&x), Arc::clone(&y));
            let t1 = thread::spawn(move || {
                xs.store(1, Ordering::SeqCst);
                ys.load(Ordering::SeqCst) as i64
            });
            let (xs, ys) = (Arc::clone(&x), Arc::clone(&y));
            let t2 = thread::spawn(move || {
                ys.store(1, Ordering::SeqCst);
                xs.load(Ordering::SeqCst) as i64
            });
            let r1 = t1.join();
            let r2 = t2.join();
            record("r1", r1);
            record("r2", r2);
            assert!(r1 == 1 || r2 == 1, "SeqCst store buffer forbids r1 = r2 = 0");
        }),
        // ---- memmodel: lazy init ---------------------------------
        litmus("lazy-init/racy", true, || {
            // Check-then-act on a Relaxed flag: both threads can see
            // "uninitialised" and both construct.
            let ready = Arc::new(AtomicBool::new("ready", false));
            let constructions = Arc::new(AtomicU64::new("constructions", 0));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let ready = Arc::clone(&ready);
                let constructions = Arc::clone(&constructions);
                handles.push(thread::spawn(move || {
                    if !ready.load(Ordering::Relaxed) {
                        constructions.fetch_add(1, Ordering::SeqCst);
                        ready.store(true, Ordering::Relaxed);
                    }
                }));
            }
            for h in handles {
                h.join();
            }
            record("constructions", constructions.load(Ordering::SeqCst) as i64);
        }),
        litmus("lazy-init/fixed-mutex", false, || {
            let ready = Arc::new(PlainCell::new("ready", false));
            let constructions = Arc::new(PlainCell::new("constructions", 0i64));
            let lock = Arc::new(Mutex::new("init_lock", ()));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let ready = Arc::clone(&ready);
                let constructions = Arc::clone(&constructions);
                let lock = Arc::clone(&lock);
                handles.push(thread::spawn(move || {
                    let guard = lock.lock();
                    if !ready.get() {
                        constructions.set(constructions.get() + 1);
                        ready.set(true);
                    }
                    drop(guard);
                }));
            }
            for h in handles {
                h.join();
            }
            record("constructions", constructions.get());
        }),
        // ---- taskcol: counter strategies -------------------------
        litmus("taskcol-counter/unsync", true, || {
            // `taskcol::counter` unsynchronised strategy: plain
            // read-modify-write from two workers.
            let count = Arc::new(PlainCell::new("count", 0i64));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let count = Arc::clone(&count);
                handles.push(thread::spawn(move || {
                    let v = count.get();
                    count.set(v + 1);
                }));
            }
            for h in handles {
                h.join();
            }
            record("final", count.get());
        }),
        litmus("taskcol-counter/atomic", false, || {
            let count = Arc::new(AtomicU64::new("count", 0));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let count = Arc::clone(&count);
                handles.push(thread::spawn(move || {
                    count.fetch_add(1, Ordering::SeqCst);
                }));
            }
            for h in handles {
                h.join();
            }
            record("final", count.load(Ordering::SeqCst) as i64);
        }),
        litmus("taskcol-counter/mutex", false, || {
            let count = Arc::new(Mutex::new("count", 0i64));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let count = Arc::clone(&count);
                handles.push(thread::spawn(move || {
                    *count.lock() += 1;
                }));
            }
            for h in handles {
                h.join();
            }
            record("final", *count.lock());
        }),
        // ---- taskcol: stack strategies ---------------------------
        litmus("taskcol-stack/racy", true, || {
            // An unsynchronised Vec-style push: read `top`, write the
            // slot, bump `top`. Two pushers can target the same slot.
            let top = Arc::new(PlainCell::new("top", 0i64));
            let slot0 = Arc::new(PlainCell::new("slot0", 0i64));
            let slot1 = Arc::new(PlainCell::new("slot1", 0i64));
            let mut handles = Vec::new();
            for item in 1..=2i64 {
                let top = Arc::clone(&top);
                let slot0 = Arc::clone(&slot0);
                let slot1 = Arc::clone(&slot1);
                handles.push(thread::spawn(move || {
                    let t = top.get();
                    if t == 0 {
                        slot0.set(item);
                    } else {
                        slot1.set(item);
                    }
                    top.set(t + 1);
                }));
            }
            for h in handles {
                h.join();
            }
            record("top", top.get());
            record("sum", slot0.get() + slot1.get());
        }),
        litmus("taskcol-stack/mutex", false, || {
            // `taskcol::MutexStack`: the whole push is one critical
            // section, so every interleaving yields top = 2 and both
            // items present.
            let top = Arc::new(PlainCell::new("top", 0i64));
            let slot0 = Arc::new(PlainCell::new("slot0", 0i64));
            let slot1 = Arc::new(PlainCell::new("slot1", 0i64));
            let lock = Arc::new(Mutex::new("stack_lock", ()));
            let mut handles = Vec::new();
            for item in 1..=2i64 {
                let top = Arc::clone(&top);
                let slot0 = Arc::clone(&slot0);
                let slot1 = Arc::clone(&slot1);
                let lock = Arc::clone(&lock);
                handles.push(thread::spawn(move || {
                    let guard = lock.lock();
                    let t = top.get();
                    if t == 0 {
                        slot0.set(item);
                    } else {
                        slot1.set(item);
                    }
                    top.set(t + 1);
                    drop(guard);
                }));
            }
            for h in handles {
                h.join();
            }
            record("top", top.get());
            record("sum", slot0.get() + slot1.get());
        }),
        // ---- chase-lev: the scheduler's work-stealing deque --------
        litmus("chase-lev/take-vs-steal", false, || {
            // The tentpole race of the algorithm: the owner pops the
            // *last* element while a thief steals it. Both routes go
            // through the same SeqCst CAS on `top`, so exactly one
            // side gets the value — and the detector must find no data
            // race on the plain slot in any interleaving.
            let dq = Arc::new(ModelDeque::new(2));
            assert!(dq.push(10));
            let d = Arc::clone(&dq);
            let owner = thread::spawn(move || d.pop());
            let d = Arc::clone(&dq);
            let thief = thread::spawn(move || d.steal());
            let got_owner = owner.join();
            let got_thief = thief.join();
            assert!(
                (got_owner == 10) ^ (got_thief == 10),
                "last element taken exactly once: owner {got_owner}, thief {got_thief}"
            );
            record("owner", got_owner);
            record("thief", got_thief);
        }),
        litmus("chase-lev/steal-empty-abandon", false, || {
            // Two thieves race over one element: one claims it, the
            // other must abandon — either seeing the deque already
            // empty (top caught up with bottom) or losing the CAS.
            // The loser's speculative slot read is discarded; reads
            // never race with reads, so the space stays race-free.
            let dq = Arc::new(ModelDeque::new(2));
            assert!(dq.push(7));
            let d = Arc::clone(&dq);
            let a = thread::spawn(move || d.steal());
            let d = Arc::clone(&dq);
            let b = thread::spawn(move || d.steal());
            let got_a = a.join();
            let got_b = b.join();
            assert!(
                (got_a == 7) ^ (got_b == 7),
                "one element, one winner: a {got_a}, b {got_b}"
            );
            record("got_a", got_a);
            record("got_b", got_b);
            record("abandoned", i64::from(got_a == EMPTY || got_b == EMPTY));
        }),
        litmus("chase-lev/batch-steal-vs-push", false, || {
            // A batch steal overlapping an owner push. The thief
            // claims a contiguous block from `top` (element by
            // element) while the owner appends at `bottom`; the two
            // touch disjoint slots, and the batch size depends on
            // whether the thief's `bottom` load sees the in-flight
            // push (1 of 2 queued, or 2 of 3 after the push lands —
            // never the freshly pushed slot itself).
            let dq = Arc::new(ModelDeque::new(4));
            assert!(dq.push(1));
            assert!(dq.push(2));
            let d = Arc::clone(&dq);
            let owner = thread::spawn(move || d.push(3));
            let d = Arc::clone(&dq);
            let thief = thread::spawn(move || d.steal_batch(2));
            assert!(owner.join(), "ring has room for the third push");
            let batch = thief.join();
            assert!(
                batch == [1] || batch == [1, 2],
                "batch claims a prefix of the queue, oldest first: {batch:?}"
            );
            record("batch_len", batch.len() as i64);
            record("batch_sum", batch.iter().sum::<i64>());
        }),
        litmus("chase-lev/batch-steal-vs-pop", false, || {
            // The interleaving a batch steal must survive — and the
            // one a single-CAS multi-element claim gets wrong: the
            // owner pops bottom-end elements CAS-free (it sees
            // `top < bottom`) while a thief claims a batch from the
            // top. With [1, 2, 4] queued the thief's claim (up to 2)
            // and the owner's two pops both reach the middle element;
            // per-element claiming must deliver every value exactly
            // once, in every schedule. Power-of-two values make the
            // sums identify exactly which elements each side got.
            let dq = Arc::new(ModelDeque::new(4));
            assert!(dq.push(1));
            assert!(dq.push(2));
            assert!(dq.push(4));
            let taken = |v: i64| if v > 0 { v } else { 0 };
            let d = Arc::clone(&dq);
            let owner = thread::spawn(move || taken(d.pop()) + taken(d.pop()));
            let d = Arc::clone(&dq);
            let thief = thread::spawn(move || d.steal_batch(2).iter().sum::<i64>());
            let owner_sum = owner.join();
            let thief_sum = thief.join();
            // Drain what neither side took (single-threaded now, so a
            // steal can no longer lose its CAS).
            let mut leftover = 0;
            loop {
                match dq.steal() {
                    EMPTY => break,
                    v => {
                        assert_ne!(v, RETRY, "no competitor left to lose a CAS to");
                        leftover += v;
                    }
                }
            }
            assert_eq!(
                owner_sum + thief_sum + leftover,
                7,
                "each of 1, 2, 4 delivered exactly once: \
                 owner {owner_sum}, thief {thief_sum}, leftover {leftover}"
            );
            record("owner_sum", owner_sum);
            record("thief_sum", thief_sum);
        }),
        litmus("chase-lev/batch-steal-vs-pop-single-cas-broken", false, || {
            // Negative control: the same scenario, but the thief
            // claims its whole batch with a single CAS on `top`. All
            // slot accesses are reads, so the space is race-free —
            // yet the owner can pop the middle element (no CAS: it
            // still sees top < bottom) after the thief copied it and
            // before the thief's claim lands, and the claim still
            // succeeds. The observation set betrays the duplicate:
            // grand total 9 = 7 + the twice-delivered 2.
            let dq = Arc::new(ModelDeque::new(4));
            assert!(dq.push(1));
            assert!(dq.push(2));
            assert!(dq.push(4));
            let taken = |v: i64| if v > 0 { v } else { 0 };
            let d = Arc::clone(&dq);
            let owner = thread::spawn(move || taken(d.pop()) + taken(d.pop()));
            let d = Arc::clone(&dq);
            let thief =
                thread::spawn(move || d.steal_batch_single_cas(2).iter().sum::<i64>());
            let owner_sum = owner.join();
            let thief_sum = thief.join();
            let mut leftover = 0;
            loop {
                match dq.steal() {
                    EMPTY => break,
                    v => {
                        assert_ne!(v, RETRY, "no competitor left to lose a CAS to");
                        leftover += v;
                    }
                }
            }
            record("grand_total", owner_sum + thief_sum + leftover);
        }),
        litmus("chase-lev/wraparound-reuse", false, || {
            // ABA territory: a full ring (cap 2), a thief steals the
            // oldest element, and the owner pushes a third value into
            // the *same physical slot* the thief read (index 2 % 2 =
            // 0). Safe for two reasons the explorer checks: `top` only
            // grows, so the claiming CAS cannot be fooled by the slot
            // being reused (no ABA on the control word); and the push
            // only overwrites after its Acquire `top` load reads-from
            // the steal's CAS, ordering the thief's speculative read
            // before the overwrite (no race on the plain slot).
            let dq = Arc::new(ModelDeque::new(2));
            assert!(dq.push(100));
            assert!(dq.push(200));
            let d = Arc::clone(&dq);
            let owner = thread::spawn(move || d.push(300));
            let d = Arc::clone(&dq);
            let thief = thread::spawn(move || d.steal());
            let pushed = owner.join();
            let stolen = thief.join();
            assert_eq!(stolen, 100, "the only CAS in flight cannot lose");
            assert_eq!(dq.slots[0].get(), if pushed { 300 } else { 100 });
            record("pushed", i64::from(pushed));
            record("stolen", stolen);
        }),
        litmus("chase-lev/push-reuse-racy", true, || {
            // The broken twin of wraparound-reuse: the push skips the
            // capacity check (the Acquire `top` load), so nothing
            // orders the thief's speculative read of slot 0 before the
            // owner's overwrite of it. The detector must find the
            // write/read race on the slot.
            let dq = Arc::new(ModelDeque::new(2));
            assert!(dq.push(100));
            assert!(dq.push(200));
            let d = Arc::clone(&dq);
            let owner = thread::spawn(move || d.push_skipping_capacity_check(300));
            let d = Arc::clone(&dq);
            let thief = thread::spawn(move || d.steal());
            owner.join();
            record("stolen", thief.join());
        }),
        litmus("chase-lev/pop-skips-cas-broken", false, || {
            // Negative control: a pop that takes the last element
            // WITHOUT claiming it through the CAS. Every slot access is
            // still a read, so the race detector correctly reports the
            // space race-free — but owner and thief can both take the
            // same value (taken_total = 20 in some schedules). The CAS
            // is protocol atomicity, not memory ordering; only the
            // observation set exposes this bug.
            let dq = Arc::new(ModelDeque::new(2));
            assert!(dq.push(10));
            let d = Arc::clone(&dq);
            let owner = thread::spawn(move || d.pop_without_claiming());
            let d = Arc::clone(&dq);
            let thief = thread::spawn(move || d.steal());
            let got_owner = owner.join();
            let got_thief = thief.join();
            let taken = |v: i64| if v == 10 { v } else { 0 };
            record("taken_total", taken(got_owner) + taken(got_thief));
        }),
    ]
}

/// Look up one catalogue entry by name.
#[must_use]
pub fn by_name(name: &str) -> Option<Litmus> {
    catalogue().into_iter().find(|l| l.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{explore, Config};
    use std::collections::BTreeSet;

    #[test]
    fn catalogue_names_are_unique_and_paired() {
        let cat = catalogue();
        let names: BTreeSet<&str> = cat.iter().map(|l| l.name).collect();
        assert_eq!(names.len(), cat.len(), "duplicate litmus names");
        assert_eq!(cat.len(), 22);
        // Every demo family has at least one racy and one fixed entry.
        for family in ["lost-update", "message-passing", "store-buffer", "lazy-init", "chase-lev"] {
            assert!(cat.iter().any(|l| l.name.starts_with(family) && l.expect_race));
            assert!(cat.iter().any(|l| l.name.starts_with(family) && !l.expect_race));
        }
    }

    #[test]
    fn every_verdict_matches_ground_truth() {
        for entry in catalogue() {
            let body = Arc::clone(&entry.body);
            let report = explore(Config::dfs(entry.name), move || body());
            assert!(report.exhausted, "{}: space not exhausted", entry.name);
            assert_eq!(
                !report.race_free(),
                entry.expect_race,
                "{}: wrong verdict ({} races found)\n{}",
                entry.name,
                report.races.len(),
                report.render()
            );
            assert_eq!(report.deadlocks, 0, "{}: unexpected deadlock", entry.name);
        }
    }

    #[test]
    fn racy_lost_update_witnesses_the_lost_update() {
        let entry = by_name("lost-update/racy").unwrap();
        let body = Arc::clone(&entry.body);
        let report = explore(Config::dfs(entry.name), move || body());
        let outcomes = &report.observations["final"];
        assert!(outcomes.contains(&1), "lost update outcome: {outcomes:?}");
        assert!(outcomes.contains(&2));
    }

    #[test]
    fn fixed_variants_have_exact_outcomes() {
        for (name, key, want) in [
            ("lost-update/fixed-rmw", "final", 2i64),
            ("lost-update/fixed-mutex", "final", 2),
            ("lazy-init/fixed-mutex", "constructions", 1),
            ("taskcol-counter/atomic", "final", 2),
            ("taskcol-counter/mutex", "final", 2),
            ("taskcol-stack/mutex", "top", 2),
        ] {
            let entry = by_name(name).unwrap();
            let body = Arc::clone(&entry.body);
            let report = explore(Config::dfs(name), move || body());
            assert_eq!(
                report.observations[key],
                BTreeSet::from([want]),
                "{name}: {key} not exact"
            );
        }
    }

    #[test]
    fn chase_lev_last_element_goes_to_exactly_one_side() {
        // Both outcomes must be reachable: schedules where the owner's
        // pop wins the claiming CAS, and schedules where the thief's
        // steal does. (Exclusivity itself is asserted inside the body,
        // on every explored schedule.)
        let entry = by_name("chase-lev/take-vs-steal").unwrap();
        let body = Arc::clone(&entry.body);
        let report = explore(Config::dfs(entry.name), move || body());
        assert!(report.exhausted && report.race_free());
        assert!(report.observations["owner"].contains(&10), "owner never won the CAS");
        assert!(report.observations["thief"].contains(&10), "thief never won the CAS");
        assert!(
            report.observations["owner"].contains(&super::EMPTY),
            "owner never lost: {:?}",
            report.observations["owner"]
        );
    }

    #[test]
    fn chase_lev_losing_thief_abandons() {
        // The losing thief must be able to exit both ways: seeing the
        // deque already empty, and losing the claiming CAS (RETRY).
        let entry = by_name("chase-lev/steal-empty-abandon").unwrap();
        let body = Arc::clone(&entry.body);
        let report = explore(Config::dfs(entry.name), move || body());
        assert!(report.exhausted && report.race_free());
        let all: BTreeSet<i64> = report.observations["got_a"]
            .union(&report.observations["got_b"])
            .copied()
            .collect();
        assert!(all.contains(&super::EMPTY), "no schedule saw empty-and-abandon");
        assert!(all.contains(&super::RETRY), "no schedule lost the CAS");
        assert!(report.observations["abandoned"].contains(&1));
    }

    #[test]
    fn chase_lev_batch_size_tracks_the_racing_push() {
        // Batch size 1 (bottom read before the push landed) and 2
        // (after) must both be explored; the batch is always the
        // oldest prefix, so its sum identifies its contents.
        let entry = by_name("chase-lev/batch-steal-vs-push").unwrap();
        let body = Arc::clone(&entry.body);
        let report = explore(Config::dfs(entry.name), move || body());
        assert!(report.exhausted && report.race_free());
        assert_eq!(report.observations["batch_len"], BTreeSet::from([1, 2]));
        assert_eq!(report.observations["batch_sum"], BTreeSet::from([1, 3]));
    }

    #[test]
    fn chase_lev_batch_steal_vs_pop_is_exact() {
        // The regression gate for the per-element-CAS batch steal: the
        // conservation assertion inside the body (grand total exactly
        // 7) holds on every explored schedule, and the contended
        // middle element (value 2) must be winnable by *both* sides —
        // owner_sum 6 = {4, 2}, thief_sum 3 = {1, 2}.
        let entry = by_name("chase-lev/batch-steal-vs-pop").unwrap();
        let body = Arc::clone(&entry.body);
        let report = explore(Config::dfs(entry.name), move || body());
        assert!(report.exhausted && report.race_free());
        assert!(
            report.observations["owner_sum"].contains(&6),
            "owner never won the contended element: {:?}",
            report.observations["owner_sum"]
        );
        assert!(
            report.observations["thief_sum"].contains(&3),
            "thief never won the contended element: {:?}",
            report.observations["thief_sum"]
        );
    }

    #[test]
    fn chase_lev_single_cas_batch_double_delivers() {
        // The broken twin witnesses exactly the bug the per-element
        // fix removes: race-free (all slot accesses are reads), but
        // some schedule delivers the middle element to both the
        // popping owner and the single-CAS batch thief (total 9).
        let entry = by_name("chase-lev/batch-steal-vs-pop-single-cas-broken").unwrap();
        let body = Arc::clone(&entry.body);
        let report = explore(Config::dfs(entry.name), move || body());
        assert!(report.exhausted && report.race_free());
        let totals = &report.observations["grand_total"];
        assert!(totals.contains(&9), "double delivery never surfaced: {totals:?}");
        assert!(totals.contains(&7), "the correct outcome must also be reachable");
    }

    #[test]
    fn chase_lev_wraparound_is_ordered_and_aba_free() {
        // The steal always gets the oldest value (top is monotone — no
        // ABA), and the push both succeeds (after the steal's CAS
        // freed a slot) and fails (ring still full) in some schedule.
        let entry = by_name("chase-lev/wraparound-reuse").unwrap();
        let body = Arc::clone(&entry.body);
        let report = explore(Config::dfs(entry.name), move || body());
        assert!(report.exhausted && report.race_free());
        assert_eq!(report.observations["stolen"], BTreeSet::from([100]));
        assert_eq!(report.observations["pushed"], BTreeSet::from([0, 1]));
    }

    #[test]
    fn chase_lev_broken_pop_double_takes_without_a_data_race() {
        // The verdict is race-free (all slot accesses are reads) but
        // the observation set betrays the bug: some schedule hands the
        // same element to both the owner and the thief (total 20).
        let entry = by_name("chase-lev/pop-skips-cas-broken").unwrap();
        let body = Arc::clone(&entry.body);
        let report = explore(Config::dfs(entry.name), move || body());
        assert!(report.exhausted && report.race_free());
        let totals = &report.observations["taken_total"];
        assert!(totals.contains(&20), "double take never surfaced: {totals:?}");
        assert!(totals.contains(&10), "the correct outcome must also be reachable");
    }

    #[test]
    fn racy_lazy_init_can_double_construct() {
        let entry = by_name("lazy-init/racy").unwrap();
        let body = Arc::clone(&entry.body);
        let report = explore(Config::dfs(entry.name), move || body());
        let outcomes = &report.observations["constructions"];
        assert!(outcomes.contains(&2), "double construction: {outcomes:?}");
        assert!(outcomes.contains(&1));
    }
}
