//! The controlled scheduler: one OS thread per simulated thread,
//! exactly one running at a time.
//!
//! Every shim operation calls [`sched_point`] *before* performing its
//! effect: the thread records what it is about to do, parks on the
//! controller's condvar and waits to be granted the step. The
//! controller (driving on the `explore()` caller's thread) waits for
//! all simulated threads to be parked or finished, computes the
//! enabled set (a pending `Lock` is disabled while the mutex is held;
//! a pending `Join` is disabled until the target finishes), asks the
//! active strategy to choose, applies the happens-before pass for the
//! chosen operation, and wakes exactly that thread. Executions are
//! therefore sequentialised and — given the same choice sequence —
//! bit-for-bit reproducible.
//!
//! Abandoning an execution (pruned by the DFS, step bound hit, or a
//! deadlock) sets an abort flag; parked threads wake, unwind with a
//! private token panic, and the controller joins their OS threads, so
//! no state leaks between executions.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex as StdMutex, Once};

use crate::op::{Op, OpKind};
use crate::race::{Detector, RawRace};

/// Token panic used to unwind simulated threads of an abandoned
/// execution. Never observed outside the crate.
struct AbortToken;

/// The abort unwind is routine control flow here, but the default
/// panic hook would print a "thread panicked" backtrace for every
/// abandoned execution. Wrap the hook once to keep those silent while
/// leaving real panics (assertion failures in litmus bodies) as loud
/// as ever.
fn silence_abort_token_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !info.payload().is::<AbortToken>() {
                previous(info);
            }
        }));
    });
}

/// Lifecycle of one simulated thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    /// Registered; its OS thread starts when `Start` is granted.
    Unstarted,
    /// Parked at a yield point with a pending operation.
    Ready,
    /// Granted a step; running until its next yield point.
    Running,
    /// Its closure returned (or unwound).
    Finished,
}

struct ThreadRec {
    status: Status,
    pending: Option<Op>,
    main: Option<Box<dyn FnOnce() + Send>>,
    os: Option<std::thread::JoinHandle<()>>,
}

/// One recorded step of the trace.
#[derive(Clone, Debug)]
pub(crate) struct EventRec {
    pub tid: usize,
    pub op: Op,
}

/// Scheduler-side state of one shim barrier (keyed by its location).
#[derive(Debug, Default)]
struct BarrierCtl {
    /// Completed episodes so far.
    generation: u64,
    /// Threads arrived in the current (incomplete) episode.
    arrived: std::collections::BTreeSet<usize>,
    /// For each thread parked at a `BarrierWait`: the generation it
    /// arrived in. Its wait is enabled once `generation` moves past.
    waiting_gen: BTreeMap<usize, u64>,
}

pub(crate) struct State {
    threads: Vec<ThreadRec>,
    active: Option<usize>,
    abort: bool,
    loc_names: Vec<String>,
    lock_held: BTreeMap<usize, usize>,
    barriers: BTreeMap<usize, BarrierCtl>,
    pub detector: Detector,
    pub events: Vec<EventRec>,
    pub schedule: Vec<usize>,
    pub observations: BTreeMap<String, i64>,
    pub panic: Option<String>,
}

pub(crate) struct Controller {
    state: StdMutex<State>,
    cv: Condvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Controller>, usize)>> = const { RefCell::new(None) };
}

fn with_ctx<R>(f: impl FnOnce(&Arc<Controller>, usize) -> R) -> R {
    CTX.with(|c| {
        let borrow = c.borrow();
        let (ctl, tid) = borrow
            .as_ref()
            .expect("parc-explore shim used outside an explorer execution");
        f(ctl, *tid)
    })
}

/// Announce the pending operation and park until the controller
/// grants the step. Called by every shim primitive.
pub(crate) fn sched_point(op: Op) {
    if std::thread::panicking() {
        // Unwinding (an abort token or a real assertion failure):
        // guards may still run Drop glue — never re-enter the
        // scheduler from a panic.
        return;
    }
    with_ctx(|ctl, tid| ctl.yield_op(tid, op));
}

/// Register a shared-memory location (atomic, plain cell or mutex).
pub(crate) fn register_loc(name: &str) -> usize {
    with_ctx(|ctl, _| {
        let mut st = ctl.state.lock().unwrap();
        st.loc_names.push(name.to_string());
        st.loc_names.len() - 1
    })
}

/// Register a child simulated thread (no yield — the child only
/// becomes schedulable, via its pending `Start`).
pub(crate) fn register_thread(main: Box<dyn FnOnce() + Send>) -> usize {
    with_ctx(|ctl, parent| {
        let mut st = ctl.state.lock().unwrap();
        st.register(Some(parent), main)
    })
}

/// Record a named observation for the current execution (e.g. the
/// final counter value). Aggregated across schedules by the explorer.
pub fn record(key: &str, value: i64) {
    with_ctx(|ctl, _| {
        let mut st = ctl.state.lock().unwrap();
        st.observations.insert(key.to_string(), value);
    });
}

impl State {
    fn register(&mut self, parent: Option<usize>, main: Box<dyn FnOnce() + Send>) -> usize {
        let tid = self.threads.len();
        self.detector.on_spawn(parent, tid);
        self.threads.push(ThreadRec {
            status: Status::Unstarted,
            pending: Some(Op::start()),
            main: Some(main),
            os: None,
        });
        tid
    }

    fn enabled(&self) -> Vec<(usize, Op)> {
        self.threads
            .iter()
            .enumerate()
            .filter_map(|(tid, rec)| {
                if !matches!(rec.status, Status::Unstarted | Status::Ready) {
                    return None;
                }
                let op = rec.pending.as_ref()?;
                let runnable = match op.kind {
                    OpKind::Lock => {
                        !self.lock_held.contains_key(&op.loc.expect("lock loc"))
                    }
                    OpKind::Join { target } => {
                        matches!(self.threads[target].status, Status::Finished)
                    }
                    OpKind::BarrierWait => {
                        // Enabled once the episode this thread arrived
                        // in has completed (the generation moved on).
                        let loc = op.loc.expect("barrier loc");
                        self.barriers.get(&loc).is_some_and(|b| {
                            b.waiting_gen.get(&tid).is_none_or(|g| b.generation > *g)
                        })
                    }
                    _ => true,
                };
                runnable.then(|| (tid, op.clone()))
            })
            .collect()
    }

    /// Human description of who is stuck on what (deadlock reports).
    fn describe_blocked(&self) -> String {
        let mut parts = Vec::new();
        for (tid, rec) in self.threads.iter().enumerate() {
            if matches!(rec.status, Status::Ready | Status::Unstarted) {
                if let Some(op) = &rec.pending {
                    let name = op
                        .loc
                        .map(|l| self.loc_names[l].clone())
                        .unwrap_or_default();
                    parts.push(format!("T{tid} blocked at {}", op.describe(&name)));
                }
            }
        }
        parts.join("; ")
    }

}

/// Everything the explorer needs from one finished execution.
pub(crate) struct ExecOutcome {
    /// All threads ran to completion.
    pub completed: bool,
    /// Abandoned by the strategy (sleep-set prune).
    pub pruned: bool,
    /// Abandoned by the step bound.
    pub truncated: bool,
    /// No enabled thread while some were unfinished.
    pub deadlock: Option<String>,
    /// A simulated thread's real panic (assertion failure, …).
    pub panic: Option<String>,
    pub schedule: Vec<usize>,
    pub events: Vec<EventRec>,
    pub races: Vec<RawRace>,
    pub observations: BTreeMap<String, i64>,
    pub loc_names: Vec<String>,
}

/// The per-step choice made by a strategy: which enabled thread runs,
/// or abandon the execution (sleep-set prune).
pub(crate) type Choice = Option<usize>;

impl Controller {
    fn new() -> Arc<Self> {
        Arc::new(Controller {
            state: StdMutex::new(State {
                threads: Vec::new(),
                active: None,
                abort: false,
                loc_names: Vec::new(),
                lock_held: BTreeMap::new(),
                barriers: BTreeMap::new(),
                detector: Detector::default(),
                events: Vec::new(),
                schedule: Vec::new(),
                observations: BTreeMap::new(),
                panic: None,
            }),
            cv: Condvar::new(),
        })
    }

    fn yield_op(self: &Arc<Self>, tid: usize, op: Op) {
        let mut st = self.state.lock().unwrap();
        if st.abort {
            drop(st);
            std::panic::panic_any(AbortToken);
        }
        st.threads[tid].pending = Some(op);
        st.threads[tid].status = Status::Ready;
        st.active = None;
        self.cv.notify_all();
        loop {
            if st.abort {
                drop(st);
                std::panic::panic_any(AbortToken);
            }
            if st.active == Some(tid) {
                return;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    fn thread_main(self: Arc<Self>, tid: usize, main: Box<dyn FnOnce() + Send>) {
        CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&self), tid)));
        let result = catch_unwind(AssertUnwindSafe(main));
        let mut st = self.state.lock().unwrap();
        st.threads[tid].status = Status::Finished;
        st.threads[tid].pending = None;
        st.active = None;
        if let Err(payload) = result {
            if !payload.is::<AbortToken>() {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                st.panic.get_or_insert(format!("T{tid} panicked: {msg}"));
                st.abort = true;
            }
        }
        self.cv.notify_all();
    }

    /// Grant the chosen thread its pending step: record it, apply the
    /// happens-before pass, update lock state, start the OS thread if
    /// this is its `Start`.
    fn grant(self: &Arc<Self>, st: &mut State, tid: usize) {
        let op = st.threads[tid].pending.take().expect("granted thread has a pending op");
        let mut barrier_completed = None;
        match op.kind {
            OpKind::Lock => {
                let loc = op.loc.expect("lock loc");
                let prev = st.lock_held.insert(loc, tid);
                debug_assert!(prev.is_none(), "granted a held lock");
            }
            OpKind::Unlock => {
                let loc = op.loc.expect("unlock loc");
                let owner = st.lock_held.remove(&loc);
                debug_assert_eq!(owner, Some(tid), "unlock by non-owner");
            }
            OpKind::BarrierArrive { participants } => {
                let loc = op.loc.expect("barrier loc");
                let bar = st.barriers.entry(loc).or_default();
                bar.waiting_gen.insert(tid, bar.generation);
                bar.arrived.insert(tid);
                if bar.arrived.len() >= participants {
                    bar.arrived.clear();
                    bar.generation += 1;
                    barrier_completed = Some(loc);
                }
            }
            OpKind::BarrierWait => {
                let loc = op.loc.expect("barrier loc");
                if let Some(bar) = st.barriers.get_mut(&loc) {
                    bar.waiting_gen.remove(&tid);
                }
            }
            _ => {}
        }
        let event = st.events.len();
        st.detector.on_op(tid, &op, event);
        if let Some(loc) = barrier_completed {
            st.detector.on_barrier_complete(loc);
        }
        st.events.push(EventRec { tid, op });
        st.schedule.push(tid);
        if matches!(st.threads[tid].status, Status::Unstarted) {
            let main = st.threads[tid].main.take().expect("unstarted thread has a main");
            let ctl = Arc::clone(self);
            st.threads[tid].os = Some(std::thread::spawn(move || ctl.thread_main(tid, main)));
        }
        st.threads[tid].status = Status::Running;
        st.active = Some(tid);
        self.cv.notify_all();
    }

    fn abort_and_join(self: &Arc<Self>) {
        let handles: Vec<std::thread::JoinHandle<()>> = {
            let mut st = self.state.lock().unwrap();
            st.abort = true;
            self.cv.notify_all();
            st.threads.iter_mut().filter_map(|t| t.os.take()).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }

    fn take_outcome(self: &Arc<Self>, completed: bool, pruned: bool, truncated: bool, deadlock: Option<String>) -> ExecOutcome {
        let mut st = self.state.lock().unwrap();
        ExecOutcome {
            completed,
            pruned,
            truncated,
            deadlock,
            panic: st.panic.take(),
            schedule: std::mem::take(&mut st.schedule),
            events: std::mem::take(&mut st.events),
            races: std::mem::take(&mut st.detector.races),
            observations: std::mem::take(&mut st.observations),
            loc_names: std::mem::take(&mut st.loc_names),
        }
    }
}

/// Run one execution of `body` under the control of `chooser`, which
/// is called with `(step, enabled)` — `enabled` sorted by thread id —
/// and returns the chosen tid, or `None` to abandon the execution.
pub(crate) fn run_one(
    body: Arc<dyn Fn() + Send + Sync>,
    max_steps: usize,
    mut chooser: impl FnMut(usize, &[(usize, Op)]) -> Choice,
) -> ExecOutcome {
    silence_abort_token_panics();
    let ctl = Controller::new();
    {
        let mut st = ctl.state.lock().unwrap();
        let b = Arc::clone(&body);
        st.register(None, Box::new(move || b()));
    }
    let mut step = 0usize;
    let (completed, pruned, truncated, deadlock) = loop {
        let mut st = ctl.state.lock().unwrap();
        // Wait for the running thread (if any) to park or finish.
        while st.active.is_some()
            && !st.abort
            && st.threads.iter().any(|t| matches!(t.status, Status::Running))
        {
            st = ctl.cv.wait(st).unwrap();
        }
        if st.panic.is_some() || st.abort {
            break (false, false, false, None);
        }
        if st.threads.iter().all(|t| matches!(t.status, Status::Finished)) {
            break (true, false, false, None);
        }
        let enabled = st.enabled();
        if enabled.is_empty() {
            let msg = st.describe_blocked();
            break (false, false, false, Some(msg));
        }
        if step >= max_steps {
            break (false, false, true, None);
        }
        match chooser(step, &enabled) {
            None => break (false, true, false, None),
            Some(tid) => {
                debug_assert!(enabled.iter().any(|(t, _)| *t == tid), "chose a disabled thread");
                ctl.grant(&mut st, tid);
                step += 1;
            }
        }
    };
    ctl.abort_and_join();
    ctl.take_outcome(completed, pruned, truncated, deadlock)
}
