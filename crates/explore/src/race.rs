//! FastTrack-style happens-before race detection.
//!
//! The detector runs *online*: the controller applies every granted
//! operation in schedule order, so by the time an execution finishes
//! the list of racing access pairs is complete. Per location it keeps
//! the last write and the last read of each thread as FastTrack-style
//! epochs (`clock@tid`), plus a sync clock carrying release/acquire
//! and mutex ordering; per thread it keeps a full vector clock.
//!
//! A pair of accesses to the same location races iff they are from
//! different threads, at least one is a write, at least one is a
//! "racy" access ([`Op::racy`]: plain, or `Relaxed` atomic — the
//! demos' stand-in for unsynchronised code), and neither
//! happens-before the other.

use std::collections::BTreeMap;

use crate::clock::VectorClock;
use crate::op::{Op, OpKind};

/// One recorded access, FastTrack-epoch style.
#[derive(Clone, Debug)]
struct Access {
    tid: usize,
    clock: u64,
    event: usize,
    racy: bool,
    write: bool,
}

#[derive(Clone, Debug, Default)]
struct LocState {
    /// Clock published by release operations on this location (and by
    /// unlocks, for mutex locations).
    sync: VectorClock,
    last_write: Option<Access>,
    last_reads: BTreeMap<usize, Access>,
}

/// Per-barrier clocks: arrivals of the current episode accumulate in
/// `gathering`; when the episode completes the join of all arrival
/// clocks moves to `released`, and every waiter leaving the episode
/// acquires it. Episodes are strictly sequential (a thread must leave
/// episode *g* before it can arrive at *g + 1*, and *g + 1* cannot
/// complete until all participants re-arrived), so one `released`
/// slot per barrier is exact, not an approximation.
#[derive(Clone, Debug, Default)]
struct BarrierClocks {
    gathering: VectorClock,
    released: VectorClock,
}

/// A racing pair found during one execution: location id plus the two
/// event indices (first = earlier in the schedule).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct RawRace {
    pub loc: usize,
    pub first_event: usize,
    pub second_event: usize,
}

/// The online detector state for one execution.
#[derive(Debug, Default)]
pub(crate) struct Detector {
    clocks: Vec<VectorClock>,
    locs: Vec<LocState>,
    barriers: BTreeMap<usize, BarrierClocks>,
    pub races: Vec<RawRace>,
}

impl Detector {
    /// Register thread `child`, inheriting `parent`'s clock (the
    /// spawn edge). The root thread has no parent.
    pub fn on_spawn(&mut self, parent: Option<usize>, child: usize) {
        debug_assert_eq!(child, self.clocks.len(), "threads register in id order");
        let mut vc = match parent {
            Some(p) => self.clocks[p].clone(),
            None => VectorClock::new(),
        };
        vc.tick(child);
        self.clocks.push(vc);
        if let Some(p) = parent {
            self.clocks[p].tick(p);
        }
    }

    fn loc_mut(&mut self, loc: usize) -> &mut LocState {
        if self.locs.len() <= loc {
            self.locs.resize_with(loc + 1, LocState::default);
        }
        &mut self.locs[loc]
    }

    /// Apply one granted operation (event index `event` in the trace).
    pub fn on_op(&mut self, tid: usize, op: &Op, event: usize) {
        match op.kind {
            OpKind::Start | OpKind::Yield => {}
            OpKind::Join { target } => {
                let child = self.clocks[target].clone();
                self.clocks[tid].join(&child);
            }
            OpKind::Lock => {
                let sync = self.loc_mut(op.loc.expect("lock has a location")).sync.clone();
                self.clocks[tid].join(&sync);
            }
            OpKind::Unlock => {
                let vc = self.clocks[tid].clone();
                self.loc_mut(op.loc.expect("unlock has a location")).sync = vc;
                self.clocks[tid].tick(tid);
            }
            OpKind::BarrierArrive { .. } => {
                // Publish this thread's clock into the episode's
                // gathering clock (a release into the barrier).
                let loc = op.loc.expect("barrier has a location");
                let vc = self.clocks[tid].clone();
                self.barriers.entry(loc).or_default().gathering.join(&vc);
                self.clocks[tid].tick(tid);
            }
            OpKind::BarrierWait => {
                // Leaving a completed episode acquires the join of all
                // its arrival clocks: everything before any arrival
                // happens-before everything after any departure.
                let loc = op.loc.expect("barrier has a location");
                let released = self.barriers.entry(loc).or_default().released.clone();
                self.clocks[tid].join(&released);
            }
            OpKind::Load { .. } | OpKind::Store { .. } | OpKind::Rmw { .. } => {
                self.data_access(tid, op, event);
            }
        }
    }

    /// The controller observed the last expected arrival of a barrier
    /// episode: seal the gathered clock as the episode's release clock.
    pub fn on_barrier_complete(&mut self, loc: usize) {
        let bar = self.barriers.entry(loc).or_default();
        bar.released = std::mem::take(&mut bar.gathering);
    }

    fn data_access(&mut self, tid: usize, op: &Op, event: usize) {
        let loc = op.loc.expect("data access has a location");
        if op.is_acquire() {
            let sync = self.loc_mut(loc).sync.clone();
            self.clocks[tid].join(&sync);
        }
        let racy = op.racy();
        let here = Access {
            tid,
            clock: self.clocks[tid].get(tid),
            event,
            racy,
            write: op.is_write(),
        };
        // Race checks against the recorded accesses.
        let vc = self.clocks[tid].clone();
        let mut found: Vec<RawRace> = Vec::new();
        {
            let state = self.loc_mut(loc);
            let conflicts = |prev: &Access| {
                prev.tid != tid
                    && !vc.covers(prev.tid, prev.clock)
                    && (prev.racy || racy)
                    && (prev.write || here.write)
            };
            if let Some(w) = &state.last_write {
                if conflicts(w) {
                    found.push(RawRace { loc, first_event: w.event, second_event: event });
                }
            }
            if here.write {
                for r in state.last_reads.values() {
                    if conflicts(r) {
                        found.push(RawRace { loc, first_event: r.event, second_event: event });
                    }
                }
            }
        }
        self.races.extend(found);
        // Release effects and bookkeeping.
        if op.is_release() {
            let vc = self.clocks[tid].clone();
            self.loc_mut(loc).sync = vc;
            self.clocks[tid].tick(tid);
        }
        let state = self.loc_mut(loc);
        match op.kind {
            OpKind::Load { .. } => {
                state.last_reads.insert(tid, here);
            }
            OpKind::Store { .. } => {
                state.last_write = Some(here);
            }
            OpKind::Rmw { .. } => {
                // An RMW both reads and writes.
                state.last_reads.insert(tid, here.clone());
                state.last_write = Some(here);
            }
            _ => unreachable!("data_access only sees data ops"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    fn op(kind: OpKind, loc: usize) -> Op {
        Op { kind, loc: Some(loc) }
    }
    fn rlx_store(loc: usize) -> Op {
        op(OpKind::Store { ord: Ordering::Relaxed, atomic: true }, loc)
    }
    fn rlx_load(loc: usize) -> Op {
        op(OpKind::Load { ord: Ordering::Relaxed, atomic: true }, loc)
    }

    fn detector_with_threads(n: usize) -> Detector {
        let mut d = Detector::default();
        d.on_spawn(None, 0);
        for t in 1..n {
            d.on_spawn(Some(0), t);
        }
        d
    }

    #[test]
    fn unordered_relaxed_accesses_race() {
        let mut d = detector_with_threads(2);
        d.on_op(0, &rlx_store(0), 0);
        d.on_op(1, &rlx_load(0), 1);
        assert_eq!(d.races.len(), 1);
        assert_eq!(d.races[0], RawRace { loc: 0, first_event: 0, second_event: 1 });
    }

    #[test]
    fn release_acquire_orders_publication() {
        let mut d = detector_with_threads(2);
        // T0: data.write(); flag.store(Release). T1: flag.load(Acquire); data.read().
        d.on_op(0, &op(OpKind::Store { ord: Ordering::Relaxed, atomic: false }, 0), 0);
        d.on_op(0, &op(OpKind::Store { ord: Ordering::Release, atomic: true }, 1), 1);
        d.on_op(1, &op(OpKind::Load { ord: Ordering::Acquire, atomic: true }, 1), 2);
        d.on_op(1, &op(OpKind::Load { ord: Ordering::Relaxed, atomic: false }, 0), 3);
        assert!(d.races.is_empty(), "release/acquire must order the data access");
    }

    #[test]
    fn relaxed_flag_leaves_publication_racy() {
        let mut d = detector_with_threads(2);
        d.on_op(0, &op(OpKind::Store { ord: Ordering::Relaxed, atomic: false }, 0), 0);
        d.on_op(0, &rlx_store(1), 1);
        d.on_op(1, &rlx_load(1), 2);
        d.on_op(1, &op(OpKind::Load { ord: Ordering::Relaxed, atomic: false }, 0), 3);
        // Races on both the flag (1) and the data (0).
        assert!(d.races.iter().any(|r| r.loc == 0));
        assert!(d.races.iter().any(|r| r.loc == 1));
    }

    #[test]
    fn mutex_orders_critical_sections() {
        let mut d = detector_with_threads(2);
        let cell = 0usize;
        let lock = 1usize;
        for (tid, base) in [(0usize, 0usize), (1, 4)] {
            d.on_op(tid, &op(OpKind::Lock, lock), base);
            d.on_op(tid, &op(OpKind::Load { ord: Ordering::Relaxed, atomic: false }, cell), base + 1);
            d.on_op(tid, &op(OpKind::Store { ord: Ordering::Relaxed, atomic: false }, cell), base + 2);
            d.on_op(tid, &op(OpKind::Unlock, lock), base + 3);
        }
        assert!(d.races.is_empty(), "lock ordering must cover the plain accesses");
    }

    #[test]
    fn rmw_pairs_do_not_race_but_race_with_plain() {
        let mut d = detector_with_threads(2);
        d.on_op(0, &op(OpKind::Rmw { ord: Ordering::Relaxed }, 0), 0);
        d.on_op(1, &op(OpKind::Rmw { ord: Ordering::Relaxed }, 0), 1);
        assert!(d.races.is_empty(), "two RMWs are atomic — no race");
        d.on_op(0, &op(OpKind::Store { ord: Ordering::Relaxed, atomic: false }, 0), 2);
        assert!(!d.races.is_empty(), "plain store vs RMW is a race");
    }

    #[test]
    fn join_edge_orders_parent_reads() {
        let mut d = detector_with_threads(2);
        d.on_op(1, &rlx_store(0), 0);
        d.on_op(0, &op(OpKind::Join { target: 1 }, 0), 1);
        d.on_op(0, &rlx_load(0), 2);
        assert!(d.races.is_empty(), "join must order the child's writes");
    }
}
