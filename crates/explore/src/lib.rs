//! # parc-explore — deterministic schedule exploration + race detection
//!
//! The workspace's first *analysis* layer: a model-checking executor
//! for the concurrency demos. `memmodel`'s own docs used to concede
//! that a demo "allows a race [but] cannot force the scheduler to
//! exhibit it" — this crate removes the scheduler from the equation.
//! Programs are written against shim primitives
//! ([`sync::AtomicU64`], [`sync::PlainCell`], [`sync::Mutex`],
//! [`sync::thread::spawn`]) whose every load/store/RMW/lock is a
//! yield point driven by a controlled scheduler, and each explored
//! execution is swept by a FastTrack-style vector-clock pass that
//! reports concrete racing access pairs.
//!
//! Two strategies:
//!
//! * [`Strategy::Dfs`] — exhaustive depth-first enumeration of
//!   interleavings with sleep-set partial-order reduction (redundant
//!   orders of commuting operations are pruned; every Mazurkiewicz
//!   trace is still visited, so race verdicts are exact). For small
//!   litmus tests this *proves* "this code races" / "this fix is
//!   race-free over the whole space".
//! * [`Strategy::Pct`] — a seeded PCT-style randomised scheduler
//!   (random thread priorities with a few priority-change points per
//!   execution) for workloads whose interleaving space is too large
//!   to enumerate. Seeding follows the `faultsim` convention: same
//!   seed ⇒ bit-identical schedule sequence and identical reports.
//!
//! The ported litmus catalogue lives in [`litmus`]; verdicts feed the
//! `memmodel`/`taskcol` test suites, experiment E-RACE and the CI
//! `explore` job.
//!
//! Interleaving exploration is sequentially consistent: it proves or
//! refutes *data-race freedom* (the license hardware and compilers
//! need for reordering), not weak-memory outcomes themselves — the
//! store-buffer litmus is reported through its race, not through an
//! impossible-under-SC `r1 = r2 = 0` observation.

pub mod clock;
mod ctl;
pub mod litmus;
pub mod op;
mod race;
pub mod replay;
pub mod sync;

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use parc_util::rng::{SplitMix64, Xoshiro256};
use parc_util::table::Table;

pub use ctl::record;
pub use op::{Op, OpKind};
pub use sync::thread;

/// How the explorer walks the interleaving space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Exhaustive DFS with sleep-set partial-order reduction.
    Dfs,
    /// Seeded PCT-style random scheduling.
    Pct {
        /// RNG seed (same seed ⇒ identical exploration).
        seed: u64,
        /// Number of schedules to run.
        iterations: usize,
        /// Priority-change points per schedule (PCT depth − 1).
        depth: usize,
    },
}

/// Exploration configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Name used in reports.
    pub name: String,
    /// The exploration strategy.
    pub strategy: Strategy,
    /// Abort any single execution beyond this many steps.
    pub max_steps: usize,
    /// Stop the whole exploration after this many executions.
    pub max_schedules: usize,
    /// Return as soon as one racing schedule has been found.
    pub stop_at_first_race: bool,
}

impl Config {
    /// Exhaustive DFS configuration with litmus-friendly bounds.
    #[must_use]
    pub fn dfs(name: &str) -> Self {
        Config {
            name: name.to_string(),
            strategy: Strategy::Dfs,
            max_steps: 10_000,
            max_schedules: 100_000,
            stop_at_first_race: false,
        }
    }

    /// DFS configuration tuned for fuzzing corpora: tight bounds (the
    /// generated programs are tiny) and early exit on the first
    /// witnessed race, so thousands of programs stay affordable.
    #[must_use]
    pub fn fuzz(name: &str) -> Self {
        Config {
            name: name.to_string(),
            strategy: Strategy::Dfs,
            max_steps: 2_000,
            max_schedules: 4_000,
            stop_at_first_race: true,
        }
    }

    /// Seeded PCT configuration.
    #[must_use]
    pub fn pct(name: &str, seed: u64, iterations: usize, depth: usize) -> Self {
        Config {
            name: name.to_string(),
            strategy: Strategy::Pct { seed, iterations, depth },
            max_steps: 10_000,
            max_schedules: iterations,
            stop_at_first_race: false,
        }
    }

    /// Builder-style override of the per-execution step bound.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Builder-style override of the schedule budget.
    #[must_use]
    pub fn with_max_schedules(mut self, max_schedules: usize) -> Self {
        self.max_schedules = max_schedules;
        self
    }

    /// Builder-style early exit on the first racing schedule.
    #[must_use]
    pub fn stop_at_first_race(mut self, stop: bool) -> Self {
        self.stop_at_first_race = stop;
        self
    }
}

/// One access of a racing pair, resolved to human terms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceAccess {
    /// Simulated thread id.
    pub tid: usize,
    /// Step index within the witnessing schedule.
    pub step: usize,
    /// Operation description, e.g. `count.write()`.
    pub what: String,
}

/// A data race proven by a concrete schedule.
#[derive(Clone, Debug)]
pub struct RaceReport {
    /// The shared location the pair touches.
    pub location: String,
    /// The earlier access of the pair.
    pub first: RaceAccess,
    /// The later access of the pair.
    pub second: RaceAccess,
    /// The witnessing schedule (chosen thread per step).
    pub schedule: Vec<usize>,
    /// The full event trace of the witnessing execution:
    /// `(tid, description)` per step.
    pub trace: Vec<(usize, String)>,
}

impl RaceReport {
    /// Render the witnessing interleaving as a one-column-per-thread
    /// diagram with the racing pair marked — the classic litmus-table
    /// layout from the memory-model handout.
    #[must_use]
    pub fn render(&self) -> String {
        let n_threads = self.trace.iter().map(|(t, _)| t + 1).max().unwrap_or(1);
        let mut header: Vec<String> = vec!["step".to_string()];
        header.extend((0..n_threads).map(|t| format!("T{t}")));
        header.push(String::new());
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = Table::new(
            &format!("racing schedule for `{}`", self.location),
            &header_refs,
        );
        for (step, (tid, what)) in self.trace.iter().enumerate() {
            let mut row: Vec<String> = vec![step.to_string()];
            for t in 0..n_threads {
                row.push(if t == *tid { what.clone() } else { "·".to_string() });
            }
            row.push(if step == self.first.step {
                "← race (first)".to_string()
            } else if step == self.second.step {
                "← race (second)".to_string()
            } else {
                String::new()
            });
            table.row(&row);
        }
        table.render()
    }
}

/// Everything one exploration produced.
#[derive(Clone, Debug, Default)]
pub struct ExploreReport {
    /// Configuration name.
    pub name: String,
    /// Executions that ran to completion.
    pub schedules: usize,
    /// Executions abandoned by sleep-set pruning (redundant orders).
    pub pruned: usize,
    /// Executions abandoned by the step bound.
    pub truncated: usize,
    /// Total granted steps across all executions.
    pub steps_total: usize,
    /// DFS only: the whole interleaving space was enumerated within
    /// the budgets (race-freedom below is then a proof, not a sample).
    pub exhausted: bool,
    /// Distinct racing pairs found, with witnessing schedules.
    pub races: Vec<RaceReport>,
    /// Deadlocked schedules found.
    pub deadlocks: usize,
    /// Blocked-thread description of the first deadlock.
    pub first_deadlock: Option<String>,
    /// Schedule index (0-based execution number) of the first race.
    pub first_race_schedule: Option<usize>,
    /// Step index of the racing (second) access in that schedule.
    pub first_race_depth: Option<usize>,
    /// Fingerprint per executed schedule, in exploration order — the
    /// determinism tests compare these across reruns.
    pub schedule_log: Vec<u64>,
    /// Values recorded via [`record`], aggregated across schedules.
    pub observations: BTreeMap<String, BTreeSet<i64>>,
}

impl ExploreReport {
    /// No race was found anywhere in the explored space.
    #[must_use]
    pub fn race_free(&self) -> bool {
        self.races.is_empty()
    }

    /// One-word verdict for tables.
    #[must_use]
    pub fn verdict(&self) -> &'static str {
        if !self.races.is_empty() {
            "race found"
        } else if self.exhausted {
            "race-free (proved)"
        } else {
            "race-free (explored)"
        }
    }

    /// Render the summary plus every racing schedule.
    #[must_use]
    pub fn render(&self) -> String {
        let mut table = Table::new(
            &format!("explore `{}`", self.name),
            &["metric", "value"],
        );
        table.row(&["schedules".to_string(), self.schedules.to_string()]);
        table.row(&["pruned (POR)".to_string(), self.pruned.to_string()]);
        table.row(&["truncated".to_string(), self.truncated.to_string()]);
        table.row(&["steps".to_string(), self.steps_total.to_string()]);
        table.row(&["deadlocks".to_string(), self.deadlocks.to_string()]);
        table.row(&["races".to_string(), self.races.len().to_string()]);
        table.row(&["verdict".to_string(), self.verdict().to_string()]);
        for (key, values) in &self.observations {
            let rendered: Vec<String> = values.iter().map(ToString::to_string).collect();
            table.row(&[format!("observed {key}"), format!("{{{}}}", rendered.join(", "))]);
        }
        let mut out = table.render();
        for race in &self.races {
            out.push('\n');
            out.push_str(&race.render());
        }
        if let Some(d) = &self.first_deadlock {
            out.push('\n');
            out.push_str(&format!("first deadlock: {d}\n"));
        }
        out
    }

    /// Deterministic digest of the whole exploration (schedule
    /// sequence + race pairs) for rerun comparisons.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xE_A75_u64;
        for s in &self.schedule_log {
            h = SplitMix64::mix(h ^ s);
        }
        for r in &self.races {
            h = SplitMix64::mix(h ^ r.first.step as u64 ^ (r.second.step as u64) << 16);
            for b in r.location.bytes() {
                h = SplitMix64::mix(h ^ u64::from(b));
            }
        }
        h
    }
}

/// A DFS stack frame: one scheduling decision plus the bookkeeping
/// needed to enumerate alternatives (tried/sleep sets) and to derive
/// child sleep sets (the enabled threads' pending operations).
struct Frame {
    chosen: usize,
    enabled: BTreeMap<usize, Op>,
    sleep: BTreeSet<usize>,
}

fn schedule_fingerprint(schedule: &[usize]) -> u64 {
    let mut h = 0x5EED_u64;
    for &tid in schedule {
        h = SplitMix64::mix(h ^ (tid as u64 + 1));
    }
    h
}

/// Explore every interleaving of `body` under `config` and report.
///
/// `body` is the litmus program's "main": it creates shim state,
/// spawns simulated threads via [`thread::spawn`], joins them, and
/// may [`record`] observations. It is re-run once per explored
/// schedule, so it must be a `Fn` closure. A panic inside a simulated
/// thread (e.g. a failed assertion) aborts the exploration and is
/// re-raised on the caller's thread.
pub fn explore<F>(config: Config, body: F) -> ExploreReport
where
    F: Fn() + Send + Sync + 'static,
{
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
    let mut report = ExploreReport {
        name: config.name.clone(),
        exhausted: false,
        ..ExploreReport::default()
    };
    let mut race_keys: BTreeSet<(String, String, String)> = BTreeSet::new();
    let mut executions = 0usize;

    let absorb = |report: &mut ExploreReport,
                      race_keys: &mut BTreeSet<(String, String, String)>,
                      outcome: &ctl::ExecOutcome| {
        report.steps_total += outcome.schedule.len();
        report.schedule_log.push(schedule_fingerprint(&outcome.schedule));
        if outcome.pruned {
            report.pruned += 1;
            return;
        }
        if outcome.truncated {
            report.truncated += 1;
            return;
        }
        if let Some(d) = &outcome.deadlock {
            report.deadlocks += 1;
            if report.first_deadlock.is_none() {
                report.first_deadlock = Some(d.clone());
            }
        }
        if outcome.completed {
            report.schedules += 1;
            for (key, value) in &outcome.observations {
                report.observations.entry(key.clone()).or_default().insert(*value);
            }
        }
        let describe = |event: usize| {
            let ev = &outcome.events[event];
            let name = ev.op.loc.map(|l| outcome.loc_names[l].as_str()).unwrap_or("");
            (ev.tid, ev.op.describe(name))
        };
        for raw in &outcome.races {
            let location = outcome.loc_names[raw.loc].clone();
            let (tid1, what1) = describe(raw.first_event);
            let (tid2, what2) = describe(raw.second_event);
            let key = (location.clone(), what1.clone(), what2.clone());
            if !race_keys.insert(key) {
                continue;
            }
            if report.first_race_schedule.is_none() {
                report.first_race_schedule = Some(report.schedule_log.len() - 1);
                report.first_race_depth = Some(raw.second_event);
            }
            report.races.push(RaceReport {
                location,
                first: RaceAccess { tid: tid1, step: raw.first_event, what: what1 },
                second: RaceAccess { tid: tid2, step: raw.second_event, what: what2 },
                schedule: outcome.schedule.clone(),
                trace: outcome
                    .events
                    .iter()
                    .map(|ev| {
                        let name =
                            ev.op.loc.map(|l| outcome.loc_names[l].as_str()).unwrap_or("");
                        (ev.tid, ev.op.describe(name))
                    })
                    .collect(),
            });
        }
    };

    match config.strategy {
        Strategy::Dfs => {
            let mut frames: Vec<Frame> = Vec::new();
            let mut space_exhausted = false;
            loop {
                if executions >= config.max_schedules {
                    break;
                }
                // Run one execution, replaying the frame prefix and
                // extending it by first-untried choices.
                let outcome = {
                    let frames = &mut frames;
                    ctl::run_one(Arc::clone(&body), config.max_steps, move |step, enabled| {
                        if step < frames.len() {
                            return Some(frames[step].chosen);
                        }
                        let enabled_map: BTreeMap<usize, Op> =
                            enabled.iter().map(|(t, op)| (*t, op.clone())).collect();
                        let sleep: BTreeSet<usize> = match frames.last() {
                            None => BTreeSet::new(),
                            Some(parent) => {
                                let chosen_op = &parent.enabled[&parent.chosen];
                                parent
                                    .sleep
                                    .iter()
                                    .filter(|u| {
                                        parent
                                            .enabled
                                            .get(u)
                                            .is_some_and(|op| op.independent(chosen_op))
                                    })
                                    .copied()
                                    .collect()
                            }
                        };
                        let choice = enabled_map.keys().find(|t| !sleep.contains(t)).copied();
                        match choice {
                            Some(tid) => {
                                frames.push(Frame { chosen: tid, enabled: enabled_map, sleep });
                                Some(tid)
                            }
                            // Every enabled thread is asleep: this
                            // whole subtree is covered elsewhere.
                            None => None,
                        }
                    })
                };
                executions += 1;
                if let Some(p) = outcome.panic {
                    panic!("explore `{}`: {p}", config.name);
                }
                absorb(&mut report, &mut race_keys, &outcome);
                if config.stop_at_first_race && !report.races.is_empty() {
                    break;
                }
                // Backtrack: mark the deepest choice as slept and move
                // to the next untried-awake sibling.
                loop {
                    let Some(frame) = frames.last_mut() else {
                        space_exhausted = true;
                        break;
                    };
                    frame.sleep.insert(frame.chosen);
                    let next = frame
                        .enabled
                        .keys()
                        .find(|t| !frame.sleep.contains(t))
                        .copied();
                    match next {
                        Some(tid) => {
                            frame.chosen = tid;
                            break;
                        }
                        None => {
                            frames.pop();
                        }
                    }
                }
                if space_exhausted {
                    report.exhausted = true;
                    break;
                }
            }
        }
        Strategy::Pct { seed, iterations, depth } => {
            let base = Xoshiro256::seed_from_u64(seed);
            for iteration in 0..iterations.min(config.max_schedules) {
                let mut rng = base.stream(iteration);
                let change_points: BTreeSet<usize> = (0..depth.saturating_sub(1))
                    .map(|_| rng.gen_range_usize(0..config.max_steps.clamp(1, 128)))
                    .collect();
                let mut priorities: BTreeMap<usize, i128> = BTreeMap::new();
                let mut demote_floor: i128 = -1;
                let outcome = {
                    let rng = &mut rng;
                    let priorities = &mut priorities;
                    let demote_floor = &mut demote_floor;
                    let change_points = &change_points;
                    ctl::run_one(Arc::clone(&body), config.max_steps, move |step, enabled| {
                        for (tid, _) in enabled {
                            priorities
                                .entry(*tid)
                                .or_insert_with(|| i128::from(rng.next_u64()));
                        }
                        let top = |prio: &BTreeMap<usize, i128>| {
                            enabled
                                .iter()
                                .map(|(t, _)| *t)
                                .max_by_key(|t| (prio[t], usize::MAX - *t))
                        };
                        if change_points.contains(&step) {
                            if let Some(t) = top(priorities) {
                                priorities.insert(t, *demote_floor);
                                *demote_floor -= 1;
                            }
                        }
                        top(priorities)
                    })
                };
                if let Some(p) = outcome.panic {
                    panic!("explore `{}`: {p}", config.name);
                }
                absorb(&mut report, &mut race_keys, &outcome);
                if config.stop_at_first_race && !report.races.is_empty() {
                    break;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;
    use sync::{Mutex, PlainCell};

    fn two_plain_increments() -> impl Fn() + Send + Sync + 'static {
        || {
            let cell = Arc::new(PlainCell::new("count", 0i64));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let cell = Arc::clone(&cell);
                handles.push(thread::spawn(move || {
                    let v = cell.get();
                    cell.set(v + 1);
                }));
            }
            for h in handles {
                h.join();
            }
            record("final", cell.get());
        }
    }

    #[test]
    fn dfs_finds_lost_update_and_both_outcomes() {
        let report = explore(Config::dfs("2-increments"), two_plain_increments());
        assert!(report.exhausted, "tiny space must be fully enumerated");
        assert!(!report.race_free(), "plain increments race");
        let outcomes = &report.observations["final"];
        assert!(outcomes.contains(&1), "a lost update must be witnessed: {outcomes:?}");
        assert!(outcomes.contains(&2), "the correct outcome must also appear");
        let race = &report.races[0];
        assert_eq!(race.location, "count");
        assert!(race.render().contains("race"));
    }

    #[test]
    fn dfs_proves_mutex_counter_race_free() {
        let report = explore(Config::dfs("mutex-counter"), || {
            let cell = Arc::new(PlainCell::new("count", 0i64));
            let lock = Arc::new(Mutex::new("lock", ()));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let cell = Arc::clone(&cell);
                let lock = Arc::clone(&lock);
                handles.push(thread::spawn(move || {
                    let guard = lock.lock();
                    let v = cell.get();
                    cell.set(v + 1);
                    drop(guard);
                }));
            }
            for h in handles {
                h.join();
            }
            record("final", cell.get());
        });
        assert!(report.exhausted);
        assert!(report.race_free(), "races: {:?}", report.races);
        assert_eq!(report.observations["final"], BTreeSet::from([2]));
        assert_eq!(report.verdict(), "race-free (proved)");
    }

    #[test]
    fn dfs_detects_lock_order_deadlock() {
        let report = explore(Config::dfs("ab-ba"), || {
            let a = Arc::new(Mutex::new("a", ()));
            let b = Arc::new(Mutex::new("b", ()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t1 = thread::spawn(move || {
                let ga = a2.lock();
                let gb = b2.lock();
                drop(gb);
                drop(ga);
            });
            let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
            let t2 = thread::spawn(move || {
                let gb = b3.lock();
                let ga = a3.lock();
                drop(ga);
                drop(gb);
            });
            t1.join();
            t2.join();
        });
        assert!(report.deadlocks > 0, "AB-BA must deadlock in some schedule");
        assert!(report.first_deadlock.as_deref().unwrap_or("").contains("lock"));
    }

    #[test]
    fn sleep_sets_prune_redundant_orders() {
        // Two threads touching *different* locations commute: with
        // sleep sets the explorer must visit strictly fewer complete
        // schedules than the naive interleaving count.
        let report = explore(Config::dfs("independent"), || {
            let x = Arc::new(PlainCell::new("x", 0i64));
            let y = Arc::new(PlainCell::new("y", 0i64));
            let xs = Arc::clone(&x);
            let t1 = thread::spawn(move || xs.set(1));
            let ys = Arc::clone(&y);
            let t2 = thread::spawn(move || ys.set(1));
            t1.join();
            t2.join();
        });
        assert!(report.exhausted);
        assert!(report.race_free());
        // The two stores commute, so at least one redundant order
        // must be cut by the sleep sets.
        assert!(
            report.pruned > 0,
            "expected pruning, got {} complete schedules and {} pruned",
            report.schedules,
            report.pruned
        );
    }

    #[test]
    fn pct_same_seed_is_bit_identical() {
        let run = |seed| {
            explore(
                Config::pct("pct-determinism", seed, 24, 3),
                two_plain_increments(),
            )
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.schedule_log, b.schedule_log);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = run(8);
        assert_ne!(
            a.schedule_log, c.schedule_log,
            "different seeds should explore differently"
        );
    }

    #[test]
    fn pct_finds_the_race_with_a_fixed_seed() {
        let report = explore(
            Config::pct("pct-race", 42, 32, 3),
            two_plain_increments(),
        );
        assert!(!report.race_free(), "seeded PCT should witness the racy pair");
    }

    #[test]
    fn stop_at_first_race_short_circuits() {
        let full = explore(Config::dfs("full"), two_plain_increments());
        let early = explore(
            Config::dfs("early").stop_at_first_race(true),
            two_plain_increments(),
        );
        assert!(!early.race_free());
        assert!(
            early.schedule_log.len() <= full.schedule_log.len(),
            "early stop must not explore more than the full run"
        );
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn simulated_panics_propagate() {
        let _ = explore(Config::dfs("panics"), || {
            let t = thread::spawn(|| panic!("boom"));
            t.join();
        });
    }

    #[test]
    fn barrier_orders_publication_race_free() {
        // T0 writes plain data, both wait at a 2-party barrier, T1
        // reads: the barrier's HB edge must cover the plain accesses
        // in every schedule.
        let report = explore(Config::dfs("barrier-mp"), || {
            let data = Arc::new(PlainCell::new("data", 0i64));
            let bar = Arc::new(sync::Barrier::new("bar", 2));
            let (d, b) = (Arc::clone(&data), Arc::clone(&bar));
            let writer = thread::spawn(move || {
                d.set(42);
                b.wait();
            });
            let (d, b) = (Arc::clone(&data), Arc::clone(&bar));
            let reader = thread::spawn(move || {
                b.wait();
                record("read", d.get());
            });
            writer.join();
            reader.join();
        });
        assert!(report.exhausted);
        assert!(report.race_free(), "races: {:?}", report.races);
        assert_eq!(report.deadlocks, 0);
        assert_eq!(report.observations["read"], BTreeSet::from([42]));
    }

    #[test]
    fn barrier_episodes_are_reusable() {
        // Two phases through the same barrier object: phase-1 write,
        // barrier, phase-2 write by the other thread, barrier, read.
        let report = explore(Config::dfs("barrier-phases"), || {
            let x = Arc::new(PlainCell::new("x", 0i64));
            let bar = Arc::new(sync::Barrier::new("bar", 2));
            let (xs, b) = (Arc::clone(&x), Arc::clone(&bar));
            let t0 = thread::spawn(move || {
                xs.set(1);
                b.wait();
                b.wait();
                record("after", xs.get());
            });
            let (xs, b) = (Arc::clone(&x), Arc::clone(&bar));
            let t1 = thread::spawn(move || {
                b.wait();
                let v = xs.get();
                xs.set(v + 10);
                b.wait();
            });
            t0.join();
            t1.join();
        });
        assert!(report.exhausted);
        assert!(report.race_free(), "races: {:?}", report.races);
        assert_eq!(report.observations["after"], BTreeSet::from([11]));
    }

    #[test]
    fn mismatched_barrier_counts_deadlock() {
        // T0 waits twice, T1 once: the second episode can never
        // complete, so every schedule deadlocks with T0 parked at the
        // barrier.
        let report = explore(Config::dfs("barrier-mismatch"), || {
            let bar = Arc::new(sync::Barrier::new("bar", 2));
            let b = Arc::clone(&bar);
            let t0 = thread::spawn(move || {
                b.wait();
                b.wait();
            });
            let b = Arc::clone(&bar);
            let t1 = thread::spawn(move || {
                b.wait();
            });
            t0.join();
            t1.join();
        });
        assert!(report.exhausted);
        assert!(report.deadlocks > 0, "mismatched barrier must deadlock");
        assert_eq!(report.schedules, 0, "no schedule can complete");
        assert!(report.first_deadlock.as_deref().unwrap_or("").contains("barrier_wait"));
    }

    #[test]
    fn barrier_does_not_synchronise_unrelated_writes() {
        // Both threads write the same plain cell *after* the barrier:
        // the barrier must not invent an ordering between them.
        let report = explore(Config::dfs("barrier-after"), || {
            let x = Arc::new(PlainCell::new("x", 0i64));
            let bar = Arc::new(sync::Barrier::new("bar", 2));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let (xs, b) = (Arc::clone(&x), Arc::clone(&bar));
                handles.push(thread::spawn(move || {
                    b.wait();
                    let v = xs.get();
                    xs.set(v + 1);
                }));
            }
            for h in handles {
                h.join();
            }
        });
        assert!(report.exhausted);
        assert!(!report.race_free(), "post-barrier plain increments still race");
    }

    #[test]
    fn atomic_rmw_is_race_free_and_exact() {
        let report = explore(Config::dfs("rmw"), || {
            let c = Arc::new(sync::AtomicU64::new("count", 0));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let c = Arc::clone(&c);
                handles.push(thread::spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }));
            }
            for h in handles {
                h.join();
            }
            record("final", c.load(Ordering::Relaxed) as i64);
        });
        assert!(report.exhausted);
        assert!(report.race_free());
        assert_eq!(report.observations["final"], BTreeSet::from([2]));
    }
}
