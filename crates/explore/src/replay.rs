//! Schedule recording and deterministic replay.
//!
//! The explorer ([`crate::explore`]) *searches* interleavings; this
//! module pins one down. A [`Recording`] captures a complete schedule
//! (which thread was granted each step, and what it did) in a form
//! that can be re-executed bit-for-bit: the controlled scheduler is
//! virtual-time, so the same choice sequence over the same body
//! produces the same events, observations and outcome on every run.
//!
//! Three entry points produce recordings:
//!
//! * [`record_first`] — the canonical schedule: every step grants the
//!   lowest-id enabled thread. Deterministic without a seed.
//! * [`record_seeded`] — a seeded random walk over the enabled sets
//!   (`faultsim` convention: same seed ⇒ identical recording).
//! * [`replay`] / [`replay_prefix`] — re-execute a recorded schedule,
//!   in full or stopping after `n` steps. A prefix replay reports the
//!   *frontier*: the set of enabled operations at the stop point,
//!   i.e. the scheduling decisions that were available right then.
//!   This is the primitive `parc-inspect` builds its time-travel
//!   cursor and schedule diffing on.
//!
//! Replays tolerate divergence: if the recorded thread id is not
//! enabled at some step (the body changed, or the schedule came from
//! a different program), the replay stops there and reports
//! [`Recording::diverged_at`] instead of panicking.

use std::collections::BTreeMap;
use std::sync::Arc;

use parc_util::rng::{SplitMix64, Xoshiro256};
use parc_util::table::Table;

use crate::ctl;
use crate::op::Op;

/// One granted step of a recorded execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Step {
    /// The simulated thread the step was granted to.
    pub tid: usize,
    /// Human description of the operation, e.g. `lock(m)` or
    /// `count.store(Relaxed)`.
    pub what: String,
}

/// A recorded (or replayed) execution of a shim-instrumented body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Recording {
    /// Name used in reports.
    pub name: String,
    /// The chosen thread id per step — enough to re-execute the run.
    pub schedule: Vec<usize>,
    /// The granted operations, resolved to human descriptions,
    /// parallel to `schedule`.
    pub steps: Vec<Step>,
    /// All simulated threads ran to completion.
    pub completed: bool,
    /// Blocked-thread description when the run deadlocked.
    pub deadlock: Option<String>,
    /// A simulated thread's real panic message, if any.
    pub panic: Option<String>,
    /// The per-execution step bound was hit.
    pub truncated: bool,
    /// Replays only: the first step index at which the requested
    /// schedule's thread was not enabled. `None` for recordings and
    /// for replays that followed their schedule to the end.
    pub diverged_at: Option<usize>,
    /// Prefix replays (and diverged replays): the enabled operations
    /// at the stop point — the scheduling choices available there.
    /// Empty for complete runs.
    pub frontier: Vec<Step>,
    /// Values recorded via [`crate::record`] during the run.
    pub observations: BTreeMap<String, i64>,
}

impl Recording {
    /// Number of granted steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.schedule.len()
    }

    /// True when no step was granted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }

    /// Deterministic digest of the execution: schedule, per-step
    /// operation descriptions, outcome flags and observations. Two
    /// runs of the same body under the same choices hash identically.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0x0BE7_u64;
        for (tid, step) in self.schedule.iter().zip(&self.steps) {
            h = SplitMix64::mix(h ^ (*tid as u64 + 1));
            for b in step.what.bytes() {
                h = SplitMix64::mix(h ^ u64::from(b));
            }
        }
        h = SplitMix64::mix(h ^ u64::from(self.completed));
        h = SplitMix64::mix(h ^ u64::from(self.deadlock.is_some()) << 1);
        for (key, value) in &self.observations {
            for b in key.bytes() {
                h = SplitMix64::mix(h ^ u64::from(b));
            }
            h = SplitMix64::mix(h ^ (*value as u64));
        }
        h
    }

    /// One-word outcome for tables.
    #[must_use]
    pub fn verdict(&self) -> &'static str {
        if self.panic.is_some() {
            "panicked"
        } else if self.deadlock.is_some() {
            "deadlocked"
        } else if self.diverged_at.is_some() {
            "diverged"
        } else if self.truncated {
            "truncated"
        } else if self.completed {
            "completed"
        } else {
            "stopped"
        }
    }

    /// Render the schedule as a one-column-per-thread step table, the
    /// same layout [`crate::RaceReport::render`] uses, plus outcome
    /// and frontier footers.
    #[must_use]
    pub fn render(&self) -> String {
        let n_threads = self.schedule.iter().map(|t| t + 1).max().unwrap_or(1);
        let mut header: Vec<String> = vec!["step".to_string()];
        header.extend((0..n_threads).map(|t| format!("T{t}")));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = Table::new(
            &format!("recording `{}` ({})", self.name, self.verdict()),
            &header_refs,
        );
        for (step, s) in self.steps.iter().enumerate() {
            let mut row: Vec<String> = vec![step.to_string()];
            for t in 0..n_threads {
                row.push(if t == s.tid { s.what.clone() } else { "·".to_string() });
            }
            table.row(&row);
        }
        let mut out = table.render();
        if let Some(d) = &self.deadlock {
            out.push_str(&format!("deadlock: {d}\n"));
        }
        if let Some(at) = self.diverged_at {
            out.push_str(&format!("diverged at step {at}\n"));
        }
        if !self.frontier.is_empty() {
            let choices: Vec<String> = self
                .frontier
                .iter()
                .map(|s| format!("T{}:{}", s.tid, s.what))
                .collect();
            out.push_str(&format!("frontier: {}\n", choices.join("  ")));
        }
        for (key, value) in &self.observations {
            out.push_str(&format!("observed {key} = {value}\n"));
        }
        out
    }
}

/// Resolve an outcome (plus replay-only extras) into a [`Recording`].
fn from_outcome(
    name: &str,
    outcome: ctl::ExecOutcome,
    diverged_at: Option<usize>,
    frontier_raw: Vec<(usize, Op)>,
) -> Recording {
    let describe = |op: &Op| {
        let loc_name = op.loc.map(|l| outcome.loc_names[l].as_str()).unwrap_or("");
        op.describe(loc_name)
    };
    let steps = outcome
        .events
        .iter()
        .map(|ev| Step { tid: ev.tid, what: describe(&ev.op) })
        .collect();
    let frontier = frontier_raw
        .iter()
        .map(|(tid, op)| Step { tid: *tid, what: describe(op) })
        .collect();
    Recording {
        name: name.to_string(),
        schedule: outcome.schedule,
        steps,
        completed: outcome.completed,
        deadlock: outcome.deadlock,
        panic: outcome.panic,
        truncated: outcome.truncated,
        diverged_at,
        frontier,
        observations: outcome.observations,
    }
}

/// Record the canonical schedule of `body`: every step grants the
/// lowest-id enabled thread. Fully deterministic — two calls with the
/// same body produce bit-identical recordings.
pub fn record_first<F>(name: &str, max_steps: usize, body: F) -> Recording
where
    F: Fn() + Send + Sync + 'static,
{
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
    let outcome = ctl::run_one(body, max_steps, |_, enabled| Some(enabled[0].0));
    from_outcome(name, outcome, None, Vec::new())
}

/// Record a seeded random walk over `body`'s enabled sets: at every
/// step one enabled thread is drawn uniformly from a [`Xoshiro256`]
/// stream. Same seed ⇒ bit-identical recording; different seeds
/// explore different interleavings of the same program.
pub fn record_seeded<F>(name: &str, seed: u64, max_steps: usize, body: F) -> Recording
where
    F: Fn() + Send + Sync + 'static,
{
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let outcome = ctl::run_one(body, max_steps, move |_, enabled| {
        let pick = rng.next_below(enabled.len() as u64) as usize;
        Some(enabled[pick].0)
    });
    from_outcome(name, outcome, None, Vec::new())
}

/// Re-execute `schedule` over `body` to its end. Equivalent to
/// `replay_prefix(name, body, schedule, schedule.len())`.
pub fn replay<F>(name: &str, body: F, schedule: &[usize]) -> Recording
where
    F: Fn() + Send + Sync + 'static,
{
    replay_prefix(name, body, schedule, schedule.len())
}

/// Re-execute the first `prefix` steps of `schedule` over `body`,
/// then stop and capture the frontier (the enabled operations at the
/// stop point). If at some step the scheduled thread is not enabled,
/// the replay stops *there* instead, with
/// [`Recording::diverged_at`] set and the frontier describing what
/// was actually runnable.
pub fn replay_prefix<F>(name: &str, body: F, schedule: &[usize], prefix: usize) -> Recording
where
    F: Fn() + Send + Sync + 'static,
{
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
    let want: Vec<usize> = schedule.iter().copied().take(prefix).collect();
    let mut frontier_raw: Vec<(usize, Op)> = Vec::new();
    let mut diverged_at: Option<usize> = None;
    let outcome = {
        let frontier_raw = &mut frontier_raw;
        let diverged_at = &mut diverged_at;
        // The step bound is the schedule length: the chooser stops the
        // run itself, so the bound only needs to be unreachable.
        ctl::run_one(Arc::clone(&body), want.len() + 1, move |step, enabled| {
            let target = want.get(step).copied();
            match target {
                Some(tid) if enabled.iter().any(|(t, _)| *t == tid) => Some(tid),
                found => {
                    // End of the requested prefix, or the scheduled
                    // thread is not enabled here: stop and remember
                    // what *was* runnable.
                    *frontier_raw = enabled.to_vec();
                    if found.is_some() {
                        *diverged_at = Some(step);
                    }
                    None
                }
            }
        })
    };
    from_outcome(name, outcome, diverged_at, frontier_raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::{Barrier, Mutex, PlainCell};
    use crate::{record, thread};

    /// Two racy plain increments — the smallest body with real
    /// schedule-dependent outcomes (final ∈ {1, 2}).
    fn two_plain_increments() -> impl Fn() + Send + Sync + 'static {
        || {
            let cell = Arc::new(PlainCell::new("count", 0i64));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let cell = Arc::clone(&cell);
                handles.push(thread::spawn(move || {
                    let v = cell.get();
                    cell.set(v + 1);
                }));
            }
            for h in handles {
                h.join();
            }
            record("final", cell.get());
        }
    }

    #[test]
    fn record_first_is_deterministic_and_complete() {
        let a = record_first("first", 1000, two_plain_increments());
        let b = record_first("first", 1000, two_plain_increments());
        assert!(a.completed, "canonical schedule must finish: {}", a.verdict());
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let fin = a.observations["final"];
        assert!(fin == 1 || fin == 2, "final must be a witnessed outcome: {fin}");
        assert!(a.diverged_at.is_none());
        assert!(a.frontier.is_empty());
        assert!(a.render().contains("completed"));
    }

    #[test]
    fn record_seeded_same_seed_identical_different_seed_diverges() {
        let a = record_seeded("walk", 7, 1000, two_plain_increments());
        let b = record_seeded("walk", 7, 1000, two_plain_increments());
        assert!(a.completed);
        assert_eq!(a, b, "same seed must reproduce bit-identically");
        // Some nearby seed must pick a different interleaving of this
        // racy body (the space has > 1 Mazurkiewicz trace).
        let different = (8..64)
            .map(|s| record_seeded("walk", s, 1000, two_plain_increments()))
            .any(|c| c.schedule != a.schedule);
        assert!(different, "no seed in 8..64 diverged from seed 7");
    }

    #[test]
    fn replay_reproduces_a_recording_exactly() {
        let rec = record_seeded("orig", 42, 1000, two_plain_increments());
        let rep = replay("orig", two_plain_increments(), &rec.schedule);
        assert!(rep.completed);
        assert!(rep.diverged_at.is_none());
        assert_eq!(rep.schedule, rec.schedule);
        assert_eq!(rep.steps, rec.steps);
        assert_eq!(rep.observations, rec.observations);
        assert_eq!(rep.fingerprint(), rec.fingerprint());
    }

    #[test]
    fn replay_prefix_stops_early_and_reports_the_frontier() {
        let rec = record_first("orig", 1000, two_plain_increments());
        assert!(rec.len() > 4);
        let half = rec.len() / 2;
        let partial = replay_prefix("half", two_plain_increments(), &rec.schedule, half);
        assert_eq!(partial.len(), half);
        assert_eq!(partial.schedule, rec.schedule[..half]);
        assert_eq!(partial.steps, rec.steps[..half]);
        assert!(!partial.completed);
        assert!(partial.diverged_at.is_none(), "a true prefix never diverges");
        assert!(
            !partial.frontier.is_empty(),
            "mid-run there must be at least one enabled op"
        );
        assert_eq!(partial.verdict(), "stopped");
        assert!(partial.render().contains("frontier:"));
    }

    #[test]
    fn replay_of_a_foreign_schedule_reports_divergence() {
        let rec = record_first("orig", 1000, two_plain_increments());
        // Corrupt one decision to a thread id that can never be
        // enabled there.
        let mut schedule = rec.schedule.clone();
        let at = schedule.len() / 2;
        schedule[at] = 99;
        let rep = replay("corrupt", two_plain_increments(), &schedule);
        assert_eq!(rep.diverged_at, Some(at));
        assert_eq!(rep.len(), at, "steps before the divergence replay fine");
        assert!(!rep.frontier.is_empty(), "divergence must describe the frontier");
        assert_eq!(rep.verdict(), "diverged");
        assert!(rep.render().contains(&format!("diverged at step {at}")));
    }

    #[test]
    fn replay_pins_schedule_dependent_observations() {
        // Find two seeds whose walks observe different finals, then
        // check each replay reproduces *its* recording's observation.
        let recs: Vec<Recording> = (0..64)
            .map(|s| record_seeded("walk", s, 1000, two_plain_increments()))
            .collect();
        let lost = recs.iter().find(|r| r.observations.get("final") == Some(&1));
        let clean = recs.iter().find(|r| r.observations.get("final") == Some(&2));
        let (lost, clean) = (
            lost.expect("some seed must witness the lost update"),
            clean.expect("some seed must witness the correct outcome"),
        );
        let rl = replay("lost", two_plain_increments(), &lost.schedule);
        let rc = replay("clean", two_plain_increments(), &clean.schedule);
        assert_eq!(rl.observations["final"], 1);
        assert_eq!(rc.observations["final"], 2);
    }

    #[test]
    fn deadlock_is_recorded_not_hung() {
        let body = || {
            let a = Arc::new(Mutex::new("a", ()));
            let b = Arc::new(Mutex::new("b", ()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t1 = thread::spawn(move || {
                let ga = a2.lock();
                let gb = b2.lock();
                drop(gb);
                drop(ga);
            });
            let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
            let t2 = thread::spawn(move || {
                let gb = b3.lock();
                let ga = a3.lock();
                drop(ga);
                drop(gb);
            });
            t1.join();
            t2.join();
        };
        // Hunt for a seed whose walk interleaves the two lock orders.
        let deadlocked = (0..256)
            .map(|s| record_seeded("ab-ba", s, 1000, body))
            .find(|r| r.deadlock.is_some());
        let rec = deadlocked.expect("some random walk must hit the AB-BA deadlock");
        assert!(!rec.completed);
        assert_eq!(rec.verdict(), "deadlocked");
        // And the deadlock replays deterministically.
        let rep = replay("ab-ba", body, &rec.schedule);
        assert!(rep.deadlock.is_some(), "replay must re-hit the deadlock");
        assert_eq!(rep.schedule, rec.schedule);
    }

    #[test]
    fn barrier_bodies_record_and_replay() {
        let body = || {
            let x = Arc::new(PlainCell::new("x", 0i64));
            let bar = Arc::new(Barrier::new("bar", 2));
            let (xs, b) = (Arc::clone(&x), Arc::clone(&bar));
            let t0 = thread::spawn(move || {
                xs.set(1);
                b.wait();
            });
            let (xs, b) = (Arc::clone(&x), Arc::clone(&bar));
            let t1 = thread::spawn(move || {
                b.wait();
                record("seen", xs.get());
            });
            t0.join();
            t1.join();
        };
        let rec = record_first("barrier", 1000, body);
        assert!(rec.completed, "{}", rec.verdict());
        assert_eq!(rec.observations.get("seen"), Some(&1));
        let rep = replay("barrier", body, &rec.schedule);
        assert_eq!(rep.steps, rec.steps);
        assert!(rep.steps.iter().any(|s| s.what.contains("arrive")));
    }
}
