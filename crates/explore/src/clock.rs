//! Vector clocks — the partial order underlying the race detector.
//!
//! Each simulated thread `t` carries a clock `VC_t`; entry `VC_t[u]`
//! is the latest operation of thread `u` that happens-before `t`'s
//! next operation. An access recorded at epoch `c@u` happens-before
//! thread `t`'s current point iff `c <= VC_t[u]` — the FastTrack
//! epoch test. Clocks grow on demand so dynamically spawned threads
//! need no pre-sizing.

/// A grow-on-demand vector clock. Missing entries read as 0.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock {
    entries: Vec<u64>,
}

impl VectorClock {
    /// The zero clock.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Component for thread `tid` (0 if never set).
    #[must_use]
    pub fn get(&self, tid: usize) -> u64 {
        self.entries.get(tid).copied().unwrap_or(0)
    }

    /// Set component `tid` to `value`, growing as needed.
    pub fn set(&mut self, tid: usize, value: u64) {
        if self.entries.len() <= tid {
            self.entries.resize(tid + 1, 0);
        }
        self.entries[tid] = value;
    }

    /// Advance this thread's own component by one (a release "tick").
    pub fn tick(&mut self, tid: usize) {
        self.set(tid, self.get(tid) + 1);
    }

    /// Pointwise maximum: afterwards `self >= other` componentwise.
    pub fn join(&mut self, other: &VectorClock) {
        if self.entries.len() < other.entries.len() {
            self.entries.resize(other.entries.len(), 0);
        }
        for (i, &v) in other.entries.iter().enumerate() {
            if self.entries[i] < v {
                self.entries[i] = v;
            }
        }
    }

    /// Does the epoch `clock@tid` happen-before this clock's owner?
    #[must_use]
    pub fn covers(&self, tid: usize, clock: u64) -> bool {
        clock <= self.get(tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_entries_read_zero() {
        let vc = VectorClock::new();
        assert_eq!(vc.get(7), 0);
        assert!(vc.covers(7, 0));
        assert!(!vc.covers(7, 1));
    }

    #[test]
    fn tick_and_set_grow_on_demand() {
        let mut vc = VectorClock::new();
        vc.tick(2);
        assert_eq!(vc.get(2), 1);
        vc.set(0, 5);
        assert_eq!(vc.get(0), 5);
        assert_eq!(vc.get(1), 0);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.set(0, 3);
        a.set(1, 1);
        let mut b = VectorClock::new();
        b.set(1, 4);
        b.set(2, 2);
        a.join(&b);
        assert_eq!((a.get(0), a.get(1), a.get(2)), (3, 4, 2));
    }

    #[test]
    fn covers_matches_epoch_test() {
        let mut vc = VectorClock::new();
        vc.set(1, 4);
        assert!(vc.covers(1, 4));
        assert!(vc.covers(1, 3));
        assert!(!vc.covers(1, 5));
    }
}
