//! The visible-operation vocabulary.
//!
//! Every shim primitive announces what it is *about to do* at a yield
//! point, before the effect happens. The controller therefore knows
//! each stopped thread's pending operation, which is what enables
//! blocking semantics (mutexes, joins), sleep-set partial-order
//! reduction (independence is judged on pending operations) and the
//! happens-before pass (applied in schedule order at grant time).

use std::sync::atomic::Ordering;

/// What kind of visible step a thread is about to take.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// The thread begins running (its first schedulable step).
    Start,
    /// A load. `atomic` distinguishes shim atomics from
    /// [`crate::sync::PlainCell`] accesses.
    Load {
        /// Memory ordering (plain accesses report `Relaxed`).
        ord: Ordering,
        /// True for shim atomics, false for plain cells.
        atomic: bool,
    },
    /// A store; fields as for [`OpKind::Load`].
    Store {
        /// Memory ordering (plain accesses report `Relaxed`).
        ord: Ordering,
        /// True for shim atomics, false for plain cells.
        atomic: bool,
    },
    /// An atomic read-modify-write (`fetch_add`, `compare_exchange`).
    /// Indivisible by construction, hence never itself a racy access.
    Rmw {
        /// Memory ordering of the RMW.
        ord: Ordering,
    },
    /// Acquire a shim mutex (blocks while another thread holds it).
    Lock,
    /// Release a shim mutex.
    Unlock,
    /// Join a simulated thread (blocks until it finished).
    Join {
        /// The joined thread's id.
        target: usize,
    },
    /// Arrive at a simulated barrier. Never blocks by itself — it
    /// registers the arrival (completing the episode when this is the
    /// last expected participant); the paired [`OpKind::BarrierWait`]
    /// that every [`crate::sync::Barrier::wait`] issues next is what
    /// blocks.
    BarrierArrive {
        /// Participants per episode (the barrier's fixed team size).
        participants: usize,
    },
    /// Block until the barrier episode this thread arrived at has
    /// completed. Disabled while fewer than `participants` threads
    /// have arrived — a thread parked here while every other thread is
    /// finished or blocked is how mismatched barrier use surfaces as a
    /// deadlock.
    BarrierWait,
    /// A pure scheduling point with no memory effect.
    Yield,
}

/// A pending/recorded operation: kind plus the location it touches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Op {
    /// The operation kind.
    pub kind: OpKind,
    /// Location id (atomics, plain cells and mutexes all register
    /// one); `None` for thread-lifecycle and yield operations.
    pub loc: Option<usize>,
}

impl Op {
    pub(crate) fn start() -> Self {
        Op { kind: OpKind::Start, loc: None }
    }

    /// Does this access participate in race reports as a non-atomic
    /// access? Plain cell accesses always do; shim atomic loads and
    /// stores do when `Relaxed` (the demos' stand-in for unsynchronised
    /// code — a deliberate data race the detector should surface);
    /// RMWs and release/acquire/SeqCst accesses never do.
    #[must_use]
    pub fn racy(&self) -> bool {
        match self.kind {
            OpKind::Load { ord, atomic } | OpKind::Store { ord, atomic } => {
                !atomic || ord == Ordering::Relaxed
            }
            _ => false,
        }
    }

    /// Is this a write-like access (store or RMW)?
    #[must_use]
    pub fn is_write(&self) -> bool {
        matches!(self.kind, OpKind::Store { .. } | OpKind::Rmw { .. })
    }

    /// Does this operation *acquire* (join the location's sync clock)?
    #[must_use]
    pub fn is_acquire(&self) -> bool {
        match self.kind {
            OpKind::Lock => true,
            OpKind::Load { ord, .. } | OpKind::Rmw { ord } => matches!(
                ord,
                Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
            ),
            _ => false,
        }
    }

    /// Does this operation *release* (publish the thread's clock)?
    #[must_use]
    pub fn is_release(&self) -> bool {
        match self.kind {
            OpKind::Unlock => true,
            OpKind::Store { ord, .. } | OpKind::Rmw { ord } => matches!(
                ord,
                Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
            ),
            _ => false,
        }
    }

    /// Conservative independence for partial-order reduction: two
    /// pending operations commute iff they touch different locations,
    /// or the same location without a write. Lifecycle operations
    /// (`Start`/`Join`/`Yield`) are treated as dependent on everything
    /// — sound, merely less pruning.
    #[must_use]
    pub fn independent(&self, other: &Op) -> bool {
        match (self.loc, other.loc) {
            (Some(a), Some(b)) if a != b => true,
            (Some(_), Some(_)) => {
                let read_like = |op: &Op| matches!(op.kind, OpKind::Load { .. });
                read_like(self) && read_like(other)
            }
            _ => false,
        }
    }

    /// Short human description, e.g. `lock(m)` or `x.store(Relaxed)`.
    #[must_use]
    pub fn describe(&self, loc_name: &str) -> String {
        match self.kind {
            OpKind::Start => "start".to_string(),
            OpKind::Load { ord, atomic: true } => format!("{loc_name}.load({ord:?})"),
            OpKind::Load { atomic: false, .. } => format!("{loc_name}.read()"),
            OpKind::Store { ord, atomic: true } => format!("{loc_name}.store({ord:?})"),
            OpKind::Store { atomic: false, .. } => format!("{loc_name}.write()"),
            OpKind::Rmw { ord } => format!("{loc_name}.rmw({ord:?})"),
            OpKind::Lock => format!("lock({loc_name})"),
            OpKind::Unlock => format!("unlock({loc_name})"),
            OpKind::Join { target } => format!("join(T{target})"),
            OpKind::BarrierArrive { .. } => format!("{loc_name}.arrive()"),
            OpKind::BarrierWait => format!("{loc_name}.barrier_wait()"),
            OpKind::Yield => "yield".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(loc: usize, ord: Ordering, atomic: bool) -> Op {
        Op { kind: OpKind::Load { ord, atomic }, loc: Some(loc) }
    }
    fn store(loc: usize, ord: Ordering, atomic: bool) -> Op {
        Op { kind: OpKind::Store { ord, atomic }, loc: Some(loc) }
    }

    #[test]
    fn racy_classification() {
        assert!(load(0, Ordering::Relaxed, true).racy());
        assert!(store(0, Ordering::Relaxed, false).racy());
        assert!(!store(0, Ordering::Release, true).racy());
        assert!(!Op { kind: OpKind::Rmw { ord: Ordering::Relaxed }, loc: Some(0) }.racy());
        assert!(!Op { kind: OpKind::Lock, loc: Some(0) }.racy());
    }

    #[test]
    fn acquire_release_classification() {
        assert!(load(0, Ordering::Acquire, true).is_acquire());
        assert!(!load(0, Ordering::Relaxed, true).is_acquire());
        assert!(store(0, Ordering::Release, true).is_release());
        assert!(Op { kind: OpKind::Unlock, loc: Some(0) }.is_release());
        assert!(Op { kind: OpKind::Lock, loc: Some(0) }.is_acquire());
        let sc_rmw = Op { kind: OpKind::Rmw { ord: Ordering::SeqCst }, loc: Some(0) };
        assert!(sc_rmw.is_acquire() && sc_rmw.is_release());
    }

    #[test]
    fn independence_is_location_based() {
        let a = store(0, Ordering::Relaxed, true);
        let b = store(1, Ordering::Relaxed, true);
        assert!(a.independent(&b));
        assert!(!a.independent(&store(0, Ordering::Relaxed, true)));
        // Two reads of the same location commute.
        let r = load(0, Ordering::Relaxed, true);
        assert!(r.independent(&load(0, Ordering::SeqCst, true)));
        // Lifecycle ops never commute.
        assert!(!Op::start().independent(&a));
    }
}
