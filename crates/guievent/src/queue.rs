//! A blocking FIFO event queue with depth accounting.
//!
//! Deliberately simple — a `Mutex<VecDeque>` plus a condition
//! variable — because the EDT is a single consumer and GUI event rates
//! are low compared to compute work. The queue records the maximum
//! depth it ever reached, which the experiments use to show how far
//! the GUI lags behind during a parallel burst.

use std::collections::VecDeque;

use parking_lot::{Condvar, Mutex};

/// Multi-producer single-consumer blocking FIFO.
pub struct EventQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
}

struct Inner<T> {
    items: VecDeque<T>,
    max_depth: usize,
}

impl<T> EventQueue<T> {
    /// New empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                max_depth: 0,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueue an item; returns the queue depth after insertion.
    pub fn push(&self, item: T) -> usize {
        let mut inner = self.inner.lock();
        inner.items.push_back(item);
        let depth = inner.items.len();
        inner.max_depth = inner.max_depth.max(depth);
        drop(inner);
        self.available.notify_one();
        depth
    }

    /// Block until an item is available and dequeue it.
    pub fn pop(&self) -> T {
        let mut inner = self.inner.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return item;
            }
            self.available.wait(&mut inner);
        }
    }

    /// Dequeue without blocking.
    pub fn try_pop(&self) -> Option<T> {
        self.inner.lock().items.pop_front()
    }

    /// Current number of queued items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    /// True when no items are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Largest depth the queue has reached.
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.inner.lock().max_depth
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order() {
        let q = EventQueue::new();
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.pop(), 1);
        assert_eq!(q.pop(), 2);
        assert_eq!(q.pop(), 3);
    }

    #[test]
    fn try_pop_on_empty() {
        let q: EventQueue<u32> = EventQueue::new();
        assert_eq!(q.try_pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn max_depth_tracks_high_water_mark() {
        let q = EventQueue::new();
        q.push(1);
        q.push(2);
        q.push(3);
        let _ = q.pop();
        q.push(4);
        assert_eq!(q.max_depth(), 3);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = Arc::new(EventQueue::new());
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.pop());
        thread::sleep(std::time::Duration::from_millis(20));
        q.push(99);
        assert_eq!(t.join().unwrap(), 99);
    }

    #[test]
    fn concurrent_producers_deliver_everything() {
        let q = Arc::new(EventQueue::new());
        let mut joins = Vec::new();
        for t in 0..4 {
            let q = Arc::clone(&q);
            joins.push(thread::spawn(move || {
                for i in 0..100 {
                    q.push(t * 100 + i);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut seen: Vec<i32> = (0..400).map(|_| q.pop()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..400).collect::<Vec<_>>());
    }
}
