//! GUI timers: `invoke_after` (one-shot) and `repeat_every`
//! (periodic), the `javax.swing.Timer` analogue the interactive
//! projects use for animation ticks and polling UI state.
//!
//! Timers run on dedicated pacer threads and post their callbacks to
//! the event-dispatch thread, so callbacks observe the usual
//! single-threaded GUI discipline.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::GuiHandle;

/// Handle to a scheduled timer; cancel to stop future firings.
pub struct Timer {
    cancelled: Arc<AtomicBool>,
    fired: Arc<AtomicU64>,
    joiner: Option<thread::JoinHandle<()>>,
}

impl Timer {
    /// Stop the timer. Callbacks already posted to the EDT still run.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Number of times the timer has fired so far.
    #[must_use]
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Acquire)
    }

    /// Cancel and wait for the pacer thread to exit.
    pub fn stop(mut self) {
        self.cancel();
        if let Some(j) = self.joiner.take() {
            let _ = j.join();
        }
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        self.cancel();
        if let Some(j) = self.joiner.take() {
            let _ = j.join();
        }
    }
}

/// Post `f` to the dispatch thread once, after `delay`. Cancellable
/// until the delay elapses.
#[must_use]
pub fn invoke_after(gui: &GuiHandle, delay: Duration, f: impl FnOnce() + Send + 'static) -> Timer {
    let cancelled = Arc::new(AtomicBool::new(false));
    let fired = Arc::new(AtomicU64::new(0));
    let gui = gui.clone();
    let c2 = Arc::clone(&cancelled);
    let f2 = Arc::clone(&fired);
    let joiner = thread::Builder::new()
        .name("gui-timer-once".to_string())
        .spawn(move || {
            // Sleep in small slices so cancel() is responsive.
            let deadline = std::time::Instant::now() + delay;
            while std::time::Instant::now() < deadline {
                if c2.load(Ordering::Acquire) {
                    return;
                }
                thread::sleep(Duration::from_millis(1).min(delay));
            }
            if !c2.load(Ordering::Acquire) {
                f2.fetch_add(1, Ordering::AcqRel);
                gui.invoke_later(f);
            }
        })
        .expect("failed to spawn timer thread");
    Timer {
        cancelled,
        fired,
        joiner: Some(joiner),
    }
}

/// Post `f` to the dispatch thread every `period` until cancelled.
#[must_use]
pub fn repeat_every(
    gui: &GuiHandle,
    period: Duration,
    f: impl Fn() + Send + Sync + 'static,
) -> Timer {
    assert!(!period.is_zero(), "period must be positive");
    let cancelled = Arc::new(AtomicBool::new(false));
    let fired = Arc::new(AtomicU64::new(0));
    let gui = gui.clone();
    let c2 = Arc::clone(&cancelled);
    let f2 = Arc::clone(&fired);
    let f = Arc::new(f);
    let joiner = thread::Builder::new()
        .name("gui-timer-repeat".to_string())
        .spawn(move || {
            while !c2.load(Ordering::Acquire) {
                thread::sleep(period);
                if c2.load(Ordering::Acquire) {
                    break;
                }
                f2.fetch_add(1, Ordering::AcqRel);
                let f = Arc::clone(&f);
                gui.invoke_later(move || f());
            }
        })
        .expect("failed to spawn timer thread");
    Timer {
        cancelled,
        fired,
        joiner: Some(joiner),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventLoop;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn one_shot_fires_once_on_edt() {
        let gui = EventLoop::spawn();
        let count = Arc::new(AtomicUsize::new(0));
        let on_edt = Arc::new(AtomicBool::new(false));
        let c2 = Arc::clone(&count);
        let e2 = Arc::clone(&on_edt);
        let probe = gui.handle();
        let timer = invoke_after(&gui.handle(), Duration::from_millis(5), move || {
            c2.fetch_add(1, Ordering::Relaxed);
            e2.store(probe.is_dispatch_thread(), Ordering::Release);
        });
        thread::sleep(Duration::from_millis(40));
        gui.handle().drain();
        assert_eq!(count.load(Ordering::Relaxed), 1);
        assert!(on_edt.load(Ordering::Acquire));
        assert_eq!(timer.fired(), 1);
        timer.stop();
        gui.shutdown();
    }

    #[test]
    fn cancelled_one_shot_never_fires() {
        let gui = EventLoop::spawn();
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let timer = invoke_after(&gui.handle(), Duration::from_millis(50), move || {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        timer.cancel();
        thread::sleep(Duration::from_millis(80));
        gui.handle().drain();
        assert_eq!(count.load(Ordering::Relaxed), 0);
        gui.shutdown();
    }

    #[test]
    fn repeating_timer_fires_multiple_times_then_stops() {
        let gui = EventLoop::spawn();
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let timer = repeat_every(&gui.handle(), Duration::from_millis(3), move || {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        thread::sleep(Duration::from_millis(40));
        timer.stop();
        gui.handle().drain();
        let fired = count.load(Ordering::Relaxed);
        assert!(fired >= 3, "expected several firings, got {fired}");
        let frozen = count.load(Ordering::Relaxed);
        thread::sleep(Duration::from_millis(20));
        gui.handle().drain();
        assert_eq!(count.load(Ordering::Relaxed), frozen, "no firings after stop");
        gui.shutdown();
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let gui = EventLoop::spawn();
        let _ = repeat_every(&gui.handle(), Duration::ZERO, || {});
    }
}
