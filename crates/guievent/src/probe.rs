//! Responsiveness probing: the measurable meaning of "the GUI remains
//! fully responsive".
//!
//! A [`Probe`] runs a pacing thread that posts a tiny timestamped
//! event to the dispatch thread at a fixed interval. The EDT records
//! how long each event waited in the queue. While the application is
//! idle the latency is microseconds; if a computation hogs the EDT the
//! latency grows to the length of the computation — exactly the
//! "frozen UI" the SoftEng 751 projects were graded on avoiding.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use parc_util::stats::Summary;

use crate::GuiHandle;

/// Aggregated dispatch-latency measurements from a probe run.
#[derive(Clone, Debug)]
pub struct ProbeReport {
    /// One latency sample (milliseconds) per probe event dispatched.
    pub samples_ms: Vec<f64>,
}

impl ProbeReport {
    /// Summary statistics over the latency samples.
    #[must_use]
    pub fn summary(&self) -> Summary {
        Summary::from_samples(&self.samples_ms)
    }

    /// Worst observed dispatch latency, in milliseconds.
    #[must_use]
    pub fn worst_ms(&self) -> f64 {
        self.samples_ms.iter().copied().fold(0.0, f64::max)
    }

    /// Fraction of samples at or under `threshold_ms` — a
    /// "responsiveness score". Interactive-feel guidance commonly uses
    /// ~100 ms as the limit of "instantaneous".
    #[must_use]
    pub fn fraction_within(&self, threshold_ms: f64) -> f64 {
        if self.samples_ms.is_empty() {
            return 1.0;
        }
        let ok = self
            .samples_ms
            .iter()
            .filter(|&&s| s <= threshold_ms)
            .count();
        ok as f64 / self.samples_ms.len() as f64
    }

    /// Number of samples collected.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples_ms.len()
    }

    /// True when no samples were collected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples_ms.is_empty()
    }
}

/// A running responsiveness probe. Create with [`Probe::start`], stop
/// and collect with [`Probe::finish`].
pub struct Probe {
    stop: Arc<AtomicBool>,
    samples: Arc<Mutex<Vec<f64>>>,
    pacer: Option<thread::JoinHandle<()>>,
    handle: GuiHandle,
}

impl Probe {
    /// Start probing `gui` every `interval`.
    #[must_use]
    pub fn start(gui: GuiHandle, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let samples: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
        let pacer_stop = Arc::clone(&stop);
        let pacer_samples = Arc::clone(&samples);
        let pacer_gui = gui.clone();
        let pacer = thread::Builder::new()
            .name("gui-probe".to_string())
            .spawn(move || {
                let trace = pacer_gui.shared.trace.clone();
                let pid = pacer_gui.shared.pid;
                while !pacer_stop.load(Ordering::Acquire) {
                    let posted = Instant::now();
                    let samples = Arc::clone(&pacer_samples);
                    let trace = trace.clone();
                    pacer_gui.invoke_later(move || {
                        let latency = posted.elapsed();
                        samples.lock().push(latency.as_secs_f64() * 1e3);
                        // Marked on the EDT, so probe samples land on
                        // the dispatch thread's trace lane.
                        trace.mark(
                            pid,
                            parc_trace::MarkKind::GuiProbe {
                                latency_ns: u64::try_from(latency.as_nanos())
                                    .unwrap_or(u64::MAX),
                            },
                        );
                    });
                    thread::sleep(interval);
                }
            })
            .expect("failed to spawn probe pacer");
        Self {
            stop,
            samples,
            pacer: Some(pacer),
            handle: gui,
        }
    }

    /// Stop the pacer, flush the event queue and return the report.
    #[must_use]
    pub fn finish(mut self) -> ProbeReport {
        self.stop.store(true, Ordering::Release);
        if let Some(p) = self.pacer.take() {
            let _ = p.join();
        }
        // Make sure every posted probe event has been dispatched.
        self.handle.drain();
        let samples_ms = self.samples.lock().clone();
        ProbeReport { samples_ms }
    }
}

impl Drop for Probe {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(p) = self.pacer.take() {
            let _ = p.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventLoop;

    #[test]
    fn probe_on_idle_loop_has_low_latency() {
        let gui = EventLoop::spawn();
        let probe = Probe::start(gui.handle(), Duration::from_millis(1));
        thread::sleep(Duration::from_millis(50));
        let report = probe.finish();
        assert!(report.len() >= 10, "expected many samples, got {}", report.len());
        // Idle EDT: median latency should be well under 5 ms even on a
        // loaded single-core machine.
        assert!(
            report.summary().median() < 5.0,
            "median {} ms too high for an idle EDT",
            report.summary().median()
        );
        gui.shutdown();
    }

    #[test]
    fn probe_detects_blocked_edt() {
        let gui = EventLoop::spawn();
        let probe = Probe::start(gui.handle(), Duration::from_millis(1));
        // Simulate the classic student mistake: run the computation on
        // the event thread.
        gui.invoke_and_wait(|| thread::sleep(Duration::from_millis(60)));
        let report = probe.finish();
        assert!(
            report.worst_ms() >= 40.0,
            "worst latency {} ms should reflect the 60 ms EDT stall",
            report.worst_ms()
        );
        gui.shutdown();
    }

    #[test]
    fn traced_probe_marks_match_samples() {
        let col = parc_trace::Collector::new();
        let gui = EventLoop::spawn_traced(&col.handle());
        let probe = Probe::start(gui.handle(), Duration::from_millis(1));
        thread::sleep(Duration::from_millis(20));
        let report = probe.finish();
        gui.shutdown();
        let trace = col.snapshot();
        assert_eq!(
            trace.counts_by_name().get("gui.probe").copied().unwrap_or(0),
            report.len() as u64,
            "one gui.probe mark per latency sample"
        );
        // The dispatch counters rode along on the metrics registry.
        let counters = col.metrics().counter_values();
        assert!(counters["guievent.events_dispatched"] >= report.len() as u64);
    }

    #[test]
    fn fraction_within_bounds() {
        let report = ProbeReport {
            samples_ms: vec![1.0, 2.0, 50.0, 200.0],
        };
        assert!((report.fraction_within(100.0) - 0.75).abs() < 1e-12);
        assert!((report.fraction_within(0.5) - 0.0).abs() < 1e-12);
        assert!((report.fraction_within(1000.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_fully_within() {
        let report = ProbeReport { samples_ms: vec![] };
        assert!(report.is_empty());
        assert_eq!(report.fraction_within(1.0), 1.0);
        assert_eq!(report.worst_ms(), 0.0);
    }
}
