//! # guievent — a headless event-dispatch-thread substrate
//!
//! The SoftEng 751 projects built *interactive* applications (Swing on
//! desktops, Android on devices) and the paper's recurring requirement
//! is that "the GUI remains fully responsive" while parallel work runs.
//! This container is headless, so instead of a real toolkit this crate
//! provides the part of a GUI toolkit that matters for that claim: a
//! single **event-dispatch thread** (EDT) draining a FIFO event queue,
//! with
//!
//! * [`EventLoop::invoke_later`] / [`EventLoop::invoke_and_wait`] —
//!   the `SwingUtilities.invokeLater`/`invokeAndWait` analogues that
//!   `partask` and `pyjama` use to marshal results back to the GUI;
//! * repaint **coalescing** ([`GuiHandle::request_repaint`]), like a
//!   real toolkit's dirty-region batching;
//! * a [`Probe`] that measures *event-dispatch latency* — the time an
//!   event sits in the queue before the EDT runs it. A responsive GUI
//!   is exactly one whose dispatch latency stays low while background
//!   work proceeds; a frozen GUI is one where a long computation runs
//!   *on* the EDT and latency spikes to the computation length.
//!
//! ```
//! use guievent::EventLoop;
//! let gui = EventLoop::spawn();
//! let answer = gui.invoke_and_wait(|| 21 * 2);
//! assert_eq!(answer, 42);
//! gui.shutdown();
//! ```

pub mod probe;
pub mod queue;
pub mod timer;

pub use probe::{Probe, ProbeReport};
pub use timer::{invoke_after, repeat_every, Timer};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, ThreadId};
use std::time::Instant;

use parc_trace::{Counter, TraceHandle};
use parking_lot::{Condvar, Mutex};
use queue::EventQueue;

/// An event processed by the dispatch thread.
pub(crate) enum Event {
    /// Run a closure on the dispatch thread.
    Invoke(Box<dyn FnOnce() + Send>),
    /// A coalesced repaint request.
    Repaint,
    /// Stop the dispatch thread after draining earlier events.
    Shutdown,
}

/// Counters describing what the dispatch thread has done.
#[derive(Clone, Debug, Default)]
pub struct GuiStats {
    /// Closures executed via `invoke_later`/`invoke_and_wait`.
    pub events_dispatched: u64,
    /// Repaints actually performed (post-coalescing).
    pub repaints_performed: u64,
    /// Repaint requests received (pre-coalescing).
    pub repaints_requested: u64,
    /// Largest queue depth observed when enqueuing.
    pub max_queue_depth: usize,
}

struct Shared {
    queue: EventQueue<Event>,
    dispatch_thread: Mutex<Option<ThreadId>>,
    started: Condvar,
    repaint_pending: AtomicBool,
    // Counters live on the parc-trace metrics registry when a
    // collector is attached; increments stay one relaxed atomic op
    // either way.
    events_dispatched: Arc<Counter>,
    repaints_performed: Arc<Counter>,
    repaints_requested: Arc<Counter>,
    pub(crate) trace: TraceHandle,
    pub(crate) pid: u32,
}

/// Handle for posting work to the event loop. Cloneable and `Send`.
#[derive(Clone)]
pub struct GuiHandle {
    shared: Arc<Shared>,
}

/// The owning side of the event loop; joins the dispatch thread on
/// [`EventLoop::shutdown`].
pub struct EventLoop {
    handle: GuiHandle,
    joiner: Option<thread::JoinHandle<()>>,
}

impl EventLoop {
    /// Start a dispatch thread and return the loop.
    #[must_use]
    pub fn spawn() -> Self {
        Self::spawn_traced(&TraceHandle::default())
    }

    /// [`EventLoop::spawn`], recording through `trace` on a track
    /// named `guievent`: dispatch counters are registered as
    /// `guievent.*` on the collector's metrics registry, and a
    /// [`Probe`] attached to this loop emits one `gui.probe` mark per
    /// latency sample.
    #[must_use]
    pub fn spawn_traced(trace: &TraceHandle) -> Self {
        let pid = trace.register_track("guievent");
        let events_dispatched = Arc::new(Counter::new());
        let repaints_performed = Arc::new(Counter::new());
        let repaints_requested = Arc::new(Counter::new());
        if let Some(reg) = trace.metrics() {
            for (name, counter) in [
                ("guievent.events_dispatched", &events_dispatched),
                ("guievent.repaints_performed", &repaints_performed),
                ("guievent.repaints_requested", &repaints_requested),
            ] {
                reg.register_counter(name, counter);
            }
        }
        let shared = Arc::new(Shared {
            queue: EventQueue::new(),
            dispatch_thread: Mutex::new(None),
            started: Condvar::new(),
            repaint_pending: AtomicBool::new(false),
            events_dispatched,
            repaints_performed,
            repaints_requested,
            trace: trace.clone(),
            pid,
        });
        let thread_shared = Arc::clone(&shared);
        let joiner = thread::Builder::new()
            .name("gui-edt".to_string())
            .spawn(move || dispatch_loop(&thread_shared))
            .expect("failed to spawn dispatch thread");
        // Wait until the dispatch thread has recorded its identity so
        // `is_dispatch_thread` is reliable from the first call.
        {
            let mut guard = shared.dispatch_thread.lock();
            while guard.is_none() {
                shared.started.wait(&mut guard);
            }
        }
        Self {
            handle: GuiHandle { shared },
            joiner: Some(joiner),
        }
    }

    /// A cloneable handle for worker threads.
    #[must_use]
    pub fn handle(&self) -> GuiHandle {
        self.handle.clone()
    }

    /// See [`GuiHandle::invoke_later`].
    pub fn invoke_later(&self, f: impl FnOnce() + Send + 'static) {
        self.handle.invoke_later(f);
    }

    /// See [`GuiHandle::invoke_and_wait`].
    pub fn invoke_and_wait<R: Send + 'static>(&self, f: impl FnOnce() -> R + Send + 'static) -> R {
        self.handle.invoke_and_wait(f)
    }

    /// See [`GuiHandle::request_repaint`].
    pub fn request_repaint(&self) {
        self.handle.request_repaint();
    }

    /// Statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> GuiStats {
        self.handle.stats()
    }

    /// Drain remaining events, stop the dispatch thread and join it.
    pub fn shutdown(mut self) {
        self.handle.shared.queue.push(Event::Shutdown);
        if let Some(j) = self.joiner.take() {
            let _ = j.join();
        }
    }
}

impl Drop for EventLoop {
    fn drop(&mut self) {
        if let Some(j) = self.joiner.take() {
            self.handle.shared.queue.push(Event::Shutdown);
            let _ = j.join();
        }
    }
}

impl GuiHandle {
    /// Post a closure to run asynchronously on the dispatch thread
    /// (the `invokeLater` analogue).
    pub fn invoke_later(&self, f: impl FnOnce() + Send + 'static) {
        let depth = self.shared.queue.push(Event::Invoke(Box::new(f)));
        self.note_depth(depth);
    }

    /// Run a closure on the dispatch thread and wait for its result
    /// (the `invokeAndWait` analogue). If called *from* the dispatch
    /// thread it runs inline, which both matches Swing semantics for
    /// re-entrant dispatch and avoids self-deadlock.
    pub fn invoke_and_wait<R: Send + 'static>(&self, f: impl FnOnce() -> R + Send + 'static) -> R {
        if self.is_dispatch_thread() {
            return f();
        }
        let cell: Arc<(Mutex<Option<R>>, Condvar)> = Arc::new((Mutex::new(None), Condvar::new()));
        let cell2 = Arc::clone(&cell);
        self.invoke_later(move || {
            let value = f();
            let (lock, cvar) = &*cell2;
            *lock.lock() = Some(value);
            cvar.notify_one();
        });
        let (lock, cvar) = &*cell;
        let mut guard = lock.lock();
        while guard.is_none() {
            cvar.wait(&mut guard);
        }
        guard.take().expect("result present")
    }

    /// Request a repaint. Multiple requests posted before the EDT gets
    /// to them are coalesced into a single repaint, like a real
    /// toolkit's dirty flag.
    pub fn request_repaint(&self) {
        self.shared.repaints_requested.inc();
        if !self.shared.repaint_pending.swap(true, Ordering::AcqRel) {
            let depth = self.shared.queue.push(Event::Repaint);
            self.note_depth(depth);
        }
    }

    /// True when the calling thread is the dispatch thread.
    #[must_use]
    pub fn is_dispatch_thread(&self) -> bool {
        *self.shared.dispatch_thread.lock() == Some(thread::current().id())
    }

    /// Statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> GuiStats {
        GuiStats {
            events_dispatched: self.shared.events_dispatched.get(),
            repaints_performed: self.shared.repaints_performed.get(),
            repaints_requested: self.shared.repaints_requested.get(),
            max_queue_depth: self.shared.queue.max_depth(),
        }
    }

    /// Block until every event posted before this call has been
    /// dispatched (a queue flush/sync point, like `invokeAndWait` with
    /// an empty body).
    pub fn drain(&self) {
        self.invoke_and_wait(|| {});
    }

    fn note_depth(&self, _depth: usize) {
        // Depth accounting lives inside the queue; hook retained for
        // future per-handle accounting.
    }
}

fn dispatch_loop(shared: &Arc<Shared>) {
    {
        let mut guard = shared.dispatch_thread.lock();
        *guard = Some(thread::current().id());
        shared.started.notify_all();
    }
    loop {
        match shared.queue.pop() {
            Event::Invoke(f) => {
                // Count before running: `invoke_and_wait` callers may
                // read the stats as soon as their closure completes.
                shared.events_dispatched.inc();
                f();
            }
            Event::Repaint => {
                shared.repaint_pending.store(false, Ordering::Release);
                shared.repaints_performed.inc();
            }
            Event::Shutdown => break,
        }
    }
}

/// Timestamped latency sample: when the event was posted and when the
/// dispatch thread got to it.
#[derive(Clone, Copy, Debug)]
pub struct LatencySample {
    /// When the event was enqueued.
    pub posted: Instant,
    /// Queue-to-dispatch latency in milliseconds.
    pub latency_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn invoke_and_wait_returns_value() {
        let gui = EventLoop::spawn();
        assert_eq!(gui.invoke_and_wait(|| "hello".len()), 5);
        gui.shutdown();
    }

    #[test]
    fn invoke_later_runs_in_order() {
        let gui = EventLoop::spawn();
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..50 {
            let log = Arc::clone(&log);
            gui.invoke_later(move || log.lock().push(i));
        }
        gui.handle().drain();
        assert_eq!(*log.lock(), (0..50).collect::<Vec<_>>());
        gui.shutdown();
    }

    #[test]
    fn events_run_on_dispatch_thread() {
        let gui = EventLoop::spawn();
        let handle = gui.handle();
        let h2 = handle.clone();
        let on_edt = gui.invoke_and_wait(move || h2.is_dispatch_thread());
        assert!(on_edt);
        assert!(!handle.is_dispatch_thread());
        gui.shutdown();
    }

    #[test]
    fn invoke_and_wait_reentrant_from_edt() {
        let gui = EventLoop::spawn();
        let handle = gui.handle();
        let value = gui.invoke_and_wait(move || handle.invoke_and_wait(|| 7) + 1);
        assert_eq!(value, 8);
        gui.shutdown();
    }

    #[test]
    fn repaints_are_coalesced() {
        let gui = EventLoop::spawn();
        // Stall the EDT so repaint requests pile up behind one event.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let gate2 = Arc::clone(&gate);
        gui.invoke_later(move || {
            let (lock, cvar) = &*gate2;
            let mut open = lock.lock();
            while !*open {
                cvar.wait(&mut open);
            }
        });
        for _ in 0..100 {
            gui.request_repaint();
        }
        {
            let (lock, cvar) = &*gate;
            *lock.lock() = true;
            cvar.notify_one();
        }
        gui.handle().drain();
        let stats = gui.stats();
        assert_eq!(stats.repaints_requested, 100);
        assert!(
            stats.repaints_performed <= 2,
            "expected coalescing, got {} repaints",
            stats.repaints_performed
        );
        gui.shutdown();
    }

    #[test]
    fn stats_count_dispatches() {
        let gui = EventLoop::spawn();
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            gui.invoke_later(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        gui.handle().drain();
        assert_eq!(counter.load(Ordering::Relaxed), 10);
        // 10 invokes + 1 drain
        assert_eq!(gui.stats().events_dispatched, 11);
        gui.shutdown();
    }

    #[test]
    fn shutdown_drains_pending_events() {
        let gui = EventLoop::spawn();
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let c = Arc::clone(&counter);
            gui.invoke_later(move || {
                std::thread::sleep(Duration::from_micros(100));
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        gui.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn drop_also_shuts_down() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let gui = EventLoop::spawn();
            let c = Arc::clone(&counter);
            gui.invoke_later(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
            // gui dropped here without explicit shutdown
        }
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn handles_usable_from_many_threads() {
        let gui = EventLoop::spawn();
        let counter = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let handle = gui.handle();
            let c = Arc::clone(&counter);
            joins.push(thread::spawn(move || {
                for _ in 0..25 {
                    let c = Arc::clone(&c);
                    handle.invoke_later(move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        gui.handle().drain();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        gui.shutdown();
    }
}
