//! Eraser-style static locksets.
//!
//! Every shared access recorded by the MHP engine ([`crate::mhp`])
//! carries the set of locks held on the (unique — the directive
//! language is branch-free) path to it. A lock entry is a runtime lock
//! key (`lock:<name>` for criticals, `red:<var>` for reduction folds)
//! tagged with the **dynamic acquisition instance** that produced it.
//!
//! The tag matters for nested parallelism: two sibling threads spawned
//! *inside* a critical both inherit the parent's lock, but that one
//! acquisition provides no mutual exclusion between them. Two accesses
//! are mutually excluded by a lock only when they reach it through
//! **different** acquisitions of the same key — different acquisitions
//! of one lock can never overlap, so the accesses are ordered.
//!
//! Per-statement locksets are the **intersection** over every dynamic
//! instance of the statement (all threads, all phases, all loop
//! iterations): a lock only protects a statement if it is held on
//! *every* path to it, so intersection is the sound combine (this is
//! the Eraser lattice with ⊑ = ⊇).

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::Span;

/// The locks held at one program point: lock key → acquisition id.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Lockset {
    held: BTreeMap<String, u64>,
}

impl Lockset {
    /// The empty lockset.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `key` as held, acquired by dynamic acquisition `acq`.
    pub fn acquire(&mut self, key: &str, acq: u64) {
        self.held.insert(key.to_string(), acq);
    }

    /// Drop `key` from the set.
    pub fn release(&mut self, key: &str) {
        self.held.remove(key);
    }

    /// Is `key` currently held?
    #[must_use]
    pub fn contains(&self, key: &str) -> bool {
        self.held.contains_key(key)
    }

    /// No locks held?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.held.is_empty()
    }

    /// Number of held locks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.held.len()
    }

    /// The held lock keys, sorted.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.held.keys().map(String::as_str)
    }

    /// Do two locksets mutually exclude the accesses they belong to?
    /// True iff some key is present in both through **different**
    /// acquisitions (see module docs for why same-acquisition sharing
    /// does not count).
    #[must_use]
    pub fn excludes(&self, other: &Lockset) -> bool {
        self.held
            .iter()
            .any(|(key, acq)| other.held.get(key).is_some_and(|o| o != acq))
    }

    /// Keys held in both sets, regardless of acquisition identity.
    #[must_use]
    pub fn common_keys(&self, other: &Lockset) -> Vec<String> {
        self.held.keys().filter(|k| other.held.contains_key(*k)).cloned().collect()
    }
}

/// Intersect the locksets of every dynamic instance of each statement
/// span: the per-statement Eraser candidate set. Statements never
/// executed do not appear; a statement keeps a key only if **every**
/// instance held it.
#[must_use]
pub fn statement_locksets<'a>(
    instances: impl Iterator<Item = (Span, &'a Lockset)>,
) -> BTreeMap<Span, BTreeSet<String>> {
    let mut out: BTreeMap<Span, Option<BTreeSet<String>>> = BTreeMap::new();
    for (span, locks) in instances {
        let keys: BTreeSet<String> = locks.keys().map(str::to_string).collect();
        match out.entry(span).or_insert(None) {
            slot @ None => *slot = Some(keys),
            Some(acc) => acc.retain(|k| keys.contains(k)),
        }
    }
    out.into_iter().filter_map(|(span, set)| set.map(|s| (span, s))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ls(pairs: &[(&str, u64)]) -> Lockset {
        let mut l = Lockset::new();
        for (k, a) in pairs {
            l.acquire(k, *a);
        }
        l
    }

    #[test]
    fn disjoint_locksets_do_not_exclude() {
        assert!(!ls(&[("lock:a", 1)]).excludes(&ls(&[("lock:b", 2)])));
        assert!(!Lockset::new().excludes(&ls(&[("lock:a", 1)])));
    }

    #[test]
    fn different_acquisitions_of_one_lock_exclude() {
        assert!(ls(&[("lock:a", 1)]).excludes(&ls(&[("lock:a", 2)])));
    }

    #[test]
    fn the_same_acquisition_does_not_exclude() {
        // Nested-parallel siblings inheriting the parent's critical:
        // one acquisition, no mutual exclusion between them.
        assert!(!ls(&[("lock:a", 7)]).excludes(&ls(&[("lock:a", 7)])));
    }

    #[test]
    fn statement_locksets_intersect_across_instances() {
        let s = Span::new(3, 1, 5);
        let a = ls(&[("lock:a", 1), ("lock:b", 2)]);
        let b = ls(&[("lock:a", 3)]);
        let table = statement_locksets([(s, &a), (s, &b)].into_iter());
        let keys: Vec<&str> = table[&s].iter().map(String::as_str).collect();
        assert_eq!(keys, vec!["lock:a"], "only locks held on every path survive");
    }

    #[test]
    fn release_restores_emptiness() {
        let mut l = ls(&[("lock:a", 1)]);
        assert!(l.contains("lock:a") && !l.is_empty() && l.len() == 1);
        l.release("lock:a");
        assert!(l.is_empty());
        assert_eq!(l.common_keys(&ls(&[("lock:a", 9)])), Vec::<String>::new());
    }
}
