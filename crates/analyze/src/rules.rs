//! The static rule engine: walks the region tree, resolves each
//! variable's data-sharing attribute, and reports the error and
//! warning codes of [`crate::diag::Code`].
//!
//! The rules encode the recurring mistakes in SoftEng 751 student
//! submissions (and their Pyjama/OpenMP semantics):
//!
//! * `E001` — `//#omp barrier` lexically inside a worksharing,
//!   `single`, `master` or `critical` construct. Only a subset of the
//!   team reaches that barrier, so the barrier counts mismatch and the
//!   program deadlocks in *every* schedule. The explorer witnesses
//!   this (see `tests/analyze.rs`).
//! * `E002` — worksharing nested in worksharing bound to the same
//!   parallel region (each thread re-divides its own share).
//! * `E003` — a reduction variable assigned as an ordinary shared
//!   variable outside its reduction construct, bypassing the combiner.
//! * `E004` — named `critical` regions nested in inconsistent order
//!   (or self-nested): a lock-order cycle, so some schedule deadlocks.
//! * `E005` — structural misuse that parses but cannot lower
//!   (`section` outside `sections`, loose items inside `sections`).
//! * `W101` — write to a shared variable in a parallel region without
//!   `critical`/`single`/`master` protection: a data-race candidate.
//! * `W102` — `master` initialisation read by sibling code with no
//!   intervening barrier (`master` has no implied barrier — the
//!   classic "why is it sometimes zero" bug; `single` would have one).
//! * `W103` — a `private` variable read before its first write
//!   (privates start uninitialised; `firstprivate` copies in).

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Assign, Item, Program, Region, RegionKind, Span};
use crate::diag::{sort_diagnostics, Code, Diagnostic};

/// How a variable name resolves at some program point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Sharing {
    /// Thread-local (private/firstprivate clause or loop variable).
    Private,
    /// The live accumulator of an enclosing `reduction` construct.
    Reduction,
    /// Shared across the team (the default).
    Shared,
}

/// One lexical scope on the walk stack.
#[derive(Debug)]
enum Frame {
    Region {
        kind: RegionKind,
        privates: BTreeSet<String>,
        shareds: BTreeSet<String>,
        reductions: BTreeSet<String>,
        num_threads: Option<usize>,
    },
    Loop { var: String },
}

/// Run every rule over a parsed program. The result is sorted
/// deterministically (span, then code).
#[must_use]
pub fn check(program: &Program) -> Vec<Diagnostic> {
    let mut ck = Checker::default();
    ck.walk_items(&program.items);
    ck.report_lock_cycles();
    sort_diagnostics(&mut ck.diags);
    ck.diags
}

#[derive(Debug, Default)]
struct Checker {
    diags: Vec<Diagnostic>,
    frames: Vec<Frame>,
    /// Lock names currently held (entered criticals, outermost first).
    held: Vec<String>,
    /// Observed nesting edges between named criticals: outer → inner,
    /// with the span of the inner directive that recorded the edge.
    lock_edges: BTreeMap<(String, String), Span>,
    /// Reduction variables of the enclosing parallel region(s) (for
    /// `E003`), innermost last.
    parallel_reductions: Vec<BTreeSet<String>>,
    /// Sibling-section variable access sets and our index among them,
    /// for the `W101` disjointness refinement. Innermost last.
    section_siblings: Vec<(Vec<BTreeSet<String>>, usize)>,
}

impl Checker {
    // -- data-environment resolution ---------------------------------

    fn resolve(&self, var: &str) -> Sharing {
        for frame in self.frames.iter().rev() {
            match frame {
                Frame::Loop { var: v } if v == var => return Sharing::Private,
                Frame::Loop { .. } => {}
                Frame::Region { privates, shareds, reductions, .. } => {
                    if privates.contains(var) {
                        return Sharing::Private;
                    }
                    if reductions.contains(var) {
                        return Sharing::Reduction;
                    }
                    if shareds.contains(var) {
                        return Sharing::Shared;
                    }
                }
            }
        }
        Sharing::Shared
    }

    /// The effective team size of the nearest enclosing parallel
    /// region: `None` when outside any parallel region.
    fn team_size(&self) -> Option<usize> {
        for frame in self.frames.iter().rev() {
            if let Frame::Region { kind: RegionKind::Parallel, num_threads, .. } = frame {
                // Default team size is "more than one" — callers only
                // ask whether parallelism is possible.
                return Some(num_threads.unwrap_or(2));
            }
        }
        None
    }

    /// Is the current point protected by a mutual-exclusion or
    /// one-thread construct (below the nearest parallel region)?
    fn protected(&self) -> bool {
        for frame in self.frames.iter().rev() {
            if let Frame::Region { kind, .. } = frame {
                match kind {
                    RegionKind::Parallel => return false,
                    RegionKind::Critical
                    | RegionKind::Single
                    | RegionKind::Master
                    | RegionKind::Gui => return true,
                    _ => {}
                }
            }
        }
        false
    }

    /// The constructs between the current point and the nearest
    /// enclosing parallel region (innermost first).
    fn kinds_below_parallel(&self) -> Vec<RegionKind> {
        let mut kinds = Vec::new();
        for frame in self.frames.iter().rev() {
            if let Frame::Region { kind, .. } = frame {
                if *kind == RegionKind::Parallel {
                    break;
                }
                kinds.push(*kind);
            }
        }
        kinds
    }

    // -- the walk -----------------------------------------------------

    fn walk_items(&mut self, items: &[Item]) {
        for item in items {
            match item {
                Item::Assign(a) => self.check_assign(a),
                Item::Loop(l) => {
                    self.frames.push(Frame::Loop { var: l.var.name.clone() });
                    self.walk_items(&l.body);
                    self.frames.pop();
                }
                Item::Region(r) => self.walk_region(r),
            }
        }
    }

    fn walk_region(&mut self, r: &Region) {
        self.check_region_entry(r);

        // Build the region's data-environment frame.
        let mut privates = BTreeSet::new();
        let mut shareds = BTreeSet::new();
        let mut reductions = BTreeSet::new();
        for clause in &r.clauses {
            match clause {
                crate::ast::Clause::Private(ids) | crate::ast::Clause::FirstPrivate(ids) => {
                    privates.extend(ids.iter().map(|i| i.name.clone()));
                }
                crate::ast::Clause::Shared(ids) => {
                    shareds.extend(ids.iter().map(|i| i.name.clone()));
                }
                crate::ast::Clause::Reduction { var, .. } => {
                    reductions.insert(var.name.clone());
                }
                _ => {}
            }
        }
        self.frames.push(Frame::Region {
            kind: r.kind,
            privates,
            shareds,
            reductions,
            num_threads: r.num_threads(),
        });

        if r.kind == RegionKind::Parallel {
            let mut red = BTreeSet::new();
            collect_reduction_vars(&r.body, &mut red);
            self.parallel_reductions.push(red);
            self.check_master_without_barrier(r);
        }

        // W103: private declared here, first lexical use is a read.
        for clause in &r.clauses {
            if let crate::ast::Clause::Private(ids) = clause {
                for id in ids {
                    if let Some((true, span)) = first_access(&r.body, &id.name) {
                        self.diags.push(
                            Diagnostic::new(
                                Code::W103,
                                span,
                                format!(
                                    "private variable `{}` is read before its first write",
                                    id.name
                                ),
                            )
                            .with_note(
                                "private copies start uninitialised; use `firstprivate` to \
                                 capture the outer value",
                            ),
                        );
                    }
                }
            }
        }

        if r.kind == RegionKind::Critical {
            let lock = r.name.as_ref().map_or(String::new(), |n| n.name.clone());
            if self.held.iter().any(|h| h == &lock) {
                let shown = if lock.is_empty() { "<unnamed>" } else { &lock };
                self.diags.push(
                    Diagnostic::new(
                        Code::E004,
                        r.span,
                        format!("critical region `{shown}` is nested inside itself"),
                    )
                    .with_note("Pyjama criticals are not reentrant: re-entry deadlocks"),
                );
            } else {
                for outer in &self.held {
                    self.lock_edges
                        .entry((outer.clone(), lock.clone()))
                        .or_insert(r.span);
                }
            }
            self.held.push(lock);
        }

        if r.kind == RegionKind::Sections {
            let sets: Vec<BTreeSet<String>> = r
                .body
                .iter()
                .map(|item| {
                    let mut set = BTreeSet::new();
                    if let Item::Region(sec) = item {
                        collect_accesses(&sec.body, &mut set);
                    }
                    set
                })
                .collect();
            for (idx, item) in r.body.iter().enumerate() {
                if let Item::Region(sec) = item {
                    if sec.kind == RegionKind::Section {
                        self.section_siblings.push((sets.clone(), idx));
                        self.walk_region(sec);
                        self.section_siblings.pop();
                        continue;
                    }
                }
                // Checked in `check_region_entry` / below; still walk.
                self.walk_items(std::slice::from_ref(item));
            }
        } else {
            self.walk_items(&r.body);
        }

        if r.kind == RegionKind::Critical {
            self.held.pop();
        }
        if r.kind == RegionKind::Parallel {
            self.parallel_reductions.pop();
        }
        self.frames.pop();
    }

    /// Rules that fire on seeing a directive, before entering it.
    fn check_region_entry(&mut self, r: &Region) {
        let above = self.kinds_below_parallel();
        match r.kind {
            RegionKind::Barrier => {
                // E001: a barrier only some of the team reaches.
                if let Some(blocker) = above.iter().find(|k| {
                    matches!(
                        k,
                        RegionKind::For
                            | RegionKind::Sections
                            | RegionKind::Section
                            | RegionKind::Single
                            | RegionKind::Master
                            | RegionKind::Critical
                    )
                }) {
                    self.diags.push(
                        Diagnostic::new(
                            Code::E001,
                            r.span,
                            format!(
                                "barrier inside `{}`: only part of the team reaches it",
                                blocker.keyword()
                            ),
                        )
                        .with_note(
                            "threads that skip this construct wait at the region's end while \
                             the thread inside waits here — a guaranteed deadlock",
                        ),
                    );
                }
            }
            RegionKind::For | RegionKind::Sections => {
                // E002: worksharing nested in worksharing.
                if let Some(outer) = above.iter().find(|k| {
                    matches!(k, RegionKind::For | RegionKind::Sections | RegionKind::Section)
                }) {
                    self.diags.push(
                        Diagnostic::new(
                            Code::E002,
                            r.span,
                            format!(
                                "worksharing `{}` nested inside `{}` bound to the same \
                                 parallel region",
                                r.kind.keyword(),
                                outer.keyword()
                            ),
                        )
                        .with_note(
                            "each thread re-divides only its own share; wrap the inner \
                             construct in its own parallel region or restructure the loops",
                        ),
                    );
                }
            }
            RegionKind::Section => {
                // E005: `section` must sit directly inside `sections`.
                let direct_parent_is_sections = matches!(
                    self.frames.iter().rev().find_map(|f| match f {
                        Frame::Region { kind, .. } => Some(*kind),
                        Frame::Loop { .. } => None,
                    }),
                    Some(RegionKind::Sections)
                );
                if !direct_parent_is_sections {
                    self.diags.push(
                        Diagnostic::new(
                            Code::E005,
                            r.span,
                            "`section` outside a `sections` construct",
                        )
                        .with_note("wrap the section branches in `//#omp sections { ... }`"),
                    );
                }
            }
            _ => {}
        }
        // E005: `sections` may only contain `section` branches.
        if r.kind == RegionKind::Sections {
            for item in &r.body {
                let ok = matches!(item, Item::Region(s) if s.kind == RegionKind::Section);
                if !ok {
                    let span = match item {
                        Item::Region(s) => s.span,
                        Item::Loop(l) => l.span,
                        Item::Assign(a) => a.span,
                    };
                    self.diags.push(
                        Diagnostic::new(
                            Code::E005,
                            span,
                            "only `//#omp section` blocks may appear directly inside `sections`",
                        ),
                    );
                }
            }
        }
    }

    /// W102: a `master` block initialises shared state that sibling
    /// code reads with no barrier in between (`master`, unlike
    /// `single`, has no implied barrier).
    fn check_master_without_barrier(&mut self, parallel: &Region) {
        for (i, item) in parallel.body.iter().enumerate() {
            let Item::Region(master) = item else { continue };
            if master.kind != RegionKind::Master {
                continue;
            }
            let mut writes = BTreeSet::new();
            collect_writes(&master.body, &mut writes);
            writes.retain(|v| self.resolve(v) == Sharing::Shared);
            if writes.is_empty() {
                continue;
            }
            'after: for later in &parallel.body[i + 1..] {
                if let Item::Region(r) = later {
                    if r.kind == RegionKind::Barrier {
                        break 'after; // subsequent reads are ordered
                    }
                }
                let mut reads = BTreeSet::new();
                collect_reads(std::slice::from_ref(later), &mut reads);
                if let Some(var) = writes.iter().find(|w| reads.contains(*w)) {
                    self.diags.push(
                        Diagnostic::new(
                            Code::W102,
                            master.span,
                            format!(
                                "`master` writes `{var}` but sibling code reads it with no \
                                 barrier in between"
                            ),
                        )
                        .with_note(
                            "`master` has no implied barrier — non-master threads may read \
                             before the write; use `single` or add `//#omp barrier`",
                        ),
                    );
                    break 'after;
                }
            }
        }
    }

    /// Per-assignment rules: E003 and W101.
    fn check_assign(&mut self, a: &Assign) {
        if self.resolve(&a.target.name) != Sharing::Shared {
            return;
        }
        let Some(team) = self.team_size() else { return };
        if team <= 1 {
            return;
        }
        // E003: the variable is some reduction's accumulator in this
        // parallel region, written outside that reduction construct.
        let in_reduction_set = self
            .parallel_reductions
            .last()
            .is_some_and(|set| set.contains(&a.target.name));
        if in_reduction_set {
            self.diags.push(
                Diagnostic::new(
                    Code::E003,
                    a.span,
                    format!(
                        "reduction variable `{}` is written as a shared variable outside \
                         its reduction construct",
                        a.target.name
                    ),
                )
                .with_note(
                    "this write bypasses the per-thread accumulators and races with the \
                     combiner; move it outside the parallel region",
                ),
            );
            return; // E003 subsumes the race warning for this write
        }
        if self.protected() {
            return;
        }
        // Disjoint sections don't race: a write inside a `section` is
        // only a hazard if a sibling section touches the same variable.
        if let Some((siblings, me)) = self.section_siblings.last() {
            let contested = siblings
                .iter()
                .enumerate()
                .any(|(j, set)| j != *me && set.contains(&a.target.name));
            if !contested {
                return;
            }
        }
        self.diags.push(
            Diagnostic::new(
                Code::W101,
                a.span,
                format!(
                    "unprotected write to shared variable `{}` in a parallel region",
                    a.target.name
                ),
            )
            .with_note(
                "another thread can access it concurrently — protect it with `critical`, \
                 make it a reduction, or privatise it",
            ),
        );
    }

    /// E004: report each pair of named criticals nested in both orders.
    fn report_lock_cycles(&mut self) {
        let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
        let edges: Vec<((String, String), Span)> = self
            .lock_edges
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        for ((a, b), span) in &edges {
            if a == b {
                continue;
            }
            let key = if a < b { (a.clone(), b.clone()) } else { (b.clone(), a.clone()) };
            if reported.contains(&key) {
                continue;
            }
            if self.reaches(b, a) {
                reported.insert(key.clone());
                // Anchor at the lexically first of the two edges.
                let other = self.lock_edges.get(&(b.clone(), a.clone())).copied();
                let anchor = other.map_or(*span, |o| (*span).min(o));
                self.diags.push(
                    Diagnostic::new(
                        Code::E004,
                        anchor,
                        format!(
                            "critical regions `{}` and `{}` are nested in both orders \
                             (lock-order cycle)",
                            key.0, key.1
                        ),
                    )
                    .with_note(
                        "two threads can each hold one lock while waiting for the other: \
                         deadlock; acquire named criticals in one global order",
                    ),
                );
            }
        }
    }

    /// Is `to` reachable from `from` over the recorded nesting edges?
    fn reaches(&self, from: &str, to: &str) -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from.to_string()];
        while let Some(node) = stack.pop() {
            if node == to {
                return true;
            }
            if !seen.insert(node.clone()) {
                continue;
            }
            for (a, b) in self.lock_edges.keys() {
                if *a == node && !seen.contains(b) {
                    stack.push(b.clone());
                }
            }
        }
        false
    }
}

// -- subtree collectors ----------------------------------------------

/// Reduction variables declared by `for` constructs in this parallel
/// region (not crossing into nested parallel regions).
fn collect_reduction_vars(items: &[Item], out: &mut BTreeSet<String>) {
    for item in items {
        match item {
            Item::Region(r) => {
                if r.kind == RegionKind::For {
                    for (_, var) in r.reductions() {
                        out.insert(var.name.clone());
                    }
                }
                if r.kind != RegionKind::Parallel {
                    collect_reduction_vars(&r.body, out);
                }
            }
            Item::Loop(l) => collect_reduction_vars(&l.body, out),
            Item::Assign(_) => {}
        }
    }
}

/// All assignment targets in a subtree.
fn collect_writes(items: &[Item], out: &mut BTreeSet<String>) {
    for item in items {
        match item {
            Item::Assign(a) => {
                out.insert(a.target.name.clone());
            }
            Item::Loop(l) => collect_writes(&l.body, out),
            Item::Region(r) => collect_writes(&r.body, out),
        }
    }
}

/// All variables read (in expressions) in a subtree.
fn collect_reads(items: &[Item], out: &mut BTreeSet<String>) {
    for item in items {
        match item {
            Item::Assign(a) => a.expr.each_var(&mut |id| {
                out.insert(id.name.clone());
            }),
            Item::Loop(l) => collect_reads(&l.body, out),
            Item::Region(r) => collect_reads(&r.body, out),
        }
    }
}

/// All variables touched (read or written) in a subtree.
fn collect_accesses(items: &[Item], out: &mut BTreeSet<String>) {
    collect_writes(items, out);
    collect_reads(items, out);
}

/// The first lexical access to `var` in a subtree: `Some((true, span))`
/// for a read, `Some((false, span))` for a write. Within an
/// assignment the right-hand side reads precede the target write
/// (evaluation order). Subtrees that re-declare `var` (loop variable
/// or a privatising clause) are skipped.
fn first_access(items: &[Item], var: &str) -> Option<(bool, Span)> {
    for item in items {
        match item {
            Item::Assign(a) => {
                let mut read_span = None;
                a.expr.each_var(&mut |id| {
                    if read_span.is_none() && id.name == var {
                        read_span = Some(id.span);
                    }
                });
                if let Some(span) = read_span {
                    return Some((true, span));
                }
                if a.target.name == var {
                    return Some((false, a.target.span));
                }
            }
            Item::Loop(l) => {
                if l.var.name == var {
                    continue; // shadowed by the loop variable
                }
                if let Some(hit) = first_access(&l.body, var) {
                    return Some(hit);
                }
            }
            Item::Region(r) => {
                let redeclared = r.clauses.iter().any(|c| match c {
                    crate::ast::Clause::Private(ids) | crate::ast::Clause::FirstPrivate(ids) => {
                        ids.iter().any(|i| i.name == var)
                    }
                    crate::ast::Clause::Reduction { var: v, .. } => v.name == var,
                    _ => false,
                });
                if redeclared {
                    continue;
                }
                if let Some(hit) = first_access(&r.body, var) {
                    return Some(hit);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn codes(src: &str) -> Vec<Code> {
        let prog = parse(src).expect("test sources parse");
        check(&prog).into_iter().map(|d| d.code).collect()
    }

    #[test]
    fn barrier_in_critical_is_e001() {
        let src = "\
//#omp parallel num_threads(2)
{
    //#omp critical
    {
        //#omp barrier
    }
}
";
        assert_eq!(codes(src), vec![Code::E001]);
    }

    #[test]
    fn barrier_directly_in_parallel_is_fine() {
        let src = "\
//#omp parallel num_threads(2)
{
    //#omp barrier
}
";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn nested_worksharing_is_e002() {
        let src = "\
//#omp parallel num_threads(2) private(x)
{
    //#omp for
    for i in 0..2 {
        //#omp for
        for j in 0..2 {
            x = j;
        }
    }
}
";
        assert_eq!(codes(src), vec![Code::E002]);
    }

    #[test]
    fn reduction_var_written_outside_is_e003_not_w101() {
        let src = "\
sum = 0;
//#omp parallel num_threads(2)
{
    //#omp for reduction(+:sum)
    for i in 0..4 {
        sum = sum + i;
    }
    sum = sum + 100;
}
";
        assert_eq!(codes(src), vec![Code::E003]);
    }

    #[test]
    fn inconsistent_critical_nesting_is_e004() {
        let src = "\
//#omp parallel num_threads(2)
{
    //#omp critical alpha
    {
        //#omp critical beta
        {
            a = 1;
        }
    }
    //#omp critical beta
    {
        //#omp critical alpha
        {
            b = 1;
        }
    }
}
";
        assert_eq!(codes(src), vec![Code::E004]);
    }

    #[test]
    fn self_nested_critical_is_e004() {
        let src = "\
//#omp parallel num_threads(2)
{
    //#omp critical lk
    {
        //#omp critical lk
        {
            a = 1;
        }
    }
}
";
        assert_eq!(codes(src), vec![Code::E004]);
    }

    #[test]
    fn consistent_nesting_is_clean() {
        let src = "\
//#omp parallel num_threads(2)
{
    //#omp critical alpha
    {
        //#omp critical beta
        {
            a = 1;
        }
    }
    //#omp critical alpha
    {
        //#omp critical beta
        {
            b = 2;
        }
    }
}
";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn unprotected_shared_write_is_w101() {
        let src = "\
//#omp parallel num_threads(2)
{
    count = count + 1;
}
";
        assert_eq!(codes(src), vec![Code::W101]);
    }

    #[test]
    fn critical_protects_the_write() {
        let src = "\
//#omp parallel num_threads(2)
{
    //#omp critical
    {
        count = count + 1;
    }
}
";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn num_threads_one_suppresses_w101() {
        let src = "\
//#omp parallel num_threads(1)
{
    count = count + 1;
}
";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn disjoint_sections_are_clean_but_conflicting_sections_warn() {
        let disjoint = "\
//#omp parallel num_threads(2)
{
    //#omp sections
    {
        //#omp section
        {
            head = 1;
        }
        //#omp section
        {
            tail = 2;
        }
    }
}
";
        assert!(codes(disjoint).is_empty());
        let conflicting = disjoint.replace("head", "log").replace("tail", "log");
        assert_eq!(codes(&conflicting), vec![Code::W101, Code::W101]);
    }

    #[test]
    fn master_without_barrier_is_w102_with_barrier_clean() {
        let racy = "\
//#omp parallel num_threads(2) private(local)
{
    //#omp master
    {
        config = 7;
    }
    local = config;
}
";
        assert_eq!(codes(racy), vec![Code::W102]);
        let fixed = racy.replace("    local = config;", "    //#omp barrier\n    local = config;");
        assert!(codes(&fixed).is_empty());
    }

    #[test]
    fn private_read_before_write_is_w103() {
        let src = "\
//#omp parallel num_threads(2) private(t)
{
    t = t + 1;
}
";
        assert_eq!(codes(src), vec![Code::W103]);
    }

    #[test]
    fn firstprivate_read_is_fine() {
        let src = "\
seed = 3;
//#omp parallel num_threads(2) firstprivate(seed)
{
    seed = seed + 1;
}
";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn stray_section_is_e005() {
        let src = "\
//#omp parallel num_threads(2)
{
    //#omp section
    {
        x = 1;
    }
}
";
        assert_eq!(codes(src), vec![Code::E005, Code::W101]);
    }
}
