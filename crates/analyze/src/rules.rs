//! The static rule engine.
//!
//! Two engines live here:
//!
//! * [`check`] — the **MHP∩lockset engine**. Structural rules (E002,
//!   E003, E005, W103) come from the syntactic walk; everything
//!   schedule-dependent is decided on the [`crate::mhp`] event model:
//!   W101/W102 fire only for pairs of accesses that *may happen in
//!   parallel* with disjoint [`crate::lockset::Lockset`]s, E001/E006
//!   come from proved barrier-arrival mismatches (E001 when a classic
//!   construct encloses the anchor, E006 otherwise), E004 from
//!   lock-nesting edge instances on concurrent threads, and W104
//!   flags a `critical` whose body has no concurrent conflicting
//!   access at all. Because the directive language is branch-free the
//!   model is exact, which buys precision the old engine cannot have:
//!   an evenly-split barrier-in-for, a single-iteration `for` write, or
//!   any construct under `num_threads(1)` is provably safe and stays
//!   silent.
//! * [`check_syntactic`] — the original pattern-matching engine (PR 4),
//!   kept verbatim as the false-positive baseline the E-FUZZ harness
//!   measures the new engine against.
//!
//! The codes themselves are documented on [`crate::diag::Code`]; the
//! recurring student mistakes they encode (and their Pyjama/OpenMP
//! semantics) are:
//!
//! * `E001` — a barrier only part of the team reaches, under a
//!   worksharing/`single`/`master`/`critical` construct: barrier
//!   counts mismatch and the program deadlocks in *every* schedule.
//!   The explorer witnesses this (see `tests/analyze.rs`).
//! * `E002` — worksharing nested in worksharing bound to the same
//!   parallel region (each thread re-divides its own share).
//! * `E003` — a reduction variable assigned as an ordinary shared
//!   variable outside its reduction construct, bypassing the combiner.
//! * `E004` — named `critical` regions nested in inconsistent order
//!   (or self-nested): a lock-order cycle, so some schedule deadlocks.
//! * `E005` — structural misuse that parses but cannot lower
//!   (`section` outside `sections`, loose items inside `sections`).
//! * `E006` — a proved barrier-arrival mismatch outside the classic
//!   E001 construct family (e.g. a barrier under `gui`).
//! * `W101` — two MHP accesses to one shared variable, at least one a
//!   write, with disjoint locksets: a data race the explorer can show.
//! * `W102` — `master` initialisation read by sibling code with no
//!   intervening barrier (`master` has no implied barrier — the
//!   classic "why is it sometimes zero" bug; `single` would have one).
//! * `W103` — a `private` variable read before its first write
//!   (privates start uninitialised; `firstprivate` copies in).
//! * `W104` — a `critical` whose body conflicts with nothing
//!   concurrent: the lock is pure overhead.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Assign, Item, Program, Region, RegionKind, Span};
use crate::diag::{sort_diagnostics, Code, Diagnostic};
use crate::mhp;

/// How a variable name resolves at some program point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Sharing {
    /// Thread-local (private/firstprivate clause or loop variable).
    Private,
    /// The live accumulator of an enclosing `reduction` construct.
    Reduction,
    /// Shared across the team (the default).
    Shared,
}

/// One lexical scope on the walk stack.
#[derive(Debug)]
enum Frame {
    Region {
        kind: RegionKind,
        privates: BTreeSet<String>,
        shareds: BTreeSet<String>,
        reductions: BTreeSet<String>,
        num_threads: Option<usize>,
    },
    Loop { var: String },
}

/// Run every rule over a parsed program with the MHP∩lockset engine.
/// The result is sorted deterministically (span, then code) and
/// deduplicated.
#[must_use]
pub fn check(program: &Program) -> Vec<Diagnostic> {
    let syntactic = check_syntactic(program);
    let model = mhp::model(program);
    if model.truncated {
        // The symbolic execution ran out of budget: the event model is
        // incomplete, so fall back to the conservative syntactic
        // verdicts rather than claim silence we cannot prove.
        return syntactic;
    }
    let mut diags = Vec::new();
    let mut e003_spans = BTreeSet::new();
    for d in &syntactic {
        match d.code {
            // Structural rules carry over unchanged.
            Code::E002 | Code::E005 | Code::W103 => diags.push(d.clone()),
            // E003 carries over and suppresses the race warning at the
            // same span (the old engine returned early; we filter).
            Code::E003 => {
                e003_spans.insert(d.span);
                diags.push(d.clone());
            }
            // Everything schedule-dependent is re-derived from the model.
            _ => {}
        }
    }
    engine_deadlocks(&model, &mut diags);
    engine_lock_cycles(&model, &mut diags);
    engine_races(&model, &e003_spans, &mut diags);
    engine_redundant_criticals(&model, &mut diags);
    sort_diagnostics(&mut diags);
    diags.dedup_by(|a, b| a.code == b.code && a.span == b.span && a.message == b.message);
    diags
}

/// A lock key as shown to students: criticals lose their `lock:`
/// prefix (the empty name prints `<unnamed>`), internal reduction
/// combiner locks keep their `red:` spelling.
fn display_lock(key: &str) -> String {
    match key.strip_prefix("lock:") {
        Some("") => "<unnamed>".to_string(),
        Some(name) => name.to_string(),
        None => key.to_string(),
    }
}

/// E001/E006 from proved barrier-arrival mismatches.
fn engine_deadlocks(model: &mhp::Model, diags: &mut Vec<Diagnostic>) {
    for dl in mhp::barrier_deadlocks(model) {
        let mut d = if let Some(blocker) = mhp::classic_blocker(&dl.blockers) {
            Diagnostic::new(
                Code::E001,
                dl.span,
                format!(
                    "barrier inside `{}`: only part of the team reaches it",
                    blocker.keyword()
                ),
            )
            .with_note(
                "threads that skip this construct wait at the region's end while \
                 the thread inside waits here — a guaranteed deadlock",
            )
        } else {
            Diagnostic::new(
                Code::E006,
                dl.span,
                format!(
                    "barrier is reached by only {} of {} team threads: deterministic \
                     phase-ordering deadlock",
                    dl.arriving, dl.team
                ),
            )
            .with_note(
                "every thread must arrive at the team barrier the same number of \
                 times; the missing threads wait at the region join forever",
            )
        };
        if let Some(key) = &dl.lock {
            d = d.with_note(format!(
                "while waiting here the thread holds `{}`, which the rest of the \
                 team must acquire before they can arrive",
                display_lock(key)
            ));
        }
        diags.push(d);
    }
}

/// E004 from lock-nesting edge instances: a pair of locks acquired in
/// both orders by concurrent (MHP) threads, a re-entered critical, or
/// a longer cycle over the nesting graph.
fn engine_lock_cycles(model: &mhp::Model, diags: &mut Vec<Diagnostic>) {
    let mut seen_self = BTreeSet::new();
    for sn in &model.self_nests {
        if seen_self.insert(sn.span) {
            let shown = display_lock(&sn.key);
            diags.push(
                Diagnostic::new(
                    Code::E004,
                    sn.span,
                    format!("critical region `{shown}` is nested inside itself"),
                )
                .with_note("Pyjama criticals are not reentrant: re-entry deadlocks"),
            );
        }
    }

    let mut by_pair: BTreeMap<(&str, &str), Vec<&mhp::LockEdge>> = BTreeMap::new();
    for e in &model.lock_edges {
        by_pair.entry((&e.outer, &e.inner)).or_default().push(e);
    }
    let report = |a: &str, b: &str, anchor: Span, diags: &mut Vec<Diagnostic>| {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        diags.push(
            Diagnostic::new(
                Code::E004,
                anchor,
                format!(
                    "critical regions `{}` and `{}` are nested in both orders \
                     (lock-order cycle)",
                    display_lock(lo),
                    display_lock(hi)
                ),
            )
            .with_note(
                "two threads can each hold one lock while waiting for the other: \
                 deadlock; acquire named criticals in one global order",
            ),
        );
    };
    let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
    // Direct 2-cycles: the reverse edge must exist on an instance that
    // may happen in parallel with a forward instance (this is what
    // silences both-order nesting under num_threads(1)).
    for ((a, b), fwd) in &by_pair {
        if a >= b {
            continue;
        }
        let Some(rev) = by_pair.get(&(b, a)) else { continue };
        let feasible = fwd.iter().any(|e1| {
            rev.iter().any(|e2| mhp::may_happen_in_parallel(&e1.frames, &e2.frames))
        });
        if !feasible {
            continue;
        }
        let anchor = fwd.iter().chain(rev.iter()).map(|e| e.span).min().unwrap();
        reported.insert((a.to_string(), b.to_string()));
        report(a, b, anchor, diags);
    }
    // Longer cycles (a→b→…→a): reachability over the nesting graph,
    // feasible when any two distinct edges of the cycle's component
    // can run concurrently.
    let edges: BTreeSet<(&str, &str)> = by_pair.keys().copied().collect();
    for (a, b) in &edges {
        if a == b {
            continue;
        }
        let (lo, hi) = if a < b { (*a, *b) } else { (*b, *a) };
        if reported.contains(&(lo.to_string(), hi.to_string())) {
            continue;
        }
        if !reaches_over(&edges, b, a) {
            continue;
        }
        let component: Vec<&mhp::LockEdge> = model
            .lock_edges
            .iter()
            .filter(|e| {
                reaches_over(&edges, a, &e.outer) && reaches_over(&edges, &e.inner, a)
            })
            .collect();
        let feasible = component.iter().enumerate().any(|(i, e1)| {
            component[i + 1..]
                .iter()
                .any(|e2| mhp::may_happen_in_parallel(&e1.frames, &e2.frames))
        });
        if !feasible {
            continue;
        }
        reported.insert((lo.to_string(), hi.to_string()));
        let anchor = component.iter().map(|e| e.span).min().unwrap_or(Span::new(1, 1, 1));
        report(lo, hi, anchor, diags);
    }
}

/// Is `to` reachable from `from` over the nesting edges?
fn reaches_over(edges: &BTreeSet<(&str, &str)>, from: &str, to: &str) -> bool {
    if from == to {
        return true;
    }
    let mut seen = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(node) = stack.pop() {
        if node == to {
            return true;
        }
        if !seen.insert(node) {
            continue;
        }
        for (a, b) in edges {
            if *a == node && !seen.contains(b) {
                stack.push(b);
            }
        }
    }
    false
}

/// Cap on per-variable access events considered for pairing; beyond
/// this the engine has already seen every lexical site many times
/// over (the cap exists for pathological hand-written loops — the
/// step budget keeps the total well below it in practice).
const MAX_PAIR_EVENTS: usize = 2_000;

/// W101/W102 from MHP access pairs with disjoint locksets.
fn engine_races(
    model: &mhp::Model,
    e003_spans: &BTreeSet<Span>,
    diags: &mut Vec<Diagnostic>,
) {
    let mut by_var: BTreeMap<&str, Vec<&mhp::Access>> = BTreeMap::new();
    for a in &model.accesses {
        by_var.entry(&a.var).or_default().push(a);
    }
    // Racing write sites: (statement span, var) → did the write itself
    // hold any lock (picks the message wording).
    let mut w101: BTreeMap<(Span, String), bool> = BTreeMap::new();
    let mut w102: BTreeSet<(Span, String)> = BTreeSet::new();
    for (var, events) in &by_var {
        let events = &events[..events.len().min(MAX_PAIR_EVENTS)];
        for (i, a) in events.iter().enumerate() {
            for b in &events[i + 1..] {
                if !a.write && !b.write {
                    continue;
                }
                if !mhp::accesses_mhp(a, b) {
                    continue;
                }
                if a.locks.excludes(&b.locks) {
                    continue;
                }
                for (w, other) in [(a, b), (b, a)] {
                    if !w.write {
                        continue;
                    }
                    if let (Some(mspan), false) = (w.master, other.write) {
                        // A master-side write racing with a read is the
                        // classic missing-barrier idiom: report W102 at
                        // the master directive.
                        w102.insert((mspan, (*var).to_string()));
                    } else if !e003_spans.contains(&w.span) {
                        let locked = !w.locks.is_empty();
                        w101.entry((w.span, (*var).to_string()))
                            .and_modify(|l| *l |= locked)
                            .or_insert(locked);
                    }
                }
            }
        }
    }
    for ((span, var), locked) in w101 {
        let d = if locked {
            Diagnostic::new(
                Code::W101,
                span,
                format!(
                    "write to shared variable `{var}` races despite `critical`: a \
                     concurrent access shares no lock with it"
                ),
            )
            .with_note(
                "the conflicting access runs under a disjoint lockset; both \
                 accesses must agree on one named critical",
            )
        } else {
            Diagnostic::new(
                Code::W101,
                span,
                format!("unprotected write to shared variable `{var}` in a parallel region"),
            )
            .with_note(
                "another thread can access it concurrently — protect it with \
                 `critical`, make it a reduction, or privatise it",
            )
        };
        diags.push(d);
    }
    for (span, var) in w102 {
        diags.push(
            Diagnostic::new(
                Code::W102,
                span,
                format!(
                    "`master` writes `{var}` but sibling code reads it with no \
                     barrier in between"
                ),
            )
            .with_note(
                "`master` has no implied barrier — non-master threads may read \
                 before the write; use `single` or add `//#omp barrier`",
            ),
        );
    }
}

/// W104: a `critical` region whose body contains shared accesses, none
/// of which has *any* concurrent conflicting access — with or without
/// locks, nothing can race with it, so the lock is pure overhead.
/// Criticals with no shared accesses at all stay silent (they usually
/// guard something else, like a barrier misuse already reported).
fn engine_redundant_criticals(model: &mhp::Model, diags: &mut Vec<Diagnostic>) {
    let mut sites: BTreeMap<Span, &str> = BTreeMap::new();
    for s in &model.critical_sites {
        sites.entry(s.span).or_insert(&s.key);
    }
    for (span, key) in sites {
        let inside: Vec<&mhp::Access> =
            model.accesses.iter().filter(|a| a.criticals.contains(&span)).collect();
        if inside.is_empty() {
            continue;
        }
        let conflict = inside.iter().any(|a| {
            model.accesses.iter().any(|b| {
                b.seq != a.seq
                    && b.var == a.var
                    && (a.write || b.write)
                    && mhp::accesses_mhp(a, b)
            })
        });
        if !conflict {
            let shown = display_lock(key);
            diags.push(
                Diagnostic::new(
                    Code::W104,
                    span,
                    format!(
                        "critical region `{shown}` is redundant: no concurrent access \
                         conflicts with its body"
                    ),
                )
                .with_note(
                    "MHP analysis proves every access in this block is thread-local \
                     or ordered; the lock only adds overhead — remove it",
                ),
            );
        }
    }
}

/// Run the original PR 4 syntactic rules over a parsed program. Kept
/// byte-for-byte as the precision baseline the E-FUZZ harness compares
/// the MHP∩lockset engine against. The result is sorted
/// deterministically (span, then code).
#[must_use]
pub fn check_syntactic(program: &Program) -> Vec<Diagnostic> {
    let mut ck = Checker::default();
    ck.walk_items(&program.items);
    ck.report_lock_cycles();
    sort_diagnostics(&mut ck.diags);
    ck.diags
}

#[derive(Debug, Default)]
struct Checker {
    diags: Vec<Diagnostic>,
    frames: Vec<Frame>,
    /// Lock names currently held (entered criticals, outermost first).
    held: Vec<String>,
    /// Observed nesting edges between named criticals: outer → inner,
    /// with the span of the inner directive that recorded the edge.
    lock_edges: BTreeMap<(String, String), Span>,
    /// Reduction variables of the enclosing parallel region(s) (for
    /// `E003`), innermost last.
    parallel_reductions: Vec<BTreeSet<String>>,
    /// Sibling-section variable access sets and our index among them,
    /// for the `W101` disjointness refinement. Innermost last.
    section_siblings: Vec<(Vec<BTreeSet<String>>, usize)>,
}

impl Checker {
    // -- data-environment resolution ---------------------------------

    fn resolve(&self, var: &str) -> Sharing {
        for frame in self.frames.iter().rev() {
            match frame {
                Frame::Loop { var: v } if v == var => return Sharing::Private,
                Frame::Loop { .. } => {}
                Frame::Region { privates, shareds, reductions, .. } => {
                    if privates.contains(var) {
                        return Sharing::Private;
                    }
                    if reductions.contains(var) {
                        return Sharing::Reduction;
                    }
                    if shareds.contains(var) {
                        return Sharing::Shared;
                    }
                }
            }
        }
        Sharing::Shared
    }

    /// The effective team size of the nearest enclosing parallel
    /// region: `None` when outside any parallel region.
    fn team_size(&self) -> Option<usize> {
        for frame in self.frames.iter().rev() {
            if let Frame::Region { kind: RegionKind::Parallel, num_threads, .. } = frame {
                // Default team size is "more than one" — callers only
                // ask whether parallelism is possible.
                return Some(num_threads.unwrap_or(2));
            }
        }
        None
    }

    /// Is the current point protected by a mutual-exclusion or
    /// one-thread construct (below the nearest parallel region)?
    fn protected(&self) -> bool {
        for frame in self.frames.iter().rev() {
            if let Frame::Region { kind, .. } = frame {
                match kind {
                    RegionKind::Parallel => return false,
                    RegionKind::Critical
                    | RegionKind::Single
                    | RegionKind::Master
                    | RegionKind::Gui => return true,
                    _ => {}
                }
            }
        }
        false
    }

    /// The constructs between the current point and the nearest
    /// enclosing parallel region (innermost first).
    fn kinds_below_parallel(&self) -> Vec<RegionKind> {
        let mut kinds = Vec::new();
        for frame in self.frames.iter().rev() {
            if let Frame::Region { kind, .. } = frame {
                if *kind == RegionKind::Parallel {
                    break;
                }
                kinds.push(*kind);
            }
        }
        kinds
    }

    // -- the walk -----------------------------------------------------

    fn walk_items(&mut self, items: &[Item]) {
        for item in items {
            match item {
                Item::Assign(a) => self.check_assign(a),
                Item::Loop(l) => {
                    self.frames.push(Frame::Loop { var: l.var.name.clone() });
                    self.walk_items(&l.body);
                    self.frames.pop();
                }
                Item::Region(r) => self.walk_region(r),
            }
        }
    }

    fn walk_region(&mut self, r: &Region) {
        self.check_region_entry(r);

        // Build the region's data-environment frame.
        let mut privates = BTreeSet::new();
        let mut shareds = BTreeSet::new();
        let mut reductions = BTreeSet::new();
        for clause in &r.clauses {
            match clause {
                crate::ast::Clause::Private(ids) | crate::ast::Clause::FirstPrivate(ids) => {
                    privates.extend(ids.iter().map(|i| i.name.clone()));
                }
                crate::ast::Clause::Shared(ids) => {
                    shareds.extend(ids.iter().map(|i| i.name.clone()));
                }
                crate::ast::Clause::Reduction { var, .. } => {
                    reductions.insert(var.name.clone());
                }
                _ => {}
            }
        }
        self.frames.push(Frame::Region {
            kind: r.kind,
            privates,
            shareds,
            reductions,
            num_threads: r.num_threads(),
        });

        if r.kind == RegionKind::Parallel {
            let mut red = BTreeSet::new();
            collect_reduction_vars(&r.body, &mut red);
            self.parallel_reductions.push(red);
            self.check_master_without_barrier(r);
        }

        // W103: private declared here, first lexical use is a read.
        for clause in &r.clauses {
            if let crate::ast::Clause::Private(ids) = clause {
                for id in ids {
                    if let Some((true, span)) = first_access(&r.body, &id.name) {
                        self.diags.push(
                            Diagnostic::new(
                                Code::W103,
                                span,
                                format!(
                                    "private variable `{}` is read before its first write",
                                    id.name
                                ),
                            )
                            .with_note(
                                "private copies start uninitialised; use `firstprivate` to \
                                 capture the outer value",
                            ),
                        );
                    }
                }
            }
        }

        if r.kind == RegionKind::Critical {
            let lock = r.name.as_ref().map_or(String::new(), |n| n.name.clone());
            if self.held.iter().any(|h| h == &lock) {
                let shown = if lock.is_empty() { "<unnamed>" } else { &lock };
                self.diags.push(
                    Diagnostic::new(
                        Code::E004,
                        r.span,
                        format!("critical region `{shown}` is nested inside itself"),
                    )
                    .with_note("Pyjama criticals are not reentrant: re-entry deadlocks"),
                );
            } else {
                for outer in &self.held {
                    self.lock_edges
                        .entry((outer.clone(), lock.clone()))
                        .or_insert(r.span);
                }
            }
            self.held.push(lock);
        }

        if r.kind == RegionKind::Sections {
            let sets: Vec<BTreeSet<String>> = r
                .body
                .iter()
                .map(|item| {
                    let mut set = BTreeSet::new();
                    if let Item::Region(sec) = item {
                        collect_accesses(&sec.body, &mut set);
                    }
                    set
                })
                .collect();
            for (idx, item) in r.body.iter().enumerate() {
                if let Item::Region(sec) = item {
                    if sec.kind == RegionKind::Section {
                        self.section_siblings.push((sets.clone(), idx));
                        self.walk_region(sec);
                        self.section_siblings.pop();
                        continue;
                    }
                }
                // Checked in `check_region_entry` / below; still walk.
                self.walk_items(std::slice::from_ref(item));
            }
        } else {
            self.walk_items(&r.body);
        }

        if r.kind == RegionKind::Critical {
            self.held.pop();
        }
        if r.kind == RegionKind::Parallel {
            self.parallel_reductions.pop();
        }
        self.frames.pop();
    }

    /// Rules that fire on seeing a directive, before entering it.
    fn check_region_entry(&mut self, r: &Region) {
        let above = self.kinds_below_parallel();
        match r.kind {
            RegionKind::Barrier => {
                // E001: a barrier only some of the team reaches.
                if let Some(blocker) = above.iter().find(|k| {
                    matches!(
                        k,
                        RegionKind::For
                            | RegionKind::Sections
                            | RegionKind::Section
                            | RegionKind::Single
                            | RegionKind::Master
                            | RegionKind::Critical
                    )
                }) {
                    self.diags.push(
                        Diagnostic::new(
                            Code::E001,
                            r.span,
                            format!(
                                "barrier inside `{}`: only part of the team reaches it",
                                blocker.keyword()
                            ),
                        )
                        .with_note(
                            "threads that skip this construct wait at the region's end while \
                             the thread inside waits here — a guaranteed deadlock",
                        ),
                    );
                }
            }
            RegionKind::For | RegionKind::Sections => {
                // E002: worksharing nested in worksharing.
                if let Some(outer) = above.iter().find(|k| {
                    matches!(k, RegionKind::For | RegionKind::Sections | RegionKind::Section)
                }) {
                    self.diags.push(
                        Diagnostic::new(
                            Code::E002,
                            r.span,
                            format!(
                                "worksharing `{}` nested inside `{}` bound to the same \
                                 parallel region",
                                r.kind.keyword(),
                                outer.keyword()
                            ),
                        )
                        .with_note(
                            "each thread re-divides only its own share; wrap the inner \
                             construct in its own parallel region or restructure the loops",
                        ),
                    );
                }
            }
            RegionKind::Section => {
                // E005: `section` must sit directly inside `sections`.
                let direct_parent_is_sections = matches!(
                    self.frames.iter().rev().find_map(|f| match f {
                        Frame::Region { kind, .. } => Some(*kind),
                        Frame::Loop { .. } => None,
                    }),
                    Some(RegionKind::Sections)
                );
                if !direct_parent_is_sections {
                    self.diags.push(
                        Diagnostic::new(
                            Code::E005,
                            r.span,
                            "`section` outside a `sections` construct",
                        )
                        .with_note("wrap the section branches in `//#omp sections { ... }`"),
                    );
                }
            }
            _ => {}
        }
        // E005: `sections` may only contain `section` branches.
        if r.kind == RegionKind::Sections {
            for item in &r.body {
                let ok = matches!(item, Item::Region(s) if s.kind == RegionKind::Section);
                if !ok {
                    let span = match item {
                        Item::Region(s) => s.span,
                        Item::Loop(l) => l.span,
                        Item::Assign(a) => a.span,
                    };
                    self.diags.push(
                        Diagnostic::new(
                            Code::E005,
                            span,
                            "only `//#omp section` blocks may appear directly inside `sections`",
                        ),
                    );
                }
            }
        }
    }

    /// W102: a `master` block initialises shared state that sibling
    /// code reads with no barrier in between (`master`, unlike
    /// `single`, has no implied barrier).
    fn check_master_without_barrier(&mut self, parallel: &Region) {
        for (i, item) in parallel.body.iter().enumerate() {
            let Item::Region(master) = item else { continue };
            if master.kind != RegionKind::Master {
                continue;
            }
            let mut writes = BTreeSet::new();
            collect_writes(&master.body, &mut writes);
            writes.retain(|v| self.resolve(v) == Sharing::Shared);
            if writes.is_empty() {
                continue;
            }
            'after: for later in &parallel.body[i + 1..] {
                if let Item::Region(r) = later {
                    if r.kind == RegionKind::Barrier {
                        break 'after; // subsequent reads are ordered
                    }
                }
                let mut reads = BTreeSet::new();
                collect_reads(std::slice::from_ref(later), &mut reads);
                if let Some(var) = writes.iter().find(|w| reads.contains(*w)) {
                    self.diags.push(
                        Diagnostic::new(
                            Code::W102,
                            master.span,
                            format!(
                                "`master` writes `{var}` but sibling code reads it with no \
                                 barrier in between"
                            ),
                        )
                        .with_note(
                            "`master` has no implied barrier — non-master threads may read \
                             before the write; use `single` or add `//#omp barrier`",
                        ),
                    );
                    break 'after;
                }
            }
        }
    }

    /// Per-assignment rules: E003 and W101.
    fn check_assign(&mut self, a: &Assign) {
        if self.resolve(&a.target.name) != Sharing::Shared {
            return;
        }
        let Some(team) = self.team_size() else { return };
        if team <= 1 {
            return;
        }
        // E003: the variable is some reduction's accumulator in this
        // parallel region, written outside that reduction construct.
        let in_reduction_set = self
            .parallel_reductions
            .last()
            .is_some_and(|set| set.contains(&a.target.name));
        if in_reduction_set {
            self.diags.push(
                Diagnostic::new(
                    Code::E003,
                    a.span,
                    format!(
                        "reduction variable `{}` is written as a shared variable outside \
                         its reduction construct",
                        a.target.name
                    ),
                )
                .with_note(
                    "this write bypasses the per-thread accumulators and races with the \
                     combiner; move it outside the parallel region",
                ),
            );
            return; // E003 subsumes the race warning for this write
        }
        if self.protected() {
            return;
        }
        // Disjoint sections don't race: a write inside a `section` is
        // only a hazard if a sibling section touches the same variable.
        if let Some((siblings, me)) = self.section_siblings.last() {
            let contested = siblings
                .iter()
                .enumerate()
                .any(|(j, set)| j != *me && set.contains(&a.target.name));
            if !contested {
                return;
            }
        }
        self.diags.push(
            Diagnostic::new(
                Code::W101,
                a.span,
                format!(
                    "unprotected write to shared variable `{}` in a parallel region",
                    a.target.name
                ),
            )
            .with_note(
                "another thread can access it concurrently — protect it with `critical`, \
                 make it a reduction, or privatise it",
            ),
        );
    }

    /// E004: report each pair of named criticals nested in both orders.
    fn report_lock_cycles(&mut self) {
        let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
        let edges: Vec<((String, String), Span)> = self
            .lock_edges
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        for ((a, b), span) in &edges {
            if a == b {
                continue;
            }
            let key = if a < b { (a.clone(), b.clone()) } else { (b.clone(), a.clone()) };
            if reported.contains(&key) {
                continue;
            }
            if self.reaches(b, a) {
                reported.insert(key.clone());
                // Anchor at the lexically first of the two edges.
                let other = self.lock_edges.get(&(b.clone(), a.clone())).copied();
                let anchor = other.map_or(*span, |o| (*span).min(o));
                self.diags.push(
                    Diagnostic::new(
                        Code::E004,
                        anchor,
                        format!(
                            "critical regions `{}` and `{}` are nested in both orders \
                             (lock-order cycle)",
                            key.0, key.1
                        ),
                    )
                    .with_note(
                        "two threads can each hold one lock while waiting for the other: \
                         deadlock; acquire named criticals in one global order",
                    ),
                );
            }
        }
    }

    /// Is `to` reachable from `from` over the recorded nesting edges?
    fn reaches(&self, from: &str, to: &str) -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from.to_string()];
        while let Some(node) = stack.pop() {
            if node == to {
                return true;
            }
            if !seen.insert(node.clone()) {
                continue;
            }
            for (a, b) in self.lock_edges.keys() {
                if *a == node && !seen.contains(b) {
                    stack.push(b.clone());
                }
            }
        }
        false
    }
}

// -- subtree collectors ----------------------------------------------

/// Reduction variables declared by `for` constructs in this parallel
/// region (not crossing into nested parallel regions).
fn collect_reduction_vars(items: &[Item], out: &mut BTreeSet<String>) {
    for item in items {
        match item {
            Item::Region(r) => {
                if r.kind == RegionKind::For {
                    for (_, var) in r.reductions() {
                        out.insert(var.name.clone());
                    }
                }
                if r.kind != RegionKind::Parallel {
                    collect_reduction_vars(&r.body, out);
                }
            }
            Item::Loop(l) => collect_reduction_vars(&l.body, out),
            Item::Assign(_) => {}
        }
    }
}

/// All assignment targets in a subtree.
fn collect_writes(items: &[Item], out: &mut BTreeSet<String>) {
    for item in items {
        match item {
            Item::Assign(a) => {
                out.insert(a.target.name.clone());
            }
            Item::Loop(l) => collect_writes(&l.body, out),
            Item::Region(r) => collect_writes(&r.body, out),
        }
    }
}

/// All variables read (in expressions) in a subtree.
fn collect_reads(items: &[Item], out: &mut BTreeSet<String>) {
    for item in items {
        match item {
            Item::Assign(a) => a.expr.each_var(&mut |id| {
                out.insert(id.name.clone());
            }),
            Item::Loop(l) => collect_reads(&l.body, out),
            Item::Region(r) => collect_reads(&r.body, out),
        }
    }
}

/// All variables touched (read or written) in a subtree.
fn collect_accesses(items: &[Item], out: &mut BTreeSet<String>) {
    collect_writes(items, out);
    collect_reads(items, out);
}

/// The first lexical access to `var` in a subtree: `Some((true, span))`
/// for a read, `Some((false, span))` for a write. Within an
/// assignment the right-hand side reads precede the target write
/// (evaluation order). Subtrees that re-declare `var` (loop variable
/// or a privatising clause) are skipped.
fn first_access(items: &[Item], var: &str) -> Option<(bool, Span)> {
    for item in items {
        match item {
            Item::Assign(a) => {
                let mut read_span = None;
                a.expr.each_var(&mut |id| {
                    if read_span.is_none() && id.name == var {
                        read_span = Some(id.span);
                    }
                });
                if let Some(span) = read_span {
                    return Some((true, span));
                }
                if a.target.name == var {
                    return Some((false, a.target.span));
                }
            }
            Item::Loop(l) => {
                if l.var.name == var {
                    continue; // shadowed by the loop variable
                }
                if let Some(hit) = first_access(&l.body, var) {
                    return Some(hit);
                }
            }
            Item::Region(r) => {
                let redeclared = r.clauses.iter().any(|c| match c {
                    crate::ast::Clause::Private(ids) | crate::ast::Clause::FirstPrivate(ids) => {
                        ids.iter().any(|i| i.name == var)
                    }
                    crate::ast::Clause::Reduction { var: v, .. } => v.name == var,
                    _ => false,
                });
                if redeclared {
                    continue;
                }
                if let Some(hit) = first_access(&r.body, var) {
                    return Some(hit);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn codes(src: &str) -> Vec<Code> {
        let prog = parse(src).expect("test sources parse");
        check(&prog).into_iter().map(|d| d.code).collect()
    }

    #[test]
    fn barrier_in_critical_is_e001() {
        let src = "\
//#omp parallel num_threads(2)
{
    //#omp critical
    {
        //#omp barrier
    }
}
";
        assert_eq!(codes(src), vec![Code::E001]);
    }

    #[test]
    fn barrier_directly_in_parallel_is_fine() {
        let src = "\
//#omp parallel num_threads(2)
{
    //#omp barrier
}
";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn nested_worksharing_is_e002() {
        let src = "\
//#omp parallel num_threads(2) private(x)
{
    //#omp for
    for i in 0..2 {
        //#omp for
        for j in 0..2 {
            x = j;
        }
    }
}
";
        assert_eq!(codes(src), vec![Code::E002]);
    }

    #[test]
    fn reduction_var_written_outside_is_e003_not_w101() {
        let src = "\
sum = 0;
//#omp parallel num_threads(2)
{
    //#omp for reduction(+:sum)
    for i in 0..4 {
        sum = sum + i;
    }
    sum = sum + 100;
}
";
        assert_eq!(codes(src), vec![Code::E003]);
    }

    #[test]
    fn inconsistent_critical_nesting_is_e004() {
        let src = "\
//#omp parallel num_threads(2)
{
    //#omp critical alpha
    {
        //#omp critical beta
        {
            a = 1;
        }
    }
    //#omp critical beta
    {
        //#omp critical alpha
        {
            b = 1;
        }
    }
}
";
        assert_eq!(codes(src), vec![Code::E004]);
    }

    #[test]
    fn self_nested_critical_is_e004() {
        let src = "\
//#omp parallel num_threads(2)
{
    //#omp critical lk
    {
        //#omp critical lk
        {
            a = 1;
        }
    }
}
";
        assert_eq!(codes(src), vec![Code::E004]);
    }

    #[test]
    fn consistent_nesting_is_clean() {
        let src = "\
//#omp parallel num_threads(2)
{
    //#omp critical alpha
    {
        //#omp critical beta
        {
            a = a + 1;
        }
    }
    //#omp critical alpha
    {
        //#omp critical beta
        {
            a = a + 2;
        }
    }
}
";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn unprotected_shared_write_is_w101() {
        let src = "\
//#omp parallel num_threads(2)
{
    count = count + 1;
}
";
        assert_eq!(codes(src), vec![Code::W101]);
    }

    #[test]
    fn critical_protects_the_write() {
        let src = "\
//#omp parallel num_threads(2)
{
    //#omp critical
    {
        count = count + 1;
    }
}
";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn num_threads_one_suppresses_w101() {
        let src = "\
//#omp parallel num_threads(1)
{
    count = count + 1;
}
";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn disjoint_sections_are_clean_but_conflicting_sections_warn() {
        let disjoint = "\
//#omp parallel num_threads(2)
{
    //#omp sections
    {
        //#omp section
        {
            head = 1;
        }
        //#omp section
        {
            tail = 2;
        }
    }
}
";
        assert!(codes(disjoint).is_empty());
        let conflicting = disjoint.replace("head", "log").replace("tail", "log");
        assert_eq!(codes(&conflicting), vec![Code::W101, Code::W101]);
    }

    #[test]
    fn master_without_barrier_is_w102_with_barrier_clean() {
        let racy = "\
//#omp parallel num_threads(2) private(local)
{
    //#omp master
    {
        config = 7;
    }
    local = config;
}
";
        assert_eq!(codes(racy), vec![Code::W102]);
        let fixed = racy.replace("    local = config;", "    //#omp barrier\n    local = config;");
        assert!(codes(&fixed).is_empty());
    }

    #[test]
    fn private_read_before_write_is_w103() {
        let src = "\
//#omp parallel num_threads(2) private(t)
{
    t = t + 1;
}
";
        assert_eq!(codes(src), vec![Code::W103]);
    }

    #[test]
    fn firstprivate_read_is_fine() {
        let src = "\
seed = 3;
//#omp parallel num_threads(2) firstprivate(seed)
{
    seed = seed + 1;
}
";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn stray_section_is_e005() {
        let src = "\
//#omp parallel num_threads(2)
{
    //#omp section
    {
        x = 1;
    }
}
";
        assert_eq!(codes(src), vec![Code::E005, Code::W101]);
    }

    // -- MHP∩lockset engine ------------------------------------------

    fn codes_syntactic(src: &str) -> Vec<Code> {
        let prog = parse(src).expect("test sources parse");
        check_syntactic(&prog).into_iter().map(|d| d.code).collect()
    }

    #[test]
    fn barrier_in_gui_is_e006() {
        let src = "\
//#omp parallel num_threads(2)
{
    //#omp gui
    {
        done = 1;
        //#omp barrier
    }
}
";
        assert_eq!(codes(src), vec![Code::E006]);
        // The syntactic engine's E001 family never covered `gui`.
        assert!(codes_syntactic(src).is_empty());
    }

    #[test]
    fn redundant_critical_is_w104() {
        let src = "\
//#omp parallel num_threads(2)
{
    //#omp sections
    {
        //#omp section
        {
            //#omp critical stats
            {
                head = head + 1;
            }
        }
        //#omp section
        {
            tail = tail + 1;
        }
    }
}
";
        assert_eq!(codes(src), vec![Code::W104]);
    }

    #[test]
    fn contested_critical_is_not_w104() {
        let src = "\
//#omp parallel num_threads(2)
{
    //#omp critical tally
    {
        count = count + 1;
    }
}
";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn even_barrier_split_in_for_is_proved_clean() {
        // 4 iterations across 2 threads: each thread meets the barrier
        // twice. The syntactic engine flags E001; the MHP engine
        // proves the arrival counts balance.
        let src = "\
//#omp parallel num_threads(2)
{
    //#omp for
    for i in 0..4 {
        //#omp barrier
    }
}
";
        assert!(codes(src).is_empty());
        assert_eq!(codes_syntactic(src), vec![Code::E001]);
    }

    #[test]
    fn single_iteration_for_write_is_proved_clean() {
        // Only thread 0 ever executes the body: no MHP pair exists.
        let src = "\
//#omp parallel num_threads(2)
{
    //#omp for
    for i in 0..1 {
        x = x + 1;
    }
}
";
        assert!(codes(src).is_empty());
        assert_eq!(codes_syntactic(src), vec![Code::W101]);
    }

    #[test]
    fn team_of_one_lock_cycle_is_proved_clean() {
        let src = "\
//#omp parallel num_threads(1)
{
    //#omp critical alpha
    {
        //#omp critical beta
        {
            u = u + 1;
        }
    }
    //#omp critical beta
    {
        //#omp critical alpha
        {
            u = u + 2;
        }
    }
}
";
        // One thread acquires both orders sequentially: no deadlock is
        // reachable. The locks are also genuinely redundant on a team
        // of one, so W104 fires instead of the old false E004.
        let got = codes(src);
        assert!(!got.contains(&Code::E004));
        assert!(got.iter().all(|c| *c == Code::W104));
        assert_eq!(codes_syntactic(src), vec![Code::E004]);
    }

    #[test]
    fn disjoint_locks_still_race_w101() {
        let src = "\
//#omp parallel num_threads(2)
{
    //#omp critical alpha
    {
        x = x + 1;
    }
    //#omp critical beta
    {
        x = x + 2;
    }
}
";
        assert_eq!(codes(src), vec![Code::W101, Code::W101]);
    }

    #[test]
    fn lockset_message_mentions_the_disjoint_lock() {
        let src = "\
//#omp parallel num_threads(2)
{
    //#omp critical alpha
    {
        x = x + 1;
    }
    x = x + 2;
}
";
        let prog = parse(src).expect("parses");
        let diags = check(&prog);
        let locked: Vec<&Diagnostic> =
            diags.iter().filter(|d| d.message.contains("races despite")).collect();
        assert_eq!(locked.len(), 1, "the locked write gets the lockset wording: {diags:?}");
        assert!(diags.iter().any(|d| d.message.starts_with("unprotected write")));
    }
}
