//! The lowering bridge: compiles an analyzed directive program onto
//! three executable back ends so static verdicts can be checked
//! against real behaviour.
//!
//! * [`explore_program`] lowers onto the `parc-explore` shim runtime
//!   (plain cells, shim mutexes, the episode-counting shim barrier)
//!   and runs the interleaving explorer over it. This is the
//!   cross-validation engine: a fixture flagged `E001`/`E004` must
//!   produce explorer-witnessed deadlocks, a flagged race must show a
//!   racing schedule, and a clean fixture must be *proved* race-free
//!   over the exhausted interleaving space.
//! * [`run_on_pyjama`] lowers onto the real [`pyjama`] runtime
//!   (`SeqCst` atomics for the shared scalars, so racy programs stay
//!   UB-free). Never call it for deadlocking programs — real threads
//!   really hang.
//! * [`interpret_seq`] is the sequential reference: it emulates the
//!   team one thread at a time (barriers become no-ops). For clean
//!   programs the pyjama result must equal this reference.
//!
//! Lowering is intentionally literal and shared between back ends:
//! worksharing splits iterations (and sections) cyclically by
//! `index % num_threads`, `single`/`master`/`gui` pick thread 0 (on
//! pyjama, `single` is claim-based, which is observably equivalent for
//! clean programs), and every barrier point of a parallel region uses
//! that region's one team barrier, exactly like an OpenMP team
//! barrier. `schedule(...)` clauses are accepted but do not change the
//! cyclic split. Structurally invalid programs (`E005`) should not be
//! lowered; a stray `section` outside `sections` is executed as a
//! plain block by every thread.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicI64, Ordering};

use parc_explore::sync as xsync;
use parc_explore::sync::Arc;
use parc_explore::{explore, record, Config, ExploreReport};
use pyjama::{Ctx, Team};

use crate::ast::{Expr, Item, Loop, Program, RedOp, Region, RegionKind};

/// Default team size when a parallel region has no `num_threads`.
const DEFAULT_TEAM: usize = 2;

/// Every variable name a program can touch (assignment targets and
/// expression reads). Private variables keep cells too — they are
/// simply never accessed, because frame lookups shadow them.
fn var_names(items: &[Item], out: &mut BTreeSet<String>) {
    for item in items {
        match item {
            Item::Assign(a) => {
                out.insert(a.target.name.clone());
                a.expr.each_var(&mut |id| {
                    out.insert(id.name.clone());
                });
            }
            Item::Loop(l) => var_names(&l.body, out),
            Item::Region(r) => var_names(&r.body, out),
        }
    }
}

/// Every lock key a program needs: named criticals (`lock:<name>`,
/// with `lock:` for the unnamed critical) and the internal combiner
/// locks of reduction clauses (`red:<var>`).
fn lock_keys(items: &[Item], out: &mut BTreeSet<String>) {
    for item in items {
        match item {
            Item::Region(r) => {
                if r.kind == RegionKind::Critical {
                    let name = r.name.as_ref().map(|n| n.name.as_str()).unwrap_or("");
                    out.insert(format!("lock:{name}"));
                }
                for (_, var) in r.reductions() {
                    out.insert(format!("red:{}", var.name));
                }
                lock_keys(&r.body, out);
            }
            Item::Loop(l) => lock_keys(&l.body, out),
            Item::Assign(_) => {}
        }
    }
}

/// Evaluate an expression against a variable resolver.
fn eval(expr: &Expr, read: &mut impl FnMut(&str) -> i64) -> i64 {
    match expr {
        Expr::Num(n, _) => *n,
        Expr::Var(id) => read(&id.name),
        Expr::Bin(a, op, b) => {
            let left = eval(a, read);
            let right = eval(b, read);
            op.apply(left, right)
        }
    }
}

/// The reduction clauses of a `for` region, resolved to plain data.
fn reductions_of(r: &Region) -> Vec<(RedOp, String)> {
    r.reductions().map(|(op, var)| (op, var.name.clone())).collect()
}

/// The per-thread frame a parallel region starts with: privates are
/// zero-initialised (modelling default-initialised locals),
/// firstprivates capture the value read by `capture`.
fn region_frame(
    r: &Region,
    capture: &mut impl FnMut(&str) -> i64,
) -> BTreeMap<String, i64> {
    let mut frame = BTreeMap::new();
    for clause in &r.clauses {
        match clause {
            crate::ast::Clause::Private(ids) => {
                for id in ids {
                    frame.insert(id.name.clone(), 0);
                }
            }
            crate::ast::Clause::FirstPrivate(ids) => {
                for id in ids {
                    frame.insert(id.name.clone(), capture(&id.name));
                }
            }
            _ => {}
        }
    }
    frame
}

// =====================================================================
// Back end 1: the interleaving explorer
// =====================================================================

/// Shared simulation state: one plain cell per program variable, one
/// shim mutex per lock key.
struct SimShared {
    cells: BTreeMap<String, xsync::PlainCell<i64>>,
    locks: BTreeMap<String, Arc<xsync::Mutex<()>>>,
}

/// One simulated thread's view during lowering.
struct SimEnv {
    tid: usize,
    n: usize,
    shared: Arc<SimShared>,
    barrier: Option<Arc<xsync::Barrier>>,
    frames: Vec<BTreeMap<String, i64>>,
}

impl SimEnv {
    fn read(&self, var: &str) -> i64 {
        for frame in self.frames.iter().rev() {
            if let Some(v) = frame.get(var) {
                return *v;
            }
        }
        self.shared.cells[var].get()
    }

    fn write(&mut self, var: &str, value: i64) {
        for frame in self.frames.iter_mut().rev() {
            if let Some(slot) = frame.get_mut(var) {
                *slot = value;
                return;
            }
        }
        self.shared.cells[var].set(value);
    }

    fn eval(&mut self, expr: &Expr) -> i64 {
        // Split borrows: frame lookups need `&self`, cell reads yield.
        match expr {
            Expr::Num(n, _) => *n,
            Expr::Var(id) => self.read(&id.name),
            Expr::Bin(a, op, b) => {
                let left = self.eval(a);
                let right = self.eval(b);
                op.apply(left, right)
            }
        }
    }

    fn barrier_wait(&self) {
        if let Some(b) = &self.barrier {
            b.wait();
        }
    }

    fn exec_items(&mut self, items: &[Item]) {
        for item in items {
            match item {
                Item::Assign(a) => {
                    let value = self.eval(&a.expr);
                    self.write(&a.target.name, value);
                }
                Item::Loop(l) => self.exec_loop(l, 1, 0),
                Item::Region(r) => self.exec_region(r),
            }
        }
    }

    /// Run a counted loop, executing every `stride`-th iteration
    /// starting at `offset` (1/0 = all of them).
    fn exec_loop(&mut self, l: &Loop, stride: usize, offset: usize) {
        self.frames.push(BTreeMap::new());
        for k in l.lo..l.hi {
            if (k - l.lo) as usize % stride != offset {
                continue;
            }
            self.frames
                .last_mut()
                .expect("loop frame just pushed")
                .insert(l.var.name.clone(), k);
            self.exec_items(&l.body);
        }
        self.frames.pop();
    }

    fn exec_region(&mut self, r: &Region) {
        match r.kind {
            RegionKind::Parallel => self.exec_parallel(r),
            RegionKind::For => self.exec_for(r),
            RegionKind::Sections => {
                for (k, item) in r.body.iter().enumerate() {
                    if k % self.n != self.tid {
                        continue;
                    }
                    if let Item::Region(sec) = item {
                        if sec.kind == RegionKind::Section {
                            self.exec_items(&sec.body);
                            continue;
                        }
                    }
                    self.exec_items(std::slice::from_ref(item));
                }
                if !r.nowait() {
                    self.barrier_wait();
                }
            }
            RegionKind::Section => {
                // Stray section (statically E005): run as a plain block.
                self.exec_items(&r.body);
            }
            RegionKind::Single => {
                if self.tid == 0 {
                    self.exec_items(&r.body);
                }
                if !r.nowait() {
                    self.barrier_wait();
                }
            }
            RegionKind::Master | RegionKind::Gui => {
                if self.tid == 0 {
                    self.exec_items(&r.body);
                }
            }
            RegionKind::Critical => {
                let name = r.name.as_ref().map(|n| n.name.as_str()).unwrap_or("");
                let lock = Arc::clone(&self.shared.locks[&format!("lock:{name}")]);
                let guard = lock.lock();
                self.exec_items(&r.body);
                drop(guard);
            }
            RegionKind::Barrier => self.barrier_wait(),
        }
    }

    fn exec_parallel(&mut self, r: &Region) {
        let n = r.num_threads().unwrap_or(DEFAULT_TEAM);
        let frame = region_frame(r, &mut |var| self.read(var));
        let barrier = Arc::new(xsync::Barrier::new(
            &format!("team@{}", r.span.line),
            n,
        ));
        let handles: Vec<_> = (0..n)
            .map(|tid| {
                let shared = Arc::clone(&self.shared);
                let barrier = Arc::clone(&barrier);
                let frame = frame.clone();
                let body = r.body.clone();
                xsync::thread::spawn(move || {
                    let mut env = SimEnv {
                        tid,
                        n,
                        shared,
                        barrier: Some(barrier),
                        frames: vec![frame],
                    };
                    env.exec_items(&body);
                })
            })
            .collect();
        for handle in handles {
            handle.join();
        }
    }

    fn exec_for(&mut self, r: &Region) {
        let reds = reductions_of(r);
        let mut red_frame = BTreeMap::new();
        for (op, var) in &reds {
            red_frame.insert(var.clone(), op.identity());
        }
        self.frames.push(red_frame);
        if let Some(Item::Loop(l)) = r.body.first() {
            self.exec_loop(l, self.n, self.tid);
        }
        let red_frame = self.frames.pop().expect("reduction frame just pushed");
        for (op, var) in &reds {
            let acc = red_frame[var];
            let lock = Arc::clone(&self.shared.locks[&format!("red:{var}")]);
            let guard = lock.lock();
            let cur = self.shared.cells[var].get();
            self.shared.cells[var].set(op.fold(cur, acc));
            drop(guard);
        }
        if !r.nowait() {
            self.barrier_wait();
        }
    }
}

/// One full simulated execution of the program (the explorer re-runs
/// this once per schedule).
fn run_sim(program: &Program) {
    let mut vars = BTreeSet::new();
    var_names(&program.items, &mut vars);
    let mut locks = BTreeSet::new();
    lock_keys(&program.items, &mut locks);
    let shared = Arc::new(SimShared {
        cells: vars
            .iter()
            .map(|name| (name.clone(), xsync::PlainCell::new(name, 0)))
            .collect(),
        locks: locks
            .iter()
            .map(|key| (key.clone(), Arc::new(xsync::Mutex::new(key, ()))))
            .collect(),
    });
    let mut env = SimEnv {
        tid: 0,
        n: 1,
        shared: Arc::clone(&shared),
        barrier: None,
        frames: Vec::new(),
    };
    env.exec_items(&program.items);
    for (name, cell) in &shared.cells {
        record(name, cell.get());
    }
}

/// Lower the program onto the shim runtime and explore its
/// interleavings. Final shared-cell values are recorded per variable
/// in the report's observations.
#[must_use]
pub fn explore_program(program: &Program, config: Config) -> ExploreReport {
    let program = Arc::new(program.clone());
    explore(config, move || run_sim(&program))
}

// =====================================================================
// Back end 2: the real pyjama runtime
// =====================================================================

/// Per-thread lowering state on pyjama. Shared scalars are `SeqCst`
/// atomics so even statically-racy fixtures execute without UB.
struct PjEnv<'a, 'r> {
    ctx: Option<&'a Ctx<'r>>,
    cells: &'a BTreeMap<String, AtomicI64>,
    frames: Vec<BTreeMap<String, i64>>,
    team: &'a Team,
}

impl PjEnv<'_, '_> {
    fn tid(&self) -> usize {
        self.ctx.map_or(0, Ctx::thread_num)
    }

    fn n(&self) -> usize {
        self.ctx.map_or(1, Ctx::num_threads)
    }

    fn read(&self, var: &str) -> i64 {
        for frame in self.frames.iter().rev() {
            if let Some(v) = frame.get(var) {
                return *v;
            }
        }
        self.cells[var].load(Ordering::SeqCst)
    }

    fn write(&mut self, var: &str, value: i64) {
        for frame in self.frames.iter_mut().rev() {
            if let Some(slot) = frame.get_mut(var) {
                *slot = value;
                return;
            }
        }
        self.cells[var].store(value, Ordering::SeqCst);
    }

    fn exec_items(&mut self, items: &[Item]) {
        for item in items {
            match item {
                Item::Assign(a) => {
                    let value = eval(&a.expr, &mut |v| self.read(v));
                    self.write(&a.target.name, value);
                }
                Item::Loop(l) => self.exec_loop(l, 1, 0),
                Item::Region(r) => self.exec_region(r),
            }
        }
    }

    fn exec_loop(&mut self, l: &Loop, stride: usize, offset: usize) {
        self.frames.push(BTreeMap::new());
        for k in l.lo..l.hi {
            if (k - l.lo) as usize % stride != offset {
                continue;
            }
            self.frames
                .last_mut()
                .expect("loop frame just pushed")
                .insert(l.var.name.clone(), k);
            self.exec_items(&l.body);
        }
        self.frames.pop();
    }

    fn exec_region(&mut self, r: &Region) {
        match r.kind {
            RegionKind::Parallel => {
                let n = r.num_threads().unwrap_or(DEFAULT_TEAM);
                let frame = region_frame(r, &mut |var| self.read(var));
                let cells = self.cells;
                let team = self.team;
                team.parallel_with(n, |ctx| {
                    let mut env = PjEnv {
                        ctx: Some(ctx),
                        cells,
                        frames: vec![frame.clone()],
                        team,
                    };
                    env.exec_items(&r.body);
                });
            }
            RegionKind::For => {
                let reds = reductions_of(r);
                let mut red_frame = BTreeMap::new();
                for (op, var) in &reds {
                    red_frame.insert(var.clone(), op.identity());
                }
                self.frames.push(red_frame);
                if let Some(Item::Loop(l)) = r.body.first() {
                    self.exec_loop(l, self.n(), self.tid());
                }
                let red_frame = self.frames.pop().expect("reduction frame just pushed");
                for (op, var) in &reds {
                    let acc = red_frame[var];
                    let combine = || {
                        let cell = &self.cells[var];
                        let cur = cell.load(Ordering::SeqCst);
                        cell.store(op.fold(cur, acc), Ordering::SeqCst);
                    };
                    match self.ctx {
                        Some(ctx) => ctx.critical(&format!("red:{var}"), combine),
                        None => combine(),
                    }
                }
                if !r.nowait() {
                    if let Some(ctx) = self.ctx {
                        ctx.barrier();
                    }
                }
            }
            RegionKind::Sections => {
                let (tid, n) = (self.tid(), self.n());
                for (k, item) in r.body.iter().enumerate() {
                    if k % n != tid {
                        continue;
                    }
                    if let Item::Region(sec) = item {
                        if sec.kind == RegionKind::Section {
                            self.exec_items(&sec.body);
                            continue;
                        }
                    }
                    self.exec_items(std::slice::from_ref(item));
                }
                if !r.nowait() {
                    if let Some(ctx) = self.ctx {
                        ctx.barrier();
                    }
                }
            }
            RegionKind::Section => self.exec_items(&r.body),
            RegionKind::Single => match self.ctx {
                Some(ctx) => {
                    let mut ran = false;
                    ctx.single_nowait(|| {
                        ran = true;
                    });
                    // `single_nowait` takes `FnOnce()`; run the body
                    // outside the claim so `self` stays borrowable.
                    if ran {
                        self.exec_items(&r.body);
                    }
                    if !r.nowait() {
                        ctx.barrier();
                    }
                }
                None => self.exec_items(&r.body),
            },
            RegionKind::Master | RegionKind::Gui => {
                if self.tid() == 0 {
                    self.exec_items(&r.body);
                }
            }
            RegionKind::Critical => {
                let name = r.name.as_ref().map(|n| n.name.as_str()).unwrap_or("");
                // Collect the body's effects under the lock by
                // executing inside the critical closure.
                let body = &r.body;
                let cells = self.cells;
                let team = self.team;
                let ctx = self.ctx;
                let frames = std::mem::take(&mut self.frames);
                let frames_after = match ctx {
                    Some(c) => c.critical(&format!("lock:{name}"), || {
                        let mut env = PjEnv { ctx, cells, frames, team };
                        env.exec_items(body);
                        env.frames
                    }),
                    None => {
                        let mut env = PjEnv { ctx, cells, frames, team };
                        env.exec_items(body);
                        env.frames
                    }
                };
                self.frames = frames_after;
            }
            RegionKind::Barrier => {
                if let Some(ctx) = self.ctx {
                    ctx.barrier();
                }
            }
        }
    }
}

/// Run the program on the real pyjama runtime and return the final
/// value of every program variable's shared cell.
///
/// Do **not** call this for programs whose static verdict is a
/// guaranteed deadlock (`E001`) or whose lock cycle you intend to
/// trigger — real threads really block.
#[must_use]
pub fn run_on_pyjama(program: &Program, team: &Team) -> BTreeMap<String, i64> {
    let mut vars = BTreeSet::new();
    var_names(&program.items, &mut vars);
    let cells: BTreeMap<String, AtomicI64> =
        vars.iter().map(|name| (name.clone(), AtomicI64::new(0))).collect();
    let mut env = PjEnv { ctx: None, cells: &cells, frames: Vec::new(), team };
    env.exec_items(&program.items);
    cells
        .iter()
        .map(|(name, cell)| (name.clone(), cell.load(Ordering::SeqCst)))
        .collect()
}

// =====================================================================
// Back end 3: the sequential reference
// =====================================================================

struct SeqEnv {
    tid: usize,
    n: usize,
    cells: BTreeMap<String, i64>,
    frames: Vec<BTreeMap<String, i64>>,
}

impl SeqEnv {
    fn read(&self, var: &str) -> i64 {
        for frame in self.frames.iter().rev() {
            if let Some(v) = frame.get(var) {
                return *v;
            }
        }
        self.cells.get(var).copied().unwrap_or(0)
    }

    fn write(&mut self, var: &str, value: i64) {
        for frame in self.frames.iter_mut().rev() {
            if let Some(slot) = frame.get_mut(var) {
                *slot = value;
                return;
            }
        }
        self.cells.insert(var.to_string(), value);
    }

    fn exec_items(&mut self, items: &[Item]) {
        for item in items {
            match item {
                Item::Assign(a) => {
                    let value = eval(&a.expr, &mut |v| self.read(v));
                    self.write(&a.target.name, value);
                }
                Item::Loop(l) => self.exec_loop(l, 1, 0),
                Item::Region(r) => self.exec_region(r),
            }
        }
    }

    fn exec_loop(&mut self, l: &Loop, stride: usize, offset: usize) {
        self.frames.push(BTreeMap::new());
        for k in l.lo..l.hi {
            if (k - l.lo) as usize % stride != offset {
                continue;
            }
            self.frames
                .last_mut()
                .expect("loop frame just pushed")
                .insert(l.var.name.clone(), k);
            self.exec_items(&l.body);
        }
        self.frames.pop();
    }

    fn exec_region(&mut self, r: &Region) {
        match r.kind {
            RegionKind::Parallel => {
                let n = r.num_threads().unwrap_or(DEFAULT_TEAM);
                let mut frame = BTreeMap::new();
                for clause in &r.clauses {
                    match clause {
                        crate::ast::Clause::Private(ids) => {
                            for id in ids {
                                frame.insert(id.name.clone(), 0);
                            }
                        }
                        crate::ast::Clause::FirstPrivate(ids) => {
                            for id in ids {
                                frame.insert(id.name.clone(), self.read(&id.name));
                            }
                        }
                        _ => {}
                    }
                }
                let (outer_tid, outer_n) = (self.tid, self.n);
                // One legal serialisation: each team thread in turn.
                for tid in 0..n {
                    self.tid = tid;
                    self.n = n;
                    self.frames.push(frame.clone());
                    let body = r.body.clone();
                    self.exec_items(&body);
                    self.frames.pop();
                }
                self.tid = outer_tid;
                self.n = outer_n;
            }
            RegionKind::For => {
                let reds = reductions_of(r);
                let mut red_frame = BTreeMap::new();
                for (op, var) in &reds {
                    red_frame.insert(var.clone(), op.identity());
                }
                self.frames.push(red_frame);
                if let Some(Item::Loop(l)) = r.body.first() {
                    self.exec_loop(l, self.n, self.tid);
                }
                let red_frame = self.frames.pop().expect("reduction frame just pushed");
                for (op, var) in &reds {
                    let acc = red_frame[var];
                    let cur = self.read(var);
                    self.write(var, op.fold(cur, acc));
                }
            }
            RegionKind::Sections => {
                let (tid, n) = (self.tid, self.n);
                for (k, item) in r.body.iter().enumerate() {
                    if k % n != tid {
                        continue;
                    }
                    if let Item::Region(sec) = item {
                        if sec.kind == RegionKind::Section {
                            let body = sec.body.clone();
                            self.exec_items(&body);
                            continue;
                        }
                    }
                    self.exec_items(std::slice::from_ref(item));
                }
            }
            RegionKind::Section => self.exec_items(&r.body),
            RegionKind::Single | RegionKind::Master | RegionKind::Gui => {
                if self.tid == 0 {
                    self.exec_items(&r.body);
                }
            }
            RegionKind::Critical => self.exec_items(&r.body),
            RegionKind::Barrier => {}
        }
    }
}

/// Interpret the program sequentially (one team thread at a time;
/// barriers are no-ops) and return every variable's final value. The
/// reference result clean programs must reproduce on pyjama.
#[must_use]
pub fn interpret_seq(program: &Program) -> BTreeMap<String, i64> {
    let mut vars = BTreeSet::new();
    var_names(&program.items, &mut vars);
    let mut env = SeqEnv {
        tid: 0,
        n: 1,
        cells: vars.iter().map(|name| (name.clone(), 0)).collect(),
        frames: Vec::new(),
    };
    let items = program.items.clone();
    env.exec_items(&items);
    env.cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn seq_reference_computes_the_reduction() {
        let prog = parse(
            "sum = 0;\n//#omp parallel num_threads(2)\n{\n    //#omp for reduction(+:sum)\n    for i in 0..4 {\n        sum = sum + i;\n    }\n}\n",
        )
        .unwrap();
        let out = interpret_seq(&prog);
        assert_eq!(out["sum"], 6);
    }

    #[test]
    fn seq_reference_firstprivate_captures() {
        let prog = parse(
            "seed = 3;\n//#omp parallel num_threads(2) firstprivate(seed)\n{\n    seed = seed + 1;\n    //#omp critical acc\n    {\n        out = out + seed;\n    }\n}\n",
        )
        .unwrap();
        let out = interpret_seq(&prog);
        assert_eq!(out["out"], 8);
        assert_eq!(out["seed"], 3, "the shared seed is untouched");
    }

    #[test]
    fn pyjama_matches_seq_on_a_clean_program() {
        let prog = parse(
            "//#omp parallel num_threads(2)\n{\n    //#omp critical tally\n    {\n        count = count + 1;\n    }\n}\n",
        )
        .unwrap();
        let team = Team::new(2);
        let pj = run_on_pyjama(&prog, &team);
        let seq = interpret_seq(&prog);
        assert_eq!(pj, seq);
        assert_eq!(pj["count"], 2);
    }

    #[test]
    fn explorer_witnesses_the_counter_race() {
        let prog = parse("//#omp parallel num_threads(2)\n{\n    count = count + 1;\n}\n").unwrap();
        let report = explore_program(&prog, Config::dfs("counter/racy"));
        assert!(!report.race_free(), "the unprotected counter must race");
        assert_eq!(report.deadlocks, 0);
        // Lost updates are visible: both 1 and 2 are observed finals.
        let observed = &report.observations["count"];
        assert!(observed.contains(&1) && observed.contains(&2), "observed: {observed:?}");
    }

    #[test]
    fn explorer_proves_the_critical_counter_clean() {
        let prog = parse(
            "//#omp parallel num_threads(2)\n{\n    //#omp critical tally\n    {\n        count = count + 1;\n    }\n}\n",
        )
        .unwrap();
        let report = explore_program(&prog, Config::dfs("counter/critical"));
        assert!(report.exhausted, "the space must be fully enumerated");
        assert!(report.race_free());
        assert_eq!(report.deadlocks, 0);
        assert_eq!(
            report.observations["count"].iter().copied().collect::<Vec<_>>(),
            vec![2]
        );
    }

    #[test]
    fn explorer_witnesses_the_barrier_in_single_deadlock() {
        let prog = parse(
            "//#omp parallel num_threads(2)\n{\n    //#omp single\n    {\n        x = 1;\n        //#omp barrier\n    }\n}\n",
        )
        .unwrap();
        let report = explore_program(&prog, Config::dfs("barrier/in-single"));
        assert!(report.deadlocks > 0, "mismatched barrier counts must deadlock");
        assert_eq!(report.schedules, 0, "no schedule completes");
    }
}
