//! The spanned region-tree IR the directive parser produces.
//!
//! A program is a list of [`Item`]s: directive-introduced [`Region`]s
//! (with their nested bodies), plain counted [`Loop`]s, and scalar
//! [`Assign`]ments. Every node carries a [`Span`] pointing back into
//! the source text so diagnostics can render caret-annotated snippets.
//!
//! The directive vocabulary follows Pyjama (Vikas, Giacaman & Sinnen,
//! ParCo 2013): `//#omp parallel | for | sections | section | single |
//! master | critical [name] | barrier | gui`, with the data clauses
//! `shared` / `private` / `firstprivate`, `reduction(op:var)`,
//! `schedule(...)`, `num_threads(n)` and `nowait`.

use std::fmt::Write as _;

/// A half-open source span: 1-based line, 1-based starting column,
/// length in characters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    /// 1-based source line.
    pub line: usize,
    /// 1-based starting column.
    pub col: usize,
    /// Length in characters (at least 1 for renderable carets).
    pub len: usize,
}

impl Span {
    /// New span.
    #[must_use]
    pub fn new(line: usize, col: usize, len: usize) -> Self {
        Self { line, col, len: len.max(1) }
    }
}

/// An identifier with its source span.
#[derive(Clone, Debug)]
pub struct Ident {
    /// The name.
    pub name: String,
    /// Where it appears.
    pub span: Span,
}

impl PartialEq for Ident {
    /// Structural equality ignores spans (round-trip comparisons).
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

/// A reduction operator (`reduction(op:var)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RedOp {
    /// `+` (identity 0).
    Add,
    /// `*` (identity 1).
    Mul,
    /// `min` (identity `i64::MAX`).
    Min,
    /// `max` (identity `i64::MIN`).
    Max,
    /// `&` (identity all-ones).
    BitAnd,
    /// `|` (identity 0).
    BitOr,
    /// `^` (identity 0).
    BitXor,
}

impl RedOp {
    /// The surface token, as written in the directive.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            Self::Add => "+",
            Self::Mul => "*",
            Self::Min => "min",
            Self::Max => "max",
            Self::BitAnd => "&",
            Self::BitOr => "|",
            Self::BitXor => "^",
        }
    }

    /// The operator's identity element.
    #[must_use]
    pub fn identity(self) -> i64 {
        match self {
            Self::Add | Self::BitOr | Self::BitXor => 0,
            Self::Mul => 1,
            Self::Min => i64::MAX,
            Self::Max => i64::MIN,
            Self::BitAnd => -1,
        }
    }

    /// Fold one value into an accumulator.
    #[must_use]
    pub fn fold(self, acc: i64, v: i64) -> i64 {
        match self {
            Self::Add => acc.wrapping_add(v),
            Self::Mul => acc.wrapping_mul(v),
            Self::Min => acc.min(v),
            Self::Max => acc.max(v),
            Self::BitAnd => acc & v,
            Self::BitOr => acc | v,
            Self::BitXor => acc ^ v,
        }
    }
}

/// A `schedule(...)` clause argument.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleSpec {
    /// `schedule(static)`.
    Static,
    /// `schedule(static, c)`.
    StaticChunk(usize),
    /// `schedule(dynamic, c)` (`c` defaults to 1).
    Dynamic(usize),
    /// `schedule(guided, c)` (`c` defaults to 1).
    Guided(usize),
}

/// One directive clause.
#[derive(Clone, Debug, PartialEq)]
pub enum Clause {
    /// `shared(a, b)`.
    Shared(Vec<Ident>),
    /// `private(a, b)`.
    Private(Vec<Ident>),
    /// `firstprivate(a, b)`.
    FirstPrivate(Vec<Ident>),
    /// `reduction(op:var)`.
    Reduction {
        /// The combiner.
        op: RedOp,
        /// The reduction variable.
        var: Ident,
    },
    /// `schedule(kind[, chunk])`.
    Schedule(ScheduleSpec),
    /// `num_threads(n)`.
    NumThreads(usize),
    /// `nowait` (drops a worksharing construct's trailing barrier).
    NoWait,
}

/// What construct a directive introduces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RegionKind {
    /// `//#omp parallel` + block.
    Parallel,
    /// `//#omp for` + counted loop (worksharing).
    For,
    /// `//#omp sections` + block of `section`s (worksharing).
    Sections,
    /// `//#omp section` + block (one branch of `sections`).
    Section,
    /// `//#omp single` + block (one thread runs it; implied barrier).
    Single,
    /// `//#omp master` + block (thread 0 runs it; **no** barrier).
    Master,
    /// `//#omp critical [name]` + block (named mutual exclusion).
    Critical,
    /// `//#omp barrier` (standalone).
    Barrier,
    /// `//#omp gui` + block (Pyjama's EDT-executed region).
    Gui,
}

impl RegionKind {
    /// The directive keyword.
    #[must_use]
    pub fn keyword(self) -> &'static str {
        match self {
            Self::Parallel => "parallel",
            Self::For => "for",
            Self::Sections => "sections",
            Self::Section => "section",
            Self::Single => "single",
            Self::Master => "master",
            Self::Critical => "critical",
            Self::Barrier => "barrier",
            Self::Gui => "gui",
        }
    }

    /// Is this a worksharing construct (`for` / `sections`)?
    #[must_use]
    pub fn is_worksharing(self) -> bool {
        matches!(self, Self::For | Self::Sections)
    }
}

/// A directive-introduced region with its body.
#[derive(Clone, Debug, PartialEq)]
pub struct Region {
    /// The construct.
    pub kind: RegionKind,
    /// `critical`'s lock name (`None` = the unnamed critical).
    pub name: Option<Ident>,
    /// The directive's clauses, in source order.
    pub clauses: Vec<Clause>,
    /// Span of the directive itself.
    pub span: Span,
    /// Nested items. For [`RegionKind::For`] this is exactly one
    /// [`Item::Loop`] (the annotated loop); for
    /// [`RegionKind::Barrier`] it is empty.
    pub body: Vec<Item>,
}

impl Region {
    /// The `num_threads(n)` clause value, if any.
    #[must_use]
    pub fn num_threads(&self) -> Option<usize> {
        self.clauses.iter().find_map(|c| match c {
            Clause::NumThreads(n) => Some(*n),
            _ => None,
        })
    }

    /// The `reduction` clauses `(op, var)` of this region.
    pub fn reductions(&self) -> impl Iterator<Item = (RedOp, &Ident)> {
        self.clauses.iter().filter_map(|c| match c {
            Clause::Reduction { op, var } => Some((*op, var)),
            _ => None,
        })
    }

    /// Does this worksharing region carry `nowait`?
    #[must_use]
    pub fn nowait(&self) -> bool {
        self.clauses.iter().any(|c| matches!(c, Clause::NoWait))
    }
}

/// A counted loop `for v in lo..hi { ... }`.
#[derive(Clone, Debug, PartialEq)]
pub struct Loop {
    /// The loop variable (implicitly private).
    pub var: Ident,
    /// Inclusive lower bound.
    pub lo: i64,
    /// Exclusive upper bound.
    pub hi: i64,
    /// Span of the header line.
    pub span: Span,
    /// Loop body.
    pub body: Vec<Item>,
}

/// A scalar assignment `target = expr;`.
#[derive(Clone, Debug, PartialEq)]
pub struct Assign {
    /// The assigned variable.
    pub target: Ident,
    /// The right-hand side.
    pub expr: Expr,
    /// Span of the whole statement.
    pub span: Span,
}

/// A binary operator in an expression.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division; division by zero evaluates to 0).
    Div,
}

impl BinOp {
    /// The surface token.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            Self::Add => "+",
            Self::Sub => "-",
            Self::Mul => "*",
            Self::Div => "/",
        }
    }

    /// Apply the operator.
    #[must_use]
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            Self::Add => a.wrapping_add(b),
            Self::Sub => a.wrapping_sub(b),
            Self::Mul => a.wrapping_mul(b),
            Self::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
        }
    }
}

/// A scalar expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// An integer literal.
    Num(i64, Span),
    /// A variable read.
    Var(Ident),
    /// A binary operation.
    Bin(Box<Expr>, BinOp, Box<Expr>),
}

impl Expr {
    /// Visit every variable read, in lexical order.
    pub fn each_var<'a>(&'a self, f: &mut impl FnMut(&'a Ident)) {
        match self {
            Self::Num(..) => {}
            Self::Var(id) => f(id),
            Self::Bin(a, _, b) => {
                a.each_var(f);
                b.each_var(f);
            }
        }
    }
}

/// One program element.
#[derive(Clone, Debug, PartialEq)]
pub enum Item {
    /// A directive-introduced region.
    Region(Region),
    /// A plain counted loop.
    Loop(Loop),
    /// A scalar assignment.
    Assign(Assign),
}

/// A parsed directive program.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

// ---------------------------------------------------------------------
// Pretty-printing (the canonical surface form; `parse ∘ pretty` is a
// fixed point, which `tests/analyze.rs` pins).
// ---------------------------------------------------------------------

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn pretty_clause(c: &Clause) -> String {
    let list = |ids: &[Ident]| {
        ids.iter().map(|i| i.name.as_str()).collect::<Vec<_>>().join(", ")
    };
    match c {
        Clause::Shared(ids) => format!("shared({})", list(ids)),
        Clause::Private(ids) => format!("private({})", list(ids)),
        Clause::FirstPrivate(ids) => format!("firstprivate({})", list(ids)),
        Clause::Reduction { op, var } => format!("reduction({}:{})", op.token(), var.name),
        Clause::Schedule(ScheduleSpec::Static) => "schedule(static)".to_string(),
        Clause::Schedule(ScheduleSpec::StaticChunk(c)) => format!("schedule(static, {c})"),
        Clause::Schedule(ScheduleSpec::Dynamic(c)) => format!("schedule(dynamic, {c})"),
        Clause::Schedule(ScheduleSpec::Guided(c)) => format!("schedule(guided, {c})"),
        Clause::NumThreads(n) => format!("num_threads({n})"),
        Clause::NoWait => "nowait".to_string(),
    }
}

fn pretty_expr(e: &Expr) -> String {
    match e {
        Expr::Num(n, _) => n.to_string(),
        Expr::Var(id) => id.name.clone(),
        Expr::Bin(a, op, b) => {
            let side = |x: &Expr| match x {
                Expr::Bin(..) => format!("({})", pretty_expr(x)),
                _ => pretty_expr(x),
            };
            format!("{} {} {}", side(a), op.token(), side(b))
        }
    }
}

fn pretty_items(items: &[Item], depth: usize, out: &mut String) {
    for item in items {
        match item {
            Item::Assign(a) => {
                indent(out, depth);
                let _ = writeln!(out, "{} = {};", a.target.name, pretty_expr(&a.expr));
            }
            Item::Loop(l) => {
                indent(out, depth);
                let _ = writeln!(out, "for {} in {}..{} {{", l.var.name, l.lo, l.hi);
                pretty_items(&l.body, depth + 1, out);
                indent(out, depth);
                out.push_str("}\n");
            }
            Item::Region(r) => {
                indent(out, depth);
                out.push_str("//#omp ");
                out.push_str(r.kind.keyword());
                if let Some(name) = &r.name {
                    let _ = write!(out, " {}", name.name);
                }
                for c in &r.clauses {
                    let _ = write!(out, " {}", pretty_clause(c));
                }
                out.push('\n');
                match r.kind {
                    RegionKind::Barrier => {}
                    RegionKind::For => {
                        // The annotated loop prints itself.
                        pretty_items(&r.body, depth, out);
                    }
                    _ => {
                        indent(out, depth);
                        out.push_str("{\n");
                        pretty_items(&r.body, depth + 1, out);
                        indent(out, depth);
                        out.push_str("}\n");
                    }
                }
            }
        }
    }
}

impl Program {
    /// Render the canonical surface form of the program.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        pretty_items(&self.items, 0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redop_identity_and_fold() {
        assert_eq!(RedOp::Add.fold(RedOp::Add.identity(), 7), 7);
        assert_eq!(RedOp::Mul.fold(RedOp::Mul.identity(), 7), 7);
        assert_eq!(RedOp::Min.fold(RedOp::Min.identity(), 7), 7);
        assert_eq!(RedOp::Max.fold(RedOp::Max.identity(), 7), 7);
        assert_eq!(RedOp::BitAnd.fold(RedOp::BitAnd.identity(), 7), 7);
        assert_eq!(RedOp::BitOr.fold(RedOp::BitOr.identity(), 7), 7);
        assert_eq!(RedOp::BitXor.fold(RedOp::BitXor.identity(), 7), 7);
    }

    #[test]
    fn binop_division_by_zero_is_total() {
        assert_eq!(BinOp::Div.apply(5, 0), 0);
        assert_eq!(BinOp::Div.apply(7, 2), 3);
    }

    #[test]
    fn ident_equality_ignores_spans() {
        let a = Ident { name: "x".into(), span: Span::new(1, 1, 1) };
        let b = Ident { name: "x".into(), span: Span::new(9, 9, 1) };
        assert_eq!(a, b);
    }

    #[test]
    fn pretty_parenthesises_nested_expressions() {
        let e = Expr::Bin(
            Box::new(Expr::Var(Ident { name: "a".into(), span: Span::default() })),
            BinOp::Add,
            Box::new(Expr::Bin(
                Box::new(Expr::Num(2, Span::default())),
                BinOp::Mul,
                Box::new(Expr::Var(Ident { name: "b".into(), span: Span::default() })),
            )),
        );
        assert_eq!(pretty_expr(&e), "a + (2 * b)");
    }
}
