//! A per-line tokenizer for the directive mini-language.
//!
//! The language is line-oriented (directives, braces, loop headers and
//! statements each live on their own line), so the lexer works one
//! line at a time and attaches full [`Span`]s — the parser classifies
//! whole lines first and then walks the tokens within them.

use crate::ast::Span;

/// One token with its span.
#[derive(Clone, Debug, PartialEq)]
pub struct Tok {
    /// The token kind (and payload).
    pub kind: TokKind,
    /// Where it sits in the source.
    pub span: Span,
}

/// The token vocabulary.
#[derive(Clone, Debug, PartialEq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident(String),
    /// An unsigned integer literal (sign handled by the parser).
    Num(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `..`
    DotDot,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
}

impl TokKind {
    /// A short human name for error messages.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            Self::Ident(s) => format!("`{s}`"),
            Self::Num(n) => format!("`{n}`"),
            Self::LParen => "`(`".into(),
            Self::RParen => "`)`".into(),
            Self::Comma => "`,`".into(),
            Self::Colon => "`:`".into(),
            Self::Semi => "`;`".into(),
            Self::Assign => "`=`".into(),
            Self::Plus => "`+`".into(),
            Self::Minus => "`-`".into(),
            Self::Star => "`*`".into(),
            Self::Slash => "`/`".into(),
            Self::Amp => "`&`".into(),
            Self::Pipe => "`|`".into(),
            Self::Caret => "`^`".into(),
            Self::DotDot => "`..`".into(),
            Self::LBrace => "`{`".into(),
            Self::RBrace => "`}`".into(),
        }
    }
}

/// Tokenize one source line (1-based `line` number). Returns the
/// tokens, or the span + character of the first unrecognised input.
pub fn lex_line(line_no: usize, text: &str) -> Result<Vec<Tok>, (Span, char)> {
    let chars: Vec<char> = text.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let col = i + 1;
        let single = |kind: TokKind| Tok { kind, span: Span::new(line_no, col, 1) };
        match c {
            ' ' | '\t' | '\r' => {
                i += 1;
            }
            '(' => {
                toks.push(single(TokKind::LParen));
                i += 1;
            }
            ')' => {
                toks.push(single(TokKind::RParen));
                i += 1;
            }
            ',' => {
                toks.push(single(TokKind::Comma));
                i += 1;
            }
            ':' => {
                toks.push(single(TokKind::Colon));
                i += 1;
            }
            ';' => {
                toks.push(single(TokKind::Semi));
                i += 1;
            }
            '=' => {
                toks.push(single(TokKind::Assign));
                i += 1;
            }
            '+' => {
                toks.push(single(TokKind::Plus));
                i += 1;
            }
            '-' => {
                toks.push(single(TokKind::Minus));
                i += 1;
            }
            '*' => {
                toks.push(single(TokKind::Star));
                i += 1;
            }
            '/' => {
                toks.push(single(TokKind::Slash));
                i += 1;
            }
            '&' => {
                toks.push(single(TokKind::Amp));
                i += 1;
            }
            '|' => {
                toks.push(single(TokKind::Pipe));
                i += 1;
            }
            '^' => {
                toks.push(single(TokKind::Caret));
                i += 1;
            }
            '{' => {
                toks.push(single(TokKind::LBrace));
                i += 1;
            }
            '}' => {
                toks.push(single(TokKind::RBrace));
                i += 1;
            }
            '.' => {
                if chars.get(i + 1) == Some(&'.') {
                    toks.push(Tok { kind: TokKind::DotDot, span: Span::new(line_no, col, 2) });
                    i += 2;
                } else {
                    return Err((Span::new(line_no, col, 1), c));
                }
            }
            '0'..='9' => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let value: i64 = text.parse().map_err(|_| (Span::new(line_no, col, i - start), '0'))?;
                toks.push(Tok { kind: TokKind::Num(value), span: Span::new(line_no, col, i - start) });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                toks.push(Tok {
                    kind: TokKind::Ident(text),
                    span: Span::new(line_no, col, i - start),
                });
            }
            other => return Err((Span::new(line_no, col, 1), other)),
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_loop_header() {
        let toks = lex_line(3, "for i in 0..4 {").unwrap();
        let kinds: Vec<&TokKind> = toks.iter().map(|t| &t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                &TokKind::Ident("for".into()),
                &TokKind::Ident("i".into()),
                &TokKind::Ident("in".into()),
                &TokKind::Num(0),
                &TokKind::DotDot,
                &TokKind::Num(4),
                &TokKind::LBrace,
            ]
        );
        assert_eq!(toks[0].span, Span::new(3, 1, 3));
        assert_eq!(toks[4].span, Span::new(3, 11, 2));
    }

    #[test]
    fn lexes_reduction_punctuation() {
        let toks = lex_line(1, "reduction(+:sum)").unwrap();
        assert_eq!(toks.len(), 6);
        assert_eq!(toks[2].kind, TokKind::Plus);
        assert_eq!(toks[3].kind, TokKind::Colon);
    }

    #[test]
    fn rejects_unknown_characters() {
        let err = lex_line(2, "x = #;").unwrap_err();
        assert_eq!(err.0, Span::new(2, 5, 1));
        assert_eq!(err.1, '#');
    }
}
