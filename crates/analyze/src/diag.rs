//! Diagnostics: codes, severities, caret-annotated rendering, summary
//! tables, and machine-readable JSON export.
//!
//! Codes follow the marking sheet split used in the course material:
//! `E`-class diagnostics are guaranteed-wrong programs (deadlock or a
//! broken parallel idiom — correctness deductions), `W`-class are
//! potential races and style hazards (noted, smaller deductions).
//! Every `E`-class verdict is cross-validated dynamically in
//! `tests/analyze.rs`: the explorer must witness the bad schedule.

use parc_util::Table;

use crate::ast::Span;

/// A diagnostic code. Ordering is the report order for equal spans.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// Barrier lexically inside worksharing / `single` / `master` /
    /// `critical` — guaranteed deadlock (mismatched barrier counts).
    E001,
    /// Worksharing construct nested inside another worksharing
    /// construct bound to the same parallel region.
    E002,
    /// Reduction variable written as a shared variable outside its
    /// reduction construct.
    E003,
    /// Lock-order cycle across named `critical` regions (or a
    /// self-nested critical) — deadlock-capable.
    E004,
    /// Malformed region structure (unclosed block, stray `}` or
    /// `section` outside `sections`).
    E005,
    /// Phase-ordered deterministic deadlock: the MHP engine proves a
    /// barrier is reached by only part of the team (arrival counts
    /// mismatch) outside the classic `E001` construct family.
    E006,
    /// Unprotected write to a shared variable in a parallel region —
    /// potential data race.
    W101,
    /// `master` used where `single` (+ implied barrier) is needed:
    /// siblings read the master's write without a barrier.
    W102,
    /// `private` variable read before its first write (privates start
    /// uninitialised; use `firstprivate` to capture the outer value).
    W103,
    /// Redundant `critical`: MHP proves no concurrent access ever
    /// conflicts with anything the lock protects — the lock only adds
    /// overhead (a teachable style diagnostic).
    W104,
}

/// Diagnostic severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Guaranteed-wrong program.
    Error,
    /// Potential hazard / style problem.
    Warning,
}

impl Code {
    /// Every code, in report order.
    pub const ALL: [Code; 10] = [
        Code::E001,
        Code::E002,
        Code::E003,
        Code::E004,
        Code::E005,
        Code::E006,
        Code::W101,
        Code::W102,
        Code::W103,
        Code::W104,
    ];

    /// The code's severity class.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            Self::E001 | Self::E002 | Self::E003 | Self::E004 | Self::E005 | Self::E006 => {
                Severity::Error
            }
            Self::W101 | Self::W102 | Self::W103 | Self::W104 => Severity::Warning,
        }
    }

    /// The code as printed (`E001`, `W101`, ...).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::E001 => "E001",
            Self::E002 => "E002",
            Self::E003 => "E003",
            Self::E004 => "E004",
            Self::E005 => "E005",
            Self::E006 => "E006",
            Self::W101 => "W101",
            Self::W102 => "W102",
            Self::W103 => "W103",
            Self::W104 => "W104",
        }
    }

    /// A one-line title for tables and rubric notes.
    #[must_use]
    pub fn title(self) -> &'static str {
        match self {
            Self::E001 => "barrier inside worksharing/synchronised construct",
            Self::E002 => "nested worksharing in the same parallel region",
            Self::E003 => "reduction variable written outside the reduction",
            Self::E004 => "lock-order cycle across named criticals",
            Self::E005 => "malformed region structure",
            Self::E006 => "phase-ordered deadlock: barrier unreachable for part of the team",
            Self::W101 => "unprotected shared write (potential race)",
            Self::W102 => "master without a barrier before sibling reads",
            Self::W103 => "private variable read before first write",
            Self::W104 => "redundant critical: no concurrent conflicting access",
        }
    }
}

impl Severity {
    /// Lowercase label, rustc style.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Error => "error",
            Self::Warning => "warning",
        }
    }
}

/// One diagnostic: a code anchored at a span, with a message and
/// optional explanatory notes.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// The code.
    pub code: Code,
    /// The primary span (what the caret underlines).
    pub span: Span,
    /// The main message.
    pub message: String,
    /// `= note:` follow-up lines.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// New diagnostic without notes.
    #[must_use]
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Self {
        Self { code, span, message: message.into(), notes: Vec::new() }
    }

    /// Attach a `= note:` line.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Render a rustc-style caret snippet against `source`, naming the
    /// file `origin`:
    ///
    /// ```text
    /// fixture.pj:5:5: error[E001]: barrier inside `critical`
    ///     |         //#omp barrier
    ///     |         ^^^^^^^^^^^^^^
    ///     = note: only some threads reach this barrier
    /// ```
    #[must_use]
    pub fn render(&self, source: &str, origin: &str) -> String {
        let mut out = format!(
            "{origin}:{}:{}: {}[{}]: {}\n",
            self.span.line,
            self.span.col,
            self.code.severity().label(),
            self.code.as_str(),
            self.message
        );
        if let Some(text) = source.lines().nth(self.span.line.saturating_sub(1)) {
            out.push_str("    | ");
            out.push_str(text);
            out.push('\n');
            out.push_str("    | ");
            for _ in 1..self.span.col {
                out.push(' ');
            }
            for _ in 0..self.span.len {
                out.push('^');
            }
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str("    = note: ");
            out.push_str(note);
            out.push('\n');
        }
        out
    }
}

/// Sort diagnostics deterministically: by span, then code, then
/// message. Reruns over the same source must produce byte-identical
/// reports (`tests/analyze.rs` pins this).
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.span, a.code, &a.message).cmp(&(b.span, b.code, &b.message))
    });
}

/// Render a per-code summary table for a batch of diagnostics.
#[must_use]
pub fn summary_table(title: &str, diags: &[Diagnostic]) -> String {
    let mut table = Table::new(title, &["code", "severity", "count", "title"]);
    for code in Code::ALL {
        let count = diags.iter().filter(|d| d.code == code).count();
        if count > 0 {
            table.row(&[
                code.as_str().to_string(),
                code.severity().label().to_string(),
                count.to_string(),
                code.title().to_string(),
            ]);
        }
    }
    table.render()
}

/// Escape a string for embedding in a JSON string literal. Covers
/// quotes, backslashes and every control character below 0x20 —
/// exported so drivers emitting their own JSON (fixture names, source
/// snippets) escape identically instead of interpolating raw.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Export diagnostics as a machine-readable JSON array (hand-rolled;
/// the workspace carries no serde).
#[must_use]
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"code\": \"{}\", \"severity\": \"{}\", \"line\": {}, \"col\": {}, \"len\": {}, \"message\": \"{}\", \"notes\": [{}]}}",
            d.code.as_str(),
            d.code.severity().label(),
            d.span.line,
            d.span.col,
            d.span.len,
            json_escape(&d.message),
            d.notes
                .iter()
                .map(|n| format!("\"{}\"", json_escape(n)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

/// Like [`to_json`] but each entry also carries the source line the
/// span points at as a `"snippet"` field (escaped — snippets routinely
/// contain quotes, backslashes and tabs).
#[must_use]
pub fn to_json_with_source(diags: &[Diagnostic], source: &str) -> String {
    let lines: Vec<&str> = source.lines().collect();
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let snippet = lines.get(d.span.line.saturating_sub(1)).copied().unwrap_or("");
        out.push_str(&format!(
            "\n  {{\"code\": \"{}\", \"severity\": \"{}\", \"line\": {}, \"col\": {}, \"len\": {}, \"message\": \"{}\", \"snippet\": \"{}\", \"notes\": [{}]}}",
            d.code.as_str(),
            d.code.severity().label(),
            d.span.line,
            d.span.col,
            d.span.len,
            json_escape(&d.message),
            json_escape(snippet),
            d.notes
                .iter()
                .map(|n| format!("\"{}\"", json_escape(n)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_sort_before_warnings_at_equal_spans() {
        assert!(Code::E001 < Code::W101);
        assert!(Code::E005 < Code::W101);
    }

    #[test]
    fn render_places_the_caret() {
        let src = "line one\n    //#omp barrier\nline three\n";
        let d = Diagnostic::new(Code::E001, Span::new(2, 5, 14), "barrier inside `critical`")
            .with_note("only some threads reach this barrier");
        let rendered = d.render(src, "fixture.pj");
        assert!(rendered.starts_with("fixture.pj:2:5: error[E001]: barrier inside `critical`"));
        assert!(rendered.contains("    |     //#omp barrier"));
        assert!(rendered.contains("    |     ^^^^^^^^^^^^^^"));
        assert!(rendered.contains("= note: only some threads reach this barrier"));
    }

    #[test]
    fn json_escapes_quotes() {
        let d = Diagnostic::new(Code::W101, Span::new(1, 1, 1), "write to \"x\"");
        let json = to_json(&[d]);
        assert!(json.contains("write to \\\"x\\\""));
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
    }

    /// Minimal JSON string-literal unescaper for the round-trip test:
    /// walks the export, pulls every string literal back out and
    /// decodes the escapes `to_json*` may emit.
    fn parse_json_strings(json: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut chars = json.chars().peekable();
        while let Some(c) = chars.next() {
            if c != '"' {
                continue;
            }
            let mut lit = String::new();
            loop {
                match chars.next() {
                    None => panic!("unterminated string literal in export"),
                    Some('"') => break,
                    Some('\\') => match chars.next() {
                        Some('"') => lit.push('"'),
                        Some('\\') => lit.push('\\'),
                        Some('n') => lit.push('\n'),
                        Some('t') => lit.push('\t'),
                        Some('r') => lit.push('\r'),
                        Some('u') => {
                            let hex: String = (0..4).map(|_| chars.next().unwrap()).collect();
                            let code = u32::from_str_radix(&hex, 16).unwrap();
                            lit.push(char::from_u32(code).unwrap());
                        }
                        other => panic!("unexpected escape {other:?}"),
                    },
                    Some(raw) => {
                        assert!(
                            raw as u32 >= 0x20,
                            "control character {:#x} emitted raw — invalid JSON",
                            raw as u32
                        );
                        lit.push(raw);
                    }
                }
            }
            out.push(lit);
        }
        out
    }

    #[test]
    fn json_round_trips_hostile_messages_and_snippets() {
        let source = "x = 0; // \"quoted\" \\ backslash\tand tab\n";
        let nasty = "message with \"quotes\", a \\ backslash,\na newline, \t a tab and \u{1}";
        let d = Diagnostic::new(Code::W101, Span::new(1, 1, 6), nasty)
            .with_note("note with \"quotes\" and \\ slashes");
        let json = to_json_with_source(&[d], source);
        let strings = parse_json_strings(&json);
        assert!(strings.contains(&nasty.to_string()), "message must round-trip exactly");
        assert!(
            strings.contains(&"x = 0; // \"quoted\" \\ backslash\tand tab".to_string()),
            "snippet must round-trip exactly"
        );
        assert!(strings.contains(&"note with \"quotes\" and \\ slashes".to_string()));
        // The raw escape sequences must appear escaped in the byte stream.
        assert!(json.contains("\\u0001"));
        assert!(json.contains("\\\"quoted\\\""));
    }

    #[test]
    fn new_codes_are_registered_in_report_order() {
        assert_eq!(Code::ALL.len(), 10);
        assert!(Code::E005 < Code::E006);
        assert!(Code::E006 < Code::W101);
        assert!(Code::W103 < Code::W104);
        assert_eq!(Code::E006.severity(), Severity::Error);
        assert_eq!(Code::W104.severity(), Severity::Warning);
        assert_eq!(Code::E006.as_str(), "E006");
        assert_eq!(Code::W104.as_str(), "W104");
    }

    #[test]
    fn sort_is_by_span_then_code() {
        let mut diags = vec![
            Diagnostic::new(Code::W101, Span::new(3, 1, 1), "b"),
            Diagnostic::new(Code::E001, Span::new(3, 1, 1), "a"),
            Diagnostic::new(Code::E005, Span::new(1, 1, 1), "c"),
        ];
        sort_diagnostics(&mut diags);
        let codes: Vec<Code> = diags.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Code::E005, Code::E001, Code::W101]);
    }
}
