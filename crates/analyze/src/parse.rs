//! Recursive-descent parser for the Pyjama-style directive language.
//!
//! The language is block-structured and line-oriented:
//!
//! ```text
//! //#omp parallel num_threads(2) private(t)
//! {
//!     //#omp for reduction(+:sum)
//!     for i in 0..4 {
//!         sum = sum + i;
//!     }
//!     //#omp barrier
//!     //#omp critical tally
//!     {
//!         total = total + 1;
//!     }
//! }
//! ```
//!
//! Directives are `//#omp` comment lines — exactly Pyjama's trick of
//! hiding OpenMP-style annotations in comments so the program stays
//! legal source for an unmodified compiler. Structure errors (unclosed
//! blocks, stray `}`, a directive without its block, malformed
//! clauses) are reported as [`Code::E005`] diagnostics with spans.
//!
//! The parser *recovers* from directive-level mistakes: an unknown or
//! malformed directive reports its `E005`, skips the balanced block
//! that follows it, and parsing continues so later regions still get
//! analysed ([`parse_recover`]). Only structural failures that make
//! block alignment unreliable — an unclosed block or an unmatched
//! `}` — are fatal and withhold the tree.

use crate::ast::{
    Assign, BinOp, Clause, Expr, Ident, Item, Loop, Program, RedOp, Region, RegionKind,
    ScheduleSpec, Span,
};
use crate::diag::{sort_diagnostics, Code, Diagnostic};
use crate::lexer::{lex_line, Tok, TokKind};

/// One significant (non-blank, non-comment) source line.
#[derive(Debug)]
struct SrcLine {
    toks: Vec<Tok>,
    /// Span of the whole significant text on the line.
    span: Span,
    /// Was this a `//#omp` directive line?
    directive: bool,
    /// Did the lexer reject this line (tokens are empty but the error
    /// was already reported)?
    lex_failed: bool,
}

/// Parse a directive program. On success returns the region tree; if
/// *any* diagnostic fires (even a recoverable one) returns the
/// (sorted) list of `E005` diagnostics instead. Use [`parse_recover`]
/// to keep the partial tree alongside recoverable diagnostics.
pub fn parse(source: &str) -> Result<Program, Vec<Diagnostic>> {
    let (program, diags) = parse_inner(source);
    match program {
        Some(program) if diags.is_empty() => Ok(program),
        _ => Err(diags),
    }
}

/// Parse with error recovery: recoverable directive mistakes (unknown
/// directive, malformed clause or statement) report their `E005`,
/// skip the offending construct's block, and leave the rest of the
/// tree intact. The program is `None` only on *fatal* structural
/// failures (unclosed block, unmatched `}`), where block alignment —
/// and therefore every later region — is unreliable.
#[must_use]
pub fn parse_recover(source: &str) -> (Option<Program>, Vec<Diagnostic>) {
    parse_inner(source)
}

fn parse_inner(source: &str) -> (Option<Program>, Vec<Diagnostic>) {
    let mut lines = Vec::new();
    let mut diags = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let trimmed = raw.trim_start();
        if trimmed.is_empty() {
            continue;
        }
        let lead = raw.len() - trimmed.len();
        if let Some(rest) = trimmed.strip_prefix("//#omp") {
            // Tokens of the directive body, offset past the marker.
            let text_len = trimmed.trim_end().chars().count();
            let span = Span::new(line_no, lead + 1, text_len);
            let pad = " ".repeat(lead + "//#omp".len());
            match lex_line(line_no, &format!("{pad}{rest}")) {
                Ok(toks) => lines.push(SrcLine { toks, span, directive: true, lex_failed: false }),
                Err((err_span, c)) => {
                    diags.push(Diagnostic::new(
                        Code::E005,
                        err_span,
                        format!("unrecognised character `{c}` in directive"),
                    ));
                    // Keep a placeholder so the directive's block (if
                    // any) is skipped instead of mis-parsed.
                    lines.push(SrcLine { toks: Vec::new(), span, directive: true, lex_failed: true });
                }
            }
        } else if trimmed.starts_with("//") {
            continue; // ordinary comment
        } else {
            let text_len = trimmed.trim_end().chars().count();
            let span = Span::new(line_no, lead + 1, text_len);
            match lex_line(line_no, raw) {
                Ok(toks) if toks.is_empty() => {}
                Ok(toks) => lines.push(SrcLine { toks, span, directive: false, lex_failed: false }),
                Err((span, c)) => {
                    diags.push(Diagnostic::new(
                        Code::E005,
                        span,
                        format!("unrecognised character `{c}`"),
                    ));
                }
            }
        }
    }
    let mut parser = Parser { lines, pos: 0, diags, fatal: false };
    let items = parser.items(None);
    let fatal = parser.fatal;
    let mut diags = parser.diags;
    sort_diagnostics(&mut diags);
    let program = if fatal { None } else { Some(Program { items }) };
    (program, diags)
}

struct Parser {
    lines: Vec<SrcLine>,
    pos: usize,
    diags: Vec<Diagnostic>,
    /// Block alignment broke: the (partial) tree must not be trusted.
    fatal: bool,
}

impl Parser {
    fn err(&mut self, span: Span, message: impl Into<String>) {
        self.diags.push(Diagnostic::new(Code::E005, span, message));
    }

    fn fatal_err(&mut self, span: Span, message: impl Into<String>) {
        self.fatal = true;
        self.err(span, message);
    }

    /// Skip lines until `depth` opened braces have closed (counting
    /// every `{`/`}` token, so loop headers and lone braces both
    /// balance). Runs to end of input if the block never closes — the
    /// construct that owned the block already reported its error.
    fn skip_depth(&mut self, mut depth: i64) {
        while depth > 0 && self.pos < self.lines.len() {
            for t in &self.lines[self.pos].toks {
                match t.kind {
                    TokKind::LBrace => depth += 1,
                    TokKind::RBrace => depth -= 1,
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }

    /// If the next line opens a block (`{`), consume it and everything
    /// through its matching `}` — used after a malformed directive so
    /// its body doesn't reparse as stray top-level items.
    fn skip_block_if_present(&mut self) {
        let is_open = self.lines.get(self.pos).is_some_and(|l| {
            !l.directive && l.toks.len() == 1 && l.toks[0].kind == TokKind::LBrace
        });
        if is_open {
            self.pos += 1;
            self.skip_depth(1);
        }
    }

    /// If the next line is a loop header, consume it and its block —
    /// used after a malformed `//#omp for` directive.
    fn skip_loop_if_present(&mut self) {
        let is_loop = self.lines.get(self.pos).is_some_and(|l| {
            !l.directive
                && matches!(l.toks.first().map(|t| &t.kind), Some(TokKind::Ident(k)) if k == "for")
        });
        if is_loop {
            let depth: i64 = self.lines[self.pos]
                .toks
                .iter()
                .map(|t| match t.kind {
                    TokKind::LBrace => 1,
                    TokKind::RBrace => -1,
                    _ => 0,
                })
                .sum();
            self.pos += 1;
            self.skip_depth(depth.max(0));
        }
    }

    /// Parse items until a closing `}` (when `until` carries the
    /// opener's span) or end of input.
    fn items(&mut self, until: Option<Span>) -> Vec<Item> {
        let mut items = Vec::new();
        while self.pos < self.lines.len() {
            let line = &self.lines[self.pos];
            if !line.directive && line.toks.first().map(|t| &t.kind) == Some(&TokKind::RBrace) {
                if until.is_some() {
                    self.pos += 1;
                    return items;
                }
                let span = line.toks[0].span;
                self.pos += 1;
                self.fatal_err(span, "unmatched `}`");
                continue;
            }
            if line.directive {
                if let Some(item) = self.directive() {
                    items.push(item);
                }
            } else if matches!(line.toks.first().map(|t| &t.kind), Some(TokKind::Ident(k)) if k == "for")
            {
                if let Some(l) = self.loop_item() {
                    items.push(Item::Loop(l));
                }
            } else if let Some(a) = self.assign() {
                items.push(Item::Assign(a));
            }
        }
        if let Some(opener) = until {
            self.fatal_err(opener, "unclosed block: missing `}` before end of input");
        }
        items
    }

    /// Parse the directive at the cursor (and its block, if any).
    /// On a recoverable error the directive's block (or loop) is
    /// skipped so later items still parse cleanly.
    fn directive(&mut self) -> Option<Item> {
        let line = &self.lines[self.pos];
        let dir_span = line.span;
        let lex_failed = line.lex_failed;
        let toks = line.toks.clone();
        self.pos += 1;
        let mut cur = Cursor { toks: &toks, i: 0 };
        let Some(keyword) = cur.ident() else {
            // A lex failure already reported its own diagnostic.
            if !lex_failed {
                self.err(dir_span, "expected a directive name after `//#omp`");
            }
            self.skip_block_if_present();
            return None;
        };
        let kind = match keyword.name.as_str() {
            "parallel" => RegionKind::Parallel,
            "for" => RegionKind::For,
            "sections" => RegionKind::Sections,
            "section" => RegionKind::Section,
            "single" => RegionKind::Single,
            "master" => RegionKind::Master,
            "critical" => RegionKind::Critical,
            "barrier" => RegionKind::Barrier,
            "gui" => RegionKind::Gui,
            other => {
                self.err(keyword.span, format!("unknown directive `{other}`"));
                self.skip_block_if_present();
                return None;
            }
        };
        // `critical` takes an optional lock name before its clauses.
        let mut name = None;
        if kind == RegionKind::Critical {
            if let Some(TokKind::Ident(word)) = cur.peek() {
                if !is_clause_keyword(word) {
                    name = cur.ident();
                }
            }
        }
        let clauses = match self.clauses(&mut cur, dir_span) {
            Some(clauses) => clauses,
            None => {
                // The directive's construct still follows — skip it so
                // its body doesn't reparse as stray top-level items.
                match kind {
                    RegionKind::Barrier => {}
                    RegionKind::For => self.skip_loop_if_present(),
                    _ => self.skip_block_if_present(),
                }
                return None;
            }
        };
        match kind {
            RegionKind::Barrier => {
                Some(Item::Region(Region { kind, name, clauses, span: dir_span, body: Vec::new() }))
            }
            RegionKind::For => {
                // The annotated loop must follow immediately.
                let is_loop = self.lines.get(self.pos).is_some_and(|l| {
                    !l.directive
                        && matches!(l.toks.first().map(|t| &t.kind), Some(TokKind::Ident(k)) if k == "for")
                });
                if !is_loop {
                    self.err(dir_span, "`//#omp for` must be followed by a `for v in lo..hi {` loop");
                    return None;
                }
                let l = self.loop_item()?;
                Some(Item::Region(Region {
                    kind,
                    name,
                    clauses,
                    span: dir_span,
                    body: vec![Item::Loop(l)],
                }))
            }
            _ => {
                let body = self.block(dir_span)?;
                Some(Item::Region(Region { kind, name, clauses, span: dir_span, body }))
            }
        }
    }

    /// Expect `{` on the next line and parse items up to its `}`.
    fn block(&mut self, opener: Span) -> Option<Vec<Item>> {
        let is_open = self.lines.get(self.pos).is_some_and(|l| {
            !l.directive && l.toks.len() == 1 && l.toks[0].kind == TokKind::LBrace
        });
        if !is_open {
            self.err(opener, "expected `{` on the next line to open this region's block");
            return None;
        }
        let open_span = self.lines[self.pos].toks[0].span;
        self.pos += 1;
        Some(self.items(Some(open_span)))
    }

    /// Parse `for v in lo..hi {` + body + `}` from the cursor.
    fn loop_item(&mut self) -> Option<Loop> {
        let line = &self.lines[self.pos];
        let span = line.span;
        let toks = line.toks.clone();
        self.pos += 1;
        let mut cur = Cursor { toks: &toks, i: 0 };
        // Braces the malformed header itself opened: skip to their
        // close so a trailing `{` doesn't orphan its `}`.
        let header_depth: i64 = toks
            .iter()
            .map(|t| match t.kind {
                TokKind::LBrace => 1,
                TokKind::RBrace => -1,
                _ => 0,
            })
            .sum();
        let bad = |p: &mut Self| {
            p.err(span, "malformed loop header: expected `for v in lo..hi {`");
            p.skip_depth(header_depth.max(0));
            None
        };
        let Some(kw) = cur.ident() else { return bad(self) };
        if kw.name != "for" {
            return bad(self);
        }
        let Some(var) = cur.ident() else { return bad(self) };
        match cur.ident() {
            Some(inn) if inn.name == "in" => {}
            _ => return bad(self),
        }
        let Some(lo) = cur.signed_num() else { return bad(self) };
        if !cur.eat(&TokKind::DotDot) {
            return bad(self);
        }
        let Some(hi) = cur.signed_num() else { return bad(self) };
        if !cur.eat(&TokKind::LBrace) || cur.peek().is_some() {
            return bad(self);
        }
        let body = self.items(Some(span));
        Some(Loop { var, lo, hi, span, body })
    }

    /// Parse `target = expr;` from the cursor.
    fn assign(&mut self) -> Option<Assign> {
        let line = &self.lines[self.pos];
        let span = line.span;
        let toks = line.toks.clone();
        self.pos += 1;
        let mut cur = Cursor { toks: &toks, i: 0 };
        let Some(target) = cur.ident() else {
            self.err(span, "expected a statement (`x = expr;`), loop, directive or `}`");
            return None;
        };
        if !cur.eat(&TokKind::Assign) {
            self.err(span, format!("expected `=` after `{}`", target.name));
            return None;
        }
        let expr = self.expr(&mut cur, span)?;
        if !cur.eat(&TokKind::Semi) || cur.peek().is_some() {
            self.err(span, "expected `;` at the end of the statement");
            return None;
        }
        Some(Assign { target, expr, span })
    }

    // -- expressions (precedence climbing: `+ -` < `* /`) ------------

    fn expr(&mut self, cur: &mut Cursor<'_>, span: Span) -> Option<Expr> {
        let mut lhs = self.term(cur, span)?;
        loop {
            let op = match cur.peek() {
                Some(TokKind::Plus) => BinOp::Add,
                Some(TokKind::Minus) => BinOp::Sub,
                _ => break,
            };
            cur.i += 1;
            let rhs = self.term(cur, span)?;
            lhs = Expr::Bin(Box::new(lhs), op, Box::new(rhs));
        }
        Some(lhs)
    }

    fn term(&mut self, cur: &mut Cursor<'_>, span: Span) -> Option<Expr> {
        let mut lhs = self.factor(cur, span)?;
        loop {
            let op = match cur.peek() {
                Some(TokKind::Star) => BinOp::Mul,
                Some(TokKind::Slash) => BinOp::Div,
                _ => break,
            };
            cur.i += 1;
            let rhs = self.factor(cur, span)?;
            lhs = Expr::Bin(Box::new(lhs), op, Box::new(rhs));
        }
        Some(lhs)
    }

    fn factor(&mut self, cur: &mut Cursor<'_>, span: Span) -> Option<Expr> {
        match cur.peek().cloned() {
            Some(TokKind::Num(n)) => {
                let sp = cur.toks[cur.i].span;
                cur.i += 1;
                Some(Expr::Num(n, sp))
            }
            Some(TokKind::Minus) => {
                let sp = cur.toks[cur.i].span;
                cur.i += 1;
                match cur.peek() {
                    Some(TokKind::Num(n)) => {
                        let n = *n;
                        cur.i += 1;
                        Some(Expr::Num(-n, sp))
                    }
                    _ => {
                        self.err(span, "expected a number after unary `-`");
                        None
                    }
                }
            }
            Some(TokKind::Ident(_)) => cur.ident().map(Expr::Var),
            Some(TokKind::LParen) => {
                cur.i += 1;
                let inner = self.expr(cur, span)?;
                if cur.eat(&TokKind::RParen) {
                    Some(inner)
                } else {
                    self.err(span, "expected `)` to close the parenthesised expression");
                    None
                }
            }
            other => {
                let what = other.map_or_else(|| "end of line".to_string(), |k| k.describe());
                self.err(span, format!("expected an expression, found {what}"));
                None
            }
        }
    }

    // -- clauses ------------------------------------------------------

    fn clauses(&mut self, cur: &mut Cursor<'_>, dir_span: Span) -> Option<Vec<Clause>> {
        let mut clauses = Vec::new();
        while let Some(kind) = cur.peek().cloned() {
            let TokKind::Ident(word) = kind else {
                self.err(cur.toks[cur.i].span, format!("expected a clause, found {}", kind.describe()));
                return None;
            };
            let key = cur.ident().expect("peeked an ident");
            let clause = match word.as_str() {
                "shared" => Clause::Shared(self.ident_list(cur, &key)?),
                "private" => Clause::Private(self.ident_list(cur, &key)?),
                "firstprivate" => Clause::FirstPrivate(self.ident_list(cur, &key)?),
                "reduction" => self.reduction(cur, &key)?,
                "schedule" => self.schedule(cur, &key)?,
                "num_threads" => {
                    if !cur.eat(&TokKind::LParen) {
                        self.err(key.span, "expected `(` after `num_threads`");
                        return None;
                    }
                    let n = match cur.peek() {
                        Some(TokKind::Num(n)) if *n >= 1 => {
                            let n = *n;
                            cur.i += 1;
                            n as usize
                        }
                        _ => {
                            self.err(key.span, "num_threads takes a positive integer");
                            return None;
                        }
                    };
                    if !cur.eat(&TokKind::RParen) {
                        self.err(key.span, "expected `)` to close `num_threads(...)`");
                        return None;
                    }
                    Clause::NumThreads(n)
                }
                "nowait" => Clause::NoWait,
                other => {
                    self.err(key.span, format!("unknown clause `{other}`"));
                    return None;
                }
            };
            clauses.push(clause);
        }
        let _ = dir_span;
        Some(clauses)
    }

    fn ident_list(&mut self, cur: &mut Cursor<'_>, key: &Ident) -> Option<Vec<Ident>> {
        if !cur.eat(&TokKind::LParen) {
            self.err(key.span, format!("expected `(` after `{}`", key.name));
            return None;
        }
        let mut ids = Vec::new();
        loop {
            let Some(id) = cur.ident() else {
                self.err(key.span, format!("expected a variable name in `{}(...)`", key.name));
                return None;
            };
            ids.push(id);
            if cur.eat(&TokKind::Comma) {
                continue;
            }
            if cur.eat(&TokKind::RParen) {
                return Some(ids);
            }
            self.err(key.span, format!("expected `,` or `)` in `{}(...)`", key.name));
            return None;
        }
    }

    fn reduction(&mut self, cur: &mut Cursor<'_>, key: &Ident) -> Option<Clause> {
        if !cur.eat(&TokKind::LParen) {
            self.err(key.span, "expected `(` after `reduction`");
            return None;
        }
        let op = match cur.peek().cloned() {
            Some(TokKind::Plus) => Some(RedOp::Add),
            Some(TokKind::Star) => Some(RedOp::Mul),
            Some(TokKind::Amp) => Some(RedOp::BitAnd),
            Some(TokKind::Pipe) => Some(RedOp::BitOr),
            Some(TokKind::Caret) => Some(RedOp::BitXor),
            Some(TokKind::Ident(w)) if w == "min" => Some(RedOp::Min),
            Some(TokKind::Ident(w)) if w == "max" => Some(RedOp::Max),
            _ => None,
        };
        let Some(op) = op else {
            self.err(key.span, "expected a reduction operator (`+ * & | ^ min max`)");
            return None;
        };
        cur.i += 1;
        if !cur.eat(&TokKind::Colon) {
            self.err(key.span, "expected `:` between the reduction operator and variable");
            return None;
        }
        let Some(var) = cur.ident() else {
            self.err(key.span, "expected the reduction variable name");
            return None;
        };
        if !cur.eat(&TokKind::RParen) {
            self.err(key.span, "expected `)` to close `reduction(...)`");
            return None;
        }
        Some(Clause::Reduction { op, var })
    }

    fn schedule(&mut self, cur: &mut Cursor<'_>, key: &Ident) -> Option<Clause> {
        if !cur.eat(&TokKind::LParen) {
            self.err(key.span, "expected `(` after `schedule`");
            return None;
        }
        let Some(kind) = cur.ident() else {
            self.err(key.span, "expected `static`, `dynamic` or `guided`");
            return None;
        };
        let chunk = if cur.eat(&TokKind::Comma) {
            match cur.peek() {
                Some(TokKind::Num(n)) if *n >= 1 => {
                    let n = *n;
                    cur.i += 1;
                    Some(n as usize)
                }
                _ => {
                    self.err(key.span, "schedule chunk must be a positive integer");
                    return None;
                }
            }
        } else {
            None
        };
        if !cur.eat(&TokKind::RParen) {
            self.err(key.span, "expected `)` to close `schedule(...)`");
            return None;
        }
        let spec = match (kind.name.as_str(), chunk) {
            ("static", None) => ScheduleSpec::Static,
            ("static", Some(c)) => ScheduleSpec::StaticChunk(c),
            ("dynamic", c) => ScheduleSpec::Dynamic(c.unwrap_or(1)),
            ("guided", c) => ScheduleSpec::Guided(c.unwrap_or(1)),
            (other, _) => {
                self.err(kind.span, format!("unknown schedule kind `{other}`"));
                return None;
            }
        };
        Some(Clause::Schedule(spec))
    }
}

fn is_clause_keyword(word: &str) -> bool {
    matches!(
        word,
        "shared" | "private" | "firstprivate" | "reduction" | "schedule" | "num_threads" | "nowait"
    )
}

/// A cursor over one line's tokens.
struct Cursor<'a> {
    toks: &'a [Tok],
    i: usize,
}

impl Cursor<'_> {
    fn peek(&self) -> Option<&TokKind> {
        self.toks.get(self.i).map(|t| &t.kind)
    }

    fn eat(&mut self, kind: &TokKind) -> bool {
        if self.peek() == Some(kind) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Option<Ident> {
        match self.toks.get(self.i) {
            Some(Tok { kind: TokKind::Ident(name), span }) => {
                let id = Ident { name: name.clone(), span: *span };
                self.i += 1;
                Some(id)
            }
            _ => None,
        }
    }

    fn signed_num(&mut self) -> Option<i64> {
        let neg = self.eat(&TokKind::Minus);
        match self.peek() {
            Some(TokKind::Num(n)) => {
                let n = *n;
                self.i += 1;
                Some(if neg { -n } else { n })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WELL_FORMED: &str = "\
//#omp parallel num_threads(2) private(t)
{
    //#omp for reduction(+:sum) schedule(static)
    for i in 0..4 {
        sum = sum + i;
    }
    //#omp critical tally
    {
        total = total + 1;
    }
    //#omp barrier
}
";

    #[test]
    fn parses_the_kitchen_sink() {
        let prog = parse(WELL_FORMED).expect("well-formed program parses");
        assert_eq!(prog.items.len(), 1);
        let Item::Region(par) = &prog.items[0] else { panic!("expected a region") };
        assert_eq!(par.kind, RegionKind::Parallel);
        assert_eq!(par.num_threads(), Some(2));
        assert_eq!(par.body.len(), 3);
        let Item::Region(f) = &par.body[0] else { panic!("expected the for region") };
        assert_eq!(f.kind, RegionKind::For);
        assert_eq!(f.reductions().count(), 1);
        let Item::Region(c) = &par.body[1] else { panic!("expected the critical") };
        assert_eq!(c.name.as_ref().map(|n| n.name.as_str()), Some("tally"));
        let Item::Region(b) = &par.body[2] else { panic!("expected the barrier") };
        assert_eq!(b.kind, RegionKind::Barrier);
    }

    #[test]
    fn pretty_print_is_a_parse_fixed_point() {
        let prog = parse(WELL_FORMED).unwrap();
        let printed = prog.pretty();
        let reparsed = parse(&printed).expect("pretty output reparses");
        assert_eq!(prog, reparsed);
        assert_eq!(printed, reparsed.pretty());
    }

    #[test]
    fn unclosed_block_is_e005() {
        let diags = parse("//#omp parallel\n{\n    x = 1;\n").unwrap_err();
        assert!(diags.iter().any(|d| d.code == Code::E005));
        assert!(diags[0].message.contains("unclosed block"));
    }

    #[test]
    fn unmatched_close_is_e005() {
        let diags = parse("x = 1;\n}\n").unwrap_err();
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unmatched `}`"));
        assert_eq!(diags[0].span.line, 2);
    }

    #[test]
    fn directive_without_block_is_e005() {
        let diags = parse("//#omp single\nx = 1;\n").unwrap_err();
        assert!(diags[0].message.contains("expected `{`"));
    }

    #[test]
    fn unknown_directive_is_e005() {
        let diags = parse("//#omp paralel\n{\n}\n").unwrap_err();
        assert!(diags[0].message.contains("unknown directive `paralel`"));
    }

    #[test]
    fn recovers_after_unknown_directive() {
        // The misspelled region's whole block is skipped; the later
        // well-formed region still parses.
        let src = "\
//#omp paralel num_threads(2)
{
    x = x + 1;
}
//#omp critical
{
    y = y + 1;
}
";
        let (prog, diags) = parse_recover(src);
        let prog = prog.expect("recoverable error keeps the tree");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unknown directive `paralel`"));
        assert_eq!(prog.items.len(), 1, "only the critical survives");
        let Item::Region(c) = &prog.items[0] else { panic!("expected the critical") };
        assert_eq!(c.kind, RegionKind::Critical);
    }

    #[test]
    fn recovers_after_malformed_clause_block() {
        let src = "\
//#omp parallel num_threads(zero)
{
    x = x + 1;
}
z = 1;
";
        let (prog, diags) = parse_recover(src);
        let prog = prog.expect("clause errors are recoverable");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("num_threads takes a positive integer"));
        assert_eq!(prog.items.len(), 1, "the malformed region's body is skipped");
        assert!(matches!(&prog.items[0], Item::Assign(a) if a.target.name == "z"));
    }

    #[test]
    fn recovers_after_malformed_loop_header() {
        let src = "\
//#omp parallel
{
    for i in 0..n {
        x = x + 1;
    }
    y = 2;
}
";
        let (prog, diags) = parse_recover(src);
        let prog = prog.expect("bad loop header is recoverable");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("malformed loop header"));
        let Item::Region(par) = &prog.items[0] else { panic!("expected the parallel") };
        assert_eq!(par.body.len(), 1, "loop skipped, trailing assign kept");
        assert!(matches!(&par.body[0], Item::Assign(a) if a.target.name == "y"));
    }

    #[test]
    fn fatal_errors_yield_no_tree() {
        let (prog, diags) = parse_recover("//#omp parallel\n{\n    x = 1;\n");
        assert!(prog.is_none(), "unclosed block breaks alignment: no tree");
        assert!(diags.iter().any(|d| d.message.contains("unclosed block")));

        let (prog, diags) = parse_recover("x = 1;\n}\n");
        assert!(prog.is_none(), "unmatched `}}` breaks alignment: no tree");
        assert!(diags.iter().any(|d| d.message.contains("unmatched `}`")));
    }

    #[test]
    fn negative_bounds_and_nested_exprs_parse() {
        let src = "for i in -2..2 {\n    x = (i + 1) * 3 - 4 / 2;\n}\n";
        let prog = parse(src).unwrap();
        let Item::Loop(l) = &prog.items[0] else { panic!("expected a loop") };
        assert_eq!((l.lo, l.hi), (-2, 2));
        // The printer adds canonical parentheses, so compare the
        // pretty forms: one round through the printer is idempotent.
        let printed = prog.pretty();
        assert_eq!(parse(&printed).unwrap().pretty(), printed);
    }
}
