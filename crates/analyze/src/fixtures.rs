//! The fixture corpus: twenty-two small directive programs styled on
//! the SoftEng 751 student projects, half exhibiting the classic bugs
//! the rule engine targets and half their fixed (or naturally clean)
//! counterparts.
//!
//! Every fixture carries its expected static diagnostics *and* the
//! dynamic verdict the interleaving explorer must reach when the
//! program is lowered onto the shim runtime — `tests/analyze.rs`
//! cross-validates the two so no static claim ships unwitnessed.

use crate::diag::Code;

/// What the dynamic cross-validation must observe for a fixture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DynVerdict {
    /// Exhaustive exploration proves the program race- and
    /// deadlock-free.
    Clean,
    /// The explorer must witness at least one racing schedule.
    Race,
    /// The explorer must witness at least one deadlocked schedule.
    Deadlock,
    /// The program does not lower (structural `E005` errors); only the
    /// static verdict applies.
    Unlowered,
}

/// One corpus entry.
#[derive(Clone, Copy, Debug)]
pub struct Fixture {
    /// Corpus name, `family/variant` style.
    pub name: &'static str,
    /// Which student-project idiom the program is styled on.
    pub styled_on: &'static str,
    /// The directive program source.
    pub source: &'static str,
    /// Expected diagnostic codes, in report order.
    pub expect: &'static [Code],
    /// Expected dynamic verdict.
    pub dynamic: DynVerdict,
}

/// The whole corpus, in a fixed presentation order.
#[must_use]
pub fn corpus() -> &'static [Fixture] {
    FIXTURES
}

/// Look a fixture up by name.
#[must_use]
pub fn by_name(name: &str) -> Option<&'static Fixture> {
    FIXTURES.iter().find(|f| f.name == name)
}

const FIXTURES: &[Fixture] = &[
    Fixture {
        name: "counter/racy",
        styled_on: "web-crawler page counter",
        source: "\
//#omp parallel num_threads(2)
{
    count = count + 1;
}
",
        expect: &[Code::W101],
        dynamic: DynVerdict::Race,
    },
    Fixture {
        name: "counter/critical",
        styled_on: "web-crawler page counter (fixed)",
        source: "\
//#omp parallel num_threads(2)
{
    //#omp critical tally
    {
        count = count + 1;
    }
}
",
        expect: &[],
        dynamic: DynVerdict::Clean,
    },
    Fixture {
        name: "reduction/sum",
        styled_on: "word-count tallying",
        source: "\
sum = 0;
//#omp parallel num_threads(2)
{
    //#omp for reduction(+:sum)
    for i in 0..4 {
        sum = sum + i;
    }
}
",
        expect: &[],
        dynamic: DynVerdict::Clean,
    },
    Fixture {
        name: "reduction/broken",
        styled_on: "word-count tallying (stray late write)",
        source: "\
sum = 0;
//#omp parallel num_threads(2)
{
    //#omp for reduction(+:sum)
    for i in 0..4 {
        sum = sum + i;
    }
    sum = sum + 100;
}
",
        expect: &[Code::E003],
        dynamic: DynVerdict::Race,
    },
    Fixture {
        name: "barrier/in-critical",
        styled_on: "k-means phase sync gone wrong",
        source: "\
//#omp parallel num_threads(2)
{
    //#omp critical gate
    {
        //#omp barrier
    }
}
",
        expect: &[Code::E001],
        dynamic: DynVerdict::Deadlock,
    },
    Fixture {
        name: "barrier/in-for",
        styled_on: "n-body per-step sync inside the shared loop",
        source: "\
//#omp parallel num_threads(2)
{
    //#omp for
    for i in 0..3 {
        //#omp barrier
    }
}
",
        expect: &[Code::E001],
        dynamic: DynVerdict::Deadlock,
    },
    Fixture {
        name: "barrier/in-single",
        styled_on: "matrix-multiply tile staging",
        source: "\
//#omp parallel num_threads(2)
{
    //#omp single
    {
        x = 1;
        //#omp barrier
    }
}
",
        expect: &[Code::E001],
        dynamic: DynVerdict::Deadlock,
    },
    Fixture {
        name: "barrier/in-gui",
        styled_on: "GUI thread waiting on workers from the EDT",
        source: "\
//#omp parallel num_threads(2)
{
    //#omp gui
    {
        done = 1;
        //#omp barrier
    }
}
",
        expect: &[Code::E006],
        dynamic: DynVerdict::Deadlock,
    },
    Fixture {
        name: "barrier/phases",
        styled_on: "n-body per-step sync (fixed: barrier between phases)",
        source: "\
//#omp parallel num_threads(2) private(result)
{
    //#omp master
    {
        stage = 40 + 2;
    }
    //#omp barrier
    result = stage;
}
",
        expect: &[],
        dynamic: DynVerdict::Clean,
    },
    Fixture {
        name: "master/unbarriered",
        styled_on: "ray-tracer scene setup on the master thread",
        source: "\
//#omp parallel num_threads(2) private(local)
{
    //#omp master
    {
        config = 7;
    }
    local = config;
}
",
        expect: &[Code::W102],
        dynamic: DynVerdict::Race,
    },
    Fixture {
        name: "single/init",
        styled_on: "ray-tracer scene setup (fixed: single has a barrier)",
        source: "\
//#omp parallel num_threads(2) private(hit)
{
    //#omp single
    {
        needle = 9;
    }
    hit = needle;
}
",
        expect: &[],
        dynamic: DynVerdict::Clean,
    },
    Fixture {
        name: "nested-for",
        styled_on: "mandelbrot row/column double worksharing",
        source: "\
//#omp parallel num_threads(2)
{
    //#omp for
    for i in 0..2 {
        //#omp for
        for j in 0..2 {
            acc = acc + 1;
        }
    }
}
",
        expect: &[Code::E002, Code::W101],
        dynamic: DynVerdict::Race,
    },
    Fixture {
        name: "lock-order/cycle",
        styled_on: "path-finder node/edge table locking",
        source: "\
//#omp parallel num_threads(2)
{
    //#omp sections
    {
        //#omp section
        {
            //#omp critical alpha
            {
                //#omp critical beta
                {
                    a = a + 1;
                }
            }
        }
        //#omp section
        {
            //#omp critical beta
            {
                //#omp critical alpha
                {
                    a = a + 2;
                }
            }
        }
    }
}
",
        expect: &[Code::E004],
        dynamic: DynVerdict::Deadlock,
    },
    Fixture {
        name: "lock-order/consistent",
        styled_on: "path-finder node/edge table locking (fixed: global order)",
        source: "\
//#omp parallel num_threads(2)
{
    //#omp sections
    {
        //#omp section
        {
            //#omp critical alpha
            {
                //#omp critical beta
                {
                    a = a + 1;
                }
            }
        }
        //#omp section
        {
            //#omp critical alpha
            {
                //#omp critical beta
                {
                    a = a + 2;
                }
            }
        }
    }
}
",
        expect: &[],
        dynamic: DynVerdict::Clean,
    },
    Fixture {
        name: "private/uninit",
        styled_on: "sudoku-solver per-thread scratch counter",
        source: "\
//#omp parallel num_threads(2) private(t)
{
    t = t + 1;
    //#omp critical sum_lock
    {
        out = out + t;
    }
}
",
        expect: &[Code::W103],
        dynamic: DynVerdict::Clean,
    },
    Fixture {
        name: "private/firstprivate",
        styled_on: "sudoku-solver per-thread scratch counter (fixed)",
        source: "\
seed = 3;
//#omp parallel num_threads(2) firstprivate(seed)
{
    seed = seed + 1;
    //#omp critical acc_lock
    {
        out = out + seed;
    }
}
",
        expect: &[],
        dynamic: DynVerdict::Clean,
    },
    Fixture {
        name: "sections/disjoint",
        styled_on: "image-pipeline load/decode split",
        source: "\
//#omp parallel num_threads(2)
{
    //#omp sections
    {
        //#omp section
        {
            head = 1;
        }
        //#omp section
        {
            tail = 2;
        }
    }
}
",
        expect: &[],
        dynamic: DynVerdict::Clean,
    },
    Fixture {
        name: "sections/conflict",
        styled_on: "image-pipeline shared progress log",
        source: "\
//#omp parallel num_threads(2)
{
    //#omp sections
    {
        //#omp section
        {
            log = log + 1;
        }
        //#omp section
        {
            log = log + 5;
        }
    }
}
",
        expect: &[Code::W101, Code::W101],
        dynamic: DynVerdict::Race,
    },
    Fixture {
        name: "critical/redundant",
        styled_on: "image-pipeline head counter locked out of habit",
        source: "\
//#omp parallel num_threads(2)
{
    //#omp sections
    {
        //#omp section
        {
            //#omp critical stats
            {
                head = head + 1;
            }
        }
        //#omp section
        {
            tail = tail + 1;
        }
    }
}
",
        expect: &[Code::W104],
        dynamic: DynVerdict::Clean,
    },
    Fixture {
        name: "gui/progress",
        styled_on: "GUI progress-bar update from a parallel region",
        source: "\
//#omp parallel num_threads(2) private(step)
{
    step = 1;
    //#omp gui
    {
        progress = 100;
    }
    step = step + 1;
}
",
        expect: &[],
        dynamic: DynVerdict::Clean,
    },
    Fixture {
        name: "structure/unclosed",
        styled_on: "any project: a brace dropped in refactoring",
        source: "\
//#omp parallel num_threads(2)
{
    x = 1;
",
        expect: &[Code::E005],
        dynamic: DynVerdict::Unlowered,
    },
    Fixture {
        name: "structure/stray-section",
        styled_on: "any project: `section` without its `sections`",
        source: "\
//#omp parallel num_threads(2)
{
    //#omp section
    {
        x = 1;
    }
}
",
        expect: &[Code::E005, Code::W101],
        dynamic: DynVerdict::Unlowered,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_twenty_two_named_unique_fixtures() {
        assert_eq!(corpus().len(), 22);
        let mut names: Vec<&str> = corpus().iter().map(|f| f.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 22, "fixture names must be unique");
    }

    #[test]
    fn by_name_finds_fixtures() {
        assert!(by_name("counter/racy").is_some());
        assert!(by_name("no/such").is_none());
    }

    #[test]
    fn every_error_code_is_exercised() {
        for code in Code::ALL {
            assert!(
                corpus().iter().any(|f| f.expect.contains(&code)),
                "no fixture exercises {}",
                code.as_str()
            );
        }
    }
}
