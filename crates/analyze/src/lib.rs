//! # parc-analyze — Pyjama directive front end + static diagnostics
//!
//! Pyjama (Vikas, Giacaman & Sinnen) brings OpenMP-style directives to
//! Java as `//#omp` comments; SoftEng 751 students write parallel
//! programs against it and make the same handful of mistakes every
//! year — barriers inside worksharing, unprotected shared counters,
//! `master` where `single` was needed, inconsistent lock order. This
//! crate is the teaching-scale analogue of the marker's eye: a
//! front end for a Pyjama-style directive mini-language and a static
//! rule engine that names those mistakes precisely, with spans and
//! caret-annotated snippets.
//!
//! The pipeline:
//!
//! 1. [`parse`](parse::parse) — lexer + recursive-descent parser
//!    producing a spanned region tree ([`ast`]). Structural misuse is
//!    `E005` at this stage.
//! 2. [`check`](rules::check) — the rule engine walks the tree,
//!    resolves every variable's data-sharing attribute, and reports
//!    `E001`–`E005` errors and `W101`–`W103` warnings ([`diag`]).
//! 3. [`bridge`] — the same tree lowers onto the `parc-explore` shim
//!    runtime, the real `pyjama` runtime, and a sequential reference
//!    interpreter, so every static verdict is *cross-validated
//!    dynamically*: flagged deadlocks must deadlock under the
//!    explorer, flagged races must produce witnessed racing schedules,
//!    and clean programs must be proved race-free over the exhausted
//!    interleaving space (see `tests/analyze.rs`).
//!
//! The [`fixtures`] corpus holds twenty directive programs styled on
//! the student projects — buggy originals and fixed counterparts — and
//! `examples/directive_lint.rs` lints the whole corpus, rendering the
//! diagnostic table and machine-readable JSON.

#![warn(missing_docs)]

pub mod ast;
pub mod bridge;
pub mod diag;
pub mod fixtures;
pub mod lexer;
pub mod parse;
pub mod rules;

use diag::Diagnostic;

/// The result of analysing one source text.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The parsed program, if parsing succeeded.
    pub program: Option<ast::Program>,
    /// All diagnostics, deterministically ordered (span, then code).
    pub diagnostics: Vec<Diagnostic>,
}

impl Analysis {
    /// Does the analysis carry any `E`-class diagnostic?
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.code.severity() == diag::Severity::Error)
    }

    /// Is the program completely clean (no errors, no warnings)?
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Parse and check a directive program in one call.
///
/// Parse failures yield `program: None` with the parser's `E005`
/// diagnostics; otherwise the full rule engine runs over the tree.
#[must_use]
pub fn analyze(source: &str) -> Analysis {
    match parse::parse(source) {
        Ok(program) => {
            let diagnostics = rules::check(&program);
            Analysis { program: Some(program), diagnostics }
        }
        Err(diagnostics) => Analysis { program: None, diagnostics },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag::Code;

    #[test]
    fn analyze_runs_the_full_pipeline() {
        let a = analyze("//#omp parallel num_threads(2)\n{\n    count = count + 1;\n}\n");
        assert!(a.program.is_some());
        assert_eq!(a.diagnostics.len(), 1);
        assert_eq!(a.diagnostics[0].code, Code::W101);
        assert!(!a.has_errors());
        assert!(!a.is_clean());
    }

    #[test]
    fn analyze_surfaces_parse_failures() {
        let a = analyze("//#omp parallel\n{\n");
        assert!(a.program.is_none());
        assert!(a.has_errors());
        assert!(a.diagnostics.iter().all(|d| d.code == Code::E005));
    }

    #[test]
    fn every_fixture_matches_its_expected_codes() {
        for fixture in fixtures::corpus() {
            let a = analyze(fixture.source);
            let got: Vec<Code> = a.diagnostics.iter().map(|d| d.code).collect();
            assert_eq!(
                got, fixture.expect,
                "fixture `{}` diagnostics diverged",
                fixture.name
            );
        }
    }
}
