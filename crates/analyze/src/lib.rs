//! # parc-analyze — Pyjama directive front end + static diagnostics
//!
//! Pyjama (Vikas, Giacaman & Sinnen) brings OpenMP-style directives to
//! Java as `//#omp` comments; SoftEng 751 students write parallel
//! programs against it and make the same handful of mistakes every
//! year — barriers inside worksharing, unprotected shared counters,
//! `master` where `single` was needed, inconsistent lock order. This
//! crate is the teaching-scale analogue of the marker's eye: a
//! front end for a Pyjama-style directive mini-language and a static
//! rule engine that names those mistakes precisely, with spans and
//! caret-annotated snippets.
//!
//! The pipeline:
//!
//! 1. [`parse`](parse::parse) — lexer + recursive-descent parser
//!    producing a spanned region tree ([`ast`]). Structural misuse is
//!    `E005` at this stage; recoverable directive errors no longer
//!    abort the parse ([`parse::parse_recover`]), so later regions
//!    still get analysed.
//! 2. [`check`](rules::check) — structural rules plus the MHP∩lockset
//!    engine: [`mhp`] symbolically executes every thread of every team
//!    (the language is branch-free, so the model is exact), [`lockset`]
//!    tracks the locks held on the path to each shared access, and the
//!    rules report races (`W101`/`W102`) only for access pairs that
//!    may happen in parallel under disjoint locksets, deterministic
//!    barrier deadlocks (`E001`/`E006`) from proved arrival-count
//!    mismatches, lock-order cycles (`E004`) from concurrent nesting
//!    edges, and redundant criticals (`W104`) where nothing conflicts.
//! 3. [`bridge`] — the same tree lowers onto the `parc-explore` shim
//!    runtime, the real `pyjama` runtime, and a sequential reference
//!    interpreter, so every static verdict is *cross-validated
//!    dynamically*: flagged deadlocks must deadlock under the
//!    explorer, flagged races must produce witnessed racing schedules,
//!    and clean programs must be proved race-free over the exhausted
//!    interleaving space (see `tests/analyze.rs`).
//!
//! The [`fixtures`] corpus holds hand-written directive programs styled
//! on the student projects — buggy originals and fixed counterparts —
//! and [`genprog`] generates thousands more per seed for the E-FUZZ
//! agreement harness (`examples/fuzz_lint.rs`), which gates on the
//! static engine never missing an explorer-witnessed race or deadlock
//! while keeping a lower false-positive rate than the old syntactic
//! engine ([`rules::check_syntactic`]).

#![warn(missing_docs)]

pub mod ast;
pub mod bridge;
pub mod diag;
pub mod fixtures;
pub mod genprog;
pub mod lexer;
pub mod lockset;
pub mod mhp;
pub mod parse;
pub mod rules;

use diag::Diagnostic;

/// The result of analysing one source text.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The parsed program, if parsing succeeded.
    pub program: Option<ast::Program>,
    /// All diagnostics, deterministically ordered (span, then code).
    pub diagnostics: Vec<Diagnostic>,
}

impl Analysis {
    /// Does the analysis carry any `E`-class diagnostic?
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.code.severity() == diag::Severity::Error)
    }

    /// Is the program completely clean (no errors, no warnings)?
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Parse and check a directive program in one call.
///
/// The parser recovers from malformed directives: only *fatal*
/// structural failures (unclosed/unmatched blocks) yield
/// `program: None`. Recoverable errors (an unknown or malformed
/// directive) produce their `E005` and the rule engine still runs
/// over everything after them.
#[must_use]
pub fn analyze(source: &str) -> Analysis {
    let (program, mut diagnostics) = parse::parse_recover(source);
    if let Some(program) = &program {
        diagnostics.extend(rules::check(program));
        diag::sort_diagnostics(&mut diagnostics);
        diagnostics.dedup_by(|a, b| a.code == b.code && a.span == b.span && a.message == b.message);
    }
    Analysis { program, diagnostics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag::Code;

    #[test]
    fn analyze_runs_the_full_pipeline() {
        let a = analyze("//#omp parallel num_threads(2)\n{\n    count = count + 1;\n}\n");
        assert!(a.program.is_some());
        assert_eq!(a.diagnostics.len(), 1);
        assert_eq!(a.diagnostics[0].code, Code::W101);
        assert!(!a.has_errors());
        assert!(!a.is_clean());
    }

    #[test]
    fn analyze_surfaces_parse_failures() {
        let a = analyze("//#omp parallel\n{\n");
        assert!(a.program.is_none());
        assert!(a.has_errors());
        assert!(a.diagnostics.iter().all(|d| d.code == Code::E005));
    }

    #[test]
    fn every_fixture_matches_its_expected_codes() {
        for fixture in fixtures::corpus() {
            let a = analyze(fixture.source);
            let got: Vec<Code> = a.diagnostics.iter().map(|d| d.code).collect();
            assert_eq!(
                got, fixture.expect,
                "fixture `{}` diagnostics diverged",
                fixture.name
            );
        }
    }
}
