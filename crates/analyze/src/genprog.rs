//! Seeded generator of well-typed directive programs for the E-FUZZ
//! agreement harness (`examples/fuzz_lint.rs`).
//!
//! Each program is built as an AST and rendered through
//! [`Program::pretty`], so every emission is well-formed by
//! construction; the harness re-parses the surface text to get real
//! spans. Generation is a pure function of the seed
//! ([`parc_util::rng::Xoshiro256`]): the same `(seed, count)` always
//! yields byte-identical sources, which is what makes the CI
//! bit-identity rerun check possible.
//!
//! The corpus cycles deterministically through twenty **families**,
//! each pinned to a known dynamic verdict class:
//!
//! * genuinely racy programs (unprotected counters, conflicting
//!   sections, reduction bypasses, `master`/`single nowait` hand-offs),
//! * genuinely deadlocking programs (odd barrier splits, barriers
//!   under `single`/`gui`, reversed lock orders),
//! * genuinely clean programs (protected counters, reductions,
//!   disjoint sections, phase-separated hand-offs),
//! * **bait** programs that are dynamically clean but that the
//!   syntactic PR 4 engine flags — evenly-split barriers in `for`,
//!   single-iteration worksharing writes, and `num_threads(1)`
//!   constructs. These guarantee the old engine's false-positive rate
//!   is non-zero on every seed, so the "strictly fewer false
//!   positives" gate measures something real.
//!
//! [`cross_validate`] runs a corpus through both static engines *and*
//! the exhaustive explorer and tallies the agreement.

use parc_explore::Config;
use parc_util::rng::Xoshiro256;
use proptest::test_runner::TestRng;
use proptest::Strategy;

use crate::ast::{Clause, Expr, Ident, Item, Loop, Program, RedOp, Region, RegionKind, Span};
use crate::bridge::explore_program;
use crate::diag::Code;
use crate::parse::parse;
use crate::rules;

/// One generated program.
#[derive(Clone, Debug)]
pub struct GenProgram {
    /// Position in the generated corpus.
    pub index: usize,
    /// The family that produced it (see module docs).
    pub family: &'static str,
    /// The canonical surface text ([`Program::pretty`] output).
    pub source: String,
}

/// Static codes that claim "some schedule races" — must cover every
/// explorer-witnessed race.
pub const RACE_CLASS: [Code; 4] = [Code::E002, Code::E003, Code::W101, Code::W102];

/// Static codes that claim "some/all schedules deadlock" under the
/// MHP∩lockset engine — must cover every explorer-witnessed deadlock.
pub const DEADLOCK_CLASS: [Code; 3] = [Code::E001, Code::E004, Code::E006];

/// Codes counted as false positives for the new engine on a program
/// the explorer proved clean (everything that claims a dynamic
/// failure; style-only W103/W104 are excluded).
pub const FP_CLASS_NEW: [Code; 7] =
    [Code::E001, Code::E002, Code::E003, Code::E004, Code::E006, Code::W101, Code::W102];

/// Same, for the syntactic baseline (which cannot emit E006).
pub const FP_CLASS_OLD: [Code; 6] =
    [Code::E001, Code::E002, Code::E003, Code::E004, Code::W101, Code::W102];

// ---------------------------------------------------------------------
// AST construction helpers (spans are irrelevant: the harness re-parses
// the pretty output).
// ---------------------------------------------------------------------

fn id(name: &str) -> Ident {
    Ident { name: name.to_string(), span: Span::default() }
}

fn read(name: &str) -> Expr {
    Expr::Var(id(name))
}

fn lit(n: i64) -> Expr {
    Expr::Num(n, Span::default())
}

/// `var = var + by;`
fn incr(var: &str, by: i64) -> Item {
    Item::Assign(crate::ast::Assign {
        target: id(var),
        expr: Expr::Bin(Box::new(read(var)), crate::ast::BinOp::Add, Box::new(lit(by))),
        span: Span::default(),
    })
}

/// `var = n;`
fn set(var: &str, n: i64) -> Item {
    Item::Assign(crate::ast::Assign { target: id(var), expr: lit(n), span: Span::default() })
}

/// `dst = src;`
fn copy(dst: &str, src: &str) -> Item {
    Item::Assign(crate::ast::Assign { target: id(dst), expr: read(src), span: Span::default() })
}

fn region(kind: RegionKind, name: Option<&str>, clauses: Vec<Clause>, body: Vec<Item>) -> Item {
    Item::Region(Region { kind, name: name.map(id), clauses, span: Span::default(), body })
}

fn parallel(n: usize, extra: Vec<Clause>, body: Vec<Item>) -> Item {
    let mut clauses = vec![Clause::NumThreads(n)];
    clauses.extend(extra);
    region(RegionKind::Parallel, None, clauses, body)
}

fn critical(name: Option<&str>, body: Vec<Item>) -> Item {
    region(RegionKind::Critical, name, Vec::new(), body)
}

fn barrier() -> Item {
    region(RegionKind::Barrier, None, Vec::new(), Vec::new())
}

fn omp_for(var: &str, lo: i64, hi: i64, clauses: Vec<Clause>, body: Vec<Item>) -> Item {
    let looped = Item::Loop(Loop { var: id(var), lo, hi, span: Span::default(), body });
    region(RegionKind::For, None, clauses, vec![looped])
}

fn sections(secs: Vec<Vec<Item>>) -> Item {
    let body = secs
        .into_iter()
        .map(|items| region(RegionKind::Section, None, Vec::new(), items))
        .collect();
    region(RegionKind::Sections, None, Vec::new(), body)
}

// ---------------------------------------------------------------------
// Families
// ---------------------------------------------------------------------

const COUNTERS: [&str; 6] = ["acc", "count", "hits", "sum", "total", "value"];
const FLAGS: [&str; 4] = ["config", "done", "flag", "ready"];
const LOCKS: [&str; 4] = ["alpha", "beta", "gate", "tally"];

fn pick<'a>(rng: &mut Xoshiro256, pool: &[&'a str]) -> &'a str {
    pool[rng.gen_range_usize(0..pool.len())]
}

fn small(rng: &mut Xoshiro256) -> i64 {
    rng.gen_range_i64(1..6)
}

/// Unprotected shared counter, team of two: every schedule with
/// interleaved read-modify-write races.
fn racy_counter(rng: &mut Xoshiro256) -> Vec<Item> {
    let var = pick(rng, &COUNTERS);
    let body: Vec<Item> =
        (0..rng.gen_range_usize(1..3)).map(|_| incr(var, small(rng))).collect();
    vec![parallel(2, vec![], body)]
}

/// The same counter protected by one critical: clean.
fn protected_counter(rng: &mut Xoshiro256) -> Vec<Item> {
    let var = pick(rng, &COUNTERS);
    let lock = if rng.gen_bool(0.5) { Some(pick(rng, &LOCKS)) } else { None };
    let body: Vec<Item> =
        (0..rng.gen_range_usize(1..3)).map(|_| incr(var, small(rng))).collect();
    vec![parallel(2, vec![], vec![critical(lock, body)])]
}

/// A proper `reduction(+:sum)` worksharing loop: clean.
fn reduction_sum(rng: &mut Xoshiro256) -> Vec<Item> {
    let var = pick(rng, &COUNTERS);
    let hi = rng.gen_range_i64(2..5);
    let red = Clause::Reduction { op: RedOp::Add, var: id(var) };
    let body = vec![incr(var, 1)];
    vec![set(var, 0), parallel(2, vec![], vec![omp_for("i", 0, hi, vec![red], body)])]
}

/// Reduction variable also written as a plain shared variable after
/// the loop: the stray writes race with each other (E003 bypass).
fn reduction_stray(rng: &mut Xoshiro256) -> Vec<Item> {
    let var = pick(rng, &COUNTERS);
    let red = Clause::Reduction { op: RedOp::Add, var: id(var) };
    let inner = vec![omp_for("i", 0, 2, vec![red], vec![incr(var, 1)]), incr(var, small(rng))];
    vec![set(var, 0), parallel(2, vec![], inner)]
}

/// Two sections touching different variables: clean.
fn sections_disjoint(rng: &mut Xoshiro256) -> Vec<Item> {
    let a = small(rng);
    let b = small(rng);
    let secs = vec![vec![incr("head", a)], vec![incr("tail", b)]];
    vec![parallel(2, vec![], vec![sections(secs)])]
}

/// Two sections writing the same variable: they run on different
/// threads concurrently, so every schedule can race.
fn sections_conflict(rng: &mut Xoshiro256) -> Vec<Item> {
    let var = pick(rng, &COUNTERS);
    let secs = vec![vec![incr(var, small(rng))], vec![incr(var, small(rng))]];
    vec![parallel(2, vec![], vec![sections(secs)])]
}

/// `master` initialises a flag that siblings read with no barrier —
/// `master` has no implied barrier, so the read can see the old value.
fn master_unbarriered(rng: &mut Xoshiro256) -> Vec<Item> {
    let flag = pick(rng, &FLAGS);
    let inner = vec![
        region(RegionKind::Master, None, vec![], vec![set(flag, small(rng))]),
        copy("local", flag),
    ];
    vec![set(flag, 0), parallel(2, vec![Clause::Private(vec![id("local")])], inner)]
}

/// The `single` version of the same hand-off: the implied barrier
/// orders the write before every read — clean.
fn single_init(rng: &mut Xoshiro256) -> Vec<Item> {
    let flag = pick(rng, &FLAGS);
    let inner = vec![
        region(RegionKind::Single, None, vec![], vec![set(flag, small(rng))]),
        copy("local", flag),
    ];
    vec![set(flag, 0), parallel(2, vec![Clause::Private(vec![id("local")])], inner)]
}

/// `single nowait` drops the implied barrier and re-creates the race.
fn single_nowait(rng: &mut Xoshiro256) -> Vec<Item> {
    let flag = pick(rng, &FLAGS);
    let inner = vec![
        region(RegionKind::Single, None, vec![Clause::NoWait], vec![set(flag, small(rng))]),
        copy("local", flag),
    ];
    vec![set(flag, 0), parallel(2, vec![Clause::Private(vec![id("local")])], inner)]
}

/// A barrier directly in the parallel body splits private work into
/// phases: clean.
fn barrier_direct(rng: &mut Xoshiro256) -> Vec<Item> {
    let inner = vec![set("local", small(rng)), barrier(), incr("local", small(rng))];
    vec![parallel(2, vec![Clause::Private(vec![id("local")])], inner)]
}

/// BAIT: barrier inside a `for` whose trip count divides evenly over
/// the team — every thread arrives the same number of times, so the
/// program is clean, but the syntactic engine flags E001.
fn bait_even_barrier_for(rng: &mut Xoshiro256) -> Vec<Item> {
    let n = rng.gen_range_usize(1..3);
    let per = rng.gen_range_i64(1..3);
    #[allow(clippy::cast_possible_wrap)]
    let hi = per * n as i64;
    vec![parallel(n, vec![], vec![omp_for("i", 0, hi, vec![], vec![barrier()])])]
}

/// Barrier inside a `for` with an odd split over two threads: thread 0
/// arrives more often than thread 1 — a real deterministic deadlock.
fn barrier_for_odd(rng: &mut Xoshiro256) -> Vec<Item> {
    let hi = 2 * rng.gen_range_i64(1..3) + 1;
    vec![parallel(2, vec![], vec![omp_for("i", 0, hi, vec![], vec![barrier()])])]
}

/// Barrier inside `single`: only the electing thread reaches it.
fn barrier_in_single(_rng: &mut Xoshiro256) -> Vec<Item> {
    let inner = region(RegionKind::Single, None, vec![], vec![barrier()]);
    vec![parallel(2, vec![], vec![inner])]
}

/// BAIT: the same shape under `num_threads(1)` — a team of one always
/// satisfies its own barrier, so the program is clean; the syntactic
/// engine still flags E001.
fn bait_team1_barrier_single(_rng: &mut Xoshiro256) -> Vec<Item> {
    let inner = region(RegionKind::Single, None, vec![], vec![barrier()]);
    vec![parallel(1, vec![], vec![inner])]
}

/// Barrier inside `gui`: only thread 0 (the EDT) reaches it. Not in
/// the classic E001 construct family — this is E006 territory, and the
/// syntactic engine misses it entirely.
fn barrier_in_gui(rng: &mut Xoshiro256) -> Vec<Item> {
    let flag = pick(rng, &FLAGS);
    let inner = region(RegionKind::Gui, None, vec![], vec![set(flag, 1), barrier()]);
    vec![parallel(2, vec![], vec![inner])]
}

/// Two named criticals nested in the same order everywhere: clean.
fn lock_consistent(rng: &mut Xoshiro256) -> Vec<Item> {
    let var = pick(rng, &COUNTERS);
    let (a, b) = ("alpha", "beta");
    let sec =
        |by| vec![critical(Some(a), vec![critical(Some(b), vec![incr(var, by)])])];
    let secs = vec![sec(small(rng)), sec(small(rng))];
    vec![parallel(2, vec![], vec![sections(secs)])]
}

/// The two orders reversed across concurrent sections: a lock-order
/// cycle with a real deadlocking schedule.
fn lock_reversed(rng: &mut Xoshiro256) -> Vec<Item> {
    let var = pick(rng, &COUNTERS);
    let (a, b) = ("alpha", "beta");
    let secs = vec![
        vec![critical(Some(a), vec![critical(Some(b), vec![incr(var, small(rng))])])],
        vec![critical(Some(b), vec![critical(Some(a), vec![incr(var, small(rng))])])],
    ];
    vec![parallel(2, vec![], vec![sections(secs)])]
}

/// BAIT: both orders under `num_threads(1)` — one thread acquires the
/// locks sequentially, so no deadlock is reachable; the syntactic
/// engine still reports the E004 cycle.
fn bait_team1_lock_reversed(rng: &mut Xoshiro256) -> Vec<Item> {
    let var = pick(rng, &COUNTERS);
    let (a, b) = ("alpha", "beta");
    let secs = vec![
        vec![critical(Some(a), vec![critical(Some(b), vec![incr(var, small(rng))])])],
        vec![critical(Some(b), vec![critical(Some(a), vec![incr(var, small(rng))])])],
    ];
    vec![parallel(1, vec![], vec![sections(secs)])]
}

/// A critical whose body conflicts with nothing concurrent: clean
/// dynamically; the new engine adds the W104 style nudge.
fn redundant_critical(rng: &mut Xoshiro256) -> Vec<Item> {
    let lock = pick(rng, &LOCKS);
    let secs = vec![
        vec![critical(Some(lock), vec![incr("head", small(rng))])],
        vec![incr("tail", small(rng))],
    ];
    vec![parallel(2, vec![], vec![sections(secs)])]
}

/// BAIT: a single-iteration worksharing loop writing shared state —
/// only thread 0 ever executes the body, so there is no concurrent
/// pair; the syntactic engine flags W101 anyway.
fn bait_single_iter_for(rng: &mut Xoshiro256) -> Vec<Item> {
    let var = pick(rng, &COUNTERS);
    vec![parallel(2, vec![], vec![omp_for("i", 0, 1, vec![], vec![incr(var, small(rng))])])]
}

type Family = fn(&mut Xoshiro256) -> Vec<Item>;

/// The family table, cycled in order by [`generate`].
const FAMILIES: [(&str, Family); 20] = [
    ("racy-counter", racy_counter),
    ("protected-counter", protected_counter),
    ("reduction-sum", reduction_sum),
    ("reduction-stray", reduction_stray),
    ("sections-disjoint", sections_disjoint),
    ("sections-conflict", sections_conflict),
    ("master-unbarriered", master_unbarriered),
    ("single-init", single_init),
    ("single-nowait", single_nowait),
    ("barrier-direct", barrier_direct),
    ("bait-even-barrier-for", bait_even_barrier_for),
    ("barrier-for-odd", barrier_for_odd),
    ("barrier-in-single", barrier_in_single),
    ("bait-team1-barrier-single", bait_team1_barrier_single),
    ("barrier-in-gui", barrier_in_gui),
    ("lock-consistent", lock_consistent),
    ("lock-reversed", lock_reversed),
    ("bait-team1-lock-reversed", bait_team1_lock_reversed),
    ("redundant-critical", redundant_critical),
    ("bait-single-iter-for", bait_single_iter_for),
];

/// Generate `count` programs from `seed`. Pure: identical arguments
/// yield byte-identical sources. Families are cycled round-robin so
/// every class (racy, deadlocking, clean, bait) is represented in any
/// corpus of at least [`family_count`] programs.
#[must_use]
pub fn generate(seed: u64, count: usize) -> Vec<GenProgram> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..count)
        .map(|index| {
            let (family, build) = FAMILIES[index % FAMILIES.len()];
            let program = Program { items: build(&mut rng) };
            GenProgram { index, family, source: program.pretty() }
        })
        .collect()
}

/// Number of distinct generator families.
#[must_use]
pub fn family_count() -> usize {
    FAMILIES.len()
}

/// A proptest [`Strategy`] over generated programs, so property tests
/// can draw directive programs like any other input.
pub struct ProgramStrategy;

impl Strategy for ProgramStrategy {
    type Value = GenProgram;

    fn generate(&self, rng: &mut TestRng) -> GenProgram {
        let seed = rng.next_u64();
        let index = rng.below(FAMILIES.len() as u64) as usize;
        let mut inner = Xoshiro256::seed_from_u64(seed);
        let (family, build) = FAMILIES[index];
        let program = Program { items: build(&mut inner) };
        GenProgram { index, family, source: program.pretty() }
    }
}

// ---------------------------------------------------------------------
// Cross-validation against the explorer
// ---------------------------------------------------------------------

/// Aggregate agreement between the static engines and the explorer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AgreementStats {
    /// Programs examined.
    pub programs: usize,
    /// Programs whose pretty output failed to re-parse (must be 0).
    pub parse_failures: usize,
    /// Explorer-proved clean (exhausted, race-free, no deadlock).
    pub dynamic_clean: usize,
    /// Explorer witnessed at least one racing schedule.
    pub dynamic_racy: usize,
    /// Explorer witnessed at least one deadlocked schedule.
    pub dynamic_deadlocked: usize,
    /// Exploration budget exhausted before the space was (excluded
    /// from the false-positive denominators).
    pub unexhausted: usize,
    /// Explorer-witnessed races/deadlocks the new engine missed — the
    /// soundness gate; must be 0.
    pub missed_dynamic_findings: usize,
    /// New engine flagged a dynamic-failure code on a proved-clean
    /// program.
    pub false_positives_new: usize,
    /// Syntactic engine ditto — the precision baseline.
    pub false_positives_old: usize,
    /// Total schedules the explorer ran.
    pub schedules_explored: usize,
}

/// One disagreement worth showing a human.
#[derive(Clone, Debug)]
pub struct Mismatch {
    /// Corpus index of the offending program.
    pub index: usize,
    /// Its generator family.
    pub family: &'static str,
    /// `missed-race` | `missed-deadlock` | `false-positive-new`.
    pub kind: &'static str,
    /// What the new engine said.
    pub static_codes: Vec<Code>,
    /// The program text.
    pub source: String,
}

/// Run a generated corpus through both static engines and the
/// exhaustive explorer; tally agreement and collect mismatches.
///
/// The soundness contract: `missed_dynamic_findings == 0` (the new
/// engine never stays silent on an explorer-witnessed race or
/// deadlock). The precision contract:
/// `false_positives_new < false_positives_old`.
#[must_use]
pub fn cross_validate(corpus: &[GenProgram]) -> (AgreementStats, Vec<Mismatch>) {
    let mut stats = AgreementStats::default();
    let mut mismatches = Vec::new();
    for gp in corpus {
        stats.programs += 1;
        let Ok(program) = parse(&gp.source) else {
            stats.parse_failures += 1;
            continue;
        };
        let new_codes: Vec<Code> =
            rules::check(&program).into_iter().map(|d| d.code).collect();
        let old_codes: Vec<Code> =
            rules::check_syntactic(&program).into_iter().map(|d| d.code).collect();
        let report = explore_program(&program, Config::fuzz(&format!("fuzz-{}", gp.index)));
        stats.schedules_explored += report.schedules;

        let racy = !report.race_free();
        let deadlocked = report.deadlocks > 0;
        let clean = report.exhausted && !racy && !deadlocked;
        if racy {
            stats.dynamic_racy += 1;
            if !new_codes.iter().any(|c| RACE_CLASS.contains(c)) {
                stats.missed_dynamic_findings += 1;
                mismatches.push(Mismatch {
                    index: gp.index,
                    family: gp.family,
                    kind: "missed-race",
                    static_codes: new_codes.clone(),
                    source: gp.source.clone(),
                });
            }
        }
        if deadlocked {
            stats.dynamic_deadlocked += 1;
            if !new_codes.iter().any(|c| DEADLOCK_CLASS.contains(c)) {
                stats.missed_dynamic_findings += 1;
                mismatches.push(Mismatch {
                    index: gp.index,
                    family: gp.family,
                    kind: "missed-deadlock",
                    static_codes: new_codes.clone(),
                    source: gp.source.clone(),
                });
            }
        }
        if clean {
            stats.dynamic_clean += 1;
            if new_codes.iter().any(|c| FP_CLASS_NEW.contains(c)) {
                stats.false_positives_new += 1;
                mismatches.push(Mismatch {
                    index: gp.index,
                    family: gp.family,
                    kind: "false-positive-new",
                    static_codes: new_codes.clone(),
                    source: gp.source.clone(),
                });
            }
            if old_codes.iter().any(|c| FP_CLASS_OLD.contains(c)) {
                stats.false_positives_old += 1;
            }
        } else if !racy && !deadlocked {
            stats.unexhausted += 1;
        }
    }
    (stats, mismatches)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42, 60);
        let b = generate(42, 60);
        assert_eq!(a.len(), 60);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source, "family {} diverged", x.family);
            assert_eq!(x.family, y.family);
        }
        let c = generate(43, 60);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.source != y.source),
            "different seeds should vary the corpus"
        );
    }

    #[test]
    fn generated_sources_reparse_to_a_pretty_fixed_point() {
        for gp in generate(7, 2 * family_count()) {
            let prog = parse(&gp.source)
                .unwrap_or_else(|e| panic!("{} #{} must parse: {e:?}", gp.family, gp.index));
            assert_eq!(prog.pretty(), gp.source, "{} #{}", gp.family, gp.index);
        }
    }

    #[test]
    fn every_family_is_emitted_per_cycle() {
        let corpus = generate(1, family_count());
        let names: std::collections::BTreeSet<&str> =
            corpus.iter().map(|g| g.family).collect();
        assert_eq!(names.len(), family_count());
    }

    #[test]
    fn bait_families_trip_only_the_syntactic_engine() {
        // The three deterministic baits: old engine flags a dynamic
        // failure, new engine stays silent (statically checked here;
        // the explorer agreement is pinned in tests/analyze.rs).
        for gp in generate(3, family_count()) {
            if !gp.family.starts_with("bait-") {
                continue;
            }
            let prog = parse(&gp.source).expect("bait parses");
            let new: Vec<Code> = rules::check(&prog).iter().map(|d| d.code).collect();
            let old: Vec<Code> =
                rules::check_syntactic(&prog).iter().map(|d| d.code).collect();
            assert!(
                old.iter().any(|c| FP_CLASS_OLD.contains(c)),
                "{}: bait should trip the syntactic engine, got {old:?}",
                gp.family
            );
            assert!(
                !new.iter().any(|c| FP_CLASS_NEW.contains(c)),
                "{}: bait should not trip the MHP engine, got {new:?}",
                gp.family
            );
        }
    }

    #[test]
    fn strategy_draws_parseable_programs() {
        let mut rng = TestRng::with_seed(99);
        for _ in 0..20 {
            let gp = Strategy::generate(&ProgramStrategy, &mut rng);
            assert!(parse(&gp.source).is_ok(), "{}: {}", gp.family, gp.source);
        }
    }
}
