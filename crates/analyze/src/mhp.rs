//! May-Happen-in-Parallel analysis over the region tree.
//!
//! The directive language is branch-free and loop bounds are literals,
//! so the program has exactly one control-flow path per thread. That
//! lets the analysis be *exact* instead of a lattice approximation: we
//! symbolically execute every thread of every team with the same
//! lowering the explorer bridge uses (cyclic `index % num_threads`
//! worksharing splits, thread 0 for `single`/`master`/`gui`, one team
//! barrier per parallel region serving every barrier point, reduction
//! accumulation in a private frame folded under an internal `red:`
//! lock) and record an event stream:
//!
//! * **shared accesses** — variable, read/write, the span, the held
//!   [`Lockset`], and a stack of *context frames* `(par, tid, phase)`;
//! * **barrier arrivals** — per `(parallel instance, tid)`, with the
//!   locks held at the arrival and the locks acquired since the
//!   previous arrival;
//! * **lock-nesting edges** — `(outer, inner)` acquisitions with their
//!   context frames, feeding E004 cycle detection.
//!
//! `phase` counts barrier arrivals: because the whole team shares one
//! barrier object, episode `k` on one thread pairs with episode `k` on
//! every other, so **two events may happen in parallel iff, at the
//! first context frame where they diverge, they are in the same
//! parallel instance, on different threads, in the same phase** —
//! see [`may_happen_in_parallel`]. Everything else (same thread,
//! different phases, or sequentially-executed sibling instances) is
//! ordered.
//!
//! Barrier deadlocks fall out of the arrival records (see
//! [`barrier_deadlocks`]): a team deadlocks deterministically iff
//! per-thread arrival counts differ (someone waits at the region join
//! while the rest wait at the barrier), or some episode has one thread
//! arriving while *holding* a lock another thread still needs to
//! *acquire* before its own arrival.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Clause, Item, Loop, Program, Region, RegionKind, Span};
use crate::lockset::Lockset;

/// Team size when a parallel region has no `num_threads` clause
/// (mirrors the bridge).
pub const DEFAULT_TEAM: usize = 2;

/// Symbolic-execution step budget. Loop bounds are literals, so this
/// only trips on pathological hand-written inputs; when it does, the
/// model is flagged [`Model::truncated`] and rule evaluation falls
/// back to the conservative syntactic engine.
pub const STEP_BUDGET: usize = 20_000;

/// One level of execution context: which dynamic parallel-region
/// instance, which thread of its team, and how many barrier episodes
/// that thread has completed at this level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadFrame {
    /// Dynamic parallel-region instance id (fresh per entry, so a
    /// parallel region inside a loop yields sequential instances).
    pub par: usize,
    /// Thread id within that instance's team.
    pub tid: usize,
    /// Barrier-arrival count at event time.
    pub phase: usize,
}

/// A shared-memory access event.
#[derive(Clone, Debug)]
pub struct Access {
    /// Variable name (resolved shared — private accesses never emit).
    pub var: String,
    /// Write (`true`) or read.
    pub write: bool,
    /// Statement span for writes, identifier span for reads.
    pub span: Span,
    /// Context frames, outermost first.
    pub frames: Vec<ThreadFrame>,
    /// Locks held on the path to this access.
    pub locks: Lockset,
    /// Spans of the lexically enclosing `critical` regions.
    pub criticals: Vec<Span>,
    /// Span of the innermost enclosing `master` region, if any.
    pub master: Option<Span>,
    /// Global event sequence number (distinguishes instances).
    pub seq: usize,
}

/// One barrier arrival by one thread of one team instance.
#[derive(Clone, Debug)]
pub struct Arrival {
    /// Parallel instance id.
    pub par: usize,
    /// Arriving thread.
    pub tid: usize,
    /// Arrival index for this thread (0-based episode number).
    pub index: usize,
    /// Span of the barrier point (explicit `barrier` statement, or the
    /// worksharing/`single` directive for its implied join).
    pub span: Span,
    /// Locks held while waiting at this barrier.
    pub held: Lockset,
    /// Lock keys acquired (even if since released) between the
    /// previous arrival and this one.
    pub acquired: BTreeSet<String>,
    /// Enclosing constructs below the parallel region at the arrival
    /// point, innermost first.
    pub blockers: Vec<RegionKind>,
}

/// A lock-nesting edge: `inner` acquired while `outer` was held.
#[derive(Clone, Debug)]
pub struct LockEdge {
    /// Already-held lock key.
    pub outer: String,
    /// Newly-acquired lock key.
    pub inner: String,
    /// Span of the inner acquisition site.
    pub span: Span,
    /// Context frames of the acquiring thread.
    pub frames: Vec<ThreadFrame>,
}

/// A `critical` region re-entered while its own lock was already held.
#[derive(Clone, Debug)]
pub struct SelfNest {
    /// The lock key.
    pub key: String,
    /// Span of the inner (re-entrant) directive.
    pub span: Span,
}

/// One dynamic parallel-region instance.
#[derive(Clone, Debug)]
pub struct TeamInstance {
    /// Instance id.
    pub par: usize,
    /// Directive span.
    pub span: Span,
    /// Team size.
    pub team: usize,
}

/// A lexical `critical` region the execution reached.
#[derive(Clone, Debug)]
pub struct CriticalSite {
    /// Directive span (identifies the lexical region).
    pub span: Span,
    /// Its lock key.
    pub key: String,
}

/// The full event model of one program.
#[derive(Clone, Debug, Default)]
pub struct Model {
    /// Shared accesses in execution order.
    pub accesses: Vec<Access>,
    /// Barrier arrivals in execution order.
    pub arrivals: Vec<Arrival>,
    /// Lock-nesting edges.
    pub lock_edges: Vec<LockEdge>,
    /// Re-entrant critical acquisitions.
    pub self_nests: Vec<SelfNest>,
    /// Every dynamic parallel instance.
    pub teams: Vec<TeamInstance>,
    /// Every lexical critical reached (may repeat across instances).
    pub critical_sites: Vec<CriticalSite>,
    /// Step budget exhausted — the model is incomplete and rule
    /// evaluation must not trust it.
    pub truncated: bool,
}

/// May two events execute concurrently? Decided at the first context
/// frame where the stacks diverge: same parallel instance + different
/// thread + same barrier phase ⇒ yes; anything else (same thread,
/// phase skew on one thread, or distinct sequential instances) ⇒ the
/// events are ordered. A stack that is a prefix of the other belongs
/// to the spawning thread, which is ordered against its team by
/// spawn/join edges.
#[must_use]
pub fn may_happen_in_parallel(a: &[ThreadFrame], b: &[ThreadFrame]) -> bool {
    for (fa, fb) in a.iter().zip(b.iter()) {
        if fa.par != fb.par {
            return false;
        }
        if fa.tid != fb.tid {
            return fa.phase == fb.phase;
        }
        if fa.phase != fb.phase {
            return false;
        }
    }
    false
}

/// Convenience: MHP over two accesses.
#[must_use]
pub fn accesses_mhp(a: &Access, b: &Access) -> bool {
    may_happen_in_parallel(&a.frames, &b.frames)
}

/// The construct family the classic structural E001 covered. Returns
/// the innermost such construct among `blockers` (innermost-first);
/// `None` means the deadlock is outside the old rule's reach (e.g. a
/// barrier under `gui`) and reports as E006.
#[must_use]
pub fn classic_blocker(blockers: &[RegionKind]) -> Option<RegionKind> {
    blockers.iter().copied().find(|k| {
        matches!(
            k,
            RegionKind::For
                | RegionKind::Sections
                | RegionKind::Section
                | RegionKind::Single
                | RegionKind::Master
                | RegionKind::Critical
        )
    })
}

/// A proved deterministic barrier deadlock in one team instance.
#[derive(Clone, Debug)]
pub struct Deadlock {
    /// The team instance.
    pub par: usize,
    /// Anchor span: the unbalanced barrier point (count mismatch) or
    /// the arrival where a needed lock is held (lock witness).
    pub span: Span,
    /// Constructs enclosing the anchor, innermost first.
    pub blockers: Vec<RegionKind>,
    /// How many team threads reach the anchor span at all.
    pub arriving: usize,
    /// Team size.
    pub team: usize,
    /// For lock-at-barrier deadlocks: the witnessing lock key.
    pub lock: Option<String>,
}

/// Detect deterministic barrier deadlocks per team instance.
///
/// * **Count mismatch** — threads arrive at the (single, shared) team
///   barrier different numbers of times: the low-count thread reaches
///   the region join while the rest wait forever. Anchored at the
///   first span (in source order) whose per-thread visit counts
///   disagree — that lexical barrier is the asymmetry.
/// * **Lock held at barrier** — counts match, but in some episode a
///   thread waits while holding a lock that another thread must still
///   acquire before its own arrival: the barrier can never fill.
#[must_use]
pub fn barrier_deadlocks(model: &Model) -> Vec<Deadlock> {
    let mut by_par: BTreeMap<usize, Vec<&Arrival>> = BTreeMap::new();
    for a in &model.arrivals {
        by_par.entry(a.par).or_default().push(a);
    }
    let mut out = Vec::new();
    for team in &model.teams {
        let Some(arrivals) = by_par.get(&team.par) else { continue };
        let mut counts = vec![0usize; team.team];
        let mut per_tid: Vec<Vec<&Arrival>> = vec![Vec::new(); team.team];
        for a in arrivals {
            counts[a.tid] += 1;
            per_tid[a.tid].push(a);
        }
        if counts.iter().any(|c| *c != counts[0]) {
            // Per-span visit counts: the first unbalanced span is the
            // culprit barrier (one always exists when totals differ).
            let mut per_span: BTreeMap<Span, Vec<usize>> = BTreeMap::new();
            let mut blockers_at: BTreeMap<Span, Vec<RegionKind>> = BTreeMap::new();
            for a in arrivals {
                per_span.entry(a.span).or_insert_with(|| vec![0; team.team])[a.tid] += 1;
                blockers_at.entry(a.span).or_insert_with(|| a.blockers.clone());
            }
            for (span, visits) in &per_span {
                if visits.iter().any(|v| *v != visits[0]) {
                    out.push(Deadlock {
                        par: team.par,
                        span: *span,
                        blockers: blockers_at[span].clone(),
                        arriving: visits.iter().filter(|v| **v > 0).count(),
                        team: team.team,
                        lock: None,
                    });
                    break;
                }
            }
            continue;
        }
        // Counts agree: pair episodes positionally and look for a lock
        // held across one thread's arrival that another thread still
        // needs on the way to its paired arrival.
        'episodes: for k in 0..counts[0] {
            for (i, holder) in per_tid.iter().enumerate() {
                for (j, needer) in per_tid.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let held = &holder[k].held;
                    if let Some(key) =
                        needer[k].acquired.iter().find(|key| held.contains(key))
                    {
                        out.push(Deadlock {
                            par: team.par,
                            span: holder[k].span,
                            blockers: holder[k].blockers.clone(),
                            arriving: team.team,
                            team: team.team,
                            lock: Some(key.clone()),
                        });
                        break 'episodes;
                    }
                }
            }
        }
    }
    out
}

/// Build the event model by symbolically executing `program`.
#[must_use]
pub fn model(program: &Program) -> Model {
    let mut walker = Walker {
        model: Model::default(),
        next_par: 0,
        next_acq: 0,
        next_seq: 0,
        steps: 0,
    };
    let mut ctx = Ctx::serial();
    walker.exec_items(&program.items, &mut ctx);
    walker.model
}

/// Per-thread execution context (mirrors the bridge's `SimEnv`).
#[derive(Clone)]
struct Ctx {
    tid: usize,
    n: usize,
    frames: Vec<ThreadFrame>,
    locks: Lockset,
    acquired: BTreeSet<String>,
    constructs: Vec<RegionKind>,
    criticals: Vec<Span>,
    master: Option<Span>,
    privates: Vec<BTreeSet<String>>,
}

impl Ctx {
    fn serial() -> Self {
        Self {
            tid: 0,
            n: 1,
            frames: Vec::new(),
            locks: Lockset::new(),
            acquired: BTreeSet::new(),
            constructs: Vec::new(),
            criticals: Vec::new(),
            master: None,
            privates: Vec::new(),
        }
    }

    fn is_private(&self, var: &str) -> bool {
        self.privates.iter().any(|frame| frame.contains(var))
    }
}

struct Walker {
    model: Model,
    next_par: usize,
    next_acq: u64,
    next_seq: usize,
    steps: usize,
}

impl Walker {
    fn tick(&mut self) -> bool {
        self.steps += 1;
        if self.steps > STEP_BUDGET {
            self.model.truncated = true;
            return false;
        }
        true
    }

    fn record_access(&mut self, ctx: &Ctx, var: &str, write: bool, span: Span) {
        if ctx.is_private(var) {
            return;
        }
        self.model.accesses.push(Access {
            var: var.to_string(),
            write,
            span,
            frames: ctx.frames.clone(),
            locks: ctx.locks.clone(),
            criticals: ctx.criticals.clone(),
            master: ctx.master,
            seq: self.next_seq,
        });
        self.next_seq += 1;
    }

    fn barrier_arrive(&mut self, ctx: &mut Ctx, span: Span) {
        let Some(top) = ctx.frames.last_mut() else { return };
        let blockers: Vec<RegionKind> = ctx.constructs.iter().rev().copied().collect();
        self.model.arrivals.push(Arrival {
            par: top.par,
            tid: top.tid,
            index: top.phase,
            span,
            held: ctx.locks.clone(),
            acquired: std::mem::take(&mut ctx.acquired),
            blockers,
        });
        top.phase += 1;
    }

    /// Acquire `key`, recording nesting edges against everything held.
    fn lock_acquire(&mut self, ctx: &mut Ctx, key: &str, span: Span) {
        for outer in ctx.locks.keys() {
            self.model.lock_edges.push(LockEdge {
                outer: outer.to_string(),
                inner: key.to_string(),
                span,
                frames: ctx.frames.clone(),
            });
        }
        ctx.locks.acquire(key, self.next_acq);
        self.next_acq += 1;
        ctx.acquired.insert(key.to_string());
    }

    fn exec_items(&mut self, items: &[Item], ctx: &mut Ctx) {
        for item in items {
            if !self.tick() {
                return;
            }
            match item {
                Item::Assign(a) => {
                    a.expr.each_var(&mut |id| {
                        self.record_access(ctx, &id.name, false, id.span);
                    });
                    self.record_access(ctx, &a.target.name, true, a.span);
                }
                Item::Loop(l) => self.exec_loop(l, 1, 0, ctx),
                Item::Region(r) => self.exec_region(r, ctx),
            }
        }
    }

    fn exec_loop(&mut self, l: &Loop, stride: usize, offset: usize, ctx: &mut Ctx) {
        ctx.privates.push(BTreeSet::from([l.var.name.clone()]));
        for k in l.lo..l.hi {
            if (k - l.lo) as usize % stride != offset {
                continue;
            }
            if !self.tick() {
                break;
            }
            self.exec_items(&l.body, ctx);
        }
        ctx.privates.pop();
    }

    fn exec_region(&mut self, r: &Region, ctx: &mut Ctx) {
        match r.kind {
            RegionKind::Parallel => self.exec_parallel(r, ctx),
            RegionKind::For => self.exec_for(r, ctx),
            RegionKind::Sections => {
                ctx.constructs.push(RegionKind::Sections);
                for (k, item) in r.body.iter().enumerate() {
                    if k % ctx.n != ctx.tid {
                        continue;
                    }
                    if let Item::Region(sec) = item {
                        if sec.kind == RegionKind::Section {
                            ctx.constructs.push(RegionKind::Section);
                            self.exec_items(&sec.body, ctx);
                            ctx.constructs.pop();
                            continue;
                        }
                    }
                    self.exec_items(std::slice::from_ref(item), ctx);
                }
                ctx.constructs.pop();
                if !r.nowait() {
                    self.barrier_arrive(ctx, r.span);
                }
            }
            RegionKind::Section => {
                // Stray section (statically E005): the bridge runs it
                // as a plain block on every thread; mirror that.
                ctx.constructs.push(RegionKind::Section);
                self.exec_items(&r.body, ctx);
                ctx.constructs.pop();
            }
            RegionKind::Single => {
                ctx.constructs.push(RegionKind::Single);
                if ctx.tid == 0 {
                    self.exec_items(&r.body, ctx);
                }
                ctx.constructs.pop();
                if !r.nowait() {
                    self.barrier_arrive(ctx, r.span);
                }
            }
            RegionKind::Master | RegionKind::Gui => {
                ctx.constructs.push(r.kind);
                if ctx.tid == 0 {
                    let saved = ctx.master;
                    if r.kind == RegionKind::Master {
                        ctx.master = Some(r.span);
                    }
                    self.exec_items(&r.body, ctx);
                    ctx.master = saved;
                }
                ctx.constructs.pop();
            }
            RegionKind::Critical => {
                let name = r.name.as_ref().map(|n| n.name.as_str()).unwrap_or("");
                let key = format!("lock:{name}");
                self.model.critical_sites.push(CriticalSite { span: r.span, key: key.clone() });
                let reentrant = ctx.locks.contains(&key);
                if reentrant {
                    self.model.self_nests.push(SelfNest { key: key.clone(), span: r.span });
                } else {
                    self.lock_acquire(ctx, &key, r.span);
                }
                ctx.constructs.push(RegionKind::Critical);
                ctx.criticals.push(r.span);
                self.exec_items(&r.body, ctx);
                ctx.criticals.pop();
                ctx.constructs.pop();
                if !reentrant {
                    ctx.locks.release(&key);
                }
            }
            RegionKind::Barrier => self.barrier_arrive(ctx, r.span),
        }
    }

    fn exec_for(&mut self, r: &Region, ctx: &mut Ctx) {
        ctx.constructs.push(RegionKind::For);
        let reds: Vec<String> = r.reductions().map(|(_, var)| var.name.clone()).collect();
        ctx.privates.push(reds.iter().cloned().collect());
        if let Some(Item::Loop(l)) = r.body.first() {
            self.exec_loop(l, ctx.n, ctx.tid, ctx);
        }
        ctx.privates.pop();
        // Fold each accumulator into the shared cell under the
        // internal combiner lock, exactly like the bridge.
        for var in &reds {
            let key = format!("red:{var}");
            self.lock_acquire(ctx, &key, r.span);
            self.record_access(ctx, var, false, r.span);
            self.record_access(ctx, var, true, r.span);
            ctx.locks.release(&key);
        }
        ctx.constructs.pop();
        if !r.nowait() {
            self.barrier_arrive(ctx, r.span);
        }
    }

    fn exec_parallel(&mut self, r: &Region, ctx: &mut Ctx) {
        let n = r.num_threads().unwrap_or(DEFAULT_TEAM);
        // Firstprivate capture: the spawning context reads the shared
        // cell once, before the team exists.
        let mut privates = BTreeSet::new();
        for clause in &r.clauses {
            match clause {
                Clause::Private(ids) => {
                    for id in ids {
                        privates.insert(id.name.clone());
                    }
                }
                Clause::FirstPrivate(ids) => {
                    for id in ids {
                        self.record_access(ctx, &id.name, false, id.span);
                        privates.insert(id.name.clone());
                    }
                }
                _ => {}
            }
        }
        let par = self.next_par;
        self.next_par += 1;
        self.model.teams.push(TeamInstance { par, span: r.span, team: n });
        for tid in 0..n {
            let mut frames = ctx.frames.clone();
            frames.push(ThreadFrame { par, tid, phase: 0 });
            let mut child = Ctx {
                tid,
                n,
                frames,
                // The spawner's held locks transfer (it holds them for
                // the team's whole lifetime) — with their original
                // acquisition ids, so siblings don't count them as
                // mutual exclusion against each other.
                locks: ctx.locks.clone(),
                acquired: BTreeSet::new(),
                constructs: Vec::new(),
                criticals: ctx.criticals.clone(),
                master: None,
                // The bridge resets the frame stack on spawn: outer
                // privates and loop variables do NOT shadow inside a
                // nested team.
                privates: vec![privates.clone()],
            };
            self.exec_items(&r.body, &mut child);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn model_of(src: &str) -> Model {
        model(&parse(src).expect("test source parses"))
    }

    fn frames(spec: &[(usize, usize, usize)]) -> Vec<ThreadFrame> {
        spec.iter().map(|&(par, tid, phase)| ThreadFrame { par, tid, phase }).collect()
    }

    #[test]
    fn mhp_predicate_truth_table() {
        // Different threads, same instance, same phase: concurrent.
        assert!(may_happen_in_parallel(&frames(&[(0, 0, 1)]), &frames(&[(0, 1, 1)])));
        // Phase skew: ordered by the barrier.
        assert!(!may_happen_in_parallel(&frames(&[(0, 0, 0)]), &frames(&[(0, 1, 1)])));
        // Same thread: program order.
        assert!(!may_happen_in_parallel(&frames(&[(0, 0, 0)]), &frames(&[(0, 0, 0)])));
        // Sequential instances of the same lexical region.
        assert!(!may_happen_in_parallel(&frames(&[(0, 0, 0)]), &frames(&[(1, 1, 0)])));
        // Serial prefix vs team member: spawn/join ordered.
        assert!(!may_happen_in_parallel(&frames(&[]), &frames(&[(0, 1, 0)])));
        // Sibling thread vs a nested team under the other sibling.
        assert!(may_happen_in_parallel(
            &frames(&[(0, 1, 0)]),
            &frames(&[(0, 0, 0), (1, 0, 0)])
        ));
    }

    #[test]
    fn barrier_splits_accesses_into_phases() {
        let m = model_of(
            "//#omp parallel num_threads(2)\n{\n    x = 1;\n    //#omp barrier\n    y = x;\n}\n",
        );
        let writes: Vec<&Access> =
            m.accesses.iter().filter(|a| a.var == "x" && a.write).collect();
        assert_eq!(writes.len(), 2);
        assert!(accesses_mhp(writes[0], writes[1]), "same phase, different tids");
        let reads: Vec<&Access> =
            m.accesses.iter().filter(|a| a.var == "x" && !a.write).collect();
        assert_eq!(reads.len(), 2);
        for r in &reads {
            assert_eq!(r.frames.last().unwrap().phase, 1);
            for w in &writes {
                assert!(!accesses_mhp(r, w), "barrier orders phase 0 against phase 1");
            }
        }
    }

    #[test]
    fn worksharing_split_is_cyclic() {
        let m = model_of(
            "//#omp parallel num_threads(2)\n{\n    //#omp for\n    for i in 0..4 {\n        x = i;\n    }\n}\n",
        );
        let writes: Vec<&Access> = m.accesses.iter().filter(|a| a.write).collect();
        // 4 iterations split 2/2; the loop variable itself is private.
        assert_eq!(writes.len(), 4);
        let tid0 = writes.iter().filter(|a| a.frames.last().unwrap().tid == 0).count();
        assert_eq!(tid0, 2);
    }

    #[test]
    fn gui_barrier_is_a_non_classic_deadlock() {
        let m = model_of(
            "//#omp parallel num_threads(2)\n{\n    //#omp gui\n    {\n        //#omp barrier\n    }\n}\n",
        );
        let dls = barrier_deadlocks(&m);
        assert_eq!(dls.len(), 1);
        assert_eq!(dls[0].arriving, 1);
        assert_eq!(dls[0].team, 2);
        assert_eq!(classic_blocker(&dls[0].blockers), None, "gui is outside the E001 family");
    }

    #[test]
    fn lock_held_at_barrier_is_detected() {
        let m = model_of(
            "//#omp parallel num_threads(2)\n{\n    //#omp critical gate\n    {\n        //#omp barrier\n    }\n}\n",
        );
        let dls = barrier_deadlocks(&m);
        assert_eq!(dls.len(), 1);
        assert_eq!(dls[0].lock.as_deref(), Some("lock:gate"));
        assert_eq!(classic_blocker(&dls[0].blockers), Some(RegionKind::Critical));
    }

    #[test]
    fn even_split_barrier_in_for_is_deadlock_free() {
        // 4 iterations over 2 threads: every thread hits the barrier
        // twice — provably balanced, no deadlock (the old syntactic
        // engine flagged this E001).
        let m = model_of(
            "//#omp parallel num_threads(2)\n{\n    //#omp for\n    for i in 0..4 {\n        //#omp barrier\n    }\n}\n",
        );
        assert!(barrier_deadlocks(&m).is_empty());
    }

    #[test]
    fn team_of_one_never_deadlocks() {
        let m = model_of(
            "//#omp parallel num_threads(1)\n{\n    //#omp single\n    {\n        //#omp barrier\n    }\n}\n",
        );
        assert!(barrier_deadlocks(&m).is_empty());
    }

    #[test]
    fn critical_acquisitions_are_distinct_per_thread() {
        let m = model_of(
            "//#omp parallel num_threads(2)\n{\n    //#omp critical tally\n    {\n        count = count + 1;\n    }\n}\n",
        );
        let writes: Vec<&Access> = m.accesses.iter().filter(|a| a.write).collect();
        assert_eq!(writes.len(), 2);
        assert!(accesses_mhp(writes[0], writes[1]));
        assert!(
            writes[0].locks.excludes(&writes[1].locks),
            "different acquisitions of one lock mutually exclude"
        );
    }

    #[test]
    fn step_budget_marks_truncation() {
        let m = model_of("for i in 0..30000 {\n    x = i;\n}\n");
        assert!(m.truncated);
    }
}
