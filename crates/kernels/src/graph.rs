//! Graph processing: CSR graphs, BFS and PageRank.
//!
//! The "graph processing" kernel family of project 3. Graphs are
//! stored in compressed-sparse-row form; synthetic generators provide
//! deterministic workloads (uniform random, ring lattice, 2-D grid).

use pyjama::{Schedule, SumRed, Team};

/// A directed graph in CSR (compressed sparse row) form.
#[derive(Clone, Debug)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl CsrGraph {
    /// Build from an edge list over `n` vertices. Parallel edges are
    /// kept; self-loops allowed.
    #[must_use]
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut degree = vec![0usize; n];
        for &(u, _) in edges {
            degree[u as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; edges.len()];
        for &(u, v) in edges {
            targets[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
        }
        Self { offsets, targets }
    }

    /// Uniform random digraph: `n` vertices, `m` edges, deterministic
    /// per seed.
    #[must_use]
    pub fn random(n: usize, m: usize, seed: u64) -> Self {
        let mut rng = parc_util::rng::Xoshiro256::seed_from_u64(seed);
        let edges: Vec<(u32, u32)> = (0..m)
            .map(|_| {
                (
                    rng.next_below(n as u64) as u32,
                    rng.next_below(n as u64) as u32,
                )
            })
            .collect();
        Self::from_edges(n, &edges)
    }

    /// Bidirectional ring over `n` vertices.
    #[must_use]
    pub fn ring(n: usize) -> Self {
        let mut edges = Vec::with_capacity(2 * n);
        for i in 0..n as u32 {
            let next = (i + 1) % n as u32;
            edges.push((i, next));
            edges.push((next, i));
        }
        Self::from_edges(n, &edges)
    }

    /// 4-connected `w × h` grid (undirected: both edge directions).
    #[must_use]
    pub fn grid(w: usize, h: usize) -> Self {
        let idx = |x: usize, y: usize| (y * w + x) as u32;
        let mut edges = Vec::new();
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    edges.push((idx(x, y), idx(x + 1, y)));
                    edges.push((idx(x + 1, y), idx(x, y)));
                }
                if y + 1 < h {
                    edges.push((idx(x, y), idx(x, y + 1)));
                    edges.push((idx(x, y + 1), idx(x, y)));
                }
            }
        }
        Self::from_edges(w * h, &edges)
    }

    /// Vertex count.
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Edge count.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbours of vertex `u`.
    #[must_use]
    pub fn neighbours(&self, u: usize) -> &[u32] {
        &self.targets[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Out-degree of vertex `u`.
    #[must_use]
    pub fn degree(&self, u: usize) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }
}

/// Sequential BFS from `source`; returns per-vertex level
/// (`u32::MAX` = unreachable).
#[must_use]
pub fn bfs_seq(g: &CsrGraph, source: usize) -> Vec<u32> {
    let n = g.num_vertices();
    let mut level = vec![u32::MAX; n];
    level[source] = 0;
    let mut frontier = vec![source as u32];
    let mut depth = 0u32;
    while !frontier.is_empty() {
        depth += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in g.neighbours(u as usize) {
                if level[v as usize] == u32::MAX {
                    level[v as usize] = depth;
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    level
}

/// Level-synchronous parallel BFS: each frontier is expanded by a
/// pyjama worksharing loop; discovery uses atomic CAS on the level
/// array so each vertex joins exactly one next-frontier.
#[must_use]
pub fn bfs_par(team: &Team, g: &CsrGraph, source: usize) -> Vec<u32> {
    use std::sync::atomic::{AtomicU32, Ordering};
    let n = g.num_vertices();
    let level: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    level[source].store(0, Ordering::Relaxed);
    let mut frontier = vec![source as u32];
    let mut depth = 0u32;
    while !frontier.is_empty() {
        depth += 1;
        let frontier_ref = &frontier;
        let level_ref = &level;
        let next = team.par_reduce(
            0..frontier.len(),
            Schedule::Dynamic(64),
            &pyjama::VecConcat::new(),
            move |fi| {
                let u = frontier_ref[fi] as usize;
                let mut found = Vec::new();
                for &v in g.neighbours(u) {
                    if level_ref[v as usize]
                        .compare_exchange(u32::MAX, depth, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        found.push(v);
                    }
                }
                found
            },
        );
        frontier = next;
    }
    level.into_iter().map(AtomicU32::into_inner).collect()
}

/// Sequential PageRank with damping `d`; returns ranks summing ~1.
/// Dangling-vertex mass is redistributed uniformly.
#[must_use]
pub fn pagerank_seq(g: &CsrGraph, d: f64, iters: usize) -> Vec<f64> {
    let n = g.num_vertices();
    assert!(n > 0);
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0; n];
    for _ in 0..iters {
        let dangling: f64 = (0..n).filter(|&u| g.degree(u) == 0).map(|u| rank[u]).sum();
        let base = (1.0 - d) / n as f64 + d * dangling / n as f64;
        next.iter_mut().for_each(|x| *x = base);
        for (u, r) in rank.iter().enumerate() {
            let deg = g.degree(u);
            if deg > 0 {
                let share = d * r / deg as f64;
                for &v in g.neighbours(u) {
                    next[v as usize] += share;
                }
            }
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Parallel PageRank in pull form: each vertex gathers from its
/// in-neighbours, so the update loop is write-disjoint and workshares
/// cleanly. Requires the transpose graph (in-edges), which the
/// function builds once.
#[must_use]
pub fn pagerank_par(team: &Team, g: &CsrGraph, d: f64, iters: usize) -> Vec<f64> {
    let n = g.num_vertices();
    assert!(n > 0);
    // Transpose: in-edges of each vertex.
    let mut edges_t = Vec::with_capacity(g.num_edges());
    for u in 0..n {
        for &v in g.neighbours(u) {
            edges_t.push((v, u as u32));
        }
    }
    let gt = CsrGraph::from_edges(n, &edges_t);
    let out_degree: Vec<usize> = (0..n).map(|u| g.degree(u)).collect();
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0; n];
    for _ in 0..iters {
        let rank_ref = &rank;
        let deg_ref = &out_degree;
        let dangling = team.par_reduce(0..n, Schedule::Static, &SumRed, move |u| {
            if deg_ref[u] == 0 {
                rank_ref[u]
            } else {
                0.0
            }
        });
        let base = (1.0 - d) / n as f64 + d * dangling / n as f64;
        struct OutPtr(*mut f64);
        unsafe impl Sync for OutPtr {}
        let out = OutPtr(next.as_mut_ptr());
        let out_ref = &out;
        let gt_ref = &gt;
        team.for_each(0..n, Schedule::Dynamic(128), move |v| {
            let mut acc = base;
            for &u in gt_ref.neighbours(v) {
                acc += d * rank_ref[u as usize] / deg_ref[u as usize] as f64;
            }
            // SAFETY: each v written by exactly one thread.
            unsafe {
                *out_ref.0.add(v) = acc;
            }
        });
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Sequential connected components on the *undirected closure* of the
/// graph (edges treated as bidirectional): label propagation until a
/// fixpoint; returns per-vertex component label = smallest vertex id
/// in the component.
#[must_use]
pub fn components_seq(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut label: Vec<u32> = (0..n as u32).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for u in 0..n {
            for &v in g.neighbours(u) {
                let (lu, lv) = (label[u], label[v as usize]);
                if lu < lv {
                    label[v as usize] = lu;
                    changed = true;
                } else if lv < lu {
                    label[u] = lv;
                    changed = true;
                }
            }
        }
    }
    label
}

/// Parallel label propagation with pyjama: each sweep workshares the
/// vertex loop, propagating labels through atomic min-updates; sweeps
/// repeat until none changes. Produces the same labels as
/// [`components_seq`] (the fixpoint is unique).
#[must_use]
pub fn components_par(team: &Team, g: &CsrGraph) -> Vec<u32> {
    use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
    let n = g.num_vertices();
    let label: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let changed = AtomicBool::new(true);
    while changed.swap(false, Ordering::AcqRel) {
        let label_ref = &label;
        let changed_ref = &changed;
        team.for_each(0..n, Schedule::Dynamic(256), move |u| {
            for &v in g.neighbours(u) {
                let v = v as usize;
                let lu = label_ref[u].load(Ordering::Relaxed);
                let lv = label_ref[v].load(Ordering::Relaxed);
                if lu < lv {
                    if label_ref[v].fetch_min(lu, Ordering::Relaxed) > lu {
                        changed_ref.store(true, Ordering::Relaxed);
                    }
                } else if lv < lu && label_ref[u].fetch_min(lv, Ordering::Relaxed) > lv {
                    changed_ref.store(true, Ordering::Relaxed);
                }
            }
        });
    }
    label.into_iter().map(std::sync::atomic::AtomicU32::into_inner).collect()
}

/// Number of distinct components given a label vector.
#[must_use]
pub fn component_count(labels: &[u32]) -> usize {
    let mut distinct: Vec<u32> = labels.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    distinct.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_structure_from_edges() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (2, 3), (3, 0)]);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbours(0), &[1, 2]);
        assert_eq!(g.neighbours(1), &[] as &[u32]);
        assert_eq!(g.neighbours(2), &[3]);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn ring_levels_are_distances() {
        let g = CsrGraph::ring(10);
        let levels = bfs_seq(&g, 0);
        assert_eq!(levels[0], 0);
        assert_eq!(levels[1], 1);
        assert_eq!(levels[9], 1);
        assert_eq!(levels[5], 5);
        assert_eq!(levels[4], 4);
        assert_eq!(levels[6], 4);
    }

    #[test]
    fn grid_bfs_is_manhattan_distance() {
        let g = CsrGraph::grid(5, 4);
        let levels = bfs_seq(&g, 0);
        for y in 0..4 {
            for x in 0..5 {
                assert_eq!(levels[y * 5 + x] as usize, x + y);
            }
        }
    }

    #[test]
    fn unreachable_vertices_marked() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        let levels = bfs_seq(&g, 0);
        assert_eq!(levels, vec![0, 1, u32::MAX]);
    }

    #[test]
    fn parallel_bfs_matches_sequential() {
        let team = Team::new(3);
        for (name, g) in [
            ("random", CsrGraph::random(500, 2000, 3)),
            ("ring", CsrGraph::ring(101)),
            ("grid", CsrGraph::grid(17, 13)),
        ] {
            let seq = bfs_seq(&g, 0);
            let par = bfs_par(&team, &g, 0);
            assert_eq!(seq, par, "graph {name}");
        }
    }

    #[test]
    fn pagerank_sums_to_one() {
        let g = CsrGraph::random(200, 800, 4);
        let ranks = pagerank_seq(&g, 0.85, 30);
        let total: f64 = ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "sum = {total}");
        assert!(ranks.iter().all(|&r| r > 0.0));
    }

    #[test]
    fn pagerank_ring_is_uniform() {
        let g = CsrGraph::ring(20);
        let ranks = pagerank_seq(&g, 0.85, 50);
        for &r in &ranks {
            assert!((r - 1.0 / 20.0).abs() < 1e-9);
        }
    }

    #[test]
    fn pagerank_sink_hub_ranks_highest() {
        // Star: every vertex points at 0.
        let edges: Vec<(u32, u32)> = (1..10u32).map(|u| (u, 0)).collect();
        let g = CsrGraph::from_edges(10, &edges);
        let ranks = pagerank_seq(&g, 0.85, 60);
        let hub = ranks[0];
        for &r in &ranks[1..] {
            assert!(hub > 2.0 * r, "hub {hub} vs spoke {r}");
        }
    }

    #[test]
    fn parallel_pagerank_matches_sequential() {
        let team = Team::new(3);
        let g = CsrGraph::random(300, 1500, 5);
        let seq = pagerank_seq(&g, 0.85, 25);
        let par = pagerank_par(&team, &g, 0.85, 25);
        for (a, b) in seq.iter().zip(&par) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn pagerank_handles_dangling_vertices() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2)]); // 2 and 3 dangle
        let ranks = pagerank_seq(&g, 0.85, 50);
        let total: f64 = ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn components_on_disjoint_rings() {
        // Two rings of 5, plus two isolated vertices.
        let mut edges = Vec::new();
        for i in 0..5u32 {
            edges.push((i, (i + 1) % 5));
            edges.push(((i + 1) % 5, i));
            edges.push((5 + i, 5 + (i + 1) % 5));
            edges.push((5 + (i + 1) % 5, 5 + i));
        }
        let g = CsrGraph::from_edges(12, &edges);
        let labels = components_seq(&g);
        assert_eq!(component_count(&labels), 4);
        assert!(labels[0..5].iter().all(|&l| l == 0));
        assert!(labels[5..10].iter().all(|&l| l == 5));
        assert_eq!(labels[10], 10);
        assert_eq!(labels[11], 11);
    }

    #[test]
    fn parallel_components_match_sequential() {
        let team = Team::new(3);
        for (name, g) in [
            ("random-sparse", CsrGraph::random(300, 200, 7)),
            ("random-dense", CsrGraph::random(200, 2000, 8)),
            ("grid", CsrGraph::grid(12, 9)),
        ] {
            let seq = components_seq(&g);
            let par = components_par(&team, &g);
            assert_eq!(seq, par, "graph {name}");
        }
    }

    #[test]
    fn connected_graph_has_one_component() {
        let team = Team::new(2);
        let g = CsrGraph::ring(50);
        let labels = components_par(&team, &g);
        assert_eq!(component_count(&labels), 1);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn random_graph_deterministic() {
        let a = CsrGraph::random(100, 400, 9);
        let b = CsrGraph::random(100, 400, 9);
        assert_eq!(a.targets, b.targets);
        assert_eq!(a.offsets, b.offsets);
    }
}
