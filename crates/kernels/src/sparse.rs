//! Sparse linear algebra: CSR sparse matrix–vector multiply.
//!
//! SpMV is the archetypal *irregular* parallel loop — per-row cost is
//! proportional to the row's nonzero count — which makes it the
//! kernel where schedule choice (static vs dynamic vs guided) shows
//! up most clearly in experiment A2.

use pyjama::{Schedule, Team};

/// A sparse matrix in compressed-sparse-row form.
#[derive(Clone, Debug)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    offsets: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build from (row, col, value) triplets; duplicates are summed.
    #[must_use]
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(u32, u32, f64)]) -> Self {
        let mut sorted: Vec<(u32, u32, f64)> = triplets.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        let mut dedup: Vec<(u32, u32, f64)> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            match dedup.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => dedup.push((r, c, v)),
            }
        }
        let mut offsets = vec![0usize; rows + 1];
        for &(r, _, _) in &dedup {
            offsets[r as usize + 1] += 1;
        }
        for i in 0..rows {
            offsets[i + 1] += offsets[i];
        }
        Self {
            rows,
            cols,
            offsets,
            col_idx: dedup.iter().map(|t| t.1).collect(),
            values: dedup.iter().map(|t| t.2).collect(),
        }
    }

    /// A deterministic random matrix with a power-law-ish skew: row
    /// `i` gets roughly `base * (1 + skew·i/rows)` nonzeros, giving
    /// the load imbalance the schedule comparison needs.
    #[must_use]
    pub fn random_skewed(rows: usize, cols: usize, base_nnz: usize, skew: f64, seed: u64) -> Self {
        let mut rng = parc_util::rng::Xoshiro256::seed_from_u64(seed);
        let mut triplets = Vec::new();
        for r in 0..rows {
            let nnz = ((base_nnz as f64) * (1.0 + skew * r as f64 / rows as f64)) as usize;
            for _ in 0..nnz.max(1) {
                triplets.push((
                    r as u32,
                    rng.next_below(cols as u64) as u32,
                    rng.next_f64() * 2.0 - 1.0,
                ));
            }
        }
        Self::from_triplets(rows, cols, &triplets)
    }

    /// Row count.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Dot product of row `r` with `x`.
    #[must_use]
    pub fn row_dot(&self, r: usize, x: &[f64]) -> f64 {
        let lo = self.offsets[r];
        let hi = self.offsets[r + 1];
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| v * x[c as usize])
            .sum()
    }
}

/// Sequential SpMV: `y = Ax`.
#[must_use]
pub fn spmv_seq(a: &CsrMatrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), a.cols, "dimension mismatch");
    (0..a.rows).map(|r| a.row_dot(r, x)).collect()
}

/// Parallel SpMV with a chosen schedule (rows are write-disjoint).
#[must_use]
pub fn spmv_par(team: &Team, a: &CsrMatrix, x: &[f64], schedule: Schedule) -> Vec<f64> {
    assert_eq!(x.len(), a.cols, "dimension mismatch");
    let mut y = vec![0.0f64; a.rows];
    struct OutPtr(*mut f64);
    unsafe impl Sync for OutPtr {}
    let out = OutPtr(y.as_mut_ptr());
    let out_ref = &out;
    team.for_each(0..a.rows, schedule, move |r| {
        // SAFETY: each row written by exactly one thread.
        unsafe {
            *out_ref.0.add(r) = a.row_dot(r, x);
        }
    });
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_build_and_dedup() {
        let a = CsrMatrix::from_triplets(
            2,
            3,
            &[(0, 1, 2.0), (0, 1, 3.0), (1, 0, 1.0), (1, 2, -1.0)],
        );
        assert_eq!(a.nnz(), 3, "duplicate (0,1) must merge");
        assert_eq!(a.rows(), 2);
        assert_eq!(a.cols(), 3);
        let y = spmv_seq(&a, &[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![5.0, 0.0]);
    }

    #[test]
    fn identity_spmv() {
        let triplets: Vec<(u32, u32, f64)> = (0..5).map(|i| (i, i, 1.0)).collect();
        let a = CsrMatrix::from_triplets(5, 5, &triplets);
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(spmv_seq(&a, &x), x);
    }

    #[test]
    fn empty_rows_produce_zero() {
        let a = CsrMatrix::from_triplets(3, 3, &[(1, 1, 7.0)]);
        let y = spmv_seq(&a, &[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![0.0, 7.0, 0.0]);
    }

    #[test]
    fn parallel_matches_sequential_all_schedules() {
        let team = Team::new(3);
        let a = CsrMatrix::random_skewed(200, 150, 8, 4.0, 11);
        let x: Vec<f64> = (0..150).map(|i| (i as f64 * 0.37).sin()).collect();
        let seq = spmv_seq(&a, &x);
        for schedule in [
            Schedule::Static,
            Schedule::StaticChunk(8),
            Schedule::Dynamic(16),
            Schedule::Guided(4),
        ] {
            let par = spmv_par(&team, &a, &x, schedule);
            for (s, p) in seq.iter().zip(&par) {
                assert!((s - p).abs() < 1e-12, "{schedule:?}");
            }
        }
    }

    #[test]
    fn skewed_generator_actually_skews() {
        let a = CsrMatrix::random_skewed(100, 100, 10, 9.0, 12);
        let first_row = a.offsets[1] - a.offsets[0];
        let last_row = a.offsets[100] - a.offsets[99];
        assert!(
            last_row > 5 * first_row,
            "last row nnz {last_row} should dwarf first {first_row}"
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn spmv_checks_dimensions() {
        let a = CsrMatrix::from_triplets(2, 3, &[]);
        let _ = spmv_seq(&a, &[1.0]);
    }
}
