//! Radix-2 Cooley–Tukey FFT, sequential and parallel.
//!
//! The parallel version runs each butterfly stage as a pyjama
//! worksharing loop over the butterfly groups — the natural OpenMP
//! phrasing a student would write — with the implicit loop barrier
//! providing the stage synchronisation.

use pyjama::{Schedule, Team};

/// A bare-bones complex number (the workspace avoids a numerics
/// dependency).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Construct from parts.
    #[must_use]
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Additive identity.
    #[must_use]
    pub fn zero() -> Self {
        Self::default()
    }

    /// `e^{iθ}`.
    #[must_use]
    pub fn from_polar(theta: f64) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// Complex addition.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Self) -> Self {
        Self::new(self.re + other.re, self.im + other.im)
    }

    /// Complex subtraction.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Self) -> Self {
        Self::new(self.re - other.re, self.im - other.im)
    }

    /// Complex multiplication.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Self) -> Self {
        Self::new(
            self.re * other.re - self.im * other.im,
            self.re * other.im + self.im * other.re,
        )
    }

    /// Scale by a real.
    #[must_use]
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    /// Magnitude.
    #[must_use]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
}

fn bit_reverse_permute(data: &mut [Complex]) {
    let n = data.len();
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            data.swap(i, j);
        }
    }
}

/// In-place forward FFT (sequential reference). Length must be a
/// power of two.
pub fn fft_seq(data: &mut [Complex]) {
    fft_dir_seq(data, false);
}

/// In-place inverse FFT (sequential), including the 1/n scaling.
pub fn ifft_seq(data: &mut [Complex]) {
    fft_dir_seq(data, true);
    let n = data.len() as f64;
    for x in data.iter_mut() {
        *x = x.scale(1.0 / n);
    }
}

fn fft_dir_seq(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    bit_reverse_permute(data);
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = Complex::from_polar(ang);
        let half = len / 2;
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..half {
                let a = data[start + k];
                let b = data[start + k + half].mul(w);
                data[start + k] = a.add(b);
                data[start + k + half] = a.sub(b);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
}

/// In-place forward FFT parallelised with pyjama: one worksharing
/// loop over butterfly groups per stage. Length must be a power of
/// two.
pub fn fft_par(team: &Team, data: &mut [Complex]) {
    fft_dir_par(team, data, false);
}

/// In-place inverse FFT parallelised with pyjama.
pub fn ifft_par(team: &Team, data: &mut [Complex]) {
    fft_dir_par(team, data, true);
    let n = data.len() as f64;
    for x in data.iter_mut() {
        *x = x.scale(1.0 / n);
    }
}

/// Shared-mutable view for the stage loops. Distinct butterfly groups
/// touch disjoint index sets, so data-race freedom holds per stage;
/// the pyjama loop barrier separates stages.
struct SharedSlice(*mut Complex, usize);
unsafe impl Sync for SharedSlice {}

impl SharedSlice {
    /// SAFETY: caller guarantees `idx` is accessed by exactly one
    /// thread during the current stage.
    unsafe fn get(&self, idx: usize) -> *mut Complex {
        debug_assert!(idx < self.1);
        self.0.add(idx)
    }
}

fn fft_dir_par(team: &Team, data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    bit_reverse_permute(data);
    let sign = if inverse { 1.0 } else { -1.0 };
    let shared = SharedSlice(data.as_mut_ptr(), n);
    let shared_ref = &shared;
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = Complex::from_polar(ang);
        let half = len / 2;
        let groups = n / len;
        team.for_each(0..groups, Schedule::Static, move |g| {
            let start = g * len;
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..half {
                // SAFETY: group `g` owns indices [start, start+len);
                // groups are disjoint within a stage.
                unsafe {
                    let a = *shared_ref.get(start + k);
                    let b = (*shared_ref.get(start + k + half)).mul(w);
                    *shared_ref.get(start + k) = a.add(b);
                    *shared_ref.get(start + k + half) = a.sub(b);
                }
                w = w.mul(wlen);
            }
        });
        len <<= 1;
    }
}

/// Naive O(n²) DFT used as the validation oracle in tests.
#[must_use]
pub fn dft_naive(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::zero();
            for (j, &x) in input.iter().enumerate() {
                let ang = -std::f64::consts::TAU * (k * j) as f64 / n as f64;
                acc = acc.add(x.mul(Complex::from_polar(ang)));
            }
            acc
        })
        .collect()
}

/// Generate a deterministic test signal.
#[must_use]
pub fn test_signal(n: usize, seed: u64) -> Vec<Complex> {
    let mut rng = parc_util::rng::Xoshiro256::seed_from_u64(seed);
    (0..n)
        .map(|_| Complex::new(rng.next_f64() * 2.0 - 1.0, rng.next_f64() * 2.0 - 1.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[Complex], b: &[Complex], tol: f64) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol)
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a.add(b), Complex::new(4.0, 1.0));
        assert_eq!(a.sub(b), Complex::new(-2.0, 3.0));
        assert_eq!(a.mul(b), Complex::new(5.0, 5.0));
        assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn fft_matches_naive_dft() {
        let signal = test_signal(64, 7);
        let expected = dft_naive(&signal);
        let mut actual = signal.clone();
        fft_seq(&mut actual);
        assert!(close(&actual, &expected, 1e-9));
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::zero(); 16];
        data[0] = Complex::new(1.0, 0.0);
        fft_seq(&mut data);
        for x in &data {
            assert!((x.re - 1.0).abs() < 1e-12 && x.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_single_tone_peaks_at_frequency() {
        let n = 64;
        let freq = 5;
        let mut data: Vec<Complex> = (0..n)
            .map(|i| Complex::from_polar(std::f64::consts::TAU * (freq * i) as f64 / n as f64))
            .collect();
        fft_seq(&mut data);
        for (k, x) in data.iter().enumerate() {
            if k == freq {
                assert!((x.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(x.abs() < 1e-9, "leak at bin {k}: {}", x.abs());
            }
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let signal = test_signal(256, 11);
        let mut data = signal.clone();
        fft_seq(&mut data);
        ifft_seq(&mut data);
        assert!(close(&data, &signal, 1e-10));
    }

    #[test]
    fn parallel_matches_sequential() {
        let team = Team::new(3);
        for n in [2usize, 8, 64, 1024] {
            let signal = test_signal(n, 13);
            let mut seq = signal.clone();
            fft_seq(&mut seq);
            let mut par = signal.clone();
            fft_par(&team, &mut par);
            assert!(close(&par, &seq, 1e-9), "n = {n}");
        }
    }

    #[test]
    fn parallel_inverse_roundtrip() {
        let team = Team::new(2);
        let signal = test_signal(128, 17);
        let mut data = signal.clone();
        fft_par(&team, &mut data);
        ifft_par(&team, &mut data);
        assert!(close(&data, &signal, 1e-10));
    }

    #[test]
    fn parseval_energy_preserved() {
        let signal = test_signal(128, 19);
        let time_energy: f64 = signal.iter().map(|x| x.abs() * x.abs()).sum();
        let mut freq = signal.clone();
        fft_seq(&mut freq);
        let freq_energy: f64 =
            freq.iter().map(|x| x.abs() * x.abs()).sum::<f64>() / signal.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut data = vec![Complex::zero(); 12];
        fft_seq(&mut data);
    }
}
