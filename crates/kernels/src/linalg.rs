//! Dense linear algebra: matrix multiply, LU decomposition, Jacobi.
//!
//! The "nested loops" kernels of project 3. Parallelisations follow
//! the standard OpenMP patterns: matmul and Jacobi parallelise the
//! outer row loop; LU parallelises the trailing-submatrix update of
//! each elimination step.

use pyjama::{MaxRed, Schedule, Team};

/// Row-major dense matrix of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Deterministic random matrix in `[-1, 1)`.
    #[must_use]
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = parc_util::rng::Xoshiro256::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| rng.next_f64() * 2.0 - 1.0)
            .collect();
        Self { rows, cols, data }
    }

    /// Diagonally dominant random matrix (guarantees Jacobi
    /// convergence and a stable LU).
    #[must_use]
    pub fn random_diag_dominant(n: usize, seed: u64) -> Self {
        let mut m = Self::random(n, n, seed);
        for i in 0..n {
            let row_sum: f64 = (0..n).filter(|&j| j != i).map(|j| m[(i, j)].abs()).sum();
            m[(i, i)] = row_sum + 1.0;
        }
        m
    }

    /// Row count.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// One row as a slice.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Max absolute element-wise difference.
    #[must_use]
    pub fn max_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Sequential matrix multiply (i-k-j loop order for cache behaviour).
#[must_use]
pub fn matmul_seq(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols, b.rows, "dimension mismatch");
    let mut c = Matrix::zeros(a.rows, b.cols);
    for i in 0..a.rows {
        for k in 0..a.cols {
            let aik = a[(i, k)];
            if aik == 0.0 {
                continue;
            }
            let b_row = b.row(k);
            let c_row = &mut c.data[i * c.cols..(i + 1) * c.cols];
            for (cj, bj) in c_row.iter_mut().zip(b_row) {
                *cj += aik * bj;
            }
        }
    }
    c
}

/// Pyjama-parallel matrix multiply: worksharing over output rows.
#[must_use]
pub fn matmul_par(team: &Team, a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols, b.rows, "dimension mismatch");
    let rows = a.rows;
    let cols = b.cols;
    let mut out = vec![0.0f64; rows * cols];
    {
        let out_rows: Vec<parking_lot::Mutex<&mut [f64]>> = out
            .chunks_mut(cols)
            .map(parking_lot::Mutex::new)
            .collect();
        team.for_each(0..rows, Schedule::Dynamic(4), |i| {
            let mut row = out_rows[i].lock();
            for k in 0..a.cols {
                let aik = a[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for (cj, bj) in row.iter_mut().zip(b.row(k)) {
                    *cj += aik * bj;
                }
            }
        });
    }
    Matrix {
        rows,
        cols,
        data: out,
    }
}

/// Partask-parallel matrix multiply: one task per block of rows (the
/// "standard concurrency library" comparator).
#[must_use]
pub fn matmul_partask(rt: &partask::TaskRuntime, a: &Matrix, b: &Matrix, tasks: usize) -> Matrix {
    assert_eq!(a.cols, b.rows, "dimension mismatch");
    let tasks = tasks.max(1);
    let a = std::sync::Arc::new(a.clone());
    let b = std::sync::Arc::new(b.clone());
    let rows = a.rows;
    let cols = b.cols;
    let multi = rt.spawn_multi(tasks, move |t| {
        let lo = rows * t / tasks;
        let hi = rows * (t + 1) / tasks;
        let mut block = vec![0.0f64; (hi - lo) * cols];
        for (bi, i) in (lo..hi).enumerate() {
            for k in 0..a.cols {
                let aik = a[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let row = &mut block[bi * cols..(bi + 1) * cols];
                for (cj, bj) in row.iter_mut().zip(b.row(k)) {
                    *cj += aik * bj;
                }
            }
        }
        (lo, block)
    });
    let mut data = vec![0.0f64; rows * cols];
    for (lo, block) in multi.join_all().expect("matmul tasks") {
        data[lo * cols..lo * cols + block.len()].copy_from_slice(&block);
    }
    Matrix { rows, cols, data }
}

/// LU decomposition with partial pivoting (Doolittle). Returns the
/// packed LU matrix and the permutation vector; panics on singular
/// input.
#[must_use]
pub fn lu_decompose(a: &Matrix) -> (Matrix, Vec<usize>) {
    assert_eq!(a.rows, a.cols, "LU needs a square matrix");
    let n = a.rows;
    let mut lu = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    for k in 0..n {
        // Pivot: largest |value| in column k at/below the diagonal.
        let (pivot_row, pivot_val) = (k..n)
            .map(|i| (i, lu[(i, k)].abs()))
            .max_by(|x, y| x.1.partial_cmp(&y.1).expect("no NaN"))
            .expect("non-empty");
        assert!(pivot_val > 1e-12, "matrix is singular");
        if pivot_row != k {
            for j in 0..n {
                let tmp = lu[(k, j)];
                lu[(k, j)] = lu[(pivot_row, j)];
                lu[(pivot_row, j)] = tmp;
            }
            perm.swap(k, pivot_row);
        }
        for i in k + 1..n {
            let factor = lu[(i, k)] / lu[(k, k)];
            lu[(i, k)] = factor;
            for j in k + 1..n {
                lu[(i, j)] -= factor * lu[(k, j)];
            }
        }
    }
    (lu, perm)
}

/// Parallel LU: the trailing-submatrix update of each elimination
/// step is a worksharing loop over rows.
#[must_use]
pub fn lu_decompose_par(team: &Team, a: &Matrix) -> (Matrix, Vec<usize>) {
    assert_eq!(a.rows, a.cols, "LU needs a square matrix");
    let n = a.rows;
    let mut lu = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    struct RowsPtr(*mut f64, usize);
    unsafe impl Sync for RowsPtr {}
    for k in 0..n {
        let (pivot_row, pivot_val) = (k..n)
            .map(|i| (i, lu[(i, k)].abs()))
            .max_by(|x, y| x.1.partial_cmp(&y.1).expect("no NaN"))
            .expect("non-empty");
        assert!(pivot_val > 1e-12, "matrix is singular");
        if pivot_row != k {
            for j in 0..n {
                let tmp = lu[(k, j)];
                lu[(k, j)] = lu[(pivot_row, j)];
                lu[(pivot_row, j)] = tmp;
            }
            perm.swap(k, pivot_row);
        }
        let ptr = RowsPtr(lu.data.as_mut_ptr(), n);
        let ptr_ref = &ptr;
        // Copy of the pivot row segment so readers don't alias writers.
        let pivot_seg: Vec<f64> = (k..n).map(|j| lu[(k, j)]).collect();
        let pivot_seg = &pivot_seg;
        team.for_each(k + 1..n, Schedule::Static, move |i| {
            // SAFETY: each thread updates a distinct row i.
            unsafe {
                let row = std::slice::from_raw_parts_mut(ptr_ref.0.add(i * ptr_ref.1), ptr_ref.1);
                let factor = row[k] / pivot_seg[0];
                row[k] = factor;
                for j in k + 1..ptr_ref.1 {
                    row[j] -= factor * pivot_seg[j - k];
                }
            }
        });
    }
    (lu, perm)
}

/// Solve `Ax = b` given the packed LU and permutation from
/// [`lu_decompose`].
#[must_use]
pub fn lu_solve(lu: &Matrix, perm: &[usize], b: &[f64]) -> Vec<f64> {
    let n = lu.rows;
    assert_eq!(b.len(), n);
    // Forward substitution with permuted b (L has implicit unit diag).
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[perm[i]];
        for j in 0..i {
            sum -= lu[(i, j)] * y[j];
        }
        y[i] = sum;
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for j in i + 1..n {
            sum -= lu[(i, j)] * x[j];
        }
        x[i] = sum / lu[(i, i)];
    }
    x
}

/// Jacobi iteration for `Ax = b` (sequential). Returns `(x, iters)`;
/// converges for diagonally dominant systems.
#[must_use]
pub fn jacobi_seq(a: &Matrix, b: &[f64], tol: f64, max_iters: usize) -> (Vec<f64>, usize) {
    let n = a.rows;
    let mut x = vec![0.0; n];
    let mut next = vec![0.0; n];
    for iter in 0..max_iters {
        let mut max_delta = 0.0f64;
        for i in 0..n {
            let mut sum = b[i];
            let row = a.row(i);
            for (j, &aij) in row.iter().enumerate() {
                if j != i {
                    sum -= aij * x[j];
                }
            }
            next[i] = sum / a[(i, i)];
            max_delta = max_delta.max((next[i] - x[i]).abs());
        }
        std::mem::swap(&mut x, &mut next);
        if max_delta < tol {
            return (x, iter + 1);
        }
    }
    (x, max_iters)
}

/// Jacobi iteration parallelised with pyjama: the row update is a
/// worksharing loop, the convergence check a max-reduction.
#[must_use]
pub fn jacobi_par(
    team: &Team,
    a: &Matrix,
    b: &[f64],
    tol: f64,
    max_iters: usize,
) -> (Vec<f64>, usize) {
    let n = a.rows;
    let mut x = vec![0.0; n];
    let mut next = vec![0.0; n];
    for iter in 0..max_iters {
        let x_ref = &x;
        struct OutPtr(*mut f64);
        unsafe impl Sync for OutPtr {}
        let out = OutPtr(next.as_mut_ptr());
        let out_ref = &out;
        let max_delta = team.par_reduce(0..n, Schedule::Static, &MaxRed, move |i| {
            let mut sum = b[i];
            let row = a.row(i);
            for (j, &aij) in row.iter().enumerate() {
                if j != i {
                    sum -= aij * x_ref[j];
                }
            }
            let xi = sum / a[(i, i)];
            // SAFETY: each i is written by exactly one thread.
            unsafe {
                *out_ref.0.add(i) = xi;
            }
            (xi - x_ref[i]).abs()
        });
        std::mem::swap(&mut x, &mut next);
        if max_delta < tol {
            return (x, iter + 1);
        }
    }
    (x, max_iters)
}

/// Residual ∞-norm `‖Ax − b‖∞`, the standard verification metric.
#[must_use]
pub fn residual_inf(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
    (0..a.rows)
        .map(|i| {
            let ax: f64 = a.row(i).iter().zip(x).map(|(aij, xj)| aij * xj).sum();
            (ax - b[i]).abs()
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_multiplication() {
        let a = Matrix::random(8, 8, 1);
        let c = matmul_seq(&a, &Matrix::identity(8));
        assert!(c.max_diff(&a) < 1e-12);
    }

    #[test]
    fn known_2x2_product() {
        let a = Matrix::from_fn(2, 2, |i, j| (i * 2 + j) as f64 + 1.0); // [1 2; 3 4]
        let b = Matrix::from_fn(2, 2, |i, j| ((i + j) % 2) as f64); // [0 1; 1 0]
        let c = matmul_seq(&a, &b);
        assert_eq!(c[(0, 0)], 2.0);
        assert_eq!(c[(0, 1)], 1.0);
        assert_eq!(c[(1, 0)], 4.0);
        assert_eq!(c[(1, 1)], 3.0);
    }

    #[test]
    fn rectangular_product_dimensions() {
        let a = Matrix::random(3, 5, 2);
        let b = Matrix::random(5, 7, 3);
        let c = matmul_seq(&a, &b);
        assert_eq!(c.rows(), 3);
        assert_eq!(c.cols(), 7);
    }

    #[test]
    fn parallel_matmuls_match_sequential() {
        let team = Team::new(3);
        let rt = partask::TaskRuntime::builder().workers(2).build();
        let a = Matrix::random(33, 41, 4);
        let b = Matrix::random(41, 29, 5);
        let seq = matmul_seq(&a, &b);
        let par = matmul_par(&team, &a, &b);
        let pt = matmul_partask(&rt, &a, &b, 5);
        assert!(par.max_diff(&seq) < 1e-12);
        assert!(pt.max_diff(&seq) < 1e-12);
        rt.shutdown();
    }

    #[test]
    fn lu_reconstructs_and_solves() {
        let a = Matrix::random_diag_dominant(20, 6);
        let (lu, perm) = lu_decompose(&a);
        // Solve against a known x.
        let x_true: Vec<f64> = (0..20).map(|i| (i as f64 - 10.0) / 3.0).collect();
        let b: Vec<f64> = (0..20)
            .map(|i| a.row(i).iter().zip(&x_true).map(|(aij, xj)| aij * xj).sum())
            .collect();
        let x = lu_solve(&lu, &perm, &b);
        for (xa, xb) in x.iter().zip(&x_true) {
            assert!((xa - xb).abs() < 1e-8);
        }
    }

    #[test]
    fn lu_par_matches_seq() {
        let team = Team::new(2);
        let a = Matrix::random_diag_dominant(24, 7);
        let (lu_s, perm_s) = lu_decompose(&a);
        let (lu_p, perm_p) = lu_decompose_par(&team, &a);
        assert_eq!(perm_s, perm_p);
        assert!(lu_s.max_diff(&lu_p) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn lu_rejects_singular() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = 1.0;
        // Row 2 all zeros -> singular.
        let _ = lu_decompose(&a);
    }

    #[test]
    fn jacobi_converges_on_diag_dominant() {
        let a = Matrix::random_diag_dominant(30, 8);
        let x_true: Vec<f64> = (0..30).map(|i| (i as f64).sin()).collect();
        let b: Vec<f64> = (0..30)
            .map(|i| a.row(i).iter().zip(&x_true).map(|(aij, xj)| aij * xj).sum())
            .collect();
        let (x, iters) = jacobi_seq(&a, &b, 1e-12, 500);
        assert!(iters < 500, "did not converge");
        assert!(residual_inf(&a, &x, &b) < 1e-9);
    }

    #[test]
    fn jacobi_par_matches_seq() {
        let team = Team::new(3);
        let a = Matrix::random_diag_dominant(25, 9);
        let b: Vec<f64> = (0..25).map(|i| i as f64 * 0.5 - 3.0).collect();
        let (xs, is) = jacobi_seq(&a, &b, 1e-11, 300);
        let (xp, ip) = jacobi_par(&team, &a, &b, 1e-11, 300);
        assert_eq!(is, ip, "same iteration count");
        for (a0, b0) in xs.iter().zip(&xp) {
            assert!((a0 - b0).abs() < 1e-10);
        }
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let a = Matrix::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert!(residual_inf(&a, &x, &x) < 1e-15);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_dimension_check() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = matmul_seq(&a, &b);
    }
}
