//! Molecular dynamics: Lennard-Jones particles, velocity-Verlet.
//!
//! The classic all-pairs O(N²) force kernel (the JGF `MolDyn` shape
//! the course's kernel set draws on). The parallel version workshares
//! the outer particle loop with a dynamic schedule — the per-particle
//! force cost is uniform here, but dynamic matches what students write
//! when told the loop "may be skewed".

use pyjama::{Schedule, SumRed, Team};

/// A 3-vector.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// Construct from components.
    #[must_use]
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Vector addition.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }

    /// Vector subtraction.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }

    /// Scalar multiply.
    #[must_use]
    pub fn scale(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }

    /// Squared length.
    #[must_use]
    pub fn norm2(self) -> f64 {
        self.x * self.x + self.y * self.y + self.z * self.z
    }
}

/// A Lennard-Jones particle system in a cubic box (no periodic
/// boundary; the box only seeds initial positions).
#[derive(Clone, Debug)]
pub struct System {
    /// Particle positions.
    pub pos: Vec<Vec3>,
    /// Particle velocities.
    pub vel: Vec<Vec3>,
    /// Forces from the most recent evaluation.
    pub force: Vec<Vec3>,
    /// LJ well depth ε.
    pub epsilon: f64,
    /// LJ length scale σ.
    pub sigma: f64,
}

impl System {
    /// Deterministic system: `n` particles on a jittered lattice with
    /// small random velocities.
    #[must_use]
    pub fn new(n: usize, seed: u64) -> Self {
        let mut rng = parc_util::rng::Xoshiro256::seed_from_u64(seed);
        let side = (n as f64).cbrt().ceil() as usize;
        let spacing = 1.3; // > 2^(1/6) σ so the lattice starts cold-ish
        let mut pos = Vec::with_capacity(n);
        'outer: for ix in 0..side {
            for iy in 0..side {
                for iz in 0..side {
                    if pos.len() == n {
                        break 'outer;
                    }
                    pos.push(Vec3::new(
                        ix as f64 * spacing + rng.gen_range_f64(-0.05..0.05),
                        iy as f64 * spacing + rng.gen_range_f64(-0.05..0.05),
                        iz as f64 * spacing + rng.gen_range_f64(-0.05..0.05),
                    ));
                }
            }
        }
        let vel = (0..n)
            .map(|_| {
                Vec3::new(
                    rng.gen_range_f64(-0.1..0.1),
                    rng.gen_range_f64(-0.1..0.1),
                    rng.gen_range_f64(-0.1..0.1),
                )
            })
            .collect();
        Self {
            pos,
            vel,
            force: vec![Vec3::default(); n],
            epsilon: 1.0,
            sigma: 1.0,
        }
    }

    /// Number of particles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// True for an empty system.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Evaluate all forces sequentially.
    pub fn compute_forces_seq(&mut self) {
        for i in 0..self.len() {
            self.force[i] = lj_force(&self.pos, self.epsilon, self.sigma, i);
        }
    }

    /// Evaluate all forces with a pyjama worksharing loop.
    pub fn compute_forces_par(&mut self, team: &Team) {
        let n = self.len();
        let (epsilon, sigma) = (self.epsilon, self.sigma);
        // Split borrows: positions read-only, forces written disjointly.
        let pos: &[Vec3] = &self.pos;
        struct ForcePtr(*mut Vec3);
        unsafe impl Sync for ForcePtr {}
        let out = ForcePtr(self.force.as_mut_ptr());
        let out_ref = &out;
        team.for_each(0..n, Schedule::Dynamic(16), move |i| {
            let f = lj_force(pos, epsilon, sigma, i);
            // SAFETY: index i written by exactly one thread, and the
            // pointer derives from a unique borrow of `force`.
            unsafe {
                *out_ref.0.add(i) = f;
            }
        });
    }

    /// One velocity-Verlet step of size `dt`; forces must be current
    /// on entry and are current on exit. `parallel` selects the force
    /// evaluation used.
    pub fn step(&mut self, dt: f64, team: Option<&Team>) {
        let n = self.len();
        // Half-kick + drift.
        for i in 0..n {
            self.vel[i] = self.vel[i].add(self.force[i].scale(0.5 * dt));
            self.pos[i] = self.pos[i].add(self.vel[i].scale(dt));
        }
        // New forces.
        match team {
            Some(team) => self.compute_forces_par(team),
            None => self.compute_forces_seq(),
        }
        // Half-kick.
        for i in 0..n {
            self.vel[i] = self.vel[i].add(self.force[i].scale(0.5 * dt));
        }
    }

    /// Total kinetic energy.
    #[must_use]
    pub fn kinetic_energy(&self) -> f64 {
        self.vel.iter().map(|v| 0.5 * v.norm2()).sum()
    }

    /// Total Lennard-Jones potential energy (sequential).
    #[must_use]
    pub fn potential_energy(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        let mut e = 0.0;
        for i in 0..self.len() {
            for j in i + 1..self.len() {
                let r2 = self.pos[i].sub(self.pos[j]).norm2().max(1e-9);
                let sr2 = s2 / r2;
                let sr6 = sr2 * sr2 * sr2;
                e += 4.0 * self.epsilon * (sr6 * sr6 - sr6);
            }
        }
        e
    }

    /// Potential energy via a pyjama sum-reduction over the outer
    /// pair loop.
    #[must_use]
    pub fn potential_energy_par(&self, team: &Team) -> f64 {
        let s2 = self.sigma * self.sigma;
        let this = self;
        team.par_reduce(0..self.len(), Schedule::Guided(4), &SumRed, move |i| {
            let mut e = 0.0;
            for j in i + 1..this.len() {
                let r2 = this.pos[i].sub(this.pos[j]).norm2().max(1e-9);
                let sr2 = s2 / r2;
                let sr6 = sr2 * sr2 * sr2;
                e += 4.0 * this.epsilon * (sr6 * sr6 - sr6);
            }
            e
        })
    }

    /// Total momentum (conserved by the integrator).
    #[must_use]
    pub fn momentum(&self) -> Vec3 {
        self.vel.iter().fold(Vec3::default(), |acc, &v| acc.add(v))
    }
}

/// Lennard-Jones force on particle `i` from all others.
/// `F = 24ε (2 (σ/r)^12 − (σ/r)^6) / r² · d`
fn lj_force(pos: &[Vec3], epsilon: f64, sigma: f64, i: usize) -> Vec3 {
    let s2 = sigma * sigma;
    let mut f = Vec3::default();
    let pi = pos[i];
    for (j, &pj) in pos.iter().enumerate() {
        if j == i {
            continue;
        }
        let d = pi.sub(pj);
        let r2 = d.norm2().max(1e-9);
        let sr2 = s2 / r2;
        let sr6 = sr2 * sr2 * sr2;
        let mag = 24.0 * epsilon * (2.0 * sr6 * sr6 - sr6) / r2;
        f = f.add(d.scale(mag));
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_close(a: Vec3, b: Vec3, tol: f64) -> bool {
        (a.x - b.x).abs() < tol && (a.y - b.y).abs() < tol && (a.z - b.z).abs() < tol
    }

    #[test]
    fn two_particles_at_minimum_feel_no_force() {
        // LJ force is zero at r = 2^(1/6) σ.
        let r_min = 2f64.powf(1.0 / 6.0);
        let mut sys = System::new(2, 1);
        sys.pos[0] = Vec3::new(0.0, 0.0, 0.0);
        sys.pos[1] = Vec3::new(r_min, 0.0, 0.0);
        sys.compute_forces_seq();
        assert!(sys.force[0].norm2() < 1e-18);
        assert!(sys.force[1].norm2() < 1e-18);
    }

    #[test]
    fn close_pair_repels_far_pair_attracts() {
        let mut sys = System::new(2, 1);
        sys.pos[0] = Vec3::new(0.0, 0.0, 0.0);
        sys.pos[1] = Vec3::new(0.9, 0.0, 0.0); // inside σ: repulsive
        sys.compute_forces_seq();
        assert!(sys.force[0].x < 0.0 && sys.force[1].x > 0.0);
        sys.pos[1] = Vec3::new(1.5, 0.0, 0.0); // outside minimum: attractive
        sys.compute_forces_seq();
        assert!(sys.force[0].x > 0.0 && sys.force[1].x < 0.0);
    }

    #[test]
    fn newtons_third_law() {
        let mut sys = System::new(8, 3);
        sys.compute_forces_seq();
        let total = sys.force.iter().fold(Vec3::default(), |a, &f| a.add(f));
        assert!(total.norm2() < 1e-16, "forces must sum to ~0");
    }

    #[test]
    fn parallel_forces_match_sequential() {
        let team = Team::new(3);
        let mut a = System::new(40, 5);
        let mut b = a.clone();
        a.compute_forces_seq();
        b.compute_forces_par(&team);
        for (fa, fb) in a.force.iter().zip(&b.force) {
            assert!(vec_close(*fa, *fb, 1e-12));
        }
    }

    #[test]
    fn parallel_potential_matches_sequential() {
        let team = Team::new(2);
        let sys = System::new(30, 6);
        let seq = sys.potential_energy();
        let par = sys.potential_energy_par(&team);
        assert!((seq - par).abs() < 1e-9);
    }

    #[test]
    fn energy_approximately_conserved() {
        let mut sys = System::new(27, 7);
        sys.compute_forces_seq();
        let e0 = sys.kinetic_energy() + sys.potential_energy();
        for _ in 0..200 {
            sys.step(1e-3, None);
        }
        let e1 = sys.kinetic_energy() + sys.potential_energy();
        let drift = (e1 - e0).abs() / e0.abs().max(1e-9);
        assert!(drift < 1e-2, "energy drift {drift} too large");
    }

    #[test]
    fn momentum_conserved() {
        let mut sys = System::new(27, 8);
        sys.compute_forces_seq();
        let p0 = sys.momentum();
        for _ in 0..100 {
            sys.step(1e-3, None);
        }
        let p1 = sys.momentum();
        assert!(vec_close(p0, p1, 1e-10));
    }

    #[test]
    fn parallel_trajectory_matches_sequential() {
        let team = Team::new(2);
        let mut a = System::new(20, 9);
        let mut b = a.clone();
        a.compute_forces_seq();
        b.compute_forces_par(&team);
        for _ in 0..20 {
            a.step(1e-3, None);
            b.step(1e-3, Some(&team));
        }
        for (pa, pb) in a.pos.iter().zip(&b.pos) {
            assert!(vec_close(*pa, *pb, 1e-9));
        }
    }

    #[test]
    fn system_size_and_determinism() {
        let a = System::new(50, 42);
        let b = System::new(50, 42);
        assert_eq!(a.len(), 50);
        assert!(!a.is_empty());
        assert_eq!(a.pos, b.pos);
        assert_eq!(a.vel, b.vel);
    }
}
