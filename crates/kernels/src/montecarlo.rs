//! Monte-Carlo and quadrature kernels.
//!
//! π by dartboard sampling (with independent per-thread PRNG streams —
//! the classic correctness trap of parallel Monte Carlo) and the
//! textbook `∫₀¹ 4/(1+x²) dx = π` trapezoid rule, both sequential and
//! as pyjama reductions.

use parc_util::rng::Xoshiro256;
use pyjama::{Schedule, SumRed, Team};

/// Sequential dartboard π estimate over `samples` points.
#[must_use]
pub fn pi_monte_carlo_seq(samples: u64, seed: u64) -> f64 {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut hits = 0u64;
    for _ in 0..samples {
        let x = rng.next_f64();
        let y = rng.next_f64();
        if x * x + y * y <= 1.0 {
            hits += 1;
        }
    }
    4.0 * hits as f64 / samples as f64
}

/// Parallel dartboard π: the sample range is workshared in fixed
/// blocks, each block drawing from its own jumped PRNG stream so the
/// estimate is deterministic regardless of thread count.
#[must_use]
pub fn pi_monte_carlo_par(team: &Team, samples: u64, seed: u64, blocks: usize) -> f64 {
    let blocks = blocks.max(1);
    let base = Xoshiro256::seed_from_u64(seed);
    let base_ref = &base;
    let per_block = samples / blocks as u64;
    let hits = team.par_reduce(0..blocks, Schedule::Dynamic(1), &SumRed, move |b| {
        let mut rng = base_ref.stream(b);
        let mut hits = 0u64;
        let extra = if b == blocks - 1 {
            samples - per_block * blocks as u64
        } else {
            0
        };
        for _ in 0..per_block + extra {
            let x = rng.next_f64();
            let y = rng.next_f64();
            if x * x + y * y <= 1.0 {
                hits += 1;
            }
        }
        hits
    });
    4.0 * hits as f64 / samples as f64
}

/// Sequential trapezoid rule for `∫₀¹ 4/(1+x²) dx = π`.
#[must_use]
pub fn pi_quadrature_seq(steps: usize) -> f64 {
    let h = 1.0 / steps as f64;
    let mut sum = 0.0;
    for i in 0..steps {
        let x = (i as f64 + 0.5) * h;
        sum += 4.0 / (1.0 + x * x);
    }
    sum * h
}

/// Parallel trapezoid rule as a sum-reduction (the canonical first
/// OpenMP reduction exercise).
#[must_use]
pub fn pi_quadrature_par(team: &Team, steps: usize, schedule: Schedule) -> f64 {
    let h = 1.0 / steps as f64;
    let sum = team.par_reduce(0..steps, schedule, &SumRed, move |i| {
        let x = (i as f64 + 0.5) * h;
        4.0 / (1.0 + x * x)
    });
    sum * h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadrature_converges_to_pi() {
        let approx = pi_quadrature_seq(100_000);
        assert!((approx - std::f64::consts::PI).abs() < 1e-8);
    }

    #[test]
    fn quadrature_par_matches_seq_closely() {
        let team = Team::new(3);
        let seq = pi_quadrature_seq(50_000);
        for schedule in [Schedule::Static, Schedule::Dynamic(512), Schedule::Guided(64)] {
            let par = pi_quadrature_par(&team, 50_000, schedule);
            // Floating addition order differs; agreement is to ~1e-10.
            assert!((seq - par).abs() < 1e-9, "{schedule:?}");
        }
    }

    #[test]
    fn monte_carlo_close_to_pi() {
        let est = pi_monte_carlo_seq(200_000, 123);
        assert!((est - std::f64::consts::PI).abs() < 0.02, "estimate {est}");
    }

    #[test]
    fn monte_carlo_deterministic_per_seed() {
        assert_eq!(
            pi_monte_carlo_seq(10_000, 5).to_bits(),
            pi_monte_carlo_seq(10_000, 5).to_bits()
        );
        assert_ne!(
            pi_monte_carlo_seq(10_000, 5).to_bits(),
            pi_monte_carlo_seq(10_000, 6).to_bits()
        );
    }

    #[test]
    fn parallel_monte_carlo_thread_count_invariant() {
        // Same seed and block structure => bitwise-identical estimate
        // on 1 thread and 4 threads.
        let t1 = Team::new(1);
        let t4 = Team::new(4);
        let a = pi_monte_carlo_par(&t1, 100_000, 7, 16);
        let b = pi_monte_carlo_par(&t4, 100_000, 7, 16);
        assert_eq!(a.to_bits(), b.to_bits());
        assert!((a - std::f64::consts::PI).abs() < 0.05);
    }

    #[test]
    fn parallel_monte_carlo_handles_ragged_tail() {
        let team = Team::new(2);
        // samples not divisible by blocks: remainder must be sampled.
        let est = pi_monte_carlo_par(&team, 100_003, 11, 8);
        assert!((est - std::f64::consts::PI).abs() < 0.05);
    }
}
