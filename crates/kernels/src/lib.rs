//! # kernels — computational kernels for the parallelisation project
//!
//! SoftEng 751 **project 3** gave students C reference implementations
//! of "basic algorithms (usually in the form of some nested loops)" —
//! "FFT, molecular dynamics, graph processing and linear algebra" —
//! to port to Java and parallelise with Pyjama, comparing against the
//! standard concurrency library. This crate provides those kernel
//! families, each with
//!
//! * a **sequential reference** (the "C implementation" stand-in),
//! * a **pyjama** parallelisation (worksharing loops / reductions),
//! * for several kernels a **partask** parallelisation (the
//!   "standard concurrency library" comparator), and
//! * cross-validation tests asserting all versions agree.
//!
//! Kernel inventory: [`fft`] (radix-2 Cooley–Tukey),
//! [`md`] (Lennard-Jones velocity-Verlet), [`graph`] (CSR BFS and
//! PageRank), [`linalg`] (matmul, LU, Jacobi), [`sparse`] (CSR SpMV)
//! [`montecarlo`] (π and numeric integration) and [`stencil`]
//! (2-D Jacobi heat diffusion).

pub mod fft;
pub mod graph;
pub mod linalg;
pub mod md;
pub mod montecarlo;
pub mod sparse;
pub mod stencil;

pub use fft::Complex;
pub use graph::CsrGraph;
pub use linalg::Matrix;
