//! 2-D five-point stencil: Jacobi heat diffusion on a grid.
//!
//! The remaining "nested loops" kernel family: fixed Dirichlet
//! boundaries, interior cells relax toward the average of their four
//! neighbours. Parallelisation workshares the row loop per sweep,
//! with the pyjama loop barrier separating sweeps — the textbook
//! OpenMP stencil.

use pyjama::{MaxRed, Schedule, Team};

/// A `w × h` grid of `f64` cells, row-major.
#[derive(Clone, Debug, PartialEq)]
pub struct Grid {
    w: usize,
    h: usize,
    cells: Vec<f64>,
}

impl Grid {
    /// Zero grid.
    #[must_use]
    pub fn new(w: usize, h: usize) -> Self {
        assert!(w >= 3 && h >= 3, "stencil needs at least a 3x3 grid");
        Self {
            w,
            h,
            cells: vec![0.0; w * h],
        }
    }

    /// The classic test problem: one hot edge (top = 100), other
    /// edges cold (0), interior 0.
    #[must_use]
    pub fn hot_top(w: usize, h: usize) -> Self {
        let mut g = Self::new(w, h);
        for x in 0..w {
            g.cells[x] = 100.0;
        }
        g
    }

    /// Width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.w
    }

    /// Height.
    #[must_use]
    pub fn height(&self) -> usize {
        self.h
    }

    /// Cell value.
    #[must_use]
    pub fn get(&self, x: usize, y: usize) -> f64 {
        self.cells[y * self.w + x]
    }

    /// Set a cell (boundary conditions).
    pub fn set(&mut self, x: usize, y: usize, v: f64) {
        self.cells[y * self.w + x] = v;
    }

    /// Max absolute cell difference.
    #[must_use]
    pub fn max_diff(&self, other: &Grid) -> f64 {
        self.cells
            .iter()
            .zip(&other.cells)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// One Jacobi sweep into `next`; returns the max cell change.
/// Boundaries are copied unchanged (Dirichlet).
fn sweep_seq(cur: &Grid, next: &mut Grid) -> f64 {
    let (w, h) = (cur.w, cur.h);
    next.cells.copy_from_slice(&cur.cells);
    let mut max_delta = 0.0f64;
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let v = 0.25
                * (cur.get(x - 1, y) + cur.get(x + 1, y) + cur.get(x, y - 1) + cur.get(x, y + 1));
            max_delta = max_delta.max((v - cur.get(x, y)).abs());
            next.cells[y * w + x] = v;
        }
    }
    max_delta
}

/// Run Jacobi sweeps until the max change drops below `tol` (or
/// `max_sweeps`). Returns `(grid, sweeps)`.
#[must_use]
pub fn relax_seq(mut grid: Grid, tol: f64, max_sweeps: usize) -> (Grid, usize) {
    let mut next = grid.clone();
    for sweep in 0..max_sweeps {
        let delta = sweep_seq(&grid, &mut next);
        std::mem::swap(&mut grid, &mut next);
        if delta < tol {
            return (grid, sweep + 1);
        }
    }
    (grid, max_sweeps)
}

/// Parallel Jacobi relaxation: each sweep workshares interior rows
/// and max-reduces the per-row deltas.
#[must_use]
pub fn relax_par(team: &Team, mut grid: Grid, tol: f64, max_sweeps: usize) -> (Grid, usize) {
    let (w, h) = (grid.w, grid.h);
    let mut next = grid.clone();
    struct CellPtr(*mut f64);
    unsafe impl Sync for CellPtr {}
    for sweep in 0..max_sweeps {
        next.cells.copy_from_slice(&grid.cells);
        let cur_ref = &grid;
        let out = CellPtr(next.cells.as_mut_ptr());
        let out_ref = &out;
        let delta = team.par_reduce(1..h - 1, Schedule::Static, &MaxRed, move |y| {
            let mut row_max = 0.0f64;
            for x in 1..w - 1 {
                let v = 0.25
                    * (cur_ref.get(x - 1, y)
                        + cur_ref.get(x + 1, y)
                        + cur_ref.get(x, y - 1)
                        + cur_ref.get(x, y + 1));
                row_max = row_max.max((v - cur_ref.get(x, y)).abs());
                // SAFETY: each row y written by exactly one thread.
                unsafe {
                    *out_ref.0.add(y * w + x) = v;
                }
            }
            row_max
        });
        std::mem::swap(&mut grid, &mut next);
        if delta < tol {
            return (grid, sweep + 1);
        }
    }
    (grid, max_sweeps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_stay_fixed() {
        let (g, _) = relax_seq(Grid::hot_top(10, 8), 1e-9, 200);
        for x in 0..10 {
            assert_eq!(g.get(x, 0), 100.0, "hot edge must persist");
            assert_eq!(g.get(x, 7), 0.0, "cold edge must persist");
        }
    }

    #[test]
    fn interior_warms_monotonically_from_hot_edge() {
        let (g, _) = relax_seq(Grid::hot_top(12, 12), 1e-10, 2000);
        // Temperature decreases with distance from the hot edge along
        // the centre column.
        let mid = 6;
        for y in 1..10 {
            assert!(
                g.get(mid, y) > g.get(mid, y + 1),
                "temperature must fall away from the hot edge"
            );
        }
        // Interior values bounded by boundary extremes.
        for y in 1..11 {
            for x in 1..11 {
                assert!(g.get(x, y) > 0.0 && g.get(x, y) < 100.0);
            }
        }
    }

    #[test]
    fn converged_solution_is_harmonic() {
        // At convergence every interior cell equals its neighbour
        // average (discrete Laplace equation).
        let (g, sweeps) = relax_seq(Grid::hot_top(10, 10), 1e-12, 10_000);
        assert!(sweeps < 10_000, "must converge");
        for y in 1..9 {
            for x in 1..9 {
                let avg =
                    0.25 * (g.get(x - 1, y) + g.get(x + 1, y) + g.get(x, y - 1) + g.get(x, y + 1));
                assert!((g.get(x, y) - avg).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let team = Team::new(3);
        let start = Grid::hot_top(20, 16);
        let (gs, ss) = relax_seq(start.clone(), 1e-8, 500);
        let (gp, sp) = relax_par(&team, start, 1e-8, 500);
        assert_eq!(ss, sp, "same sweep count");
        assert!(gs.max_diff(&gp) < 1e-12, "bitwise-comparable fields");
    }

    #[test]
    fn symmetric_problem_stays_symmetric() {
        let team = Team::new(2);
        let (g, _) = relax_par(&team, Grid::hot_top(15, 11), 1e-10, 2000);
        // Left-right mirror symmetry of the boundary conditions.
        for y in 0..11 {
            for x in 0..7 {
                assert!((g.get(x, y) - g.get(14 - x, y)).abs() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "3x3")]
    fn tiny_grid_rejected() {
        let _ = Grid::new(2, 5);
    }
}
