//! Task-graph reconstruction: from recorded causality to a DAG.
//!
//! The trace records four causal facts: `task.spawn` marks carry the
//! span active on the spawning thread (`parent_span`), `task.run`
//! spans tie a task id to its execution, `region.member` spans nest
//! `barrier.wait` spans, and `barrier.release` marks close each wait.
//! [`TaskGraph::build`] turns those into a dependence DAG whose node
//! *labels* are canonical — derived from the spawn tree and per-member
//! barrier ordinals, never from runtime-assigned ids or timestamps —
//! so the same seeded workload yields a bit-identical graph across
//! reruns *and* across worker-pool sizes:
//!
//! * **tasks** — `task/<i>/<j>/...`: root ordinal, then child
//!   ordinals in spawn order. All spawns charged to one parent span
//!   are recorded on the lane executing that span, so their relative
//!   order survives the time-sorted merge deterministically.
//! * **sources** — `src:root` for spawns outside any span, and
//!   `src:<kind>#<n>` for non-task spans (a crawl, a retry op) that
//!   spawned tasks.
//! * **segments** — `seg:m<member>#<r>.<s>`: the parts of member
//!   `m`'s `r`-th region span between its barrier waits.
//! * **barrier episodes** — `barrier:<r>.<w>`: member `m`'s `w`-th
//!   wait in region `r` belongs to episode `(r, w)`; segments
//!   *arrive* into the episode and the episode *releases* the next
//!   segments.
//!
//! Each node carries two weights. `wall_ns` is the human truth (self
//! time for tasks, window length for segments, the last-arriver wait
//! for episodes) and varies run to run. `logical` is the determinism
//! contract: `1 +` the number of *stable* marks charged to the node —
//! spawns (via `parent_span`), fetch results, injected faults, retry
//! waits and barrier releases — all of which are seed-determined,
//! while interleaving-dependent marks (steals, dynamic chunk
//! dispatches, task outcomes) are excluded. Critical paths over
//! `logical` weights are therefore rerun-stable and feed the
//! fingerprint gates.
//!
//! Join edges (child → parent, the implicit dependence of fork/join)
//! are recorded for graph consumers but excluded from longest-path
//! traversal — together with their spawn edges they would form
//! 2-cycles.

use std::collections::BTreeMap;

use parc_trace::{EventKind, MarkKind, SpanKind};
use parc_util::rng::SplitMix64;

use crate::store::TraceStore;

/// What a graph node stands for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum NodeKind {
    /// A non-task origin of spawns (`src:root`, `src:crawl#0`, …).
    Source,
    /// One spawned task (backed by its `task.run` span when present).
    Task,
    /// One member's region slice between two barrier waits.
    Segment,
    /// One completed barrier episode (all members of one wait round).
    Barrier,
}

impl NodeKind {
    /// Stable label for export and hashing.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            NodeKind::Source => "source",
            NodeKind::Task => "task",
            NodeKind::Segment => "segment",
            NodeKind::Barrier => "barrier",
        }
    }
}

/// One node of the reconstructed dependence graph.
#[derive(Clone, Debug)]
pub struct Node {
    /// Canonical label (see module docs) — the node's identity.
    pub label: String,
    /// What the node stands for.
    pub kind: NodeKind,
    /// Backing span id (0 for barrier episodes and `src:root`).
    pub span: u64,
    /// Deterministic weight: `1 +` stable marks charged to the node.
    pub logical: u64,
    /// Wall-clock weight in nanoseconds (varies run to run).
    pub wall_ns: u64,
}

/// How one recorded causality edge arose.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeKind {
    /// Parent (task/source/segment) spawned the child task.
    Spawn,
    /// Child task joins back into its spawner (fork/join implicit
    /// dependence). Excluded from longest-path traversal.
    Join,
    /// A segment arrived at a barrier episode.
    Arrive,
    /// A barrier episode released the member's next segment.
    Release,
}

impl EdgeKind {
    /// Stable label for export and hashing.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EdgeKind::Spawn => "spawn",
            EdgeKind::Join => "join",
            EdgeKind::Arrive => "arrive",
            EdgeKind::Release => "release",
        }
    }
}

/// One directed edge, by node index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Index of the origin node in [`TaskGraph::nodes`].
    pub from: usize,
    /// Index of the target node.
    pub to: usize,
    /// Why the edge exists.
    pub kind: EdgeKind,
}

/// The reconstructed task dependence graph. Nodes are sorted by
/// label; edges by `(from, kind, to)` — both orders are part of the
/// determinism contract.
#[derive(Clone, Debug, Default)]
pub struct TaskGraph {
    /// All nodes, sorted by label.
    pub nodes: Vec<Node>,
    /// All edges, sorted by `(from, kind, to)`.
    pub edges: Vec<Edge>,
    index: BTreeMap<String, usize>,
}

/// Marks whose counts are seed-determined (not interleaving-
/// dependent) and may therefore contribute to `logical` weights.
/// `task.spawn` is handled separately via its explicit `parent_span`.
const STABLE_MARKS: [&str; 4] =
    ["fetch.result", "fault.injected", "retry.wait", "barrier.release"];

/// Where a spawn (or stable mark) gets charged.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Charge {
    /// The root source node (spawns outside any span).
    Root,
    /// A task, by task id.
    Task(u64),
    /// Segment `seg_idx` of the region span `span_id`.
    Segment(u64, usize),
    /// A non-task, non-region source span.
    SourceSpan(u64),
}

/// Scratch describing one region span's barrier structure.
struct RegionInfo {
    member: u32,
    /// Per-member region ordinal.
    ordinal: usize,
    /// Optional track disambiguator (set when several tracks have
    /// regions).
    prefix: String,
    /// Segment windows `[start, end)` — `waits + 1` of them.
    segments: Vec<(u64, u64)>,
    /// Wait span ids, in order (wait `w` sits between segments `w`
    /// and `w + 1`).
    waits: Vec<u64>,
}

impl RegionInfo {
    fn segment_label(&self, s: usize) -> String {
        format!("{}seg:m{}#{}.{}", self.prefix, self.member, self.ordinal, s)
    }

    /// Which segment a timestamp inside the region falls in.
    fn segment_of_ts(&self, ts: u64) -> usize {
        let hit = self
            .segments
            .iter()
            .position(|(lo, hi)| *lo <= ts && (ts < *hi || lo == hi));
        hit.unwrap_or_else(|| {
            // Between a wait's start and end, or past the region end:
            // charge the following (resp. last) segment.
            self.segments
                .iter()
                .position(|(lo, _)| ts < *lo)
                .unwrap_or(self.segments.len() - 1)
        })
    }
}

impl TaskGraph {
    /// Reconstruct the dependence graph from an indexed trace. See the
    /// module docs for the node/edge/label derivation rules.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn build(store: &TraceStore) -> TaskGraph {
        // --- Task identity: task id <-> run span.
        let mut run_span_of_task: BTreeMap<u64, u64> = BTreeMap::new();
        let mut task_of_span: BTreeMap<u64, u64> = BTreeMap::new();
        for s in store.spans() {
            if let SpanKind::TaskRun { task } = s.span.what {
                run_span_of_task.entry(task).or_insert(s.span.id);
                task_of_span.insert(s.span.id, task);
            }
        }

        // --- Regions: per (track, member) ordinal, segment windows.
        let mut region_spans: Vec<&crate::store::StoredSpan> = store
            .spans()
            .filter(|s| matches!(s.span.what, SpanKind::Region { .. }))
            .collect();
        // Lane recording order = begin-event order.
        region_spans.sort_by_key(|s| s.begin_idx);
        let region_pids: std::collections::BTreeSet<u32> =
            region_spans.iter().map(|s| s.span.pid).collect();
        let multi_track = region_pids.len() > 1;
        let pid_ordinal: BTreeMap<u32, usize> =
            region_pids.iter().enumerate().map(|(i, p)| (*p, i)).collect();
        let mut per_member_count: BTreeMap<(u32, u32), usize> = BTreeMap::new();
        let mut regions: BTreeMap<u64, RegionInfo> = BTreeMap::new();
        for r in &region_spans {
            let SpanKind::Region { member } = r.span.what else { unreachable!() };
            let ordinal_key = (r.span.pid, member);
            let ordinal = *per_member_count
                .entry(ordinal_key)
                .and_modify(|c| *c += 1)
                .or_insert(0);
            let prefix = if multi_track {
                format!("t{}.", pid_ordinal[&r.span.pid])
            } else {
                String::new()
            };
            let waits: Vec<u64> = r
                .children
                .iter()
                .copied()
                .filter(|c| {
                    store
                        .span(*c)
                        .is_some_and(|s| matches!(s.span.what, SpanKind::BarrierWait { .. }))
                })
                .collect();
            let mut segments = Vec::with_capacity(waits.len() + 1);
            let mut cursor = r.span.start_ns;
            for w in &waits {
                let wspan = &store.span(*w).expect("wait span stored").span;
                segments.push((cursor, wspan.start_ns.max(cursor)));
                cursor = wspan.end_ns.max(cursor);
            }
            segments.push((cursor, r.span.end_ns.max(cursor)));
            regions.insert(r.span.id, RegionInfo { member, ordinal, prefix, segments, waits });
        }

        // --- Spawn records, in event order.
        struct Spawn {
            task: u64,
            charge: Charge,
        }
        let mut spawns: Vec<Spawn> = Vec::new();
        let mut source_spans: BTreeMap<u64, ()> = BTreeMap::new();
        for &i in store.kind_indices("task.spawn") {
            let EventKind::Mark { what: MarkKind::TaskSpawn { task, parent_span } } =
                store.events()[i].kind
            else {
                continue;
            };
            let ts = store.events()[i].ts_ns;
            let charge = charge_for_span(
                parent_span,
                ts,
                &task_of_span,
                &regions,
                store,
                &mut source_spans,
            );
            spawns.push(Spawn { task, charge });
        }

        // --- Canonical task labels from the spawn tree.
        let mut label_of_task: BTreeMap<u64, String> = BTreeMap::new();
        let mut spawner_of_task: BTreeMap<u64, Charge> = BTreeMap::new();
        let mut root_count = 0usize;
        let mut child_count: BTreeMap<u64, usize> = BTreeMap::new();
        for sp in &spawns {
            if spawner_of_task.contains_key(&sp.task) {
                continue; // duplicate spawn mark: keep the first
            }
            spawner_of_task.insert(sp.task, sp.charge.clone());
            let label = match &sp.charge {
                Charge::Task(parent) => {
                    let j = child_count.entry(*parent).and_modify(|c| *c += 1).or_insert(0);
                    match label_of_task.get(parent) {
                        Some(pl) => format!("{pl}/{j}"),
                        // Parent task itself was never spawn-marked
                        // (e.g. its spawn dropped): treat as a root.
                        None => {
                            let i = root_count;
                            root_count += 1;
                            format!("task/{i}")
                        }
                    }
                }
                _ => {
                    let i = root_count;
                    root_count += 1;
                    format!("task/{i}")
                }
            };
            label_of_task.insert(sp.task, label);
        }
        // Tasks with a run span but no spawn mark (lost to ring
        // overflow): still representable, labelled by appearance.
        let mut orphans: Vec<u64> = run_span_of_task
            .keys()
            .filter(|t| !label_of_task.contains_key(t))
            .copied()
            .collect();
        orphans.sort_by_key(|t| store.span(run_span_of_task[t]).map_or(0, |s| s.begin_idx));
        for (orphan, t) in orphans.into_iter().enumerate() {
            label_of_task.insert(t, format!("task/orphan#{orphan}"));
        }

        // --- Stable-mark counts per charge target.
        let mut stable: BTreeMap<Charge, u64> = BTreeMap::new();
        for s in store.spans() {
            for &mi in &s.marks {
                let name = store.events()[mi].name();
                if !STABLE_MARKS.contains(&name) {
                    continue;
                }
                let ts = store.events()[mi].ts_ns;
                // Walk up from the attributed span to the nearest span
                // that is (or buckets into) a graph node.
                let mut cur = s.span.id;
                let charge = loop {
                    if cur == 0 {
                        break None;
                    }
                    if let Some(task) = task_of_span.get(&cur) {
                        break Some(Charge::Task(*task));
                    }
                    if let Some(info) = regions.get(&cur) {
                        break Some(Charge::Segment(cur, info.segment_of_ts(ts)));
                    }
                    if source_spans.contains_key(&cur) {
                        break Some(Charge::SourceSpan(cur));
                    }
                    match store.span(cur) {
                        Some(sp) => cur = sp.span.parent,
                        None => break None,
                    }
                };
                if let Some(c) = charge {
                    *stable.entry(c).or_insert(0) += 1;
                }
            }
        }
        // Spawn counts, charged via the explicit parent_span link.
        let mut spawn_count: BTreeMap<Charge, u64> = BTreeMap::new();
        for sp in &spawns {
            *spawn_count.entry(sp.charge.clone()).or_insert(0) += 1;
        }

        // --- Materialise nodes.
        let mut nodes: Vec<Node> = Vec::new();
        let logical_of = |charge: &Charge| {
            1 + stable.get(charge).copied().unwrap_or(0)
                + spawn_count.get(charge).copied().unwrap_or(0)
        };
        if spawns.iter().any(|s| s.charge == Charge::Root) {
            nodes.push(Node {
                label: "src:root".to_string(),
                kind: NodeKind::Source,
                span: 0,
                logical: logical_of(&Charge::Root),
                wall_ns: 0,
            });
        }
        // Source ordinals per kind, in first-spawn order.
        let mut source_ord: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut source_label: BTreeMap<u64, String> = BTreeMap::new();
        for sp in &spawns {
            if let Charge::SourceSpan(id) = sp.charge {
                if source_label.contains_key(&id) {
                    continue;
                }
                let kind = store.span(id).map_or("unknown", |s| s.span.what.name());
                let ord = *source_ord
                    .entry(store.span(id).map_or("unknown", |s| s.span.what.name()))
                    .and_modify(|c| *c += 1)
                    .or_insert(0);
                let label = format!("src:{kind}#{ord}");
                source_label.insert(id, label.clone());
                nodes.push(Node {
                    label,
                    kind: NodeKind::Source,
                    span: id,
                    logical: logical_of(&Charge::SourceSpan(id)),
                    wall_ns: store.self_time_ns(id),
                });
            }
        }
        for (task, label) in &label_of_task {
            let span = run_span_of_task.get(task).copied().unwrap_or(0);
            nodes.push(Node {
                label: label.clone(),
                kind: NodeKind::Task,
                span,
                logical: logical_of(&Charge::Task(*task)),
                wall_ns: store.self_time_ns(span),
            });
        }
        for (rid, info) in &regions {
            for (s, (lo, hi)) in info.segments.iter().enumerate() {
                nodes.push(Node {
                    label: info.segment_label(s),
                    kind: NodeKind::Segment,
                    span: *rid,
                    logical: logical_of(&Charge::Segment(*rid, s)),
                    wall_ns: hi.saturating_sub(*lo),
                });
            }
        }
        // Barrier episodes: member m's w-th wait in region r belongs
        // to episode (r, w). Wall weight = the shortest member wait
        // (the last arriver's — the serial cost of the episode).
        let mut episode_min_wait: BTreeMap<(String, usize, usize), u64> = BTreeMap::new();
        for info in regions.values() {
            for (w, wid) in info.waits.iter().enumerate() {
                let dur = store.span(*wid).map_or(0, |s| s.span.duration_ns());
                episode_min_wait
                    .entry((info.prefix.clone(), info.ordinal, w))
                    .and_modify(|m| *m = (*m).min(dur))
                    .or_insert(dur);
            }
        }
        for ((prefix, r, w), min_wait) in &episode_min_wait {
            nodes.push(Node {
                label: format!("{prefix}barrier:{r}.{w}"),
                kind: NodeKind::Barrier,
                span: 0,
                logical: 1,
                wall_ns: *min_wait,
            });
        }

        nodes.sort_by(|a, b| a.label.cmp(&b.label));
        let index: BTreeMap<String, usize> =
            nodes.iter().enumerate().map(|(i, n)| (n.label.clone(), i)).collect();

        // --- Edges, as label pairs first.
        let charge_label = |charge: &Charge| -> Option<String> {
            match charge {
                Charge::Root => Some("src:root".to_string()),
                Charge::Task(t) => label_of_task.get(t).cloned(),
                Charge::Segment(rid, s) => regions.get(rid).map(|i| i.segment_label(*s)),
                Charge::SourceSpan(id) => source_label.get(id).cloned(),
            }
        };
        let mut edge_labels: Vec<(String, String, EdgeKind)> = Vec::new();
        for (task, charge) in &spawner_of_task {
            let (Some(from), Some(to)) = (charge_label(charge), label_of_task.get(task)) else {
                continue;
            };
            edge_labels.push((from.clone(), to.clone(), EdgeKind::Spawn));
            edge_labels.push((to.clone(), from, EdgeKind::Join));
        }
        for info in regions.values() {
            for w in 0..info.waits.len() {
                let episode = format!("{}barrier:{}.{}", info.prefix, info.ordinal, w);
                edge_labels.push((info.segment_label(w), episode.clone(), EdgeKind::Arrive));
                edge_labels.push((episode, info.segment_label(w + 1), EdgeKind::Release));
            }
        }
        let mut edges: Vec<Edge> = edge_labels
            .into_iter()
            .filter_map(|(from, to, kind)| {
                Some(Edge { from: *index.get(&from)?, to: *index.get(&to)?, kind })
            })
            .collect();
        edges.sort_by_key(|e| (e.from, e.kind, e.to));
        edges.dedup();

        TaskGraph { nodes, edges, index }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// True when the trace produced no graph nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Index of the node with this canonical label.
    #[must_use]
    pub fn node_index(&self, label: &str) -> Option<usize> {
        self.index.get(label).copied()
    }

    /// Deterministic digest of the canonical structure: labels, kinds,
    /// logical weights and edges — everything except wall-clock
    /// weights. Bit-identical across reruns and pool sizes for the
    /// same seeded workload.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0x1A5B_u64;
        for n in &self.nodes {
            for b in n.label.bytes() {
                h = SplitMix64::mix(h ^ u64::from(b));
            }
            h = SplitMix64::mix(h ^ n.kind as u64);
            h = SplitMix64::mix(h ^ n.logical);
        }
        for e in &self.edges {
            h = SplitMix64::mix(
                h ^ (e.from as u64) ^ ((e.to as u64) << 20) ^ ((e.kind as u64) << 40),
            );
        }
        h
    }
}

/// Resolve the span a spawn/mark was charged to into a graph-level
/// charge target, registering new source spans on the way.
fn charge_for_span(
    span_id: u64,
    ts: u64,
    task_of_span: &BTreeMap<u64, u64>,
    regions: &BTreeMap<u64, RegionInfo>,
    store: &TraceStore,
    source_spans: &mut BTreeMap<u64, ()>,
) -> Charge {
    if span_id == 0 {
        return Charge::Root;
    }
    if let Some(task) = task_of_span.get(&span_id) {
        return Charge::Task(*task);
    }
    if let Some(info) = regions.get(&span_id) {
        return Charge::Segment(span_id, info.segment_of_ts(ts));
    }
    if store.span(span_id).is_some() {
        source_spans.insert(span_id, ());
        Charge::SourceSpan(span_id)
    } else {
        // The spawning span's begin event was dropped: fall back to
        // the root source rather than losing the task.
        Charge::Root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parc_trace::{Collector, MarkKind, SpanKind, Trace, TraceHandle};

    /// Emit a deterministic two-level task tree:
    /// `src:root → task/0 → {task/0/0, task/0/1}` with run spans.
    fn spawn_tree_trace() -> Trace {
        let col = Collector::new();
        let h = col.handle();
        let pid = h.register_track("demo");
        h.mark(pid, MarkKind::TaskSpawn { task: 10, parent_span: 0 });
        {
            let run = h.span(pid, SpanKind::TaskRun { task: 10 });
            h.mark(pid, MarkKind::TaskSpawn { task: 20, parent_span: run.id() });
            h.mark(pid, MarkKind::TaskSpawn { task: 30, parent_span: run.id() });
        }
        drop(h.span(pid, SpanKind::TaskRun { task: 20 }));
        drop(h.span(pid, SpanKind::TaskRun { task: 30 }));
        col.snapshot()
    }

    /// One two-member region with two barrier waits per member,
    /// emitted sequentially on two lanes via scoped threads.
    fn barrier_trace() -> Trace {
        let col = Collector::new();
        let h = col.handle();
        let pid = h.register_track("pyjama");
        let emit_member = |h: &TraceHandle, member: u32| {
            let _region = h.span(pid, SpanKind::Region { member });
            for _ in 0..2 {
                drop(h.span(pid, SpanKind::BarrierWait { member }));
                h.mark(pid, MarkKind::BarrierRelease { member, waited_ns: 5 });
            }
        };
        std::thread::scope(|s| {
            for m in 0..2u32 {
                let h = h.clone();
                s.spawn(move || emit_member(&h, m));
            }
        });
        col.snapshot()
    }

    #[test]
    fn spawn_tree_gets_canonical_labels_and_edges() {
        let store = TraceStore::new(spawn_tree_trace());
        let g = TaskGraph::build(&store);
        for label in ["src:root", "task/0", "task/0/0", "task/0/1"] {
            assert!(g.node_index(label).is_some(), "missing {label} in {:?}",
                g.nodes.iter().map(|n| &n.label).collect::<Vec<_>>());
        }
        assert_eq!(g.node_count(), 4);
        let spawn_edges = g.edges.iter().filter(|e| e.kind == EdgeKind::Spawn).count();
        let join_edges = g.edges.iter().filter(|e| e.kind == EdgeKind::Join).count();
        assert_eq!(spawn_edges, 3);
        assert_eq!(join_edges, 3, "every spawn has a fork/join back edge");
        // src:root -> task/0
        let root = g.node_index("src:root").unwrap();
        let t0 = g.node_index("task/0").unwrap();
        assert!(g
            .edges
            .iter()
            .any(|e| e.from == root && e.to == t0 && e.kind == EdgeKind::Spawn));
        // Logical weights: task/0 spawned 2 children -> 3; leaves -> 1;
        // root spawned 1 -> 2.
        assert_eq!(g.nodes[t0].logical, 3);
        assert_eq!(g.nodes[root].logical, 2);
        assert_eq!(g.nodes[g.node_index("task/0/0").unwrap()].logical, 1);
    }

    #[test]
    fn barrier_waits_group_into_episodes_and_segments() {
        let store = TraceStore::new(barrier_trace());
        let g = TaskGraph::build(&store);
        // 2 members x 3 segments + 2 episodes = 8 nodes.
        for label in [
            "seg:m0#0.0", "seg:m0#0.1", "seg:m0#0.2",
            "seg:m1#0.0", "seg:m1#0.1", "seg:m1#0.2",
            "barrier:0.0", "barrier:0.1",
        ] {
            assert!(g.node_index(label).is_some(), "missing {label}");
        }
        assert_eq!(g.node_count(), 8);
        let arrives = g.edges.iter().filter(|e| e.kind == EdgeKind::Arrive).count();
        let releases = g.edges.iter().filter(|e| e.kind == EdgeKind::Release).count();
        assert_eq!(arrives, 4, "2 members x 2 waits arrive");
        assert_eq!(releases, 4, "each episode releases both next segments");
        // The release mark after each wait lands in the *next* segment:
        // segments 1 and 2 weigh 2, segment 0 weighs 1.
        assert_eq!(g.nodes[g.node_index("seg:m0#0.0").unwrap()].logical, 1);
        assert_eq!(g.nodes[g.node_index("seg:m0#0.1").unwrap()].logical, 2);
        assert_eq!(g.nodes[g.node_index("seg:m0#0.2").unwrap()].logical, 2);
    }

    #[test]
    fn fingerprint_is_stable_across_identical_builds() {
        let a = TaskGraph::build(&TraceStore::new(spawn_tree_trace()));
        let b = TaskGraph::build(&TraceStore::new(spawn_tree_trace()));
        assert_eq!(a.fingerprint(), b.fingerprint(), "same structure, same digest");
        let c = TaskGraph::build(&TraceStore::new(barrier_trace()));
        let d = TaskGraph::build(&TraceStore::new(barrier_trace()));
        assert_eq!(c.fingerprint(), d.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint(), "different structure differs");
    }

    #[test]
    fn non_task_spawning_span_becomes_a_source() {
        let col = Collector::new();
        let h = col.handle();
        let pid = h.register_track("websim");
        {
            let crawl = h.span(pid, SpanKind::Crawl { pages: 2 });
            h.mark(pid, MarkKind::TaskSpawn { task: 1, parent_span: crawl.id() });
            h.mark(pid, MarkKind::TaskSpawn { task: 2, parent_span: crawl.id() });
        }
        drop(h.span(pid, SpanKind::TaskRun { task: 1 }));
        drop(h.span(pid, SpanKind::TaskRun { task: 2 }));
        let g = TaskGraph::build(&TraceStore::new(col.snapshot()));
        let src = g.node_index("src:crawl#0").expect("crawl source node");
        assert_eq!(g.nodes[src].kind, NodeKind::Source);
        assert_eq!(g.nodes[src].logical, 3, "1 + two spawns");
        assert!(g.node_index("task/0").is_some());
        assert!(g.node_index("task/1").is_some());
        assert!(g.node_index("src:root").is_none(), "no root spawns here");
    }

    #[test]
    fn orphan_run_spans_survive_without_spawn_marks() {
        let col = Collector::new();
        let h = col.handle();
        drop(h.span(1, SpanKind::TaskRun { task: 77 }));
        let g = TaskGraph::build(&TraceStore::new(col.snapshot()));
        assert_eq!(g.node_count(), 1);
        assert!(g.nodes[0].label.starts_with("task/orphan#"));
    }

    #[test]
    fn empty_trace_builds_an_empty_graph() {
        let g = TaskGraph::build(&TraceStore::new(Trace::default()));
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
        // Still a defined digest (of nothing).
        assert_eq!(g.fingerprint(), TaskGraph::default().fingerprint());
    }
}
