//! parc-inspect — after-the-fact observability for parc traces.
//!
//! The tracing layer ([`parc_trace`]) records flat per-thread event
//! rings; the explorer ([`parc_explore`]) records logical schedules.
//! This crate turns both into *answers*:
//!
//! * [`store::TraceStore`] — promote a [`parc_trace::Trace`] snapshot
//!   into a queryable in-memory store, indexed by span id, track/lane,
//!   event kind and time interval, with mark-to-span attribution and
//!   self-time accounting.
//! * [`graph::TaskGraph`] — reconstruct the task dependence graph
//!   from recorded causality (spawn marks, run spans, barrier waits
//!   and releases), with canonical spawn-tree labels that are
//!   bit-identical across reruns and worker-pool sizes.
//! * [`critical::CriticalReport`] — longest weighted path, per-node
//!   slack, and the per-kind attribution table ("barrier.wait = 42%
//!   of wall clock"), rendered as tables and exported as JSON with a
//!   rerun-stable `deterministic` section.
//! * [`replay::TimeTravel`] / [`replay::diff_schedules`] — drive a
//!   recorded schedule forward and backward through the cooperative
//!   scheduler, and pinpoint the first divergent decision between two
//!   runs plus its downstream metric deltas.
//!
//! The teaching angle (the paper's E-DEBUG exercise): students
//! *measure* where a parallel program's time went instead of guessing
//! — the critical path names the chain that bounded the run, slack
//! quantifies what could have been slower for free, and time-travel
//! replay lets them walk the exact interleaving that produced a bug.

#![warn(missing_docs)]

pub mod critical;
pub mod graph;
pub mod replay;
pub mod store;

pub use critical::{AttributionRow, CriticalPath, CriticalReport, PathEntry};
pub use graph::{Edge, EdgeKind, Node, NodeKind, TaskGraph};
pub use replay::{diff_schedules, ScheduleDiff, TimeTravel};
pub use store::{StoredSpan, TraceStore};

/// Convenience: index a trace, rebuild its task graph and analyse the
/// critical path in one call.
#[must_use]
pub fn analyze(trace: parc_trace::Trace) -> (TraceStore, TaskGraph, CriticalReport) {
    let store = TraceStore::new(trace);
    let graph = TaskGraph::build(&store);
    let report = CriticalReport::analyze(&store, &graph);
    (store, graph, report)
}
