//! Critical-path analysis over the reconstructed task graph.
//!
//! The analysis runs twice over the same DAG with two weight
//! functions:
//!
//! * **logical** weights (`Node::logical`) are seed-determined, so
//!   the longest path, its total, and per-node slack are bit-identical
//!   across reruns and pool sizes — they feed the determinism gates
//!   and [`CriticalReport::deterministic_json`].
//! * **wall** weights (`Node::wall_ns`) are the human truth — where
//!   the nanoseconds actually went — and vary run to run. They feed
//!   the rendered report and the `wall_clock` JSON section.
//!
//! Join edges are excluded from the traversal (a spawn edge plus its
//! join back-edge would form a 2-cycle); they remain in the graph for
//! other consumers. The attribution table answers the classroom
//! question "what fraction of the run went to barrier waits?": each
//! span kind's *self* time (children subtracted) divided by total
//! capacity (wall clock × active lanes), so the shares of all kinds
//! sum to at most 100%.

use std::collections::BTreeSet;

use parc_trace::json_escape;
use parc_util::table::Table;

use crate::graph::{EdgeKind, TaskGraph};
use crate::store::TraceStore;

/// One node on a longest path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathEntry {
    /// Index into [`TaskGraph::nodes`].
    pub node: usize,
    /// The node's own weight under the analysed weight function.
    pub weight: u64,
    /// Longest-path distance *through* this node (inclusive).
    pub cumulative: u64,
}

/// A longest weighted path plus per-node slack, for one weight
/// function.
#[derive(Clone, Debug, Default)]
pub struct CriticalPath {
    /// Total weight of the longest path.
    pub total: u64,
    /// The path itself, source first.
    pub entries: Vec<PathEntry>,
    /// `slack[i]` = how much node `i`'s weight could grow without
    /// lengthening the critical path. Zero for on-path nodes.
    pub slack: Vec<u64>,
}

impl CriticalPath {
    /// Longest weighted path through `graph` under `weight`, ignoring
    /// [`EdgeKind::Join`] edges. Deterministic: ties are broken toward
    /// the smallest node index, and nodes are label-sorted.
    #[must_use]
    pub fn compute(graph: &TaskGraph, weight: impl Fn(usize) -> u64) -> CriticalPath {
        let n = graph.node_count();
        if n == 0 {
            return CriticalPath::default();
        }
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        for e in &graph.edges {
            if e.kind == EdgeKind::Join {
                continue;
            }
            succs[e.from].push(e.to);
            preds[e.to].push(e.from);
            indeg[e.to] += 1;
        }

        // Forward pass: Kahn with an ordered ready set.
        let mut ready: BTreeSet<usize> =
            (0..n).filter(|i| indeg[*i] == 0).collect();
        let mut topo: Vec<usize> = Vec::with_capacity(n);
        let mut dist = vec![0u64; n];
        let mut best_pred: Vec<Option<usize>> = vec![None; n];
        let mut remaining = indeg;
        while let Some(&u) = ready.iter().next() {
            ready.remove(&u);
            topo.push(u);
            dist[u] += weight(u);
            for &v in &succs[u] {
                if dist[u] > dist[v] || (dist[u] == dist[v] && best_pred[v].is_none()) {
                    dist[v] = dist[u];
                    best_pred[v] = Some(u);
                }
                remaining[v] -= 1;
                if remaining[v] == 0 {
                    ready.insert(v);
                }
            }
        }
        // A cycle through non-join edges cannot arise from the
        // reconstruction rules; if one ever did, the unprocessed nodes
        // simply keep dist = 0 and stay off the path.

        let mut end = 0usize;
        for i in 0..n {
            if dist[i] > dist[end] {
                end = i;
            }
        }
        let total = dist[end];

        // Backward pass for slack: longest tail starting at each node.
        let mut tail = vec![0u64; n];
        for &u in topo.iter().rev() {
            let best = succs[u].iter().map(|&v| tail[v]).max().unwrap_or(0);
            tail[u] = best + weight(u);
        }
        let slack: Vec<u64> = (0..n)
            .map(|i| total.saturating_sub(dist[i] + tail[i] - weight(i)))
            .collect();

        let mut rev = Vec::new();
        let mut cur = Some(end);
        while let Some(u) = cur {
            rev.push(PathEntry { node: u, weight: weight(u), cumulative: dist[u] });
            cur = best_pred[u];
        }
        rev.reverse();
        CriticalPath { total, entries: rev, slack }
    }

    /// Number of nodes on the path.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the graph was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One row of the per-kind wall-clock attribution table.
#[derive(Clone, Debug)]
pub struct AttributionRow {
    /// Span kind (`task.run`, `barrier.wait`, …).
    pub kind: &'static str,
    /// Total self time across all spans of this kind, nanoseconds.
    pub self_ns: u64,
    /// Share of total capacity (wall clock × active lanes), percent.
    pub share_pct: f64,
}

/// The full critical-path analysis of one trace: deterministic
/// (logical) and wall-clock views plus the attribution table.
#[derive(Clone, Debug)]
pub struct CriticalReport {
    /// Longest path under logical weights — rerun-stable.
    pub logical: CriticalPath,
    /// Longest path under wall-clock self-time weights.
    pub wall: CriticalPath,
    /// Per-kind wall-clock attribution, heaviest first.
    pub attribution: Vec<AttributionRow>,
    /// Trace wall clock (first to last event), nanoseconds.
    pub wall_ns: u64,
    /// Lanes that owned at least one span.
    pub active_lanes: usize,
    /// The graph's structural fingerprint (see
    /// [`TaskGraph::fingerprint`]).
    pub fingerprint: u64,
    labels: Vec<(String, &'static str)>,
}

impl CriticalReport {
    /// Analyse `graph` (reconstructed from `store`) end to end.
    #[must_use]
    pub fn analyze(store: &TraceStore, graph: &TaskGraph) -> CriticalReport {
        let logical = CriticalPath::compute(graph, |i| graph.nodes[i].logical);
        let wall = CriticalPath::compute(graph, |i| graph.nodes[i].wall_ns);
        let wall_ns = store.wall_ns();
        let active_lanes = store.active_lanes().max(1);
        let capacity = (wall_ns as f64) * (active_lanes as f64);
        let mut attribution: Vec<AttributionRow> = store
            .kind_self_time()
            .into_iter()
            .map(|(kind, self_ns)| AttributionRow {
                kind,
                self_ns,
                share_pct: if capacity > 0.0 {
                    (self_ns as f64) / capacity * 100.0
                } else {
                    0.0
                },
            })
            .collect();
        attribution.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.kind.cmp(b.kind)));
        CriticalReport {
            logical,
            wall,
            attribution,
            wall_ns,
            active_lanes,
            fingerprint: graph.fingerprint(),
            labels: graph
                .nodes
                .iter()
                .map(|n| (n.label.clone(), n.kind.name()))
                .collect(),
        }
    }

    /// Sum of all attribution shares, percent. The disjointness of
    /// per-lane span nesting guarantees this stays at or below 100
    /// (up to float rounding).
    #[must_use]
    pub fn attribution_total_pct(&self) -> f64 {
        self.attribution.iter().map(|r| r.share_pct).sum()
    }

    /// Share of one span kind, percent (0 when the kind never ran).
    #[must_use]
    pub fn share_of(&self, kind: &str) -> f64 {
        self.attribution
            .iter()
            .find(|r| r.kind == kind)
            .map_or(0.0, |r| r.share_pct)
    }

    /// Render the human report: critical path (wall weights) and
    /// attribution tables via [`parc_util::table`].
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "critical path: fingerprint=0x{:016x} logical_total={} wall_total={:.3} ms over {} lanes\n",
            self.fingerprint,
            self.logical.total,
            self.wall.total as f64 / 1e6,
            self.active_lanes,
        ));
        let mut path = Table::new("critical path (wall-clock weights)",
            &["#", "node", "kind", "self ms", "cum ms", "logical"]);
        for (rank, e) in self.wall.entries.iter().enumerate() {
            let (label, kind) = &self.labels[e.node];
            path.row(&[
                rank.to_string(),
                label.clone(),
                (*kind).to_string(),
                format!("{:.3}", e.weight as f64 / 1e6),
                format!("{:.3}", e.cumulative as f64 / 1e6),
                self.logical.slack.get(e.node).map_or_else(String::new, |s| {
                    if *s == 0 { "on-path".to_string() } else { format!("slack {s}") }
                }),
            ]);
        }
        out.push_str(&path.render());
        out.push('\n');
        let mut attr = Table::new("wall-clock attribution by span kind",
            &["kind", "self ms", "share"]);
        for r in &self.attribution {
            attr.row(&[
                r.kind.to_string(),
                format!("{:.3}", r.self_ns as f64 / 1e6),
                format!("{:5.1}%", r.share_pct),
            ]);
        }
        out.push_str(&attr.render());
        out.push_str(&format!(
            "\nattributed {:.1}% of {} lanes x {:.3} ms capacity\n",
            self.attribution_total_pct(),
            self.active_lanes,
            self.wall_ns as f64 / 1e6,
        ));
        out
    }

    /// The rerun-stable slice of the report as canonical JSON: graph
    /// fingerprint, logical total, the logical critical path's labels,
    /// and the count of zero-slack nodes. Bit-identical across reruns
    /// and pool sizes for the same seeded workload.
    #[must_use]
    pub fn deterministic_json(&self) -> String {
        let path: Vec<String> = self
            .logical
            .entries
            .iter()
            .map(|e| format!("\"{}\"", json_escape(&self.labels[e.node].0)))
            .collect();
        let zero_slack = self.logical.slack.iter().filter(|s| **s == 0).count();
        format!(
            "{{\"fingerprint\":\"0x{:016x}\",\"logical_total\":{},\"node_count\":{},\"zero_slack_nodes\":{},\"critical_path\":[{}]}}",
            self.fingerprint,
            self.logical.total,
            self.labels.len(),
            zero_slack,
            path.join(","),
        )
    }

    /// The full report as JSON: a `deterministic` section (see
    /// [`CriticalReport::deterministic_json`]) plus a `wall_clock`
    /// section with the wall path and attribution table.
    #[must_use]
    pub fn to_json(&self) -> String {
        let wall_path: Vec<String> = self
            .wall
            .entries
            .iter()
            .map(|e| {
                format!(
                    "{{\"node\":\"{}\",\"kind\":\"{}\",\"self_ns\":{},\"cumulative_ns\":{}}}",
                    json_escape(&self.labels[e.node].0),
                    self.labels[e.node].1,
                    e.weight,
                    e.cumulative,
                )
            })
            .collect();
        let attr: Vec<String> = self
            .attribution
            .iter()
            .map(|r| {
                format!(
                    "{{\"kind\":\"{}\",\"self_ns\":{},\"share_pct\":{:.4}}}",
                    r.kind, r.self_ns, r.share_pct,
                )
            })
            .collect();
        format!(
            "{{\"deterministic\":{},\"wall_clock\":{{\"total_ns\":{},\"active_lanes\":{},\"wall_path\":[{}],\"attribution\":[{}],\"attributed_pct\":{:.4}}}}}",
            self.deterministic_json(),
            self.wall_ns,
            self.active_lanes,
            wall_path.join(","),
            attr.join(","),
            self.attribution_total_pct(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Edge, EdgeKind, Node, NodeKind, TaskGraph};
    use parc_trace::{Collector, SpanKind};

    fn node(label: &str, logical: u64, wall_ns: u64) -> Node {
        Node { label: label.to_string(), kind: NodeKind::Task, span: 0, logical, wall_ns }
    }

    fn graph(nodes: Vec<Node>, edges: Vec<(usize, usize, EdgeKind)>) -> TaskGraph {
        let mut g = TaskGraph::default();
        g.nodes = nodes;
        g.edges = edges.into_iter().map(|(from, to, kind)| Edge { from, to, kind }).collect();
        g
    }

    #[test]
    fn chain_total_is_the_sum() {
        let g = graph(
            vec![node("a", 1, 10), node("b", 2, 20), node("c", 3, 30)],
            vec![(0, 1, EdgeKind::Spawn), (1, 2, EdgeKind::Spawn)],
        );
        let p = CriticalPath::compute(&g, |i| g.nodes[i].logical);
        assert_eq!(p.total, 6);
        assert_eq!(p.entries.iter().map(|e| e.node).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(p.slack.iter().all(|s| *s == 0), "everything is on a chain");
    }

    #[test]
    fn diamond_picks_the_heavy_branch_and_slacks_the_light_one() {
        // a -> {heavy, light} -> d
        let g = graph(
            vec![node("a", 1, 0), node("d", 1, 0), node("heavy", 10, 0), node("light", 4, 0)],
            vec![
                (0, 2, EdgeKind::Spawn),
                (0, 3, EdgeKind::Spawn),
                (2, 1, EdgeKind::Arrive),
                (3, 1, EdgeKind::Arrive),
            ],
        );
        let p = CriticalPath::compute(&g, |i| g.nodes[i].logical);
        assert_eq!(p.total, 12);
        assert_eq!(p.entries.iter().map(|e| e.node).collect::<Vec<_>>(), vec![0, 2, 1]);
        assert_eq!(p.slack[3], 6, "light branch can grow by heavy - light");
        assert_eq!(p.slack[0], 0);
        assert_eq!(p.slack[2], 0);
    }

    #[test]
    fn join_edges_do_not_create_cycles() {
        // Spawn a -> b plus the join back-edge b -> a: traversal must
        // terminate and still count both nodes.
        let g = graph(
            vec![node("a", 2, 0), node("b", 3, 0)],
            vec![(0, 1, EdgeKind::Spawn), (1, 0, EdgeKind::Join)],
        );
        let p = CriticalPath::compute(&g, |i| g.nodes[i].logical);
        assert_eq!(p.total, 5);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn empty_graph_yields_an_empty_path() {
        let p = CriticalPath::compute(&TaskGraph::default(), |_| 1);
        assert!(p.is_empty());
        assert_eq!(p.total, 0);
    }

    fn demo_report() -> CriticalReport {
        let col = Collector::new();
        let h = col.handle();
        let pid = h.register_track("demo");
        {
            let _outer = h.span(pid, SpanKind::TaskRun { task: 1 });
            std::thread::sleep(std::time::Duration::from_millis(1));
            drop(h.span(pid, SpanKind::BarrierWait { member: 0 }));
        }
        let store = TraceStore::new(col.snapshot());
        let graph = TaskGraph::build(&store);
        CriticalReport::analyze(&store, &graph)
    }

    #[test]
    fn attribution_shares_sum_to_at_most_100() {
        let r = demo_report();
        let total = r.attribution_total_pct();
        assert!(total <= 100.0 + 1e-6, "shares must not exceed capacity: {total}");
        assert!(r.share_of("barrier.wait") > 0.0);
        assert!(r.share_of("task.run") >= 0.0);
        assert_eq!(r.share_of("no.such.kind"), 0.0);
    }

    #[test]
    fn report_renders_and_exports_parseable_json() {
        let r = demo_report();
        let text = r.render();
        assert!(text.contains("critical path"));
        assert!(text.contains("attribution"));
        let full = parc_trace::parse_json(&r.to_json()).expect("full JSON parses");
        assert!(full.get("deterministic").is_some());
        assert!(full.get("wall_clock").is_some());
        let det = parc_trace::parse_json(&r.deterministic_json()).expect("det JSON parses");
        assert!(det.get("fingerprint").is_some());
        assert!(det.get("critical_path").is_some());
    }

    #[test]
    fn deterministic_json_is_stable_across_rebuilds() {
        // Two separate recordings of the same (timestamp-free)
        // structure must produce byte-identical deterministic JSON.
        let build = || {
            let col = Collector::new();
            let h = col.handle();
            let pid = h.register_track("demo");
            h.mark(pid, parc_trace::MarkKind::TaskSpawn { task: 1, parent_span: 0 });
            {
                let run = h.span(pid, SpanKind::TaskRun { task: 1 });
                h.mark(pid, parc_trace::MarkKind::TaskSpawn { task: 2, parent_span: run.id() });
            }
            drop(h.span(pid, SpanKind::TaskRun { task: 2 }));
            let store = TraceStore::new(col.snapshot());
            let graph = TaskGraph::build(&store);
            CriticalReport::analyze(&store, &graph).deterministic_json()
        };
        assert_eq!(build(), build());
    }
}
