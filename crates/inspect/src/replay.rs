//! Time-travel schedule replay and schedule diffing.
//!
//! Built on [`parc_explore::replay`]: an explored program runs under
//! virtual time with one logical scheduler decision per step, so a
//! recorded schedule can be re-executed to *any* prefix length — the
//! cooperative scheduler is deterministic, which makes "stepping
//! backward" simply "re-run a shorter prefix". [`TimeTravel`] wraps a
//! recording plus the program body into a cursor: `forward`, `back`
//! and `seek` reposition it, and every position exposes the executed
//! steps, the observations so far, and the *frontier* — the set of
//! operations that were runnable at the pause point, i.e. exactly the
//! choices the scheduler had.
//!
//! [`diff_schedules`] compares two recordings of the same program and
//! reports the first divergent decision (step index, what each run
//! did instead) plus the downstream consequences: step-count deltas,
//! verdict changes, and per-key observation deltas.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use parc_explore::replay::{replay_prefix, Recording, Step};
use parc_util::table::Table;

/// A cursor over one recorded schedule: re-executes prefixes of the
/// schedule on demand to move "through time" in either direction.
pub struct TimeTravel {
    name: String,
    body: Arc<dyn Fn() + Send + Sync>,
    full: Recording,
    cursor: usize,
    view: Recording,
}

impl TimeTravel {
    /// Wrap `recording` (previously captured from `body` via
    /// [`parc_explore::replay`]) into a cursor positioned at the end
    /// of the schedule.
    pub fn new<F>(recording: Recording, body: F) -> TimeTravel
    where
        F: Fn() + Send + Sync + 'static,
    {
        let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
        let cursor = recording.len();
        let view = {
            let b = Arc::clone(&body);
            replay_prefix(&recording.name, move || b(), &recording.schedule, cursor)
        };
        TimeTravel { name: recording.name.clone(), body, full: recording, cursor, view }
    }

    fn run_prefix(&self, prefix: usize) -> Recording {
        let body = Arc::clone(&self.body);
        replay_prefix(&self.name, move || body(), &self.full.schedule, prefix)
    }

    /// The recording this cursor replays.
    #[must_use]
    pub fn recording(&self) -> &Recording {
        &self.full
    }

    /// Total number of steps in the recorded schedule.
    #[must_use]
    pub fn len(&self) -> usize {
        self.full.len()
    }

    /// True when the recorded schedule is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.full.is_empty()
    }

    /// Current position: number of schedule steps applied.
    #[must_use]
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// True at position 0 (before the first decision).
    #[must_use]
    pub fn at_start(&self) -> bool {
        self.cursor == 0
    }

    /// True when the whole schedule has been applied.
    #[must_use]
    pub fn at_end(&self) -> bool {
        self.cursor >= self.full.len()
    }

    /// The replayed state at the current position: executed steps,
    /// observations so far, and the frontier of runnable operations.
    #[must_use]
    pub fn state(&self) -> &Recording {
        &self.view
    }

    /// Move to absolute position `pos` (clamped to the schedule
    /// length) by re-executing that prefix. Returns the state there.
    pub fn seek(&mut self, pos: usize) -> &Recording {
        let pos = pos.min(self.full.len());
        if pos != self.cursor {
            self.view = self.run_prefix(pos);
            self.cursor = pos;
        }
        &self.view
    }

    /// Advance one scheduler decision. Saturates at the end.
    pub fn forward(&mut self) -> &Recording {
        self.seek(self.cursor.saturating_add(1))
    }

    /// Step one scheduler decision backward (re-runs the shorter
    /// prefix). Saturates at the start.
    pub fn back(&mut self) -> &Recording {
        self.seek(self.cursor.saturating_sub(1))
    }

    /// The decision the recorded schedule takes *next* from the
    /// current position, if any.
    #[must_use]
    pub fn next_step(&self) -> Option<&Step> {
        self.full.steps.get(self.cursor)
    }

    /// Render the current position: one line per executed step with a
    /// `>` cursor marker, then the frontier of runnable operations.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "time-travel {} @ step {}/{}",
            self.name,
            self.cursor,
            self.full.len()
        );
        let mut t = Table::new("executed prefix", &["", "#", "thread", "op"]);
        for (i, s) in self.view.steps.iter().enumerate() {
            let marker = if i + 1 == self.cursor { ">" } else { " " };
            t.row(&[marker.to_string(), i.to_string(), format!("t{}", s.tid), s.what.clone()]);
        }
        out.push_str(&t.render());
        if !self.view.frontier.is_empty() {
            let _ = writeln!(out, "runnable now:");
            for s in &self.view.frontier {
                let _ = writeln!(out, "  t{}: {}", s.tid, s.what);
            }
        }
        if self.at_end() {
            let _ = writeln!(out, "verdict: {}", self.full.verdict());
        }
        out
    }
}

impl std::fmt::Debug for TimeTravel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimeTravel")
            .field("name", &self.name)
            .field("cursor", &self.cursor)
            .field("len", &self.full.len())
            .finish_non_exhaustive()
    }
}

/// The comparison of two recordings of the same program.
#[derive(Clone, Debug, Default)]
pub struct ScheduleDiff {
    /// First step index where the two schedules made different
    /// decisions (`None` when one is a prefix of the other or they
    /// are identical).
    pub first_divergence: Option<usize>,
    /// What recording `a` did at the divergence point.
    pub a_step: Option<Step>,
    /// What recording `b` did at the divergence point.
    pub b_step: Option<Step>,
    /// Steps each run executed beyond the common prefix.
    pub tail_a: usize,
    /// Steps `b` executed beyond the common prefix.
    pub tail_b: usize,
    /// Verdicts of the two runs (`completed`, `deadlocked`, …).
    pub verdicts: (String, String),
    /// Observation keys whose values differ: key → `(a, b)`, with 0
    /// standing in for "not observed".
    pub observation_deltas: BTreeMap<String, (i64, i64)>,
}

impl ScheduleDiff {
    /// True when the runs took identical decisions, reached the same
    /// verdict, and observed the same values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.first_divergence.is_none()
            && self.tail_a == 0
            && self.tail_b == 0
            && self.verdicts.0 == self.verdicts.1
            && self.observation_deltas.is_empty()
    }

    /// Human-readable summary of the divergence.
    #[must_use]
    pub fn render(&self) -> String {
        if self.is_empty() {
            return "schedules are identical\n".to_string();
        }
        let mut out = String::new();
        match self.first_divergence {
            Some(at) => {
                let _ = writeln!(out, "first divergent decision at step {at}:");
                if let Some(s) = &self.a_step {
                    let _ = writeln!(out, "  a: t{} {}", s.tid, s.what);
                }
                if let Some(s) = &self.b_step {
                    let _ = writeln!(out, "  b: t{} {}", s.tid, s.what);
                }
            }
            None => {
                let _ = writeln!(out, "one schedule is a prefix of the other");
            }
        }
        let _ = writeln!(out, "downstream: a ran {} more step(s), b ran {} more", self.tail_a, self.tail_b);
        let _ = writeln!(out, "verdicts: a={} b={}", self.verdicts.0, self.verdicts.1);
        for (key, (va, vb)) in &self.observation_deltas {
            let _ = writeln!(out, "observed {key}: a={va} b={vb} (delta {})", vb - va);
        }
        out
    }

    /// Canonical JSON form of the diff.
    #[must_use]
    pub fn to_json(&self) -> String {
        let step = |s: &Option<Step>| {
            s.as_ref().map_or("null".to_string(), |s| {
                format!("{{\"tid\":{},\"what\":\"{}\"}}", s.tid, parc_trace::json_escape(&s.what))
            })
        };
        let obs: Vec<String> = self
            .observation_deltas
            .iter()
            .map(|(k, (a, b))| {
                format!("{{\"key\":\"{}\",\"a\":{a},\"b\":{b}}}", parc_trace::json_escape(k))
            })
            .collect();
        format!(
            "{{\"identical\":{},\"first_divergence\":{},\"a_step\":{},\"b_step\":{},\"tail_a\":{},\"tail_b\":{},\"verdict_a\":\"{}\",\"verdict_b\":\"{}\",\"observation_deltas\":[{}]}}",
            self.is_empty(),
            self.first_divergence.map_or("null".to_string(), |d| d.to_string()),
            step(&self.a_step),
            step(&self.b_step),
            self.tail_a,
            self.tail_b,
            self.verdicts.0,
            self.verdicts.1,
            obs.join(","),
        )
    }
}

/// Compare two recordings of the same program: find the first step
/// where their decisions differ and summarise the downstream event
/// and metric deltas. Deterministic given deterministic inputs —
/// diffing a recording against itself is always empty.
#[must_use]
pub fn diff_schedules(a: &Recording, b: &Recording) -> ScheduleDiff {
    let common = a
        .steps
        .iter()
        .zip(&b.steps)
        .take_while(|(x, y)| x.tid == y.tid && x.what == y.what)
        .count();
    let diverged = common < a.len() && common < b.len();
    let mut observation_deltas = BTreeMap::new();
    for key in a.observations.keys().chain(b.observations.keys()) {
        let va = a.observations.get(key).copied().unwrap_or(0);
        let vb = b.observations.get(key).copied().unwrap_or(0);
        if va != vb {
            observation_deltas.insert(key.clone(), (va, vb));
        }
    }
    ScheduleDiff {
        first_divergence: diverged.then_some(common),
        a_step: diverged.then(|| a.steps[common].clone()),
        b_step: diverged.then(|| b.steps[common].clone()),
        tail_a: a.len() - common,
        tail_b: b.len() - common,
        verdicts: (a.verdict().to_string(), b.verdict().to_string()),
        observation_deltas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parc_explore::replay::{record_first, record_seeded};
    use parc_explore::sync::PlainCell;
    use parc_explore::{record, thread};

    /// Two threads racing plain increments on a shared cell — the
    /// smallest body with schedule-dependent outcomes.
    fn racy_body() {
        let cell = Arc::new(PlainCell::new("count", 0i64));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let cell = Arc::clone(&cell);
            handles.push(thread::spawn(move || {
                let v = cell.get();
                cell.set(v + 1);
            }));
        }
        for h in handles {
            h.join();
        }
        record("final", cell.get());
    }

    #[test]
    fn cursor_moves_forward_and_backward() {
        let rec = record_first("tt", 10_000, racy_body);
        assert!(rec.completed);
        let n = rec.len();
        let mut tt = TimeTravel::new(rec, racy_body);
        assert!(tt.at_end());
        assert_eq!(tt.state().steps.len(), n);

        tt.seek(0);
        assert!(tt.at_start());
        assert!(tt.state().steps.is_empty());
        assert!(!tt.state().frontier.is_empty(), "something is runnable at t=0");

        tt.forward();
        assert_eq!(tt.cursor(), 1);
        assert_eq!(tt.state().steps.len(), 1);
        let next = tt.next_step().expect("mid-schedule has a next step").clone();
        tt.forward();
        assert_eq!(tt.state().steps.last().map(|s| s.tid), Some(next.tid));

        tt.back();
        assert_eq!(tt.cursor(), 1);
        assert_eq!(tt.state().steps.len(), 1);

        // Saturation at both ends.
        tt.seek(0);
        tt.back();
        assert!(tt.at_start());
        tt.seek(usize::MAX);
        assert!(tt.at_end());
        assert_eq!(tt.cursor(), n);
    }

    #[test]
    fn render_marks_cursor_and_frontier() {
        let rec = record_first("tt-render", 10_000, racy_body);
        let mut tt = TimeTravel::new(rec, racy_body);
        tt.seek(2);
        let text = tt.render();
        assert!(text.contains("@ step 2/"));
        assert!(text.contains("runnable now:"), "mid-run must show the frontier:\n{text}");
        tt.seek(usize::MAX);
        assert!(tt.render().contains("verdict: completed"));
    }

    #[test]
    fn diff_of_identical_recordings_is_empty() {
        let a = record_seeded("a", 7, 10_000, racy_body);
        let b = record_seeded("b", 7, 10_000, racy_body);
        let d = diff_schedules(&a, &b);
        assert!(d.is_empty(), "same seed must diff empty: {}", d.render());
        assert!(d.render().contains("identical"));
    }

    #[test]
    fn diff_pinpoints_first_divergent_decision() {
        // Hunt a pair of seeds whose schedules differ; the racy body
        // has interleavings with different step orders.
        let base = record_seeded("base", 1, 10_000, racy_body);
        let mut other = None;
        for seed in 2..64 {
            let r = record_seeded("other", seed, 10_000, racy_body);
            if r.schedule != base.schedule {
                other = Some(r);
                break;
            }
        }
        let other = other.expect("some seed diverges from seed 1");
        let d = diff_schedules(&base, &other);
        assert!(!d.is_empty());
        let at = d.first_divergence.expect("divergence point found");
        assert_eq!(base.steps[..at], other.steps[..at], "prefix up to divergence matches");
        assert!(d.a_step.is_some() && d.b_step.is_some());
        assert_ne!(
            d.a_step.as_ref().map(|s| (s.tid, s.what.clone())),
            d.b_step.as_ref().map(|s| (s.tid, s.what.clone())),
        );
        let json = parc_trace::parse_json(&d.to_json()).expect("diff JSON parses");
        assert!(json.get("first_divergence").is_some());
    }

    #[test]
    fn diff_reports_observation_deltas() {
        let mut a = record_first("a", 10_000, racy_body);
        let mut b = a.clone();
        a.observations.insert("final".to_string(), 1);
        b.observations.insert("final".to_string(), 2);
        b.observations.insert("extra".to_string(), 9);
        let d = diff_schedules(&a, &b);
        assert_eq!(d.observation_deltas["final"], (1, 2));
        assert_eq!(d.observation_deltas["extra"], (0, 9));
        assert!(d.render().contains("delta 1"));
    }
}
