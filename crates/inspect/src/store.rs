//! The queryable store: indexes over a drained [`Trace`].
//!
//! [`parc_trace::Collector::snapshot`] returns a flat, time-sorted
//! event vector — fine for export, clumsy for questions like "which
//! marks landed inside this span" or "what overlapped this window".
//! [`TraceStore`] promotes the snapshot into an in-memory store with
//! four indexes, all built in one pass:
//!
//! * **by kind** — event indices per stable event name, in time order;
//! * **by lane** — event indices per `(track, lane)`, in recording
//!   order (the stable sort in `snapshot` preserves it);
//! * **by span** — every span reassembled as a [`StoredSpan`]: its
//!   same-lane children, the marks attributed to it (innermost
//!   enclosing span on the emitting lane), and its begin/end event
//!   positions. Spans still open at snapshot time keep the synthetic
//!   end and `open` flag of [`Trace::spans`];
//! * **by interval** — spans sorted by start with a running-maximum
//!   end, so overlap queries prune instead of scanning.
//!
//! Time queries use half-open windows `[lo_ns, hi_ns)`. Span overlap
//! is `start_ns < hi && end_ns >= lo` (the `>=` keeps zero-width
//! spans findable at their own timestamp).

use std::collections::BTreeMap;

use parc_trace::{CompletedSpan, Event, EventKind, Trace};

/// One span with everything the store indexed about it.
#[derive(Clone, Debug)]
pub struct StoredSpan {
    /// The reassembled span. Spans still open at snapshot time carry a
    /// synthetic end (the trace's last timestamp) and `open == true`,
    /// exactly as [`Trace::spans`] reports them.
    pub span: CompletedSpan,
    /// Ids of spans nested directly inside this one (same lane), in
    /// begin order.
    pub children: Vec<u64>,
    /// Indices into [`TraceStore::events`] of the marks attributed to
    /// this span: each mark belongs to the innermost span open on its
    /// lane when it was recorded.
    pub marks: Vec<usize>,
    /// Index of the span's begin event.
    pub begin_idx: usize,
    /// Index of the span's end event; `None` while open.
    pub end_idx: Option<usize>,
}

/// The indexed, queryable form of one [`Trace`] snapshot.
#[derive(Debug, Default)]
pub struct TraceStore {
    trace: Trace,
    by_kind: BTreeMap<&'static str, Vec<usize>>,
    by_lane: BTreeMap<(u32, u32), Vec<usize>>,
    spans: BTreeMap<u64, StoredSpan>,
    /// Marks recorded while no span was open on their lane.
    unattributed_marks: Vec<usize>,
    /// `(start_ns, id)` for every span, sorted.
    starts: Vec<(u64, u64)>,
    /// `running_max_end[i]` = max `end_ns` over `starts[..=i]` — the
    /// classic interval-overlap pruning structure.
    running_max_end: Vec<u64>,
}

impl TraceStore {
    /// Index `trace`. One pass over the events plus two sorts; the
    /// `trace_inspect` example benchmarks this as events/second.
    #[must_use]
    pub fn new(trace: Trace) -> Self {
        let mut store = TraceStore { trace, ..TraceStore::default() };
        let last_ts = store.trace.events.last().map_or(0, |e| e.ts_ns);
        // Per-lane span stacks, mirroring the collector's discipline.
        let mut stacks: BTreeMap<(u32, u32), Vec<u64>> = BTreeMap::new();
        for (i, ev) in store.trace.events.iter().enumerate() {
            let lane = (ev.pid, ev.tid);
            store.by_kind.entry(ev.name()).or_default().push(i);
            store.by_lane.entry(lane).or_default().push(i);
            match ev.kind {
                EventKind::SpanBegin { id, parent, what } => {
                    store.spans.insert(
                        id,
                        StoredSpan {
                            span: CompletedSpan {
                                id,
                                parent,
                                what,
                                pid: ev.pid,
                                tid: ev.tid,
                                start_ns: ev.ts_ns,
                                end_ns: ev.ts_ns,
                                open: true,
                            },
                            children: Vec::new(),
                            marks: Vec::new(),
                            begin_idx: i,
                            end_idx: None,
                        },
                    );
                    if parent != 0 {
                        // The parent began earlier on the same lane, so
                        // it is already stored — unless its begin was
                        // lost to ring overflow, in which case the
                        // child is simply not linked.
                        if let Some(p) = store.spans.get_mut(&parent) {
                            p.children.push(id);
                        }
                    }
                    stacks.entry(lane).or_default().push(id);
                }
                EventKind::SpanEnd { id, .. } => {
                    // Truncate through `id`, mirroring the collector's
                    // out-of-order-guard handling.
                    if let Some(stack) = stacks.get_mut(&lane) {
                        if let Some(pos) = stack.iter().rposition(|&s| s == id) {
                            stack.truncate(pos);
                        }
                    }
                    if let Some(s) = store.spans.get_mut(&id) {
                        s.span.end_ns = ev.ts_ns;
                        s.span.open = false;
                        s.end_idx = Some(i);
                    }
                }
                EventKind::Mark { .. } => {
                    match stacks.get(&lane).and_then(|s| s.last()) {
                        Some(top) => {
                            store
                                .spans
                                .get_mut(top)
                                .expect("stacked span is stored")
                                .marks
                                .push(i);
                        }
                        None => store.unattributed_marks.push(i),
                    }
                }
            }
        }
        // Spans still open: synthetic, conservative end.
        for s in store.spans.values_mut().filter(|s| s.span.open) {
            s.span.end_ns = last_ts.max(s.span.start_ns);
        }
        store.starts = store.spans.values().map(|s| (s.span.start_ns, s.span.id)).collect();
        store.starts.sort_unstable();
        let mut running = 0u64;
        store.running_max_end = store
            .starts
            .iter()
            .map(|(_, id)| {
                running = running.max(store.spans[id].span.end_ns);
                running
            })
            .collect();
        store
    }

    /// The underlying snapshot (events stay time-sorted).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// All events, time-sorted.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.trace.events
    }

    /// Number of indexed events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.trace.events.len()
    }

    /// True when the snapshot recorded nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trace.events.is_empty()
    }

    /// Events with `lo_ns <= ts < hi_ns`, as a contiguous slice (the
    /// event vector is time-sorted, so a window is a range).
    #[must_use]
    pub fn events_in(&self, lo_ns: u64, hi_ns: u64) -> &[Event] {
        let ev = &self.trace.events;
        let a = ev.partition_point(|e| e.ts_ns < lo_ns);
        let b = ev.partition_point(|e| e.ts_ns < hi_ns);
        &ev[a..b.max(a)]
    }

    /// Indices of all events named `kind`, in time order.
    #[must_use]
    pub fn kind_indices(&self, kind: &str) -> &[usize] {
        self.by_kind.get(kind).map_or(&[][..], Vec::as_slice)
    }

    /// Indices of events named `kind` with `lo_ns <= ts < hi_ns`.
    /// Binary-searches within the kind index (whose entries are in
    /// time order) rather than scanning.
    #[must_use]
    pub fn kind_indices_in(&self, kind: &str, lo_ns: u64, hi_ns: u64) -> &[usize] {
        let idx = self.kind_indices(kind);
        let ts = |i: &usize| self.trace.events[*i].ts_ns;
        let a = idx.partition_point(|i| ts(i) < lo_ns);
        let b = idx.partition_point(|i| ts(i) < hi_ns);
        &idx[a..b.max(a)]
    }

    /// Indices of all events recorded on lane `(pid, tid)`, in
    /// recording order.
    #[must_use]
    pub fn lane_indices(&self, pid: u32, tid: u32) -> &[usize] {
        self.by_lane.get(&(pid, tid)).map_or(&[][..], Vec::as_slice)
    }

    /// The stored span with this collector-unique id.
    #[must_use]
    pub fn span(&self, id: u64) -> Option<&StoredSpan> {
        self.spans.get(&id)
    }

    /// All stored spans, in id order.
    pub fn spans(&self) -> impl Iterator<Item = &StoredSpan> {
        self.spans.values()
    }

    /// Marks recorded while no span was open on their lane.
    #[must_use]
    pub fn unattributed_marks(&self) -> &[usize] {
        &self.unattributed_marks
    }

    /// Spans overlapping `[lo_ns, hi_ns)` (`start < hi && end >= lo`),
    /// ordered by `(start_ns, id)`. Uses the sorted-starts +
    /// running-max-end index: the backward scan stops as soon as no
    /// earlier span can still reach `lo`.
    #[must_use]
    pub fn spans_overlapping(&self, lo_ns: u64, hi_ns: u64) -> Vec<&StoredSpan> {
        let cut = self.starts.partition_point(|(start, _)| *start < hi_ns);
        let mut hits: Vec<&StoredSpan> = Vec::new();
        for j in (0..cut).rev() {
            if self.running_max_end[j] < lo_ns {
                break;
            }
            let s = &self.spans[&self.starts[j].1];
            if s.span.end_ns >= lo_ns {
                hits.push(s);
            }
        }
        hits.reverse();
        hits
    }

    /// The span's *self time*: its duration minus the durations of the
    /// spans nested directly inside it (which are disjoint, by the
    /// per-lane stack discipline). Zero for unknown ids.
    #[must_use]
    pub fn self_time_ns(&self, id: u64) -> u64 {
        let Some(s) = self.spans.get(&id) else { return 0 };
        let nested: u64 = s
            .children
            .iter()
            .filter_map(|c| self.spans.get(c))
            .map(|c| c.span.duration_ns())
            .sum();
        s.span.duration_ns().saturating_sub(nested)
    }

    /// Total self time per span kind — the raw material of the
    /// critical-path attribution table ("`barrier.wait` = 42% of wall
    /// clock").
    #[must_use]
    pub fn kind_self_time(&self) -> BTreeMap<&'static str, u64> {
        let mut out: BTreeMap<&'static str, u64> = BTreeMap::new();
        for s in self.spans.values() {
            *out.entry(s.span.what.name()).or_insert(0) += self.self_time_ns(s.span.id);
        }
        out
    }

    /// Wall clock covered by the snapshot: last minus first event
    /// timestamp.
    #[must_use]
    pub fn wall_ns(&self) -> u64 {
        match (self.trace.events.first(), self.trace.events.last()) {
            (Some(first), Some(last)) => last.ts_ns.saturating_sub(first.ts_ns),
            _ => 0,
        }
    }

    /// Lanes that recorded at least one span — the denominator for
    /// "fraction of available compute" attributions.
    #[must_use]
    pub fn active_lanes(&self) -> usize {
        let lanes: std::collections::BTreeSet<(u32, u32)> =
            self.spans.values().map(|s| (s.span.pid, s.span.tid)).collect();
        lanes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parc_trace::{Collector, FetchTag, MarkKind, SpanKind};

    /// A small two-lane trace: crawl > fetch.attempt (+ result mark)
    /// on the main lane, a task.run and steal mark on a second lane.
    fn sample() -> Trace {
        let col = Collector::new();
        let h = col.handle();
        let pid = h.register_track("demo");
        {
            let _crawl = h.span(pid, SpanKind::Crawl { pages: 2 });
            {
                let _a = h.span(pid, SpanKind::FetchAttempt { page: 0, attempt: 1 });
                h.mark(pid, MarkKind::FetchResult { page: 0, attempt: 1, result: FetchTag::Ok });
            }
        }
        let h2 = h.clone();
        std::thread::spawn(move || {
            h2.mark(pid, MarkKind::Steal { victim: 0 });
            let _run = h2.span(pid, SpanKind::TaskRun { task: 1 });
        })
        .join()
        .unwrap();
        col.snapshot()
    }

    #[test]
    fn interval_queries_match_naive_scan() {
        let trace = sample();
        let naive = trace.events.clone();
        let store = TraceStore::new(trace);
        let wall = store.events().last().unwrap().ts_ns + 1;
        // Probe a handful of windows, including empty and full ones.
        for (lo, hi) in [(0, wall), (wall / 3, 2 * wall / 3), (0, 0), (wall, wall + 10)] {
            let fast: Vec<&Event> = store.events_in(lo, hi).iter().collect();
            let slow: Vec<&Event> =
                naive.iter().filter(|e| e.ts_ns >= lo && e.ts_ns < hi).collect();
            assert_eq!(fast.len(), slow.len(), "window [{lo}, {hi})");
            assert!(fast.iter().zip(&slow).all(|(a, b)| a == b));
        }
    }

    #[test]
    fn kind_index_matches_naive_scan() {
        let trace = sample();
        let naive = trace.events.clone();
        let store = TraceStore::new(trace);
        for kind in ["crawl", "fetch.result", "sched.steal", "task.run", "no.such"] {
            let fast: Vec<usize> = store.kind_indices(kind).to_vec();
            let slow: Vec<usize> = naive
                .iter()
                .enumerate()
                .filter(|(_, e)| e.name() == kind)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(fast, slow, "kind {kind}");
        }
        // Windowed kind query agrees with filtering the full index.
        let wall = store.events().last().unwrap().ts_ns + 1;
        let windowed = store.kind_indices_in("crawl", 0, wall);
        assert_eq!(windowed, store.kind_indices("crawl"));
        assert!(store.kind_indices_in("crawl", wall, wall + 1).is_empty());
    }

    #[test]
    fn span_overlap_matches_naive_scan() {
        let trace = sample();
        let store = TraceStore::new(trace);
        let all: Vec<&StoredSpan> = store.spans().collect();
        let wall = store.events().last().unwrap().ts_ns + 1;
        for (lo, hi) in [(0, wall), (wall / 4, wall / 2), (0, 1), (wall - 1, wall)] {
            let fast = store.spans_overlapping(lo, hi);
            let mut slow: Vec<&StoredSpan> = all
                .iter()
                .copied()
                .filter(|s| s.span.start_ns < hi && s.span.end_ns >= lo)
                .collect();
            slow.sort_by_key(|s| (s.span.start_ns, s.span.id));
            assert_eq!(fast.len(), slow.len(), "window [{lo}, {hi})");
            assert!(fast
                .iter()
                .zip(&slow)
                .all(|(a, b)| a.span.id == b.span.id));
        }
    }

    #[test]
    fn marks_attribute_to_innermost_span() {
        let store = TraceStore::new(sample());
        let fetch = store
            .spans()
            .find(|s| s.span.what.name() == "fetch.attempt")
            .expect("fetch span stored");
        assert_eq!(fetch.marks.len(), 1, "result mark belongs to the attempt");
        assert_eq!(store.events()[fetch.marks[0]].name(), "fetch.result");
        let crawl = store.spans().find(|s| s.span.what.name() == "crawl").unwrap();
        assert!(crawl.marks.is_empty(), "nothing marked directly under crawl");
        assert_eq!(crawl.children, vec![fetch.span.id]);
        // The steal mark fired before any span opened on its lane.
        assert_eq!(store.unattributed_marks().len(), 1);
        assert_eq!(store.events()[store.unattributed_marks()[0]].name(), "sched.steal");
    }

    #[test]
    fn self_time_subtracts_nested_children() {
        let store = TraceStore::new(sample());
        let crawl = store.spans().find(|s| s.span.what.name() == "crawl").unwrap();
        let fetch = store.spans().find(|s| s.span.what.name() == "fetch.attempt").unwrap();
        let self_time = store.self_time_ns(crawl.span.id);
        assert_eq!(
            self_time,
            crawl.span.duration_ns() - fetch.span.duration_ns(),
            "crawl self time excludes the nested attempt"
        );
        let by_kind = store.kind_self_time();
        assert_eq!(by_kind["crawl"], self_time);
        assert_eq!(by_kind["fetch.attempt"], fetch.span.duration_ns());
    }

    #[test]
    fn open_spans_keep_synthetic_end_and_flag() {
        let col = Collector::new();
        let h = col.handle();
        let outer = h.span(1, SpanKind::Crawl { pages: 1 });
        drop(h.span(1, SpanKind::FetchAttempt { page: 0, attempt: 1 }));
        let store = TraceStore::new(col.snapshot());
        let crawl = store.spans().find(|s| s.span.what.name() == "crawl").unwrap();
        assert!(crawl.span.open);
        assert!(crawl.end_idx.is_none());
        let last_ts = store.events().last().unwrap().ts_ns;
        assert_eq!(crawl.span.end_ns, last_ts, "synthetic end covers the trace");
        // And the open span is still findable by overlap.
        assert!(store
            .spans_overlapping(last_ts, last_ts + 1)
            .iter()
            .any(|s| s.span.id == crawl.span.id));
        drop(outer);
    }

    #[test]
    fn store_spans_agree_with_trace_spans() {
        let trace = sample();
        let reference = trace.spans();
        let store = TraceStore::new(trace);
        assert_eq!(store.spans().count(), reference.len());
        for r in &reference {
            let s = store.span(r.id).expect("span indexed");
            assert_eq!(&s.span, r, "span {} must match Trace::spans()", r.id);
        }
    }

    #[test]
    fn lane_index_partitions_all_events() {
        let trace = sample();
        let total = trace.events.len();
        let store = TraceStore::new(trace);
        let lanes: Vec<(u32, u32)> = store
            .events()
            .iter()
            .map(|e| (e.pid, e.tid))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let sum: usize = lanes.iter().map(|(p, t)| store.lane_indices(*p, *t).len()).sum();
        assert_eq!(sum, total);
        assert!(lanes.len() >= 2, "sample uses two lanes");
        assert!(store.active_lanes() >= 2);
        assert!(store.wall_ns() > 0);
    }
}
