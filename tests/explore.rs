//! Explorer determinism suite.
//!
//! The whole point of `parc-explore` is that race verdicts do not
//! depend on the host scheduler: the same configuration must explore
//! the same schedules in the same order and report the same races on
//! every rerun, whatever the machine load or `--test-threads` setting.
//! These tests pin that down the same way `tests/chaos.rs` pins the
//! fault injector — by comparing fingerprints exactly across repeated
//! runs, including runs racing each other on separate OS threads.

use std::collections::BTreeSet;
use std::sync::Arc;

use parc_explore::{explore, litmus, Config, ExploreReport};

fn run_litmus(name: &str, config: Config) -> ExploreReport {
    let entry = litmus::by_name(name)
        .unwrap_or_else(|| panic!("litmus `{name}` missing from the catalogue"));
    let body = Arc::clone(&entry.body);
    explore(config, move || body())
}

/// The comparable essence of a report: schedule sequence + race pairs
/// + aggregated observations.
fn digest(report: &ExploreReport) -> (Vec<u64>, Vec<String>, String, u64) {
    let races: Vec<String> = report
        .races
        .iter()
        .map(|r| {
            format!(
                "{}: T{} {} / T{} {} @ {:?}",
                r.location, r.first.tid, r.first.what, r.second.tid, r.second.what, r.schedule
            )
        })
        .collect();
    (
        report.schedule_log.clone(),
        races,
        format!("{:?}", report.observations),
        report.fingerprint(),
    )
}

#[test]
fn dfs_reruns_are_bit_identical() {
    for entry in litmus::catalogue() {
        let a = run_litmus(entry.name, Config::dfs(entry.name));
        let b = run_litmus(entry.name, Config::dfs(entry.name));
        assert_eq!(digest(&a), digest(&b), "{}: DFS rerun diverged", entry.name);
        assert!(a.exhausted, "{}: litmus space must be enumerable", entry.name);
    }
}

#[test]
fn pct_same_seed_same_everything() {
    for name in ["lost-update/racy", "taskcol-stack/racy", "message-passing/fixed-relacq"] {
        let a = run_litmus(name, Config::pct(name, 0xE0_5751, 40, 3));
        let b = run_litmus(name, Config::pct(name, 0xE0_5751, 40, 3));
        assert_eq!(digest(&a), digest(&b), "{name}: seeded PCT rerun diverged");
    }
}

#[test]
fn pct_different_seeds_explore_differently() {
    let a = run_litmus("lost-update/racy", Config::pct("a", 1, 40, 3));
    let b = run_litmus("lost-update/racy", Config::pct("b", 2, 40, 3));
    assert_ne!(
        a.schedule_log, b.schedule_log,
        "distinct seeds should yield distinct schedule sequences"
    );
}

#[test]
fn verdicts_are_stable_under_concurrent_explorations() {
    // Run the same exploration from several OS threads at once: host
    // contention must not leak into any verdict or schedule sequence.
    let reference = digest(&run_litmus("lazy-init/racy", Config::dfs("lazy-init/racy")));
    let mut joins = Vec::new();
    for _ in 0..4 {
        joins.push(std::thread::spawn(|| {
            digest(&run_litmus("lazy-init/racy", Config::dfs("lazy-init/racy")))
        }));
    }
    for j in joins {
        assert_eq!(
            j.join().expect("exploration thread panicked"),
            reference,
            "concurrent explorations diverged"
        );
    }
}

#[test]
fn racing_schedule_replays_to_the_same_race() {
    // The witnessing schedule in a race report is a real certificate:
    // the racy lost-update must report the split-increment pair, and
    // the lost update itself must appear among the observed outcomes.
    let report = run_litmus("lost-update/racy", Config::dfs("lost-update/racy"));
    assert!(!report.race_free());
    let race = &report.races[0];
    assert_eq!(race.location, "count");
    assert!(race.first.tid != race.second.tid, "racing pair must span threads");
    assert!(!race.schedule.is_empty());
    assert_eq!(
        report.observations["final"],
        BTreeSet::from([1, 2]),
        "both the lost-update and correct outcomes must be witnessed"
    );
    // The rendered diagram mentions both racing accesses.
    let rendered = race.render();
    assert!(rendered.contains("race (first)") && rendered.contains("race (second)"));
}
