//! Scheduler regression suite for the lock-free Chase–Lev core.
//!
//! Pins the three hot-path accounting bugs fixed alongside the deque
//! swap, the batch-spawn semantics, and — via proptest — the shim
//! deque's sequential equivalence to a `Mutex<VecDeque>`-style
//! reference model (the substrate it replaced, still available as
//! `SchedulerKind::WorkStealingLocked`).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use proptest::prelude::*;

use partask::{SchedulerKind, TaskError, TaskRuntime};

// ---------------------------------------------------------------
// Satellite 1: per-worker steal-latency histograms.
// ---------------------------------------------------------------

/// The old path recorded one sample per steal under a single shared
/// `Mutex<LatencyHistogram>`; the new path keeps one histogram per
/// worker and merges on demand. The merged view must preserve the
/// accounting: one sample per steal *episode*, so with any steals at
/// all the total is in `1..=steals` (an episode moves >= 1 item).
#[test]
fn merged_steal_latency_total_matches_episode_count() {
    let rt = TaskRuntime::builder()
        .workers(4)
        .scheduler(SchedulerKind::WorkStealing)
        .name("steal-hist")
        .build();
    // Fan out from inside a task so the jobs land on one worker's own
    // deque and the other three workers must steal them.
    let rth = rt.handle();
    let h = rt.spawn(move || {
        let handles: Vec<_> = (0..64).map(|i| rth.spawn(move || busy_work(i))).collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
    });
    h.join().unwrap();
    rt.wait_quiescent();
    let stats = rt.stats();
    let lat = rt.latencies();
    if stats.steals > 0 {
        assert!(
            lat.steal_wait_ms.total() >= 1 && lat.steal_wait_ms.total() <= stats.steals,
            "episodes {} outside 1..=steals {}",
            lat.steal_wait_ms.total(),
            stats.steals
        );
    } else {
        assert_eq!(lat.steal_wait_ms.total(), 0, "no steals, no samples");
    }
    rt.shutdown();
}

fn busy_work(seed: u64) -> u64 {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for _ in 0..100 {
        x = x.wrapping_mul(x).rotate_left(7);
    }
    x & 1
}

// ---------------------------------------------------------------
// Satellite 2: idle workers park instead of busy-spinning.
// ---------------------------------------------------------------

/// An idle pool must reach quiescence by *parking*: each worker takes
/// the idle-parking path at most ~once per 100 ms (the insurance
/// timeout), where the old busy-spin re-probed the queues millions of
/// times per second. The probe counter bounds it.
#[test]
fn idle_pool_parks_instead_of_spinning() {
    for kind in [SchedulerKind::WorkSharing, SchedulerKind::WorkStealing] {
        let rt = TaskRuntime::builder()
            .workers(4)
            .scheduler(kind)
            .name("idle-park")
            .build();
        // Run one trivial task so every worker has started, then idle.
        rt.spawn(|| ()).join().unwrap();
        let before = rt.idle_probes();
        let idle_for = Duration::from_millis(300);
        std::thread::sleep(idle_for);
        let probes = rt.idle_probes() - before;
        // 4 workers x (300 ms / 100 ms park + slack for the wakeups
        // around the probe task). A busy-spin fails this by orders of
        // magnitude.
        let bound = 4 * (idle_for.as_millis() as u64 / 100 + 3);
        assert!(
            probes <= bound,
            "{kind:?}: {probes} idle probes in {idle_for:?} (bound {bound}) — busy-spin regression"
        );
        // Parked workers must still wake for new work promptly.
        let woke = rt.spawn(|| 7u32).join().unwrap();
        assert_eq!(woke, 7);
        rt.shutdown();
    }
}

// ---------------------------------------------------------------
// Satellite 3: snapshot-consistent progress accounting.
// ---------------------------------------------------------------

/// `spawned == finished + pending` must hold in *every* snapshot taken
/// while spawns and completions race — the old `queue_len()` summed
/// per-queue lengths under separate locks and could double-count or
/// miss items mid-steal. The packed-word snapshot cannot.
#[test]
fn progress_snapshot_is_consistent_under_concurrent_load() {
    let rt = TaskRuntime::builder()
        .workers(4)
        .scheduler(SchedulerKind::WorkStealing)
        .name("progress")
        .build();
    let stop = Arc::new(AtomicUsize::new(0));
    let spawner = {
        let rt = rt.handle();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut handles = Vec::new();
            for i in 0..2_000u64 {
                handles.push(rt.spawn(move || busy_work(i)));
                if i % 64 == 0 {
                    std::thread::yield_now();
                }
            }
            stop.store(1, Ordering::Release);
            handles.into_iter().for_each(|h| {
                h.join().unwrap();
            });
        })
    };
    // Sample while the spawner races the workers.
    let mut last_finished = 0u64;
    let mut last_spawned = 0u64;
    let mut samples = 0u64;
    while stop.load(Ordering::Acquire) == 0 {
        let p = rt.progress();
        assert_eq!(
            p.spawned,
            p.finished + p.pending as u64,
            "snapshot tore: {p:?}"
        );
        assert!(p.finished >= last_finished, "finished went backwards");
        assert!(p.spawned >= last_spawned, "spawned went backwards");
        last_finished = p.finished;
        last_spawned = p.spawned;
        samples += 1;
    }
    spawner.join().unwrap();
    rt.wait_quiescent();
    assert!(samples > 0);
    let p = rt.progress();
    assert_eq!(p.pending, 0, "quiescent means nothing pending");
    assert_eq!(p.spawned, 2_000, "one progress unit per spawned task");
    assert_eq!(p.finished, 2_000);
    let stats = rt.stats();
    assert_eq!(stats.spawned, stats.executed, "all spawned tasks executed");
    assert_eq!(rt.queued_hint(), 0);
    rt.shutdown();
}

// ---------------------------------------------------------------
// Tentpole: batch spawn.
// ---------------------------------------------------------------

#[test]
fn batch_results_come_back_in_index_order() {
    for workers in [1, 2, 4] {
        let rt = TaskRuntime::builder().workers(workers).build();
        let batch = rt.spawn_batch(1_000, |i| i * i);
        let results = batch.join();
        assert_eq!(results.len(), 1_000);
        for (i, r) in results.into_iter().enumerate() {
            assert_eq!(r.unwrap(), i * i, "index {i} out of order ({workers} workers)");
        }
        rt.shutdown();
    }
}

#[test]
fn batch_member_panic_is_contained_to_its_slot() {
    let rt = TaskRuntime::builder().workers(2).build();
    let batch = rt.spawn_batch(16, |i| {
        assert!(i != 5 && i != 11, "boom at {i}");
        i as u64
    });
    let results = rt.join_batch(batch);
    for (i, r) in results.into_iter().enumerate() {
        if i == 5 || i == 11 {
            match r {
                Err(TaskError::Panicked(msg)) => {
                    assert!(msg.contains("boom"), "panic message lost: {msg}")
                }
                other => panic!("index {i}: expected panic, got {other:?}"),
            }
        } else {
            assert_eq!(r.unwrap(), i as u64);
        }
    }
    rt.shutdown();
}

#[test]
fn cancelling_a_batch_cancels_unstarted_members() {
    let rt = TaskRuntime::builder().workers(1).build();
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    // Block the only worker so no batch member can start.
    let blocker = rt.spawn(move || gate_rx.recv().unwrap());
    let batch = rt.spawn_batch(32, |i| i);
    batch.cancel();
    gate_tx.send(()).unwrap();
    blocker.join().unwrap();
    for r in batch.join() {
        match r {
            Err(TaskError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }
    let stats = rt.stats();
    assert_eq!(stats.cancelled, 32);
    rt.shutdown();
}

#[test]
fn nested_batches_help_and_complete_on_one_worker() {
    // A batch member joining a sub-batch must *help* run queued work,
    // or a 1-worker pool would deadlock on the nested join.
    let rt = TaskRuntime::builder().workers(1).build();
    let rth = rt.handle();
    let batch = rt.spawn_batch(4, move |i| {
        let inner = rth.spawn_batch(8, move |j| (i * 8 + j) as u64);
        inner.join().into_iter().map(|r| r.unwrap()).sum::<u64>()
    });
    let total: u64 = batch.join().into_iter().map(|r| r.unwrap()).sum();
    assert_eq!(total, (0..32u64).sum::<u64>());
    rt.shutdown();
}

#[test]
fn batch_accounting_matches_per_task_spawns() {
    let rt = TaskRuntime::builder().workers(2).name("batch-acct").build();
    let batch = rt.spawn_batch(500, |i| i as u64);
    let sum: u64 = batch.join().into_iter().map(|r| r.unwrap()).sum();
    assert_eq!(sum, (0..500u64).sum::<u64>());
    rt.wait_quiescent();
    let p = rt.progress();
    assert_eq!(p.spawned, 500, "each batch member is one progress unit");
    assert_eq!(p.finished, 500);
    let stats = rt.stats();
    assert_eq!(stats.spawned, 500);
    assert_eq!(stats.executed, 500);
    rt.shutdown();
}

// ---------------------------------------------------------------
// Proptest: shim deque vs a Mutex<VecDeque> reference model.
// ---------------------------------------------------------------

/// Reference model of one worker deque: LIFO at the owner's end, FIFO
/// at the steal end — the semantics the old locked substrate
/// implemented directly with a `Mutex<VecDeque>`.
#[derive(Default)]
struct RefDeque {
    items: VecDeque<u32>,
}

impl RefDeque {
    fn push(&mut self, v: u32) {
        self.items.push_back(v);
    }
    fn pop(&mut self) -> Option<u32> {
        self.items.pop_back()
    }
    fn steal(&mut self) -> Option<u32> {
        self.items.pop_front()
    }
    /// Mirror of `Stealer::steal_batch_and_pop_with_count`: claim
    /// `(len + 1) / 2` (capped) from the front; the oldest is
    /// returned, the rest append to `dest` oldest-first.
    fn steal_batch_and_pop(&mut self, dest: &mut RefDeque, cap: usize) -> Option<(u32, usize)> {
        let len = self.items.len();
        if len == 0 {
            return None;
        }
        let n = len.div_ceil(2).min(cap);
        let first = self.items.pop_front().expect("len checked");
        for _ in 1..n {
            dest.items.push_back(self.items.pop_front().expect("claimed range"));
        }
        Some((first, n))
    }
}

#[derive(Clone, Copy, Debug)]
enum DeqOp {
    Push,
    Pop,
    Steal,
    BatchSteal,
}

/// Weighted decode (the shim proptest has no `prop_oneof`): pushes
/// 3/8, pops and steals 2/8 each, batch steals 1/8 — enough pushes
/// that the deque regularly holds multi-item runs for batch claims.
fn decode_op(raw: u8) -> DeqOp {
    match raw {
        0..=2 => DeqOp::Push,
        3..=4 => DeqOp::Pop,
        5..=6 => DeqOp::Steal,
        _ => DeqOp::BatchSteal,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every op sequence must drive the lock-free deque and the
    /// reference model through identical observable states: same
    /// values from pop/steal/batch-steal, same final drain order on
    /// both the victim and the batch-destination deque.
    #[test]
    fn chase_lev_deque_matches_vecdeque_model(raw_ops in prop::collection::vec(0u8..8, 0..200)) {
        use crossbeam::deque::{Steal, Worker};
        let ops: Vec<DeqOp> = raw_ops.into_iter().map(decode_op).collect();

        let victim = Worker::new_lifo();
        let stealer = victim.stealer();
        let dest = Worker::new_lifo();
        let mut ref_victim = RefDeque::default();
        let mut ref_dest = RefDeque::default();
        // MAX_BATCH in shims/crossbeam: a claim never exceeds 32.
        const MAX_BATCH: usize = 32;

        let mut next = 0u32;
        for op in ops {
            match op {
                DeqOp::Push => {
                    victim.push(next);
                    ref_victim.push(next);
                    next += 1;
                }
                DeqOp::Pop => {
                    prop_assert_eq!(victim.pop(), ref_victim.pop());
                }
                DeqOp::Steal => {
                    let got = match stealer.steal() {
                        Steal::Success(v) => Some(v),
                        Steal::Empty => None,
                        Steal::Retry => unreachable!("no concurrent CAS in a sequential test"),
                    };
                    prop_assert_eq!(got, ref_victim.steal());
                }
                DeqOp::BatchSteal => {
                    let got = match stealer.steal_batch_and_pop_with_count(&dest) {
                        Steal::Success((v, n)) => Some((v, n)),
                        Steal::Empty => None,
                        Steal::Retry => unreachable!("no concurrent CAS in a sequential test"),
                    };
                    prop_assert_eq!(got, ref_victim.steal_batch_and_pop(&mut ref_dest, MAX_BATCH));
                }
            }
        }
        // Drain both deques and compare the full remaining order.
        let mut drained = Vec::new();
        while let Some(v) = victim.pop() {
            drained.push(v);
        }
        let mut ref_drained = Vec::new();
        while let Some(v) = ref_victim.pop() {
            ref_drained.push(v);
        }
        prop_assert_eq!(drained, ref_drained);
        let mut dest_drained = Vec::new();
        while let Some(v) = dest.pop() {
            dest_drained.push(v);
        }
        let mut ref_dest_drained = Vec::new();
        while let Some(v) = ref_dest.pop() {
            ref_dest_drained.push(v);
        }
        prop_assert_eq!(dest_drained, ref_dest_drained);
    }
}
