//! Tracing suite: the observability layer's three contracts.
//!
//! 1. The Chrome-trace exporter emits valid JSON whose `B`/`E` span
//!    pairs balance on every lane.
//! 2. Under a fixed seed, traces are deterministic where the workload
//!    is: event *counts* and per-key *causal orderings* are identical
//!    across reruns and across pool sizes (the `tests/chaos.rs`
//!    bit-identical pattern, lifted to events). Timestamps and
//!    cross-thread interleavings may differ; nothing here looks at
//!    them.
//! 3. Tracing is observation only: a disabled collector records zero
//!    events, and instrumented code behaves bit-identically with and
//!    without a collector attached.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use faultsim::{FaultInjector, FaultPlan, RetryPolicy};
use parc_trace::{
    parse_json, to_chrome_json, Collector, EventKind, MarkKind, Trace, TraceHandle,
};
use partask::TaskRuntime;
use pyjama::{Schedule, Team};
use websim::{try_fetch_all, FetchOutcome, ServerConfig, SimServer};

fn flaky_server(seed: u64, trace: &TraceHandle) -> Arc<SimServer> {
    let plan = FaultPlan::reliable(seed)
        .with_error_rate(0.2)
        .with_timeout_rate(0.05)
        .with_panic_rate(0.03)
        .fail_key_n_times(7, 3);
    Arc::new(
        SimServer::with_faults(
            ServerConfig {
                pages: 40,
                time_scale: 2e-6,
                ..ServerConfig::default()
            },
            FaultInjector::new(plan),
        )
        .with_trace(trace),
    )
}

fn crawl_policy() -> RetryPolicy {
    RetryPolicy::fixed(Duration::from_millis(1)).with_max_attempts(5)
}

/// Run one fully traced crawl and return the drained trace plus the
/// crawl's outcome.
fn traced_crawl(seed: u64, workers: usize, connections: usize) -> (Trace, FetchOutcome) {
    let col = Collector::new();
    let h = col.handle();
    let rt = TaskRuntime::builder().workers(workers).trace(&h).build();
    let server = flaky_server(seed, &h);
    let outcome = try_fetch_all(&rt, &server, connections, &crawl_policy());
    rt.shutdown();
    (col.snapshot(), outcome)
}

/// The subset of event counts that the seed fully determines (steal
/// and queue-path counts legitimately vary with thread interleaving).
fn seed_determined_counts(trace: &Trace) -> BTreeMap<&'static str, u64> {
    const SEEDED: [&str; 4] = ["crawl", "fetch.attempt", "fetch.result", "fault.injected"];
    trace
        .counts_by_name()
        .into_iter()
        .filter(|(name, _)| SEEDED.contains(name))
        .collect()
}

/// Per-page causal fingerprint: the ordered (attempt, result) sequence
/// each page went through.
fn per_page_orderings(trace: &Trace) -> BTreeMap<u32, Vec<(u32, &'static str)>> {
    let mut map: BTreeMap<u32, Vec<(u32, &'static str)>> = BTreeMap::new();
    for ev in &trace.events {
        if let EventKind::Mark {
            what: MarkKind::FetchResult { page, attempt, result },
        } = ev.kind
        {
            map.entry(page).or_default().push((attempt, result.name()));
        }
    }
    // Same-page attempts happen sequentially on one connection, so
    // timestamp order within a page is causal order.
    map
}

#[test]
fn chrome_export_is_valid_json_with_balanced_spans() {
    faultsim::silence_injected_panics();
    let (trace, _) = traced_crawl(0xBEEF, 4, 4);
    assert!(!trace.is_empty());
    let json = to_chrome_json(&trace);
    let doc = parse_json(&json).expect("chrome export must round-trip through the JSON parser");
    let events = doc
        .get("traceEvents")
        .expect("traceEvents key")
        .as_arr()
        .expect("traceEvents is an array");
    assert!(events.len() >= trace.len(), "one entry per event plus metadata");
    // B/E pairs must balance per (pid, tid) lane — that is what makes
    // chrome://tracing nest them as durations.
    let mut depth: BTreeMap<(i64, i64), i64> = BTreeMap::new();
    for ev in events {
        let ph = ev.get("ph").unwrap().as_str().unwrap();
        let pid = ev.get("pid").unwrap().as_f64().unwrap() as i64;
        let tid = ev.get("tid").unwrap().as_f64().unwrap() as i64;
        let d = depth.entry((pid, tid)).or_insert(0);
        match ph {
            "B" => *d += 1,
            "E" => {
                *d -= 1;
                assert!(*d >= 0, "lane ({pid},{tid}): E without matching B");
            }
            "i" | "M" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for ((pid, tid), d) in depth {
        assert_eq!(d, 0, "lane ({pid},{tid}): unbalanced span pairs");
    }
}

#[test]
fn same_seed_traces_agree_across_reruns_and_pool_sizes() {
    faultsim::silence_injected_panics();
    let seed = 0x5EED_7AB5;
    let (base_trace, base_outcome) = traced_crawl(seed, 4, 4);
    let base_counts = seed_determined_counts(&base_trace);
    let base_order = per_page_orderings(&base_trace);
    assert!(base_counts["fetch.attempt"] > 40, "retries must have fired");
    assert_eq!(base_counts["fetch.attempt"], base_outcome.attempts_total);
    // Rerun with the same pool, then with very different pools: event
    // counts and per-page causal orderings must not move.
    for (workers, connections) in [(4usize, 4usize), (2, 1), (8, 8)] {
        let (trace, outcome) = traced_crawl(seed, workers, connections);
        assert_eq!(
            seed_determined_counts(&trace),
            base_counts,
            "{workers}w/{connections}c changed event counts"
        );
        assert_eq!(
            per_page_orderings(&trace),
            base_order,
            "{workers}w/{connections}c changed a page's attempt ordering"
        );
        // Task accounting stays internally consistent at any size.
        let counts = trace.counts_by_name();
        assert_eq!(counts["task.spawn"], connections as u64);
        assert_eq!(counts["task.spawn"], counts["task.outcome"]);
        assert_eq!(outcome.attempts_total, base_outcome.attempts_total);
    }
}

#[test]
fn task_spawns_inherit_the_crawl_span_as_causal_parent() {
    faultsim::silence_injected_panics();
    let (trace, _) = traced_crawl(0xCAFE, 4, 3);
    let crawl = trace
        .spans()
        .into_iter()
        .find(|s| s.what.name() == "crawl")
        .expect("crawl span completed");
    let spawn_parents: Vec<u64> = trace
        .events
        .iter()
        .filter_map(|ev| match ev.kind {
            EventKind::Mark { what: MarkKind::TaskSpawn { parent_span, .. } } => {
                Some(parent_span)
            }
            _ => None,
        })
        .collect();
    assert_eq!(spawn_parents.len(), 3, "one spawn per connection");
    for parent in spawn_parents {
        assert_eq!(
            parent, crawl.id,
            "connection tasks are spawned inside the crawl span"
        );
    }
}

#[test]
fn pyjama_region_events_are_deterministic() {
    let n = 4;
    let run = || {
        let col = Collector::new();
        let team = Team::with_trace(n, &col.handle());
        team.parallel(|ctx| {
            ctx.pfor(0..10_000, Schedule::Dynamic(512), |_i: usize| {});
            ctx.barrier();
        });
        col.snapshot()
    };
    let a = run();
    let b = run();
    let counts = a.counts_by_name();
    assert_eq!(counts["region.member"], n as u64);
    // pfor's trailing barrier + the explicit one: 2 waits per member.
    assert_eq!(counts["barrier.wait"], 2 * n as u64);
    assert_eq!(counts["barrier.release"], 2 * n as u64);
    // Dynamic(512) over 10_000 iterations deals exactly ceil(10000/512)
    // chunks in total, however the members race for them.
    assert_eq!(counts["chunk.dispatch"], 10_000u64.div_ceil(512));
    assert_eq!(counts, b.counts_by_name(), "rerun changed region event counts");
}

#[test]
fn disabled_collector_records_nothing_and_changes_nothing() {
    faultsim::silence_injected_panics();
    let seed = 0xD15_AB1E;
    // Attached but toggled off: the whole instrumented path runs with
    // recording disabled and must emit zero events.
    let col = Collector::new();
    col.set_enabled(false);
    let h = col.handle();
    let rt = TaskRuntime::builder().workers(4).trace(&h).build();
    let server = flaky_server(seed, &h);
    let off_outcome = try_fetch_all(&rt, &server, 4, &crawl_policy());
    rt.shutdown();
    assert!(col.snapshot().is_empty(), "disabled collector must record nothing");

    // No collector at all (the default handle): same behaviour again.
    let rt = TaskRuntime::builder().workers(4).build();
    let server = flaky_server(seed, &TraceHandle::default());
    let plain_outcome = try_fetch_all(&rt, &server, 4, &crawl_policy());
    rt.shutdown();

    // And a fully recording run: the workload's observable behaviour
    // is bit-identical in all three configurations.
    let (_, on_outcome) = traced_crawl(seed, 4, 4);
    let fp = |o: &FetchOutcome| {
        (
            o.pages
                .iter()
                .map(|p| (p.page, p.attempts, p.kb.map(f64::to_bits)))
                .collect::<Vec<_>>(),
            o.failed_pages.clone(),
            [o.attempts_total, o.retries, o.transient_errors, o.timeouts, o.panics],
        )
    };
    assert_eq!(fp(&off_outcome), fp(&plain_outcome));
    assert_eq!(fp(&off_outcome), fp(&on_outcome));
}

#[test]
fn metrics_registry_matches_trace_and_stats() {
    faultsim::silence_injected_panics();
    let col = Collector::new();
    let h = col.handle();
    let rt = TaskRuntime::builder().workers(4).name("rt").trace(&h).build();
    let server = flaky_server(0xFACE, &h);
    let _ = try_fetch_all(&rt, &server, 4, &crawl_policy());
    // `try_fetch_all` returns when the joiners have their results, which
    // can be a beat before the workers finish their post-run bookkeeping
    // (`executed` and the outcome mark land after the result is posted).
    // Quiesce so every counter is final before sampling.
    rt.wait_quiescent();
    let stats = rt.stats();
    rt.shutdown();
    let counters = col.metrics().counter_values();
    assert_eq!(counters["rt.spawned"], stats.spawned);
    assert_eq!(counters["rt.executed"], stats.executed);
    assert_eq!(counters["rt.steals"], stats.steals);
    let trace = col.snapshot();
    let counts = trace.counts_by_name();
    assert_eq!(counts["task.spawn"], stats.spawned);
    assert_eq!(
        counts.get("sched.steal").copied().unwrap_or(0),
        stats.steals,
        "steal marks and the steal counter are written at the same site"
    );
}
