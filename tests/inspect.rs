//! Inspect suite: the E-DEBUG contracts, as integration tests.
//!
//! 1. **Query = scan** — the store's interval, kind and overlap
//!    indexes agree with naive full scans on a real fault-injected
//!    crawl trace.
//! 2. **Canonical reconstruction** — the task graph's fingerprint,
//!    logical critical path and deterministic JSON are bit-identical
//!    across reruns *and* across 1/3/8-worker pools for the same
//!    seed.
//! 3. **Replay determinism** — diffing two same-seed recordings is
//!    empty, replaying a schedule reproduces it, and the time-travel
//!    cursor re-executes prefixes consistently in both directions.
//! 4. **Integration** — spans still open at snapshot time surface in
//!    the store, and the runtime's latency histograms record samples
//!    for the same run the graph is built from.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use faultsim::{FaultInjector, FaultPlan, RetryPolicy};
use parc_explore::replay::{record_seeded, replay};
use parc_explore::sync::PlainCell;
use parc_inspect::{diff_schedules, CriticalPath, CriticalReport, TaskGraph, TimeTravel, TraceStore};
use parc_trace::{Collector, SpanKind, Trace};
use parsort::{data, quicksort_partask};
use partask::TaskRuntime;
use pyjama::{Schedule, Team};
use websim::{try_fetch_all, ServerConfig, SimServer};

/// The deterministic E-DEBUG workload: seeded quicksort on `workers`
/// partask workers plus a 4-member pyjama region with a barrier.
fn deterministic_run(workers: usize) -> Trace {
    let collector = Collector::new();
    let handle = collector.handle();
    let rt = TaskRuntime::builder()
        .workers(workers)
        .name("partask")
        .trace(&handle)
        .build();
    let mut v = data::random(60_000, 0xC0FFEE);
    quicksort_partask(&rt, &mut v);
    rt.shutdown();

    let team = Team::with_trace(4, &handle);
    let sums: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
    team.parallel(|ctx| {
        ctx.pfor(0..4_000, Schedule::Dynamic(256), |i: usize| {
            sums[i % 4].fetch_add(i as u64, Ordering::Relaxed);
        });
        ctx.barrier();
    });
    collector.snapshot()
}

/// A messier trace for query tests: fault-injected crawl with
/// retries, panics and steals.
fn crawl_trace() -> Trace {
    faultsim::silence_injected_panics();
    let collector = Collector::new();
    let handle = collector.handle();
    let rt = TaskRuntime::builder()
        .workers(3)
        .name("partask")
        .trace(&handle)
        .build();
    let server = Arc::new(
        SimServer::with_faults(
            ServerConfig { pages: 24, time_scale: 2e-6, ..ServerConfig::default() },
            FaultInjector::new(
                FaultPlan::reliable(42).with_error_rate(0.25).with_panic_rate(0.05),
            ),
        )
        .with_trace(&handle),
    );
    let policy = RetryPolicy::fixed(Duration::from_micros(100)).with_max_attempts(6);
    let _ = try_fetch_all(&rt, &server, 4, &policy);
    rt.shutdown();
    collector.snapshot()
}

fn racy_body() {
    let cell = Arc::new(PlainCell::new("count", 0i64));
    let mut handles = Vec::new();
    for _ in 0..2 {
        let cell = Arc::clone(&cell);
        handles.push(parc_explore::thread::spawn(move || {
            let v = cell.get();
            cell.set(v + 1);
        }));
    }
    for h in handles {
        h.join();
    }
    parc_explore::record("final", cell.get());
}

// ---------------------------------------------------------------
// 1. Queries agree with naive scans.

#[test]
fn interval_and_kind_queries_match_naive_scans_on_a_crawl() {
    let store = TraceStore::new(crawl_trace());
    let events = store.events();
    assert!(!events.is_empty());
    let first = events[0].ts_ns;
    let wall = store.wall_ns();

    // Several windows, including empty and full ones.
    for (lo, hi) in [
        (first, first + wall + 1),
        (first + wall / 4, first + wall / 2),
        (first + wall, first + wall),
        (first + wall / 3, first + 2 * wall / 3),
    ] {
        let fast = store.events_in(lo, hi);
        let naive: Vec<_> =
            events.iter().filter(|e| e.ts_ns >= lo && e.ts_ns < hi).collect();
        assert_eq!(fast.len(), naive.len(), "window [{lo},{hi})");
        assert!(fast
            .iter()
            .zip(&naive)
            .all(|(a, b)| a.ts_ns == b.ts_ns && a.tid == b.tid && a.pid == b.pid));

        for kind in ["fetch.attempt", "task.spawn", "retry.wait", "sched.steal"] {
            let indexed = store.kind_indices_in(kind, lo, hi).len();
            let scanned = events
                .iter()
                .filter(|e| e.name() == kind && e.ts_ns >= lo && e.ts_ns < hi)
                .count();
            assert_eq!(indexed, scanned, "kind {kind} in [{lo},{hi})");
        }

        let fast_spans: Vec<u64> =
            store.spans_overlapping(lo, hi).iter().map(|s| s.span.id).collect();
        let mut naive_spans: Vec<(u64, u64)> = store
            .spans()
            .filter(|s| s.span.start_ns < hi && s.span.end_ns >= lo)
            .map(|s| (s.span.start_ns, s.span.id))
            .collect();
        naive_spans.sort_unstable();
        let naive_ids: Vec<u64> = naive_spans.into_iter().map(|(_, id)| id).collect();
        assert_eq!(fast_spans, naive_ids, "overlap in [{lo},{hi})");
    }

    for kind in ["fetch.attempt", "task.run", "fault.injected"] {
        assert_eq!(
            store.kind_indices(kind).len(),
            events.iter().filter(|e| e.name() == kind).count(),
            "total count for {kind}",
        );
    }
}

// ---------------------------------------------------------------
// 2. Canonical reconstruction across reruns and pool sizes.

#[test]
fn graph_and_critical_path_are_identical_across_reruns_and_pools() {
    let (_, canonical_graph, canonical_report) = parc_inspect::analyze(deterministic_run(4));
    let fingerprint = canonical_graph.fingerprint();
    let det_json = canonical_report.deterministic_json();
    assert!(canonical_graph.node_count() > 10, "workload must spawn real structure");

    // Rerun with the same pool.
    let (_, g2, r2) = parc_inspect::analyze(deterministic_run(4));
    assert_eq!(g2.fingerprint(), fingerprint, "rerun fingerprint");
    assert_eq!(r2.deterministic_json(), det_json, "rerun critical path");

    // Different pool sizes reconstruct the same canonical graph.
    for workers in [1usize, 3, 8] {
        let (_, g, r) = parc_inspect::analyze(deterministic_run(workers));
        assert_eq!(g.fingerprint(), fingerprint, "pool size {workers}");
        assert_eq!(r.deterministic_json(), det_json, "pool size {workers} path");
        assert_eq!(g.node_count(), canonical_graph.node_count());
        assert_eq!(g.edge_count(), canonical_graph.edge_count());
    }
}

#[test]
fn attribution_is_bounded_and_sees_the_barrier() {
    let (_, _, report) = parc_inspect::analyze(deterministic_run(4));
    let total = report.attribution_total_pct();
    assert!(total > 0.0 && total <= 100.0 + 1e-6, "shares bounded: {total}");
    assert!(report.share_of("barrier.wait") > 0.0, "barrier demo must show waits");
    assert!(report.share_of("task.run") > 0.0);
    // Exports parse with the in-repo JSON parser.
    let json = parc_trace::parse_json(&report.to_json()).expect("report JSON parses");
    assert!(json.get("deterministic").is_some() && json.get("wall_clock").is_some());
}

#[test]
fn logical_critical_path_has_zero_slack_on_path_nodes() {
    let (_, graph, _) = parc_inspect::analyze(deterministic_run(2));
    let path = CriticalPath::compute(&graph, |i| graph.nodes[i].logical);
    assert!(!path.is_empty());
    for entry in &path.entries {
        assert_eq!(path.slack[entry.node], 0, "on-path node must have zero slack");
    }
    assert_eq!(path.entries.last().unwrap().cumulative, path.total);
}

// ---------------------------------------------------------------
// 3. Replay determinism.

#[test]
fn same_seed_recordings_diff_empty_and_replays_reproduce() {
    let a = record_seeded("a", 7, 20_000, racy_body);
    let b = record_seeded("b", 7, 20_000, racy_body);
    assert!(a.completed);
    assert!(diff_schedules(&a, &b).is_empty(), "same seed must diff empty");

    let replayed = replay("r", racy_body, &a.schedule);
    assert!(replayed.completed);
    assert!(diff_schedules(&a, &replayed).is_empty(), "replay must reproduce");
}

#[test]
fn different_seeds_eventually_diverge_with_a_located_first_decision() {
    let base = record_seeded("base", 1, 20_000, racy_body);
    let other = (2..64)
        .map(|seed| record_seeded("other", seed, 20_000, racy_body))
        .find(|r| r.schedule != base.schedule)
        .expect("some seed in 2..64 schedules differently");
    let diff = diff_schedules(&base, &other);
    assert!(!diff.is_empty());
    let at = diff.first_divergence.expect("divergence located");
    assert_eq!(base.steps[..at], other.steps[..at], "common prefix holds");
    assert_ne!(base.steps.get(at), other.steps.get(at));
}

#[test]
fn time_travel_prefixes_are_consistent_in_both_directions() {
    let rec = record_seeded("tt", 3, 20_000, racy_body);
    let total = rec.len();
    let reference = rec.steps.clone();
    let mut tt = TimeTravel::new(rec, racy_body);

    // Forward from 0: every position replays exactly the prefix.
    tt.seek(0);
    for want in 1..=total {
        tt.forward();
        assert_eq!(tt.cursor(), want);
        assert_eq!(tt.state().steps[..], reference[..want], "prefix {want}");
        assert!(tt.state().diverged_at.is_none(), "own schedule never diverges");
    }
    assert!(tt.at_end() && tt.state().completed);

    // Backward: same invariant, re-executed.
    for want in (0..total).rev() {
        tt.back();
        assert_eq!(tt.cursor(), want);
        assert_eq!(tt.state().steps[..], reference[..want]);
        if want < total {
            assert!(!tt.state().frontier.is_empty(), "mid-run exposes the frontier");
        }
    }
    assert!(tt.at_start());
}

// ---------------------------------------------------------------
// 4. Integration: open spans and runtime latencies.

#[test]
fn open_spans_surface_in_store_and_graph() {
    let collector = Collector::new();
    let handle = collector.handle();
    let pid = handle.register_track("demo");
    let held = handle.span(pid, SpanKind::TaskRun { task: 5 });
    drop(handle.span(pid, SpanKind::TaskRun { task: 6 }));
    let store = TraceStore::new(collector.snapshot());
    drop(held);

    let open: Vec<_> = store.spans().filter(|s| s.span.open).collect();
    assert_eq!(open.len(), 1, "the held span must surface as open");
    assert!(open[0].end_idx.is_none());
    let graph = TaskGraph::build(&store);
    assert_eq!(graph.node_count(), 2, "open task still becomes a node");
}

#[test]
fn runtime_latency_histograms_record_the_inspected_run() {
    let collector = Collector::new();
    let rt = TaskRuntime::builder()
        .workers(4)
        .name("partask")
        .trace(&collector.handle())
        .build();
    let mut v = data::random(60_000, 0xC0FFEE);
    quicksort_partask(&rt, &mut v);
    let latencies = rt.latencies();
    rt.shutdown();

    let (store, graph, _) = parc_inspect::analyze(collector.snapshot());
    let tasks_run = store.kind_indices("task.run").len() / 2; // begin + end
    assert!(tasks_run > 0);
    // One run-duration sample per executed task. The histogram write
    // and the trace-span close are not one atomic step, so a task
    // finishing right at the `latencies()` read may be counted by one
    // and not (yet) the other — allow one in-flight task per worker.
    let samples = latencies.run_ms.total() as usize;
    assert!(
        samples.abs_diff(tasks_run) <= 4,
        "run-duration samples ({samples}) must track executed tasks ({tasks_run})",
    );
    assert!(latencies.run_ms.p50() >= 0.0);
    assert!(!graph.is_empty());
    let report = CriticalReport::analyze(&store, &graph);
    assert!(report.logical.total > 0);
}
