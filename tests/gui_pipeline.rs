//! End-to-end GUI pipelines: background work, the event-dispatch
//! thread and interim results, composed across crates — the
//! interactive application shape every "(also available for Android)"
//! project in the paper shares.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use softeng751::prelude::*;

#[test]
fn gallery_streams_thumbnails_to_edt_while_responsive() {
    use imaging::{gen, render_gallery, GalleryConfig, Strategy};
    let rt = TaskRuntime::builder().workers(2).build();
    let team = Team::new(2);
    let gui = EventLoop::spawn();

    let images = Arc::new(gen::generate_folder(10, 32, 64, 3));
    let displayed = Arc::new(AtomicUsize::new(0));
    let on_edt = Arc::new(AtomicUsize::new(0));

    let (tx, rx) = interim_channel::<(usize, imaging::Image)>();
    {
        let displayed = Arc::clone(&displayed);
        let on_edt = Arc::clone(&on_edt);
        let probe = gui.handle();
        rx.forward_to_gui(&gui.handle(), move |(_, thumb)| {
            assert_eq!((thumb.width(), thumb.height()), (8, 8));
            displayed.fetch_add(1, Ordering::Relaxed);
            if probe.is_dispatch_thread() {
                on_edt.fetch_add(1, Ordering::Relaxed);
            }
        });
    }
    let probe = Probe::start(gui.handle(), Duration::from_millis(1));
    let report = render_gallery(
        &images,
        &GalleryConfig {
            thumb_w: 8,
            thumb_h: 8,
            strategy: Strategy::TaskPerImage,
            ..GalleryConfig::default()
        },
        &rt,
        &team,
        Some(&tx),
    );
    gui.handle().drain();
    let resp = probe.finish();

    assert_eq!(report.thumbnails.len(), 10);
    assert_eq!(displayed.load(Ordering::Relaxed), 10);
    assert_eq!(on_edt.load(Ordering::Relaxed), 10, "every update on the EDT");
    assert!(
        resp.summary().median() < 20.0,
        "EDT must stay responsive during the render"
    );
    rt.shutdown();
    gui.shutdown();
}

#[test]
fn search_hits_appear_on_edt_in_flight() {
    use docsearch::corpus::{generate_tree, CorpusConfig};
    use docsearch::{search_folder, Match, Query};
    let rt = TaskRuntime::builder().workers(2).build();
    let gui = EventLoop::spawn();
    let cfg = CorpusConfig {
        needle_rate: 0.04,
        ..CorpusConfig::default()
    };
    let (tree, planted) = generate_tree(&cfg);

    let displayed = Arc::new(AtomicUsize::new(0));
    let (tx, rx) = interim_channel::<Match>();
    {
        let displayed = Arc::clone(&displayed);
        rx.forward_to_gui(&gui.handle(), move |m| {
            assert!(m.line_no >= 1);
            displayed.fetch_add(1, Ordering::Relaxed);
        });
    }
    let report = search_folder(&rt, &tree, &Query::literal(&cfg.needle), Some(&tx), None);
    gui.handle().drain();
    assert_eq!(report.matches.len(), planted);
    assert_eq!(displayed.load(Ordering::Relaxed), planted);
    rt.shutdown();
    gui.shutdown();
}

#[test]
fn pyjama_gui_region_keeps_edt_free_and_delivers() {
    let team = Team::new(2);
    let gui = EventLoop::spawn();
    let delivered = Arc::new(AtomicUsize::new(0));
    let d2 = Arc::clone(&delivered);
    let probe_handle = gui.handle();
    let region = pyjama::gui::gui_async(
        &team,
        &gui.handle(),
        |team| team.par_sum(0..50_000, Schedule::Static, |i| i as u64),
        move |sum| {
            assert!(probe_handle.is_dispatch_thread());
            assert_eq!(sum, 49_999 * 50_000 / 2);
            d2.fetch_add(1, Ordering::Relaxed);
        },
    );
    region.wait();
    gui.handle().drain();
    assert_eq!(delivered.load(Ordering::Relaxed), 1);
    gui.shutdown();
}

#[test]
fn long_computation_on_edt_vs_off_edt_latency_contrast() {
    // The central pedagogical contrast of the GUI projects: the same
    // computation frozen vs fluid, measured.
    let gui = EventLoop::spawn();
    let rt = TaskRuntime::builder().workers(2).build();

    let busy = || {
        let mut acc = 0u64;
        for i in 0..20_000_000u64 {
            acc = acc.wrapping_add(i);
        }
        acc
    };

    // Off the EDT.
    let probe = Probe::start(gui.handle(), Duration::from_millis(1));
    let t = rt.spawn(busy);
    let _ = t.join().unwrap();
    let off_edt = probe.finish();

    // On the EDT (the student mistake).
    let probe = Probe::start(gui.handle(), Duration::from_millis(1));
    gui.invoke_and_wait(busy);
    let on_edt = probe.finish();

    assert!(
        on_edt.worst_ms() > off_edt.worst_ms() * 3.0,
        "blocking the EDT must visibly spike dispatch latency ({} vs {})",
        on_edt.worst_ms(),
        off_edt.worst_ms()
    );
    rt.shutdown();
    gui.shutdown();
}

#[test]
fn cancel_mid_search_from_the_gui_side() {
    use docsearch::corpus::{generate_tree, CorpusConfig};
    use docsearch::{search_folder, Query};
    // A bigger corpus and a 1-worker pool so cancellation lands while
    // files are still queued.
    let rt = TaskRuntime::builder().workers(1).build();
    let (tree, _) = generate_tree(&CorpusConfig {
        files_per_dir: 30,
        dirs_per_level: 3,
        depth: 2,
        lines_per_file: 120,
        ..CorpusConfig::default()
    });
    let cancel = CancelToken::new();
    // "User typed a new query" after 2 ms.
    let cancel2 = cancel.clone();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(2));
        cancel2.cancel();
    });
    let report = search_folder(&rt, &tree, &Query::literal("the"), None, Some(&cancel));
    canceller.join().unwrap();
    // Either it finished very fast or some files were skipped; both
    // are valid — but a cancelled run must be flagged as such.
    if report.cancelled {
        assert!(report.files_searched > 0);
    }
    rt.shutdown();
}
