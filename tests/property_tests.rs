//! Property-based tests (proptest) over the core invariants of the
//! workspace: sorting, reductions, statistics, regex, scheduling and
//! image resizing.

use proptest::prelude::*;

use softeng751::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- sorting --------------------------------------------------

    #[test]
    fn quicksort_seq_matches_std(mut v in prop::collection::vec(any::<u64>(), 0..2000)) {
        let mut expected = v.clone();
        expected.sort_unstable();
        parsort::quicksort_seq(&mut v);
        prop_assert_eq!(v, expected);
    }

    #[test]
    fn mergesort_matches_std(v in prop::collection::vec(any::<i64>(), 0..1500)) {
        let mut expected = v.clone();
        expected.sort();
        let mut actual = v;
        parsort::mergesort::mergesort_seq(&mut actual);
        prop_assert_eq!(actual, expected);
    }

    // --- statistics -----------------------------------------------

    #[test]
    fn welford_matches_batch(v in prop::collection::vec(-1e6f64..1e6, 1..500)) {
        let batch = parc_util::Summary::from_samples(&v);
        let mut online = parc_util::Welford::new();
        for &x in &v {
            online.push(x);
        }
        prop_assert!((online.mean() - batch.mean()).abs() < 1e-6);
        prop_assert!((online.stddev() - batch.stddev()).abs() < 1e-5);
        prop_assert_eq!(online.min(), batch.min());
        prop_assert_eq!(online.max(), batch.max());
    }

    #[test]
    fn welford_merge_is_order_independent(
        a in prop::collection::vec(-1e3f64..1e3, 0..200),
        b in prop::collection::vec(-1e3f64..1e3, 0..200),
    ) {
        prop_assume!(!a.is_empty() || !b.is_empty());
        let mut ab = parc_util::Welford::new();
        for &x in a.iter().chain(&b) {
            ab.push(x);
        }
        let mut wa = parc_util::Welford::new();
        for &x in &a {
            wa.push(x);
        }
        let mut wb = parc_util::Welford::new();
        for &x in &b {
            wb.push(x);
        }
        wa.merge(&wb);
        prop_assert_eq!(wa.count(), ab.count());
        prop_assert!((wa.mean() - ab.mean()).abs() < 1e-9);
        prop_assert!((wa.variance() - ab.variance()).abs() < 1e-6);
    }

    #[test]
    fn percentiles_are_monotone(v in prop::collection::vec(-1e4f64..1e4, 1..300)) {
        let s = parc_util::Summary::from_samples(&v);
        let mut last = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let q = s.percentile(p);
            prop_assert!(q >= last, "percentile({p}) = {q} < {last}");
            last = q;
        }
        prop_assert_eq!(s.percentile(0.0), s.min());
        prop_assert_eq!(s.percentile(100.0), s.max());
    }

    // --- PRNG -----------------------------------------------------

    #[test]
    fn next_below_always_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = parc_util::Xoshiro256::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    #[test]
    fn shuffle_preserves_multiset(mut v in prop::collection::vec(any::<u32>(), 0..200), seed in any::<u64>()) {
        let mut expected = v.clone();
        expected.sort_unstable();
        let mut rng = parc_util::Xoshiro256::seed_from_u64(seed);
        rng.shuffle(&mut v);
        v.sort_unstable();
        prop_assert_eq!(v, expected);
    }

    // --- pyjama reductions -----------------------------------------

    #[test]
    fn parallel_sum_matches_sequential(v in prop::collection::vec(0u64..1_000_000, 1..500)) {
        let team = Team::new(3);
        let expected: u64 = v.iter().sum();
        let actual = team.par_sum(0..v.len(), Schedule::Dynamic(7), |i| v[i]);
        prop_assert_eq!(actual, expected);
    }

    #[test]
    fn vec_concat_static_preserves_order(n in 1usize..400, threads in 1usize..5) {
        let team = Team::new(threads);
        let out: Vec<usize> = team.par_reduce(0..n, Schedule::Static, &VecConcat::new(), |i| vec![i]);
        prop_assert_eq!(out, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn min_max_reductions_bracket_data(v in prop::collection::vec(any::<i64>(), 1..300)) {
        let team = Team::new(2);
        let min = team.par_reduce(0..v.len(), Schedule::Guided(3), &MinRed, |i| v[i]);
        let max = team.par_reduce(0..v.len(), Schedule::Guided(3), &MaxRed, |i| v[i]);
        prop_assert_eq!(min, *v.iter().min().unwrap());
        prop_assert_eq!(max, *v.iter().max().unwrap());
        prop_assert!(min <= max);
    }

    // --- regex-lite -------------------------------------------------

    #[test]
    fn literal_regex_agrees_with_str_find(
        needle in "[a-z]{1,6}",
        haystack in "[a-z ]{0,60}",
    ) {
        let re = docsearch::Regex::new(&needle).unwrap();
        prop_assert_eq!(re.is_match(&haystack), haystack.contains(&needle));
        if let Some((start, len)) = re.find(&haystack) {
            prop_assert_eq!(haystack.find(&needle), Some(start));
            prop_assert_eq!(len, needle.len());
        }
    }

    #[test]
    fn regex_find_all_matches_count_literal(
        needle in "[ab]{1,3}",
        haystack in "[abc]{0,50}",
    ) {
        // Compare non-overlapping counts with the std matcher.
        let re = docsearch::Regex::new(&needle).unwrap();
        let expected = haystack.matches(&needle).count();
        prop_assert_eq!(re.find_all(&haystack).len(), expected);
    }

    // --- imaging -----------------------------------------------------

    #[test]
    fn resize_dimensions_always_requested(
        sw in 1u32..64, sh in 1u32..64, dw in 1u32..32, dh in 1u32..32, seed in any::<u64>(),
    ) {
        let src = imaging::gen::generate(imaging::gen::Pattern::Plasma, sw, sh, seed);
        for f in [imaging::Filter::Nearest, imaging::Filter::Bilinear, imaging::Filter::BoxAverage] {
            let out = imaging::resize(&src, dw, dh, f);
            prop_assert_eq!((out.width(), out.height()), (dw, dh));
        }
    }

    // --- course ------------------------------------------------------

    #[test]
    fn poll_always_respects_capacity(
        groups in 1usize..=20,
        skew in 0.0f64..4.0,
        seed in any::<u64>(),
    ) {
        let cfg = course::AllocationConfig {
            groups,
            popularity_skew: skew,
            seed,
            ..course::AllocationConfig::default()
        };
        let outcome = course::run_poll(&cfg);
        let mut per_topic = [0usize; 10];
        for &t in &outcome.assignment {
            per_topic[t] += 1;
        }
        prop_assert!(per_topic.iter().all(|&c| c <= 2));
        prop_assert_eq!(outcome.assignment.len(), groups);
        prop_assert!(outcome.first_choice_rate() <= 1.0);
    }

    // --- kernels ------------------------------------------------------

    #[test]
    fn spmv_linear_in_x(scale in -4.0f64..4.0, seed in any::<u64>()) {
        // A(scale * x) == scale * A(x)
        let a = kernels::sparse::CsrMatrix::random_skewed(30, 20, 3, 1.0, seed);
        let x: Vec<f64> = (0..20).map(|i| f64::from(i as u32) * 0.1 - 1.0).collect();
        let xs: Vec<f64> = x.iter().map(|v| v * scale).collect();
        let y1 = kernels::sparse::spmv_seq(&a, &xs);
        let y2: Vec<f64> = kernels::sparse::spmv_seq(&a, &x).iter().map(|v| v * scale).collect();
        for (u, v) in y1.iter().zip(&y2) {
            prop_assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn bfs_levels_are_valid_distances(n in 2usize..60, m in 1usize..200, seed in any::<u64>()) {
        let g = kernels::graph::CsrGraph::random(n, m, seed);
        let levels = kernels::graph::bfs_seq(&g, 0);
        prop_assert_eq!(levels[0], 0);
        // Every edge (u, v) with u reachable must satisfy
        // level(v) <= level(u) + 1 (triangle inequality of BFS).
        for u in 0..n {
            if levels[u] == u32::MAX {
                continue;
            }
            for &v in g.neighbours(u) {
                prop_assert!(levels[v as usize] <= levels[u] + 1);
            }
        }
    }

    // --- retry policies (faultsim) --------------------------------

    #[test]
    fn exponential_backoff_is_monotone(
        base_us in 1u64..10_000,
        factor in 1.0f64..4.0,
        max_ms in 1u64..5_000,
    ) {
        let policy = RetryPolicy::exponential(
            std::time::Duration::from_micros(base_us),
            factor,
            std::time::Duration::from_millis(max_ms),
        );
        let mut prev = std::time::Duration::ZERO;
        for k in 1..=25u32 {
            let d = policy.raw_delay(k);
            prop_assert!(d >= prev, "raw_delay({}) shrank", k);
            // Never beyond the cap (with float-rounding headroom).
            prop_assert!(d.as_secs_f64() <= max_ms as f64 * 1e-3 * (1.0 + 1e-9));
            prev = d;
        }
    }

    #[test]
    fn jittered_delays_are_deterministic_and_bounded(
        base_us in 1u64..50_000,
        jitter in 0.0f64..0.9,
        seed in any::<u64>(),
    ) {
        let policy = RetryPolicy::fixed(std::time::Duration::from_micros(base_us))
            .with_jitter(jitter)
            .with_max_attempts(8);
        for k in 1..8u32 {
            let once = policy.delay_after(k, seed);
            let again = policy.delay_after(k, seed);
            // Pure function of (seed, k): replay gives the same wait.
            prop_assert_eq!(once, again);
            let raw = policy.raw_delay(k).as_secs_f64();
            prop_assert!(once.as_secs_f64() >= raw * (1.0 - jitter) - 1e-12);
            prop_assert!(once.as_secs_f64() <= raw * (1.0 + jitter) + 1e-12);
        }
        // And the whole schedule is seed-stable too.
        prop_assert_eq!(policy.schedule(seed), policy.schedule(seed));
    }

    #[test]
    fn schedule_total_respects_overall_deadline(
        base_us in 1u64..20_000,
        factor in 1.0f64..3.0,
        deadline_us in 1u64..200_000,
        seed in any::<u64>(),
    ) {
        let policy = RetryPolicy::exponential(
            std::time::Duration::from_micros(base_us),
            factor,
            std::time::Duration::from_millis(50),
        )
        .with_jitter(0.3)
        .with_max_attempts(12)
        .with_overall_deadline(std::time::Duration::from_micros(deadline_us));
        let schedule = policy.schedule(seed);
        let total: std::time::Duration = schedule.iter().sum();
        prop_assert!(total <= std::time::Duration::from_micros(deadline_us));
        prop_assert!(schedule.len() < 12);
    }

    #[test]
    fn execute_retries_until_the_scripted_success(
        fail_first in 0u32..6,
        max_attempts in 1u32..8,
        seed in any::<u64>(),
    ) {
        let policy = RetryPolicy::fixed(std::time::Duration::from_micros(10))
            .with_jitter(0.5)
            .with_max_attempts(max_attempts);
        let mut slept = Vec::new();
        let result = policy.execute_with(
            seed,
            |d| slept.push(d),
            |attempt| if attempt > fail_first { Ok(attempt) } else { Err(attempt) },
        );
        if fail_first < max_attempts {
            let retried = result.unwrap();
            prop_assert_eq!(retried.attempts, fail_first + 1);
            prop_assert_eq!(retried.value, fail_first + 1);
            prop_assert_eq!(slept.len() as u32, fail_first);
        } else {
            let err = result.unwrap_err();
            prop_assert_eq!(err.attempts(), max_attempts);
            prop_assert_eq!(slept.len() as u32, max_attempts - 1);
        }
        // The sleeps are exactly the policy's deterministic schedule.
        let expected: Vec<_> = (1..=slept.len() as u32)
            .map(|k| policy.delay_after(k, seed))
            .collect();
        prop_assert_eq!(slept, expected);
    }
}
