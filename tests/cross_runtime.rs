//! Cross-runtime agreement: the same computation expressed on
//! partask, on pyjama and sequentially must produce identical results.
//! This is the load-bearing invariant behind every project comparison
//! in the paper — different parallelisation strategies, same answer.

use std::sync::Arc;

use softeng751::prelude::*;

#[test]
fn matmul_three_ways_agrees() {
    use kernels::linalg::{matmul_par, matmul_partask, matmul_seq, Matrix};
    let rt = TaskRuntime::builder().workers(3).build();
    let team = Team::new(3);
    let a = Matrix::random(40, 56, 0xAB);
    let b = Matrix::random(56, 32, 0xCD);
    let seq = matmul_seq(&a, &b);
    assert!(matmul_par(&team, &a, &b).max_diff(&seq) < 1e-12);
    assert!(matmul_partask(&rt, &a, &b, 7).max_diff(&seq) < 1e-12);
    rt.shutdown();
}

#[test]
fn sorting_five_ways_agrees() {
    use parsort::{data, mergesort, quicksort_partask, quicksort_pyjama, quicksort_seq, samplesort};
    let rt = TaskRuntime::builder().workers(3).build();
    let team = Team::new(3);
    let input = data::few_unique(30_000, 257, 0x31);
    let mut expected = input.clone();
    expected.sort_unstable();

    let mut v1 = input.clone();
    quicksort_seq(&mut v1);
    let mut v2 = input.clone();
    quicksort_partask(&rt, &mut v2);
    let mut v3 = input.clone();
    quicksort_pyjama(&team, &mut v3);
    let mut v4 = input.clone();
    mergesort::mergesort_partask(&rt, &mut v4);
    let mut v5 = input.clone();
    samplesort::samplesort(&rt, &mut v5, 8);

    assert_eq!(v1, expected);
    assert_eq!(v2, expected);
    assert_eq!(v3, expected);
    assert_eq!(v4, expected);
    assert_eq!(v5, expected);
    rt.shutdown();
}

#[test]
fn pi_three_estimators_converge_to_pi() {
    use kernels::montecarlo::{pi_monte_carlo_par, pi_quadrature_par, pi_quadrature_seq};
    let team = Team::new(2);
    let q_seq = pi_quadrature_seq(200_000);
    let q_par = pi_quadrature_par(&team, 200_000, Schedule::Guided(256));
    let mc = pi_monte_carlo_par(&team, 400_000, 0x99, 16);
    assert!((q_seq - std::f64::consts::PI).abs() < 1e-8);
    assert!((q_par - q_seq).abs() < 1e-9);
    assert!((mc - std::f64::consts::PI).abs() < 0.02);
}

#[test]
fn pyjama_team_shared_by_partask_tasks() {
    // A pyjama team used from inside partask tasks: regions from
    // different tasks serialise on the team's region lock, results
    // stay correct.
    let rt = TaskRuntime::builder().workers(2).build();
    let team = Team::new(2);
    let handles: Vec<_> = (0..6)
        .map(|k| {
            let team = team.clone();
            rt.spawn(move || team.par_sum(0..1000, Schedule::Static, move |i| (i as u64) + k))
        })
        .collect();
    for (k, h) in handles.into_iter().enumerate() {
        let expected = (0..1000u64).sum::<u64>() + 1000 * k as u64;
        assert_eq!(h.join().unwrap(), expected);
    }
    rt.shutdown();
}

#[test]
fn gallery_pixels_identical_between_engines() {
    use imaging::{gen, render_gallery, GalleryConfig, Strategy};
    let rt = TaskRuntime::builder().workers(2).build();
    let team = Team::new(2);
    let images = Arc::new(gen::generate_folder(6, 16, 40, 7));
    let reference = render_gallery(
        &images,
        &GalleryConfig {
            thumb_w: 10,
            thumb_h: 10,
            strategy: Strategy::Sequential,
            ..GalleryConfig::default()
        },
        &rt,
        &team,
        None,
    );
    for strategy in [Strategy::TaskPerImage, Strategy::PyjamaDynamic(1)] {
        let other = render_gallery(
            &images,
            &GalleryConfig {
                thumb_w: 10,
                thumb_h: 10,
                strategy,
                ..GalleryConfig::default()
            },
            &rt,
            &team,
            None,
        );
        for (a, b) in reference.thumbnails.iter().zip(&other.thumbnails) {
            assert_eq!(a.content_hash(), b.content_hash());
        }
    }
    rt.shutdown();
}

#[test]
fn search_results_independent_of_worker_count() {
    use docsearch::corpus::{generate_tree, CorpusConfig};
    use docsearch::{search_folder, Query};
    let cfg = CorpusConfig {
        needle_rate: 0.05,
        ..CorpusConfig::default()
    };
    let (tree, planted) = generate_tree(&cfg);
    let mut results = Vec::new();
    for workers in [1, 2, 4] {
        let rt = TaskRuntime::builder().workers(workers).build();
        let report = search_folder(&rt, &tree, &Query::literal(&cfg.needle), None, None);
        results.push(report.matches);
        rt.shutdown();
    }
    assert_eq!(results[0].len(), planted);
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
}

#[test]
fn scheduler_kinds_equivalent_for_every_subsystem_sample() {
    // One sample workload per scheduler kind must agree.
    for kind in [SchedulerKind::WorkStealing, SchedulerKind::WorkSharing] {
        let rt = TaskRuntime::builder().workers(2).scheduler(kind).build();
        let m = rt.spawn_multi(16, |i| (i as u64 + 1) * 3);
        assert_eq!(m.join_reduce(0, |a, b| a + b).unwrap(), 3 * 136);
        rt.shutdown();
    }
}
