//! Integration tests for the extension features: scoped tasks,
//! sub-team regions, the ordered construct, image filters, the
//! inverted index, GUI timers and the teaching-report generators —
//! exercised *together* rather than per-crate.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use softeng751::prelude::*;

#[test]
fn scoped_tasks_feed_a_pyjama_reduction() {
    // Scope produces per-chunk partial results into a borrowed Vec;
    // a pyjama reduction then folds them — two runtimes, one dataset,
    // no 'static anywhere.
    let rt = TaskRuntime::builder().workers(2).build();
    let team = Team::new(2);
    let data: Vec<u64> = (0..10_000).collect();
    let mut partials = [0u64; 8];
    rt.scope(|s| {
        for (k, slot) in partials.iter_mut().enumerate() {
            let data = &data;
            s.spawn(move || {
                *slot = data.iter().skip(k).step_by(8).sum();
            });
        }
    });
    let total = team.par_sum(0..partials.len(), Schedule::Static, |i| partials[i]);
    assert_eq!(total, data.iter().sum::<u64>());
    rt.shutdown();
}

#[test]
fn ordered_pfor_builds_a_deterministic_transcript() {
    // The ordered construct writing into a shared Vec produces the
    // sequential transcript even with a dynamic schedule.
    let team = Team::new(4);
    let log = std::sync::Mutex::new(String::new());
    team.parallel(|ctx| {
        ctx.pfor_ordered(0..26, Schedule::Dynamic(3), |i, gate| {
            let ch = (b'a' + i as u8) as char;
            // Parallel part: compute; ordered part: append.
            gate.run(i, || log.lock().unwrap().push(ch));
        });
    });
    assert_eq!(*log.lock().unwrap(), "abcdefghijklmnopqrstuvwxyz");
}

#[test]
fn subteam_region_while_rest_of_team_sleeps() {
    let team = Team::new(4);
    let participants = AtomicUsize::new(0);
    team.parallel_with(2, |ctx| {
        participants.fetch_add(1, Ordering::Relaxed);
        // Constructs work at sub-team size.
        let sum = ctx.pfor_reduce(0..100, Schedule::Static, &SumRed, |i| i as u64);
        assert_eq!(sum, 4950);
    });
    assert_eq!(participants.load(Ordering::Relaxed), 2);
}

#[test]
fn filter_pipeline_then_thumbnail() {
    // Project 1 extension: preprocess with filters, then thumbnail —
    // parallel at both stages, bit-identical to sequential.
    use imaging::filter::{apply_par, apply_seq, Filter2D};
    use imaging::{resize, Filter};
    let team = Team::new(3);
    let src = imaging::gen::generate(imaging::gen::Pattern::Plasma, 96, 72, 9);
    let pre_seq = apply_seq(&apply_seq(&src, Filter2D::Grayscale), Filter2D::BoxBlur(1));
    let pre_par = apply_par(&team, &apply_par(&team, &src, Filter2D::Grayscale), Filter2D::BoxBlur(1));
    assert_eq!(pre_seq.content_hash(), pre_par.content_hash());
    let thumb = resize(&pre_par, 16, 12, Filter::BoxAverage);
    assert_eq!((thumb.width(), thumb.height()), (16, 12));
    // Grayscale survives the whole pipeline.
    let p = thumb.get(8, 6);
    assert_eq!(p[0], p[1]);
    assert_eq!(p[1], p[2]);
}

#[test]
fn index_and_scan_agree_on_hit_files() {
    use docsearch::corpus::{generate_tree, CorpusConfig};
    use docsearch::{search_folder, InvertedIndex, Query};
    let rt = TaskRuntime::builder().workers(2).build();
    let cfg = CorpusConfig {
        needle: "thread".into(), // a vocabulary word: appears naturally
        needle_rate: 0.0,
        ..CorpusConfig::default()
    };
    let (tree, _) = generate_tree(&cfg);
    let index = InvertedIndex::build_par(&rt, &tree);
    // Files found by direct scan == files in the index postings.
    let report = search_folder(&rt, &tree, &Query::literal("thread"), None, None);
    let mut scan_files: Vec<&str> = report.matches.iter().map(|m| m.path.as_str()).collect();
    scan_files.sort_unstable();
    scan_files.dedup();
    let mut index_files: Vec<&str> = index
        .lookup("thread")
        .iter()
        .map(|p| index.files[p.file as usize].as_str())
        .collect();
    index_files.sort_unstable();
    index_files.dedup();
    // The scan finds substrings; "thread" also matches inside
    // "threads" etc. — but the corpus vocabulary contains exactly the
    // word "thread", so token and substring hits coincide here.
    assert_eq!(scan_files, index_files);
    rt.shutdown();
}

#[test]
fn gui_timer_drives_progress_polling() {
    // The classic GUI pattern: a repeating timer polls a multi-task's
    // progress on the EDT while workers grind.
    let rt = TaskRuntime::builder().workers(2).build();
    let gui = EventLoop::spawn();
    let multi = rt.spawn_multi(6, |i| {
        std::thread::sleep(Duration::from_millis(3 + i as u64));
        i
    });
    let observations = Arc::new(std::sync::Mutex::new(Vec::new()));
    let watchers = multi.watchers();
    let obs2 = Arc::clone(&observations);
    let timer = guievent::repeat_every(&gui.handle(), Duration::from_millis(2), move || {
        let done = watchers.iter().filter(|w| w.is_done()).count();
        obs2.lock().unwrap().push(done);
    });
    let results = multi.join_all().unwrap();
    assert_eq!(results, vec![0, 1, 2, 3, 4, 5]);
    // Give the timer a few more ticks to observe completion.
    std::thread::sleep(Duration::from_millis(10));
    timer.stop();
    gui.handle().drain();
    let obs = observations.lock().unwrap();
    assert!(!obs.is_empty(), "timer must have polled");
    assert!(obs.windows(2).all(|w| w[0] <= w[1]), "progress is monotone");
    assert_eq!(*obs.last().unwrap(), 6, "final poll sees everything done");
    rt.shutdown();
    gui.shutdown();
}

#[test]
fn teaching_report_generates_with_live_evidence() {
    let topics = memmodel::build_report();
    assert_eq!(topics.len(), 4);
    let full: String = topics.iter().map(|t| t.render()).collect();
    assert!(full.contains("Lost updates"));
    assert!(full.contains("0 stale reads"));
    assert!(memmodel::cost_appendix().contains("Mutex"));
}

#[test]
fn contribution_marking_end_to_end() {
    use course::repo::{decide_marks, synth_log, MarkDecision, PeerEvaluation};
    // Balanced commits + good peers -> equal (the common case).
    let balanced = synth_log(3, 90, true, 1);
    let good_peers = PeerEvaluation::new(vec![vec![0, 5, 5], vec![5, 0, 4], vec![4, 5, 0]]);
    assert_eq!(
        decide_marks(&balanced, &good_peers, 0.3, 3.0),
        MarkDecision::Equal
    );
    // Skewed commits + bad peers for the slacker -> adjusted.
    let skewed = synth_log(3, 90, false, 1);
    if skewed.gini() > 0.3 {
        let peers = PeerEvaluation::new(vec![vec![0, 2, 2], vec![2, 0, 2], vec![2, 2, 0]]);
        match decide_marks(&skewed, &peers, 0.3, 3.0) {
            MarkDecision::Adjusted(m) => assert_eq!(m.len(), 3),
            MarkDecision::Equal => panic!("double evidence should adjust"),
        }
    }
}

#[test]
fn stencil_inside_gui_async_region() {
    // A compute-heavy kernel dispatched as a Pyjama GUI region: the
    // EDT receives the converged field without blocking.
    use kernels::stencil::{relax_par, Grid};
    let team = Team::new(2);
    let gui = EventLoop::spawn();
    let received = Arc::new(std::sync::Mutex::new(None));
    let r2 = Arc::clone(&received);
    let region = pyjama::gui::gui_async(
        &team,
        &gui.handle(),
        |team| relax_par(team, Grid::hot_top(24, 24), 1e-6, 2000),
        move |(grid, sweeps)| {
            *r2.lock().unwrap() = Some((grid.get(12, 1), sweeps));
        },
    );
    region.wait();
    gui.handle().drain();
    let (near_hot, sweeps) = received.lock().unwrap().take().expect("delivered");
    assert!(near_hot > 50.0, "cell next to the hot edge is hot");
    assert!(sweeps > 1);
    gui.shutdown();
}
