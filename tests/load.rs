//! Integration tests for the sharded web tier and its load generator:
//! the E-LOAD acceptance gates as pinned tests.
//!
//! The headline invariant: a replica killed mid-storm and restarted
//! under `parc-supervise` loses **zero acknowledged pages** — every
//! page the balancer acked to a client stays readable from a
//! surviving owner's store. Plus hedge dedup (each hedge accounted
//! exactly once, no double-count in the per-replica serve tallies),
//! full conservation of the request ledger, bit-identical reports
//! across worker-pool sizes, and property tests over the consistent-
//! hash ring (balance within 2×, ejection moves only the ejected
//! replica's pages).

use faultsim::FaultStorm;
use parc_loadgen::{run_load_cell, ArrivalProcess, LoadCellConfig, TrafficConfig, TrafficTrace};
use partask::TaskRuntime;
use proptest::prelude::*;
use websim::cluster::{Cluster, ClusterConfig, HashRing, OutageScript};
use websim::server::ServerConfig;

fn tier_cfg(seed: u64) -> ClusterConfig {
    ClusterConfig {
        replicas: 4,
        replication: 2,
        seed,
        server: ServerConfig { pages: 100, time_scale: 1e-7, ..ServerConfig::default() },
        ..ClusterConfig::default()
    }
}

fn cell_cfg(seed: u64, ticks: usize, outage: Option<OutageScript>) -> LoadCellConfig {
    LoadCellConfig {
        traffic: TrafficConfig { seed, ticks, pages: 100, zipf_s: 0.9 },
        cluster: tier_cfg(seed),
        outage,
    }
}

/// The tentpole gate: kill a replica mid-storm, restart it under
/// supervision, and prove zero acknowledged pages were lost — for
/// every arrival process × storm shape combination.
#[test]
fn mid_storm_kill_with_supervised_restart_loses_zero_acked_pages() {
    let seed = 0x010A_D6E4;
    let ticks = 30;
    let outage = OutageScript { replica: 1, kill_tick: ticks / 3, restart_tick: 2 * ticks / 3 };
    let rt = TaskRuntime::builder().workers(4).build();
    for process in ArrivalProcess::all(12.0, ticks) {
        for storm in FaultStorm::all(seed) {
            let cell =
                run_load_cell(&rt, &process, &storm, &cell_cfg(seed, ticks, Some(outage)));
            let label = format!("[{} {}]", cell.process, cell.storm);
            assert_eq!(cell.report.kills, 1, "{label}");
            assert_eq!(cell.report.restarts, 1, "{label}");
            assert_eq!(
                cell.report.supervision_restarts, 1,
                "{label}: the restart must come from the supervision tree"
            );
            assert_eq!(cell.report.supervision_escalations, 0, "{label}");
            assert_eq!(
                cell.report.lost_acked, 0,
                "{label}: acknowledged pages lost to the kill"
            );
            assert_eq!(cell.report.violations(), Vec::<String>::new(), "{label}");
            assert!(cell.report.acked > 0, "{label}: tier served nothing");
        }
    }
    rt.shutdown();
}

/// After the kill, some acked pages must survive *only* on a
/// non-primary owner — proof that R-way replication (not luck in the
/// routing) carried the outage.
#[test]
fn replication_is_what_carries_the_kill() {
    let seed = 0xBEE;
    let ticks = 30;
    let outage = OutageScript { replica: 1, kill_tick: 10, restart_tick: 20 };
    let rt = TaskRuntime::builder().workers(4).build();
    let process = ArrivalProcess::PoissonSteady { rate: 16.0 };
    let storm = FaultStorm::burst(seed);
    let cell = run_load_cell(&rt, &process, &storm, &cell_cfg(seed, ticks, Some(outage)));
    rt.shutdown();
    assert!(
        cell.report.reserved_from_replica > 0,
        "no page survived only on a replica — the kill never bit"
    );
    assert_eq!(cell.report.lost_acked, 0);
}

/// Hedge dedup: every hedge fired is accounted exactly once (won,
/// redundant, or wasted), latency samples equal acks (no hedge is
/// recorded twice), and per-replica serve counts sum to acked (no
/// hedge winner is double-credited).
#[test]
fn hedged_requests_are_deduplicated_and_fully_accounted() {
    let seed = 0xD1CE;
    let ticks = 24;
    // Aggressive hedging: median threshold, fast warm-up.
    let mut cfg = cell_cfg(seed, ticks, None);
    cfg.cluster.hedge_quantile = 0.5;
    cfg.cluster.hedge_min_samples = 16;
    let rt = TaskRuntime::builder().workers(4).build();
    let process = ArrivalProcess::PoissonSteady { rate: 18.0 };
    let storm = FaultStorm::brownout(seed);
    let cell = run_load_cell(&rt, &process, &storm, &cfg);
    rt.shutdown();
    let r = &cell.report;
    assert!(r.hedges_fired > 0, "median-quantile hedging never fired");
    assert_eq!(
        r.hedges_fired,
        r.served_hedge + r.hedge_redundant + r.hedge_wasted,
        "a hedge escaped the ledger"
    );
    assert_eq!(r.latency.total(), r.acked, "an ack was latency-sampled twice (hedge dup?)");
    assert_eq!(
        r.per_replica_served.iter().sum::<u64>(),
        r.acked,
        "a hedge winner was credited to two replicas"
    );
    assert_eq!(r.violations(), Vec::<String>::new());
}

/// The whole cell — trace generation, routing, faults, hedging,
/// health checks, supervised outage — is bit-identical across
/// worker-pool sizes and reruns.
#[test]
fn load_cells_are_bit_identical_across_pool_sizes() {
    let seed = 0xF00;
    let ticks = 24;
    let outage = OutageScript { replica: 2, kill_tick: 8, restart_tick: 16 };
    let process = ArrivalProcess::FlashCrowd { base: 8.0, peak: 40.0, at_tick: 8, decay_ticks: 5 };
    let storm = FaultStorm::flapping(seed);
    let mut cells = Vec::new();
    for workers in [1usize, 3, 8] {
        let rt = TaskRuntime::builder().workers(workers).build();
        cells.push(run_load_cell(&rt, &process, &storm, &cell_cfg(seed, ticks, Some(outage))));
        rt.shutdown();
    }
    assert_eq!(cells[0], cells[1], "1 vs 3 workers diverged");
    assert_eq!(cells[1], cells[2], "3 vs 8 workers diverged");
    assert_eq!(cells[0].report.fingerprint(), cells[2].report.fingerprint());
}

/// Backpressure end to end: with tiny queues, an open-loop burst is
/// answered with queue-full sheds (not failures), and the ledger
/// still balances.
#[test]
fn bounded_queues_shed_bursts_without_losing_the_ledger() {
    let seed = 0xCAFE;
    let mut cfg = cell_cfg(seed, 6, None);
    cfg.cluster.queue_capacity = 3;
    let rt = TaskRuntime::builder().workers(4).build();
    let process = ArrivalProcess::FlashCrowd { base: 6.0, peak: 90.0, at_tick: 2, decay_ticks: 2 };
    let storm = FaultStorm::burst(seed);
    let cell = run_load_cell(&rt, &process, &storm, &cfg);
    rt.shutdown();
    assert!(cell.report.shed_queue_full > 0, "the burst never hit the bounded queues");
    assert_eq!(cell.report.violations(), Vec::<String>::new());
}

/// A generated trace is a pure function of its seeds, and distinct
/// arrival processes genuinely differ in shape.
#[test]
fn traces_are_reproducible_and_shaped() {
    let cfg = TrafficConfig { seed: 0xAB, ticks: 30, pages: 100, zipf_s: 0.9 };
    for process in ArrivalProcess::all(14.0, 30) {
        let a = TrafficTrace::generate(&process, &cfg);
        let b = TrafficTrace::generate(&process, &cfg);
        assert_eq!(a, b, "{}", process.name());
        assert!(a.total_requests() > 0, "{}", process.name());
    }
    let crowd = ArrivalProcess::FlashCrowd { base: 6.0, peak: 80.0, at_tick: 10, decay_ticks: 4 };
    let trace = TrafficTrace::generate(&crowd, &cfg);
    let before: usize = trace.ticks[..10].iter().map(Vec::len).sum();
    let after: usize = trace.ticks[10..14].iter().map(Vec::len).sum();
    assert!(after > before, "flash crowd must spike after its landing tick");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Consistent-hash balance: at N ∈ {2, 4, 8} replicas with 128
    /// vnodes, the busiest replica owns at most 2× the primary pages
    /// of the quietest.
    #[test]
    fn ring_balances_pages_within_two_x(seed in any::<u64>(), n_idx in 0usize..3) {
        let replicas = [2usize, 4, 8][n_idx];
        let ring = HashRing::new(seed, replicas, 128);
        let pages = 2048usize;
        let mut counts = vec![0usize; replicas];
        for page in 0..pages {
            counts[ring.primary(page)] += 1;
        }
        let max = *counts.iter().max().expect("non-empty");
        let min = *counts.iter().min().expect("non-empty");
        prop_assert!(min > 0, "a replica owns zero pages: {:?}", counts);
        prop_assert!(
            max <= 2 * min,
            "imbalance beyond 2x at n={}: {:?} (seed {:#x})",
            replicas, counts, seed
        );
    }

    /// Minimal remapping: ejecting one replica moves only that
    /// replica's pages; every other page keeps its primary.
    #[test]
    fn ejection_remaps_only_the_ejected_replicas_pages(
        seed in any::<u64>(),
        victim in 0usize..4,
    ) {
        let replicas = 4usize;
        let ring = HashRing::new(seed, replicas, 128);
        let all = vec![true; replicas];
        let mut mask = all.clone();
        mask[victim] = false;
        for page in 0..2048 {
            let before = ring.owners_among(page, 1, &all)[0];
            let after = ring.owners_among(page, 1, &mask)[0];
            if before == victim {
                prop_assert!(after != victim, "page {} still routed to the ejected", page);
            } else {
                prop_assert!(after == before, "page {} moved although its owner survived", page);
            }
        }
    }

    /// Replica sets are stable and distinct at every replication
    /// factor the tier supports.
    #[test]
    fn owner_sets_are_distinct_and_ordered(seed in any::<u64>(), page in 0usize..4096) {
        let ring = HashRing::new(seed, 5, 64);
        for r in 1..=5usize {
            let owners = ring.owners(page, r);
            prop_assert_eq!(owners.len(), r);
            let mut dedup = owners.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert!(dedup.len() == r, "duplicate owner at r={}", r);
            if r > 1 {
                prop_assert!(
                    owners[..r - 1] == ring.owners(page, r - 1)[..],
                    "owner list must be a prefix chain at r={}", r
                );
            }
        }
    }
}

/// Negative control for the loss detector: with R=1 the kill *must*
/// lose pages and `violations()` must say so — proving the zero-loss
/// gate can actually fail.
#[test]
fn loss_detector_fires_without_replication() {
    let seed = 0xBAD;
    let ticks = 30;
    let mut cfg = tier_cfg(seed);
    cfg.replication = 1;
    let mut cluster = Cluster::new(cfg);
    let trace = TrafficTrace::generate(
        &ArrivalProcess::PoissonSteady { rate: 16.0 },
        &TrafficConfig { seed, ticks, pages: 100, zipf_s: 0.9 },
    );
    let storm = FaultStorm::burst(seed);
    let outage = OutageScript { replica: 1, kill_tick: 10, restart_tick: 20 };
    let rt = TaskRuntime::builder().workers(4).build();
    let report = cluster.run_storm(&rt, &trace.ticks, &storm, Some(outage));
    rt.shutdown();
    assert!(report.lost_acked > 0, "R=1 kill lost nothing — detector is blind");
    assert!(report.violations().iter().any(|v| v.contains("lost")));
}
