//! Determinism guarantees: every workload generator and every
//! fixed-structure parallel computation reproduces bit-for-bit from
//! its seed. This is what makes EXPERIMENTS.md regenerable.

use std::sync::Arc;

use softeng751::prelude::*;

#[test]
fn workload_generators_reproduce() {
    // Images.
    let a = imaging::gen::generate_folder(5, 16, 32, 42);
    let b = imaging::gen::generate_folder(5, 16, 32, 42);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.content_hash(), y.content_hash());
    }
    // Text corpora.
    let cfg = docsearch::corpus::CorpusConfig::default();
    assert_eq!(
        docsearch::corpus::generate_tree(&cfg).1,
        docsearch::corpus::generate_tree(&cfg).1
    );
    // Graphs.
    let g1 = kernels::graph::CsrGraph::random(100, 300, 9);
    let g2 = kernels::graph::CsrGraph::random(100, 300, 9);
    assert_eq!(g1.num_edges(), g2.num_edges());
    for v in 0..100 {
        assert_eq!(g1.neighbours(v), g2.neighbours(v));
    }
    // Sort inputs.
    assert_eq!(parsort::data::random(1000, 7), parsort::data::random(1000, 7));
    // Web pages.
    let s1 = websim::SimServer::new(websim::ServerConfig::default());
    let s2 = websim::SimServer::new(websim::ServerConfig::default());
    for p in 0..s1.page_count() {
        assert_eq!(s1.page(p), s2.page(p));
    }
}

#[test]
fn parallel_results_thread_count_invariant() {
    // Fixed-structure parallel computations must not depend on the
    // number of threads executing them.
    let input = parsort::data::random(20_000, 3);

    let sorted_by = |workers: usize| {
        let rt = TaskRuntime::builder().workers(workers).build();
        let mut v = input.clone();
        parsort::quicksort_partask(&rt, &mut v);
        rt.shutdown();
        v
    };
    assert_eq!(sorted_by(1), sorted_by(4));

    let team1 = Team::new(1);
    let team4 = Team::new(4);
    let signal = kernels::fft::test_signal(512, 5);
    let mut f1 = signal.clone();
    kernels::fft::fft_par(&team1, &mut f1);
    let mut f4 = signal;
    kernels::fft::fft_par(&team4, &mut f4);
    for (a, b) in f1.iter().zip(&f4) {
        assert_eq!(a.re.to_bits(), b.re.to_bits(), "FFT must be bit-identical");
        assert_eq!(a.im.to_bits(), b.im.to_bits());
    }

    // Monte Carlo with blocked streams: bitwise identical across team
    // sizes.
    let mc1 = kernels::montecarlo::pi_monte_carlo_par(&team1, 50_000, 11, 8);
    let mc4 = kernels::montecarlo::pi_monte_carlo_par(&team4, 50_000, 11, 8);
    assert_eq!(mc1.to_bits(), mc4.to_bits());
}

#[test]
fn static_schedule_reductions_are_deterministic() {
    // Static scheduling + thread-ordered combining = reproducible
    // floating-point sums for a fixed team size.
    let team = Team::new(3);
    let data: Vec<f64> = (0..10_000).map(|i| (f64::from(i as u32)).sin()).collect();
    let a = team.par_reduce(0..data.len(), Schedule::Static, &SumRed, |i| data[i]);
    let b = team.par_reduce(0..data.len(), Schedule::Static, &SumRed, |i| data[i]);
    assert_eq!(a.to_bits(), b.to_bits());
}

#[test]
fn course_simulations_reproduce() {
    let cfg = course::AllocationConfig::default();
    let a = course::run_poll(&cfg);
    let b = course::run_poll(&cfg);
    assert_eq!(a.assignment, b.assignment);
    assert_eq!(a.choice_rank, b.choice_rank);

    let s1 = course::survey::softeng751_survey(1);
    let s2 = course::survey::softeng751_survey(1);
    for (x, y) in s1.iter().zip(&s2) {
        assert_eq!(x.responses, y.responses);
    }
}

#[test]
fn paged_search_reports_reproduce() {
    use docsearch::{search_documents, Granularity, Query};
    let cfg = docsearch::corpus::CorpusConfig::default();
    let (docs, _) = docsearch::corpus::generate_documents(8, 4, 8, &cfg);
    let docs = Arc::new(docs);
    let mut runs = Vec::new();
    for _ in 0..2 {
        let rt = TaskRuntime::builder().workers(3).build();
        let report = search_documents(
            &rt,
            &docs,
            &Query::literal(&cfg.needle),
            Granularity::PerPage,
            None,
        );
        runs.push(report.hits);
        rt.shutdown();
    }
    assert_eq!(runs[0], runs[1]);
}
