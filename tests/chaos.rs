//! Chaos suite: seeded fault schedules, asserted to be reproducible.
//!
//! Every fault the injector deals is a pure function of
//! `(seed, key, attempt)`, so a crawl (or a pyjama region) replayed
//! with the same seed must produce *bit-identical* accounting no
//! matter how the worker threads interleave. These tests rerun the
//! same schedules and compare outcomes exactly — the determinism that
//! makes fault-handling lab exercises gradeable.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use faultsim::{FaultInjector, FaultPlan, RetryPolicy};
use partask::TaskRuntime;
use pyjama::{Schedule, Team, TeamError};
use websim::{try_fetch_all, FetchOutcome, ServerConfig, SimServer};

fn flaky_server(seed: u64) -> Arc<SimServer> {
    let plan = FaultPlan::reliable(seed)
        .with_error_rate(0.2)
        .with_timeout_rate(0.05)
        .with_panic_rate(0.03)
        .with_latency_spikes(0.1, 25.0)
        .fail_key_n_times(11, 4);
    Arc::new(SimServer::with_faults(
        ServerConfig {
            pages: 60,
            time_scale: 2e-6,
            ..ServerConfig::default()
        },
        FaultInjector::new(plan),
    ))
}

fn crawl_policy() -> RetryPolicy {
    RetryPolicy::exponential(Duration::from_millis(1), 2.0, Duration::from_millis(8))
        .with_jitter(0.25)
        .with_max_attempts(5)
}

/// The deterministic portion of a [`FetchOutcome`] (everything except
/// wall time): per-page `(page, attempts, kb-bits)` rows, the totals,
/// and the permanently-failed page list.
type OutcomePrint = (Vec<(usize, u32, Option<u64>)>, [u64; 5], Vec<usize>);

fn fingerprint(o: &FetchOutcome) -> OutcomePrint {
    let pages = o
        .pages
        .iter()
        .map(|p| (p.page, p.attempts, p.kb.map(f64::to_bits)))
        .collect();
    (
        pages,
        [
            o.attempts_total,
            o.retries,
            o.transient_errors,
            o.timeouts,
            o.panics,
        ],
        o.failed_pages.clone(),
    )
}

#[test]
fn same_seed_crawls_are_bit_identical() {
    faultsim::silence_injected_panics();
    let rt = TaskRuntime::builder().workers(8).build();
    let policy = crawl_policy();
    for seed in [1u64, 0xBAD_5EED, 0xFEED_F00D_u64] {
        let first = try_fetch_all(&rt, &flaky_server(seed), 6, &policy);
        let second = try_fetch_all(&rt, &flaky_server(seed), 6, &policy);
        assert!(!first.aborted && !second.aborted);
        assert_eq!(
            fingerprint(&first),
            fingerprint(&second),
            "seed {seed:#x}: two runs of the same fault schedule diverged"
        );
    }
    rt.shutdown();
}

#[test]
fn fault_accounting_is_independent_of_connection_count() {
    // Stronger than rerun-stability: per-page decisions depend only on
    // (seed, page, attempt), so even *different pool sizes* — wildly
    // different interleavings — must agree on every count.
    faultsim::silence_injected_panics();
    let rt = TaskRuntime::builder().workers(12).build();
    let policy = crawl_policy();
    let seed = 0x0DD5_EED5;
    let base = try_fetch_all(&rt, &flaky_server(seed), 1, &policy);
    for connections in [2usize, 4, 12] {
        let other = try_fetch_all(&rt, &flaky_server(seed), connections, &policy);
        assert_eq!(
            fingerprint(&base),
            fingerprint(&other),
            "{connections} connections changed the fault accounting"
        );
    }
    rt.shutdown();
}

#[test]
fn different_seeds_draw_different_schedules() {
    faultsim::silence_injected_panics();
    let rt = TaskRuntime::builder().workers(4).build();
    let policy = crawl_policy();
    let a = try_fetch_all(&rt, &flaky_server(3), 4, &policy);
    let b = try_fetch_all(&rt, &flaky_server(4), 4, &policy);
    // Equal fingerprints across distinct seeds would mean the seed is
    // ignored somewhere in the decision path.
    assert_ne!(fingerprint(&a), fingerprint(&b));
    rt.shutdown();
}

#[test]
fn forced_failures_consume_exactly_their_retry_budget() {
    faultsim::silence_injected_panics();
    let rt = TaskRuntime::builder().workers(4).build();
    // Only the forced fault is active: page 11 fails 4 times, then
    // recovers — with 5 attempts allowed it must succeed on the 5th.
    let plan = FaultPlan::reliable(9).fail_key_n_times(11, 4);
    let server = Arc::new(SimServer::with_faults(
        ServerConfig {
            pages: 20,
            time_scale: 2e-6,
            ..ServerConfig::default()
        },
        FaultInjector::new(plan),
    ));
    let outcome = try_fetch_all(&rt, &server, 4, &crawl_policy());
    assert!(outcome.fully_succeeded());
    let page11 = outcome.pages.iter().find(|p| p.page == 11).unwrap();
    assert_eq!(page11.attempts, 5);
    assert_eq!(outcome.retries, 4);
    rt.shutdown();
}

/// Which members of an `n`-thread team a plan dooms to panic (pure
/// replay of the injector's decisions, no threads involved).
fn doomed_members(plan: &FaultPlan, n: usize) -> Vec<usize> {
    let injector = FaultInjector::new(plan.clone());
    (0..n)
        .filter(|&tid| injector.decide(tid as u64, 0).is_failure())
        .collect()
}

#[test]
fn seeded_pyjama_panics_resolve_identically_across_reruns() {
    let team = Team::new(4);
    let n = team.num_threads();
    for seed in 0..40u64 {
        // High rate so a fair share of seeds doom at least one member.
        let plan = FaultPlan::reliable(seed).with_error_rate(0.3);
        let doomed = doomed_members(&plan, n);
        for _rerun in 0..2 {
            let injector = FaultInjector::new(plan.clone());
            let reached = AtomicUsize::new(0);
            let result = team.try_parallel(|ctx| {
                let tid = ctx.thread_num();
                if injector.decide(tid as u64, 0).is_failure() {
                    panic!("chaos member {tid}");
                }
                ctx.barrier();
                reached.fetch_add(1, Ordering::Relaxed);
            });
            if doomed.is_empty() {
                assert_eq!(result, Ok(()));
                assert_eq!(reached.load(Ordering::Relaxed), n);
            } else {
                // Which doomed member is *recorded* first may race,
                // but it is always a doomed one, the payload names it,
                // and no survivor deadlocks at the barrier.
                match result {
                    Err(TeamError::MemberPanicked { member, payload }) => {
                        assert!(doomed.contains(&member), "seed {seed}: member {member}");
                        assert_eq!(payload, format!("chaos member {member}"));
                    }
                    other => panic!("seed {seed}: expected MemberPanicked, got {other:?}"),
                }
            }
        }
        // The team must survive every poisoned region.
        assert_eq!(team.par_sum(0..100, Schedule::Static, |i| i as u64), 4950);
    }
}

#[test]
fn chaos_reduction_never_deadlocks_and_errors_deterministically() {
    let team = Team::new(3);
    for seed in 0..20u64 {
        let plan = FaultPlan::reliable(seed).with_error_rate(0.25);
        let doomed = doomed_members(&plan, team.num_threads());
        let injector = FaultInjector::new(plan);
        let result = team.try_parallel(|ctx| {
            let tid = ctx.thread_num();
            // A doomed member dies on the first iteration it maps, so
            // the region's fate depends only on the doomed set.
            let sum = ctx.pfor_reduce(0..300, Schedule::Static, &pyjama::SumRed, |i| {
                assert!(
                    !injector.decide(tid as u64, 0).is_failure(),
                    "reduction chaos"
                );
                i as u64
            });
            if doomed.is_empty() {
                assert_eq!(sum, 44_850);
            }
        });
        assert_eq!(result.is_ok(), doomed.is_empty(), "seed {seed}");
    }
}
