//! Static-analysis suite: parser fixed points, deterministic
//! diagnostics, and the static↔dynamic agreement matrix.
//!
//! The last part is the load-bearing one: every `E`-class/`W`-class
//! verdict the rule engine produces over the fixture corpus is
//! cross-validated against what actually happens when the same program
//! is lowered onto the `parc-explore` shims (exhaustive interleaving
//! search) and, for clean fixtures, onto the real pyjama runtime.
//! A static analyser that cries wolf — or stays silent while the
//! explorer finds a deadlock — fails here.

use std::collections::BTreeMap;

use parc_analyze::bridge::{explore_program, interpret_seq, run_on_pyjama};
use parc_analyze::diag::{to_json, Code};
use parc_analyze::fixtures::{corpus, DynVerdict};
use parc_analyze::genprog;
use parc_analyze::parse::{parse, parse_recover};
use parc_explore::Config;
use pyjama::Team;

/// Every parseable fixture pretty-prints to a fixed point: parsing the
/// pretty form and pretty-printing again reproduces it byte-for-byte.
#[test]
fn pretty_print_is_a_fixed_point() {
    for fx in corpus() {
        let Ok(prog) = parse(fx.source) else { continue };
        let printed = prog.pretty();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("{}: pretty form must reparse: {e:?}", fx.name));
        assert_eq!(reparsed.pretty(), printed, "{}: pretty is not a fixed point", fx.name);
    }
}

/// Diagnostics (and their JSON export) are bit-identical across reruns
/// — ordering is by span, then code, then message, never by HashMap
/// iteration order.
#[test]
fn diagnostics_are_deterministic() {
    for fx in corpus() {
        let a = parc_analyze::analyze(fx.source);
        let b = parc_analyze::analyze(fx.source);
        assert_eq!(a.diagnostics, b.diagnostics, "{}: diagnostics differ across runs", fx.name);
        assert_eq!(
            to_json(&a.diagnostics),
            to_json(&b.diagnostics),
            "{}: JSON export differs across runs",
            fx.name
        );
    }
}

/// The corpus is the contract: each fixture emits exactly its expected
/// code sequence, in order.
#[test]
fn fixtures_emit_expected_codes() {
    for fx in corpus() {
        let emitted: Vec<Code> =
            parc_analyze::analyze(fx.source).diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(emitted, fx.expect, "{}: emitted codes diverge from fixture", fx.name);
    }
}

/// The static↔dynamic agreement matrix (EXPERIMENTS.md E-LINT):
///
/// * `Deadlock` fixtures must carry a deadlock-class static error
///   (E001/E004/E006) AND the explorer must witness a concrete
///   deadlocked schedule;
/// * `Race` fixtures must carry a race-class static diagnostic
///   (E002/E003/W101/W102) AND the explorer must witness a concrete
///   racing schedule;
/// * `Clean` fixtures must be proved race- and deadlock-free over the
///   *exhaustive* interleaving space;
/// * `Unlowered` fixtures fail to parse (E005) and are skipped
///   dynamically.
#[test]
fn static_and_dynamic_verdicts_agree() {
    let mut matrix: BTreeMap<&str, usize> = BTreeMap::new();
    for fx in corpus() {
        *matrix.entry(verdict_key(fx.dynamic)).or_default() += 1;
        let analysis = parc_analyze::analyze(fx.source);
        match fx.dynamic {
            DynVerdict::Unlowered => {
                // Structurally broken — either the parser rejects it
                // outright or the rule engine flags the malformed
                // structure; in both cases lowering is not attempted.
                assert!(
                    fx.expect.contains(&Code::E005),
                    "{}: unlowered fixture must be an E005",
                    fx.name
                );
                continue;
            }
            _ => assert!(analysis.program.is_some(), "{}: should parse", fx.name),
        }
        let prog = analysis.program.as_ref().unwrap();
        let report = explore_program(prog, Config::dfs(fx.name));
        match fx.dynamic {
            DynVerdict::Deadlock => {
                assert!(
                    fx.expect.iter().any(|c| matches!(c, Code::E001 | Code::E004 | Code::E006)),
                    "{}: deadlocking fixture lacks a deadlock-class error",
                    fx.name
                );
                assert!(
                    report.deadlocks > 0,
                    "{}: statically-diagnosed deadlock never witnessed dynamically",
                    fx.name
                );
            }
            DynVerdict::Race => {
                assert!(
                    fx.expect
                        .iter()
                        .any(|c| matches!(c, Code::E002 | Code::E003 | Code::W101 | Code::W102)),
                    "{}: racy fixture lacks a race-class diagnostic",
                    fx.name
                );
                assert!(
                    !report.race_free(),
                    "{}: statically-diagnosed race never witnessed dynamically",
                    fx.name
                );
            }
            DynVerdict::Clean => {
                assert!(
                    report.exhausted,
                    "{}: clean verdict needs the full interleaving space",
                    fx.name
                );
                assert!(report.race_free(), "{}: clean fixture raced", fx.name);
                assert_eq!(report.deadlocks, 0, "{}: clean fixture deadlocked", fx.name);
            }
            DynVerdict::Unlowered => unreachable!(),
        }
    }
    // The corpus shape itself is part of the record: 22 fixtures,
    // every dynamic class populated.
    assert_eq!(matrix.values().sum::<usize>(), 22);
    assert_eq!(matrix["clean"], 10);
    assert_eq!(matrix["race"], 5);
    assert_eq!(matrix["deadlock"], 5);
    assert_eq!(matrix["unlowered"], 2);
}

/// Parser error recovery keeps later regions analysable: a malformed
/// directive mid-file yields its E005 *and* the diagnostics of the
/// well-formed regions after it, in pinned span order.
#[test]
fn parser_recovery_reports_later_regions() {
    let src = "\
//#omp parallell num_threads(2)
{
    lost = lost + 1;
}
//#omp parallel num_threads(2)
{
    count = count + 1;
    //#omp single
    {
        //#omp barrier
    }
}
";
    let (program, parse_diags) = parse_recover(src);
    assert!(program.is_some(), "recoverable error must keep the tree");
    assert_eq!(parse_diags.len(), 1);
    assert_eq!(parse_diags[0].code, Code::E005);

    let analysis = parc_analyze::analyze(src);
    let codes: Vec<Code> = analysis.diagnostics.iter().map(|d| d.code).collect();
    // Pinned order: the E005 at line 1, then the later region's W101
    // (racy counter) and E001 (barrier under single), span-sorted.
    assert_eq!(codes, vec![Code::E005, Code::W101, Code::E001]);
    assert_eq!(analysis.diagnostics[0].span.line, 1);
    assert!(analysis.diagnostics[1].span.line > 4, "W101 comes from the recovered region");
}

/// A slice of the E-FUZZ gate runs in-tree on every `cargo test`: a
/// generated corpus where the MHP engine must miss no
/// explorer-witnessed race/deadlock and must beat the syntactic
/// engine's false-positive count. The full 3-seed × 2000-program run
/// lives in `examples/fuzz_lint.rs` (CI `fuzz-lint` job).
#[test]
fn generated_corpus_agreement_holds() {
    let corpus = genprog::generate(1, 7 * genprog::family_count() + 3);
    let (stats, mismatches) = genprog::cross_validate(&corpus);
    for m in &mismatches {
        eprintln!("[{}] {} #{}: {:?}\n{}", m.kind, m.family, m.index, m.static_codes, m.source);
    }
    assert_eq!(stats.parse_failures, 0, "generated programs must re-parse");
    assert_eq!(
        stats.missed_dynamic_findings, 0,
        "the static engine missed explorer-witnessed findings: {stats:?}"
    );
    assert!(
        stats.false_positives_new < stats.false_positives_old,
        "the MHP engine must be strictly more precise: {stats:?}"
    );
    assert!(stats.dynamic_clean > 0 && stats.dynamic_racy > 0 && stats.dynamic_deadlocked > 0);
}

/// Clean fixtures mean the same thing on the real pyjama runtime as
/// under sequential emulation: the final shared state agrees.
#[test]
fn clean_fixtures_agree_on_pyjama() {
    let team = Team::new(2);
    for fx in corpus() {
        if fx.dynamic != DynVerdict::Clean {
            continue;
        }
        let prog = parse(fx.source).expect("clean fixtures parse");
        let seq = interpret_seq(&prog);
        let pj = run_on_pyjama(&prog, &team);
        assert_eq!(pj, seq, "{}: pyjama and sequential results diverge", fx.name);
    }
}

fn verdict_key(v: DynVerdict) -> &'static str {
    match v {
        DynVerdict::Clean => "clean",
        DynVerdict::Race => "race",
        DynVerdict::Deadlock => "deadlock",
        DynVerdict::Unlowered => "unlowered",
    }
}
