//! Integration tests for the supervision / cancellation / degradation
//! stack: parc-supervise tokens and supervisors wired through partask
//! and pyjama, and the chaos-soak cells built on top of all three.
//!
//! The headline claims pinned here:
//!
//! * same-seed supervision runs produce **bit-identical** event logs,
//!   and same-seed soak cells produce bit-identical fingerprints —
//!   across reruns *and* across worker-pool sizes;
//! * conservation identities (every incarnation accounted, every task
//!   executed, every thread joined) hold for every storm × policy cell;
//! * cancellation is cooperative and hierarchical end to end: tokens
//!   gate partask spawns, deadlines propagate, pyjama regions unwind
//!   cleanly at their barriers, and graceful shutdown drains to
//!   quiescence.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use faultsim::{FaultStorm, RetryPolicy};
use partask::{CancelToken, TaskError, TaskRuntime};
use pyjama::{Team, TeamError};
use softeng751::parc_supervise::{ChildError, RestartPolicy, Supervisor};
use softeng751::soak::{run_soak_cell, run_soak_matrix};

// ---------------------------------------------------------------- tokens

#[test]
fn cancellation_propagates_down_token_trees_into_partask() {
    let rt = TaskRuntime::builder().workers(2).build();
    let parent = CancelToken::new();

    // A cooperative task observes the cancel and returns early. The
    // cancel is held until the body has started, so the task cannot be
    // skipped outright by the pre-run token check.
    let started = Arc::new(AtomicUsize::new(0));
    let started_flag = Arc::clone(&started);
    let observed = rt.spawn_cancellable_under(&parent, move |token| {
        started_flag.store(1, Ordering::SeqCst);
        while !token.is_cancelled() {
            std::thread::yield_now();
        }
        "saw the cancel"
    });
    while started.load(Ordering::SeqCst) == 0 {
        std::thread::yield_now();
    }
    parent.cancel();
    assert_eq!(observed.join().expect("body returns normally"), "saw the cancel");

    // A task spawned under an already-cancelled parent never runs:
    // its future resolves to `Cancelled` before the body is entered.
    let ran = Arc::new(AtomicUsize::new(0));
    let ran2 = Arc::clone(&ran);
    let skipped = rt.spawn_cancellable_under(&parent, move |_| {
        ran2.fetch_add(1, Ordering::SeqCst);
    });
    assert!(matches!(skipped.join(), Err(TaskError::Cancelled)));
    assert_eq!(ran.load(Ordering::SeqCst), 0, "cancelled body must not run");

    // Siblings under a *different* branch are unaffected.
    let other = CancelToken::new();
    let fine = rt.spawn_cancellable_under(&other, |_| 7);
    assert_eq!(fine.join().expect("unrelated branch unaffected"), 7);
    rt.shutdown();
}

#[test]
fn deadlines_cancel_cooperatively_and_children_cannot_extend_them() {
    let rt = TaskRuntime::builder().workers(2).build();
    let root = rt.cancel_token();

    // The deadline fires, the token trips, the body notices and
    // returns its own value — no result is lost.
    let h = rt.spawn_deadline_under(&root, Duration::from_millis(5), |token| {
        while !token.is_cancelled() {
            std::thread::yield_now();
        }
        42
    });
    assert_eq!(h.join().expect("deadline cancel is cooperative"), 42);

    // A child budget is clamped to the parent's: asking for 10 s under
    // a 5 ms parent yields a ≤ 5 ms effective deadline.
    let parent = CancelToken::with_deadline(Duration::from_millis(5));
    let child = parent.child_with_deadline(Duration::from_secs(10));
    let remaining = child.remaining().expect("child inherits a deadline");
    assert!(
        remaining <= Duration::from_millis(5),
        "child extended its parent's deadline to {remaining:?}"
    );
    rt.shutdown();
}

#[test]
fn graceful_shutdown_drains_to_quiescence() {
    let rt = TaskRuntime::builder().workers(3).build();
    let done = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..64)
        .map(|_| {
            let done = Arc::clone(&done);
            rt.spawn(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("plain task completes");
    }
    let report = rt.shutdown_graceful(Duration::from_secs(5));
    assert!(report.drained, "runtime must drain within the budget");
    assert_eq!(report.leftover, 0);
    assert_eq!(report.stats.spawned, report.stats.executed, "task conservation at quiescence");
    assert!(report.stats.executed >= 64);
}

// ---------------------------------------------------------------- pyjama

#[test]
fn pyjama_cancellable_regions_unwind_cleanly_at_the_barrier() {
    let team = Team::new(3);

    // An uncancelled token: the region runs like a plain parallel one.
    let token = CancelToken::new();
    let hits = AtomicUsize::new(0);
    team.try_parallel_cancellable(&token, |ctx| {
        hits.fetch_add(1, Ordering::SeqCst);
        ctx.barrier();
    })
    .expect("uncancelled region completes");
    assert_eq!(hits.load(Ordering::SeqCst), 3);

    // A pre-cancelled token: every member unwinds at the barrier and
    // the region reports Cancelled — and the team is still usable
    // afterwards (no poisoned leftover state).
    token.cancel();
    let err = team
        .try_parallel_cancellable(&token, |ctx| {
            ctx.barrier();
        })
        .expect_err("cancelled region must not complete");
    assert!(matches!(err, TeamError::Cancelled), "got {err:?}");

    let after = AtomicUsize::new(0);
    team.try_parallel_cancellable(&CancelToken::new(), |ctx| {
        after.fetch_add(1, Ordering::SeqCst);
        ctx.barrier();
    })
    .expect("team survives a cancelled region");
    assert_eq!(after.load(Ordering::SeqCst), 3);
}

// ------------------------------------------------------------ supervisor

/// A small supervisor with a scripted failure mix: one child within
/// budget, one escalating, one clean.
fn scripted_supervisor(seed: u64) -> softeng751::parc_supervise::SupervisionReport {
    Supervisor::builder("itest")
        .policy(RestartPolicy::OneForOne)
        .restart_policy(RetryPolicy::fixed(Duration::from_millis(1)).with_max_attempts(3))
        .backoff_seed(seed)
        .backoff_time_scale(0.05)
        .child("flaky", |ctx| {
            if ctx.incarnation <= 2 {
                Err(ChildError::Failed(format!("scripted #{}", ctx.incarnation)))
            } else {
                Ok(())
            }
        })
        .child("doomed", |ctx| {
            Err(ChildError::Failed(format!("always #{}", ctx.incarnation)))
        })
        .child("clean", |_| Ok(()))
        .run()
}

#[test]
fn same_seed_supervision_event_logs_are_bit_identical() {
    faultsim::silence_injected_panics();
    let a = scripted_supervisor(0xABCD);
    let b = scripted_supervisor(0xABCD);
    assert_eq!(a.event_log(), b.event_log(), "same-seed event logs must match byte for byte");
    assert_eq!(a.restarts_total, b.restarts_total);
    assert_eq!(a.escalations, b.escalations);
    assert!(a.conservation_violations().is_empty(), "{:?}", a.conservation_violations());

    // And the log reflects the script: flaky restarts twice then
    // completes, doomed exhausts its budget and escalates.
    let flaky = &a.children[0];
    assert_eq!((flaky.incarnations, flaky.restarts, flaky.escalated), (3, 2, false));
    let doomed = &a.children[1];
    assert_eq!((doomed.incarnations, doomed.escalated), (3, true));
    let clean = &a.children[2];
    assert_eq!((clean.incarnations, clean.restarts), (1, 0));
}

// ------------------------------------------------------------- soak cells

#[test]
fn deadline_expiring_during_restart_backoff_interrupts_it_promptly() {
    // The root deadline expires while the supervisor is sleeping off a
    // 2-second restart backoff. The sliced backoff must notice the
    // expiry within milliseconds — not hold the tree for the full
    // delay — and the report must record the aborted restart so the
    // conservation identities still close.
    let root = CancelToken::with_deadline(Duration::from_millis(60));
    let started = std::time::Instant::now();
    let report = Supervisor::builder("sup")
        .restart_policy(RetryPolicy::fixed(Duration::from_secs(2)).with_max_attempts(5))
        .backoff_time_scale(1.0)
        .child("fails-once", |_| Err(ChildError::Failed("boom".into())))
        .run_under(&root);
    let elapsed = started.elapsed();

    assert!(
        elapsed < Duration::from_secs(1),
        "backoff was not interrupted: took {elapsed:?} against a 60ms deadline"
    );
    let c = &report.children[0];
    assert_eq!(c.incarnations, 1, "no restart into a dead tree");
    assert_eq!(c.restarts, 0);
    assert!(c.restart_aborted, "the skipped restart must be on record");
    assert!(!c.escalated, "a cancelled backoff is not an escalation");
    assert!(!report.has_escalations());
    assert!(
        report.conservation_violations().is_empty(),
        "violations: {:?}",
        report.conservation_violations()
    );
    assert!(report.event_log().contains("fails-once[0] restart aborted (cancelled)"));
}

#[test]
fn soak_fingerprints_are_identical_across_reruns_and_pool_sizes() {
    faultsim::silence_injected_panics();
    let storm = FaultStorm::burst(0xB0B0);
    let base = run_soak_cell(&storm, RestartPolicy::OneForOne, 0xB0B0, 2);
    assert!(base.invariants_ok(), "violations: {:?}", base.violations());

    let rerun = run_soak_cell(&storm, RestartPolicy::OneForOne, 0xB0B0, 2);
    assert_eq!(base.fingerprint(), rerun.fingerprint(), "rerun diverged");

    let wider = run_soak_cell(&storm, RestartPolicy::OneForOne, 0xB0B0, 5);
    assert_eq!(base.fingerprint(), wider.fingerprint(), "pool size leaked into the fingerprint");

    // The one-for-one fingerprint embeds the full event log, so the
    // assertions above pin the supervision sequence itself.
    assert!(base.fingerprint().contains("events:"));
}

#[test]
fn soak_matrix_conserves_under_every_storm_and_policy() {
    faultsim::silence_injected_panics();
    let cells = run_soak_matrix(0x50AC_200E, 2);
    assert_eq!(cells.len(), 6, "3 storm shapes × 2 policies");
    for cell in &cells {
        assert!(
            cell.invariants_ok(),
            "[{} {}] violations: {:?}",
            cell.storm_name,
            cell.policy.name(),
            cell.violations()
        );
    }
    // Both policies and at least three distinct storm shapes ran.
    let storms: std::collections::BTreeSet<_> = cells.iter().map(|c| c.storm_name).collect();
    assert!(storms.len() >= 3);
    assert!(cells.iter().any(|c| c.policy == RestartPolicy::OneForOne));
    assert!(cells.iter().any(|c| c.policy == RestartPolicy::AllForOne));
    // The chosen seed exercises escalation somewhere in the matrix.
    assert!(cells.iter().any(|c| c.supervision.escalations > 0));
}
