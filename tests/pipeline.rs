//! Integration tests for the fault-tolerant auto-marking pipeline:
//! exactly-once marking under storms, pool-size-independent
//! fingerprints, explicit degradation, and the supervision tree
//! agreeing with the model.

use course::pipeline::{run_cell, CellReport, PipelineConfig};
use faultsim::FaultStorm;
use parc_loadgen::ArrivalProcess;
use parc_trace::TraceHandle;
use partask::TaskRuntime;

fn small_cfg(seed: u64) -> PipelineConfig {
    PipelineConfig {
        seed,
        shards: 4,
        markers: 3,
        batch_per_marker: 60,
        queue_cap: 150,
        arrival_ticks: 14,
        drain_max_ticks: 12,
        spot_every: 64,
        degrade_backlog: 250,
        restart_budget: 12,
        students: 200,
        ..PipelineConfig::default()
    }
}

fn run(workers: usize, arrival: &ArrivalProcess, storm: &FaultStorm, cfg: &PipelineConfig) -> CellReport {
    let rt = TaskRuntime::builder().workers(workers).build();
    let report = run_cell(&rt, arrival, storm, cfg, &TraceHandle::disabled());
    rt.shutdown();
    report
}

#[test]
fn every_cell_of_the_small_matrix_conserves() {
    let cfg = small_cfg(0x11A7);
    let arrivals = ArrivalProcess::all(70.0, cfg.arrival_ticks as usize);
    let rt = TaskRuntime::builder().workers(3).build();
    let mut kills_somewhere = false;
    for arrival in &arrivals {
        for storm in FaultStorm::all(0x11A7) {
            let report = run_cell(&rt, arrival, &storm, &cfg, &TraceHandle::disabled());
            assert!(
                report.violations().is_empty(),
                "[{} x {}] violations: {:?}",
                arrival.name(),
                storm.name,
                report.violations()
            );
            assert_eq!(report.submitted, report.marked + report.shed);
            assert_eq!(report.duplicates, 0);
            assert_eq!(report.in_flight, 0);
            kills_somewhere |= report.kills > 0;
        }
    }
    rt.shutdown();
    assert!(kills_somewhere, "the matrix must exercise the fault path");
}

#[test]
fn kills_mid_batch_are_exactly_once() {
    let cfg = small_cfg(0x2BAD);
    let arrival = ArrivalProcess::PoissonSteady { rate: 90.0 };
    let storm = FaultStorm::burst(0x2BAD);
    let report = run(3, &arrival, &storm, &cfg);
    assert!(report.violations().is_empty(), "violations: {:?}", report.violations());
    assert!(report.kills > 0, "burst storm must kill markers");
    assert!(report.restarts > 0, "kills must be followed by supervised restarts");
    assert!(report.reclaims > 0, "mid-batch kills must reclaim the unacked tail");
    assert!(report.redone > 0, "reclaimed submissions must be genuinely re-marked");
    assert_eq!(report.duplicates, 0, "no submission is ever marked twice");
    assert_eq!(report.stale_acks, 0, "no zombie ack reaches the ledger");
    // The real supervision tree and the model tell the same story.
    assert_eq!(u64::from(report.supervision.restarts_total), report.restarts);
    assert_eq!(u64::from(report.supervision.escalations), report.escalations);
}

#[test]
fn fingerprint_is_identical_across_1_3_8_worker_pools_and_reruns() {
    let cfg = small_cfg(0x3F1D);
    let arrival = ArrivalProcess::Diurnal { base: 60.0, amplitude: 36.0, period_ticks: 7 };
    let storm = FaultStorm::flapping(0x3F1D);
    let base = run(1, &arrival, &storm, &cfg);
    assert!(base.violations().is_empty(), "violations: {:?}", base.violations());
    let rerun = run(1, &arrival, &storm, &cfg);
    assert_eq!(base.fingerprint(), rerun.fingerprint(), "same-pool rerun diverged");
    for workers in [3usize, 8] {
        let wide = run(workers, &arrival, &storm, &cfg);
        assert_eq!(
            base.fingerprint(),
            wide.fingerprint(),
            "pool size {workers} leaked into the model"
        );
        assert_eq!(base.render_deterministic(), wide.render_deterministic());
    }
}

#[test]
fn exhausted_restart_budget_escalates_and_work_flows_to_survivors() {
    let mut cfg = small_cfg(0x4E5C);
    cfg.restart_budget = 0; // first kill escalates
    cfg.arrival_ticks = 18;
    let arrival = ArrivalProcess::PoissonSteady { rate: 80.0 };
    let storm = FaultStorm::burst(0x4E5C);
    let report = run(2, &arrival, &storm, &cfg);
    assert!(report.violations().is_empty(), "violations: {:?}", report.violations());
    assert!(report.escalations > 0, "budget 0 must escalate on the first kill");
    assert!(report.supervision.has_escalations());
    let escalated = report.supervision.escalated_children();
    assert_eq!(escalated.len() as u64, report.escalations);
    assert!(escalated.iter().all(|c| c.escalated));
    // The survivors kept marking: conservation still closes.
    assert!(report.marked > 0);
    assert!(report.events.iter().any(|e| e.contains("shards reassigned")));
}

#[test]
fn degradation_sheds_the_expensive_stage_first_and_quantifies_it() {
    let mut cfg = small_cfg(0x5DE6);
    cfg.degrade_backlog = 30;
    cfg.spot_every = 8;
    cfg.batch_per_marker = 30;
    let arrival = ArrivalProcess::FlashCrowd { base: 50.0, peak: 260.0, at_tick: 4, decay_ticks: 5 };
    let storm = FaultStorm::brownout(0x5DE6);
    let report = run(3, &arrival, &storm, &cfg);
    assert!(report.violations().is_empty(), "violations: {:?}", report.violations());
    assert!(report.degraded_ticks > 0, "the flash crowd must push the pipeline into degradation");
    assert!(report.spot_degraded > 0, "degraded spot-checks must be counted, not silently skipped");
    assert_eq!(
        report.spot_eligible,
        report.spot_run + report.spot_degraded,
        "every sampled submission is either spot-checked or explicitly degraded"
    );
    assert!(
        report.events.iter().any(|e| e.contains("degradation ON")),
        "the degradation toggle must appear in the event log"
    );
    // Rubric marking itself was never skipped: only admission-level
    // shedding leaves a submission unmarked.
    assert_eq!(report.submitted, report.marked + report.shed);
}

#[test]
fn backpressure_sheds_with_attributed_causes_under_flash_crowd() {
    let mut cfg = small_cfg(0x6F1A);
    cfg.queue_cap = 40;
    cfg.batch_per_marker = 25;
    cfg.drain_max_ticks = 2; // force a drain-overrun shed too
    let arrival = ArrivalProcess::FlashCrowd { base: 60.0, peak: 400.0, at_tick: 3, decay_ticks: 4 };
    let storm = FaultStorm::brownout(0x6F1A);
    let report = run(2, &arrival, &storm, &cfg);
    assert!(report.violations().is_empty(), "violations: {:?}", report.violations());
    assert!(report.shed > 0, "a 400/tick flash against 75/tick capacity must shed");
    let shed_full: u64 = report.shards.iter().map(|s| s.shed_full).sum();
    let shed_drain: u64 = report.shards.iter().map(|s| s.shed_drain).sum();
    assert_eq!(shed_full + shed_drain, report.shed, "every shed carries its cause");
    assert!(shed_full > 0, "queue-full backpressure must trigger at the admission gate");
}

#[test]
fn marking_stages_flow_through_the_trace() {
    let col = parc_trace::Collector::new();
    let rt = TaskRuntime::builder().workers(2).build();
    let cfg = small_cfg(0x77AC);
    let arrival = ArrivalProcess::PoissonSteady { rate: 70.0 };
    let storm = FaultStorm::burst(0x77AC);
    let report = run_cell(&rt, &arrival, &storm, &cfg, &col.handle());
    rt.shutdown();
    assert!(report.violations().is_empty());
    let trace = col.snapshot();
    let counts = trace.counts_by_name();
    assert!(counts.get("mark.tick").copied().unwrap_or(0) >= u64::from(report.ticks));
    assert!(counts.get("mark.claim").copied().unwrap_or(0) > 0);
    assert!(counts.get("mark.ack").copied().unwrap_or(0) > 0);
    if report.kills > 0 {
        assert!(counts.get("mark.reclaim").copied().unwrap_or(0) > 0);
    }
    // Supervision marks (guard child lifecycle) land in the same
    // collector, and the chrome export stays well-formed JSON.
    assert!(counts.get("sup.child_start").copied().unwrap_or(0) > 0);
    let json = parc_trace::to_chrome_json(&trace);
    parc_trace::parse_json(&json).expect("chrome export of a pipeline trace must parse");
}
