//! Work-stealing deques: owner pops LIFO, thieves steal FIFO.
//!
//! Two substrates live here behind the same API shape:
//!
//! * The default [`Worker`]/[`Stealer`] pair is a real **Chase–Lev
//!   deque** (Chase & Lev, SPAA 2005, with the C11 orderings of Lê,
//!   Pop, Cohen & Zappa Nardelli, PPoPP 2013): a growable power-of-two
//!   ring buffer indexed by an atomic `top`/`bottom` pair. The owner's
//!   `push`/`pop` touch only its own end and are lock-free; thieves
//!   claim elements with a CAS on `top`. `steal_batch_and_pop` claims
//!   a run of elements one CAS at a time (re-validating `bottom`
//!   between claims), amortising the *cache traffic* of stealing —
//!   one victim-ring walk, one destination publish — for fine-grained
//!   tasks. The claims themselves cannot be batched into one CAS: the
//!   owner's `pop` removes bottom-end elements *without* a CAS
//!   whenever it sees more than one element, so a multi-element claim
//!   could win elements the owner already popped (double delivery).
//! * [`locked`] preserves the previous `Mutex<VecDeque>` substrate.
//!   The scheduler keeps it selectable (`WorkStealingLocked`) as the
//!   measured baseline for the E-SCHED ablation: identical policy,
//!   different queue substrate.
//!
//! # Memory ordering (why each fence is where it is)
//!
//! * `push` writes the slot, then publishes with `bottom.store(b+1,
//!   Release)`. A thief that observes the new `bottom` via an
//!   `Acquire` load therefore also observes the slot write.
//! * `pop` *reserves* the bottom element by storing `bottom - 1`, then
//!   issues a `SeqCst` fence before reading `top`. The fence pairs
//!   with the `SeqCst` CAS in `steal`: either the thief sees the
//!   reservation (and backs off the last element) or the owner sees
//!   the advanced `top` (and backs off itself, racing the CAS only on
//!   the final element).
//! * `steal` reads `top` (`Acquire`), fences `SeqCst`, reads `bottom`
//!   (`Acquire`), copies the candidate element, then claims it with a
//!   `SeqCst` CAS on `top`. The copy happens *before* the claim; on a
//!   lost race the copy is discarded without being dropped, so
//!   ownership is transferred exactly once. `top` is monotonically
//!   increasing, which is what makes the claim ABA-free even when the
//!   ring index (`top & mask`) wraps — a stale thief's CAS must fail
//!   because the *unwrapped* counter moved on. The explorer litmus
//!   family `chase-lev/*` (crates/explore) model-checks exactly these
//!   properties.
//!
//! Buffer growth: only the owner replaces the ring (on a full `push`),
//! publishing the new buffer with a `Release` store. Concurrent
//! thieves may still hold the previous buffer pointer, so retired
//! buffers are parked (a mutex touched only on growth — never on the
//! hot path) and freed when the deque drops. Total parked memory is
//! bounded by twice the final buffer size.

use std::marker::PhantomData;
use std::mem::{self, MaybeUninit};
use std::ptr;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Result of a steal attempt.
pub enum Steal<T> {
    /// Nothing to steal.
    Empty,
    /// A stolen item.
    Success(T),
    /// Lost a race; try again.
    Retry,
}

/// Initial ring capacity (power of two).
const MIN_CAP: usize = 64;
/// Upper bound on elements moved by one batch steal.
const MAX_BATCH: usize = 32;

/// A heap ring of `cap` (power-of-two) slots. Slots in `[top,
/// bottom)` are initialised; everything else is spare capacity. The
/// struct itself is plain data — all synchronisation lives in
/// [`Inner`]'s atomics.
struct Buffer<T> {
    ptr: *mut MaybeUninit<T>,
    cap: usize,
}

impl<T> Buffer<T> {
    fn alloc(cap: usize) -> *mut Buffer<T> {
        debug_assert!(cap.is_power_of_two());
        let mut slots = Vec::<MaybeUninit<T>>::with_capacity(cap);
        let ptr = slots.as_mut_ptr();
        mem::forget(slots);
        Box::into_raw(Box::new(Buffer { ptr, cap }))
    }

    /// Free a buffer previously returned by [`Buffer::alloc`]. Does
    /// not drop any slot contents.
    ///
    /// # Safety
    /// `buf` must come from `alloc` and not be freed twice.
    unsafe fn free(buf: *mut Buffer<T>) {
        let b = Box::from_raw(buf);
        drop(Vec::from_raw_parts(b.ptr, 0, b.cap));
    }

    /// Pointer to the slot for ring index `index`.
    unsafe fn slot(&self, index: isize) -> *mut MaybeUninit<T> {
        self.ptr.offset(index & (self.cap as isize - 1))
    }

    /// Bitwise-copy the element at `index` out of the ring.
    unsafe fn read(&self, index: isize) -> T {
        ptr::read(self.slot(index)).assume_init()
    }

    /// Write `value` into the slot for `index`.
    unsafe fn write(&self, index: isize, value: T) {
        ptr::write(self.slot(index), MaybeUninit::new(value));
    }
}

struct Inner<T> {
    /// Thieves' end; monotonically increasing (never decremented).
    top: AtomicIsize,
    /// Owner's end.
    bottom: AtomicIsize,
    /// Current ring; replaced (owner-only) on growth.
    buffer: AtomicPtr<Buffer<T>>,
    /// Rings replaced by growth, parked until drop because a thief may
    /// still hold a pointer into them. Locked only on growth and drop.
    retired: Mutex<Vec<*mut Buffer<T>>>,
}

// SAFETY: elements are transferred across threads by value; the
// top/bottom protocol guarantees each element is read by exactly one
// side. `T: Send` is exactly the bound that transfer needs.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Exclusive access: drop the live range, then free all rings.
        let top = *self.top.get_mut();
        let bottom = *self.bottom.get_mut();
        let buf = *self.buffer.get_mut();
        unsafe {
            let mut i = top;
            while i < bottom {
                ptr::drop_in_place((*buf).slot(i).cast::<T>());
                i += 1;
            }
            Buffer::free(buf);
        }
        let retired = mem::take(
            &mut *self.retired.lock().unwrap_or_else(PoisonError::into_inner),
        );
        for old in retired {
            // SAFETY: parked by `grow`, freed exactly once here.
            unsafe { Buffer::free(old) };
        }
    }
}

/// The owner's handle: push and pop at the back (LIFO). One owner at
/// a time — the type is `Send` but not `Sync`, matching upstream
/// crossbeam's single-owner contract.
pub struct Worker<T> {
    inner: Arc<Inner<T>>,
    /// Owner ops are not thread-safe against each other: keep the
    /// handle out of `&`-shared cross-thread use.
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

// SAFETY: moving the owner handle to another thread is fine (the
// algorithm never assumes a particular owner thread, only *one*
// owner); `Cell<()>` in the marker suppresses `Sync` only.
unsafe impl<T: Send> Send for Worker<T> {}

impl<T> Default for Worker<T> {
    fn default() -> Self {
        Self::new_lifo()
    }
}

impl<T> Worker<T> {
    /// A new LIFO worker deque.
    #[must_use]
    pub fn new_lifo() -> Self {
        Self {
            inner: Arc::new(Inner {
                top: AtomicIsize::new(0),
                bottom: AtomicIsize::new(0),
                buffer: AtomicPtr::new(Buffer::alloc(MIN_CAP)),
                retired: Mutex::new(Vec::new()),
            }),
            _not_sync: PhantomData,
        }
    }

    /// A thief's handle onto this deque.
    #[must_use]
    pub fn stealer(&self) -> Stealer<T> {
        Stealer { inner: Arc::clone(&self.inner) }
    }

    /// Replace the ring with one of at least `need` capacity, copying
    /// the live range `[top, bottom)` and parking the old ring.
    /// Owner-only.
    fn grow(&self, top: isize, bottom: isize, need: usize) {
        let old_ptr = self.inner.buffer.load(Ordering::Relaxed);
        // SAFETY: the owner is the only thread that replaces the
        // buffer, so the pointer is the live ring.
        let old = unsafe { &*old_ptr };
        let mut cap = old.cap;
        while cap < need {
            cap *= 2;
        }
        let new_ptr = Buffer::alloc(cap);
        // SAFETY: slots [top, bottom) are initialised in the old ring
        // and their destinations in the fresh ring are spare capacity.
        unsafe {
            let new = &*new_ptr;
            let mut i = top;
            while i < bottom {
                ptr::copy_nonoverlapping(old.slot(i), new.slot(i), 1);
                i += 1;
            }
        }
        self.inner.buffer.store(new_ptr, Ordering::Release);
        self.inner
            .retired
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(old_ptr);
    }

    /// Push onto the owner's end. Lock-free; grows the ring when full.
    pub fn push(&self, item: T) {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Acquire);
        let mut buf = self.inner.buffer.load(Ordering::Relaxed);
        // SAFETY: owner-only load of the live ring.
        if b.wrapping_sub(t) >= unsafe { (*buf).cap } as isize {
            self.grow(t, b, (b.wrapping_sub(t) as usize) + 1);
            buf = self.inner.buffer.load(Ordering::Relaxed);
        }
        // SAFETY: slot `b` is spare capacity (b - top < cap); the
        // Release store below publishes the write to thieves.
        unsafe { (*buf).write(b, item) };
        self.inner.bottom.store(b.wrapping_add(1), Ordering::Release);
    }

    /// Pop from the owner's end (most recently pushed first).
    pub fn pop(&self) -> Option<T> {
        let b = self.inner.bottom.load(Ordering::Relaxed).wrapping_sub(1);
        let buf = self.inner.buffer.load(Ordering::Relaxed);
        // Reserve the bottom element before inspecting `top`; the
        // SeqCst fence orders this store against the thieves' CAS.
        self.inner.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.inner.top.load(Ordering::Relaxed);
        if t <= b {
            if t == b {
                // Single element left: race thieves for it on `top`.
                let won = self
                    .inner
                    .top
                    .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.inner.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
                if won {
                    // SAFETY: the CAS claimed index `b` exclusively.
                    Some(unsafe { (*buf).read(b) })
                } else {
                    None
                }
            } else {
                // More than one element: the reservation alone is
                // enough, no thief can reach index `b`.
                // SAFETY: `b` is inside the live range and reserved.
                Some(unsafe { (*buf).read(b) })
            }
        } else {
            // Empty: restore `bottom`.
            self.inner.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
            None
        }
    }

    /// Number of items currently visible (owner's view).
    #[must_use]
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Acquire);
        usize::try_from(b.wrapping_sub(t)).unwrap_or(0)
    }

    /// True when no items are visible.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A thief's handle: steals from the front (FIFO).
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Self { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Stealer<T> {
    /// Steal the oldest item. Lock-free: one CAS on `top`.
    pub fn steal(&self) -> Steal<T> {
        let t = self.inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.inner.bottom.load(Ordering::Acquire);
        if b.wrapping_sub(t) <= 0 {
            return Steal::Empty;
        }
        let buf = self.inner.buffer.load(Ordering::Acquire);
        // Speculative copy: claimed (and thereby owned) only if the
        // CAS below wins; discarded without dropping otherwise.
        // SAFETY: with `top == t` still true at the CAS, slot `t` was
        // not reclaimed or overwritten between this read and the
        // claim (`top` is monotone, overwrite requires `top > t`).
        let item = unsafe { (*buf).read(t) };
        match self.inner.top.compare_exchange(
            t,
            t.wrapping_add(1),
            Ordering::SeqCst,
            Ordering::Relaxed,
        ) {
            Ok(_) => Steal::Success(item),
            Err(_) => {
                // Lost the race: the copy is not ours to drop.
                mem::forget(item);
                Steal::Retry
            }
        }
    }

    /// Steal a run of elements: move up to half of the visible items
    /// (capped) into `dest` and return the oldest immediately. `dest`
    /// must belong to the calling thread.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        match self.steal_batch_and_pop_with_count(dest) {
            Steal::Success((item, _)) => Steal::Success(item),
            Steal::Empty => Steal::Empty,
            Steal::Retry => Steal::Retry,
        }
    }

    /// [`Stealer::steal_batch_and_pop`], also reporting how many items
    /// were claimed (the returned one plus those moved into
    /// `dest`). Not part of upstream crossbeam's API — the scheduler
    /// uses the count to keep its per-item steal accounting exact.
    pub fn steal_batch_and_pop_with_count(&self, dest: &Worker<T>) -> Steal<(T, usize)> {
        if Arc::ptr_eq(&self.inner, &dest.inner) {
            // Stealing into the same deque would just rotate it.
            return match self.steal() {
                Steal::Success(item) => Steal::Success((item, 1)),
                Steal::Empty => Steal::Empty,
                Steal::Retry => Steal::Retry,
            };
        }
        let mut t = self.inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.inner.bottom.load(Ordering::Acquire);
        let len = b.wrapping_sub(t);
        if len <= 0 {
            return Steal::Empty;
        }
        // Upper bound only: the owner may pop the tail out from under
        // us, so every element is re-validated and claimed
        // individually below.
        let n = ((len + 1) / 2).min(MAX_BATCH as isize);
        let buf = self.inner.buffer.load(Ordering::Acquire);

        // Make room in `dest` up front (owner-side op: the caller owns
        // `dest`), so its ring never grows while unpublished slots are
        // in flight — growth copies only the published range.
        let db = dest.inner.bottom.load(Ordering::Relaxed);
        let dt = dest.inner.top.load(Ordering::Acquire);
        let mut dbuf = dest.inner.buffer.load(Ordering::Relaxed);
        let dest_used = db.wrapping_sub(dt);
        // SAFETY: owner-only load of dest's live ring.
        if dest_used + n - 1 > unsafe { (*dbuf).cap } as isize {
            dest.grow(dt, db, (dest_used + n - 1) as usize);
            dbuf = dest.inner.buffer.load(Ordering::Relaxed);
        }

        // Claim elements ONE CAS AT A TIME (as upstream
        // crossbeam-deque does for the LIFO flavor). A single CAS over
        // the whole range would be unsound: `pop` removes bottom-end
        // elements without touching `top` whenever it sees more than
        // one element, so a multi-element claim can win elements the
        // owner already popped — double delivery. Claimed one by one,
        // each claim is exactly the `steal` protocol, whose
        // exclusivity against `pop` the explorer proves
        // (`chase-lev/batch-steal-vs-pop`; the single-CAS algorithm is
        // kept there as the broken twin that double-delivers).
        //
        // SAFETY: as in `steal`, each successful CAS at value `t`
        // proves the slot for unwrapped index `t` was neither
        // reclaimed nor overwritten while we copied it (`top` is
        // monotone; an overwrite of that slot requires `top > t`); a
        // failed CAS abandons the copy as raw bytes — never dropped,
        // never published.
        let first = unsafe { (*buf).read(t) };
        if self
            .inner
            .top
            .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            mem::forget(first);
            return Steal::Retry;
        }
        t = t.wrapping_add(1);
        let mut moved: isize = 0;
        while 1 + moved < n {
            // Re-validate the owner's end before each further claim:
            // the fence/Acquire pair is `steal`'s preamble, so either
            // this thief sees the owner's `bottom` reservation (and
            // stops) or its claim is ordered before the reservation
            // (and the element is exclusively ours).
            fence(Ordering::SeqCst);
            let b = self.inner.bottom.load(Ordering::Acquire);
            if b.wrapping_sub(t) <= 0 {
                break;
            }
            let item = unsafe { (*buf).read(t) };
            if self
                .inner
                .top
                .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                mem::forget(item);
                break;
            }
            // Ours now: bank it in dest's ring, unpublished until the
            // whole batch is done.
            unsafe { (*dbuf).write(db.wrapping_add(moved), item) };
            moved += 1;
            t = t.wrapping_add(1);
        }
        if moved > 0 {
            dest.inner
                .bottom
                .store(db.wrapping_add(moved), Ordering::Release);
        }
        #[allow(clippy::cast_sign_loss)]
        Steal::Success((first, (1 + moved) as usize))
    }

    /// Number of items currently visible. A racy snapshot: exact only
    /// in quiescence (see `TaskRuntime::queued_hint` for the exact
    /// in-flight accounting).
    #[must_use]
    pub fn len(&self) -> usize {
        let t = self.inner.top.load(Ordering::Acquire);
        let b = self.inner.bottom.load(Ordering::Acquire);
        usize::try_from(b.wrapping_sub(t)).unwrap_or(0)
    }

    /// True when no items are visible.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Global FIFO injector for work submitted from outside the pool.
///
/// The injector is *not* lock-free: it is a mutex-protected FIFO whose
/// API is batch-oriented, so the scheduler takes one lock per
/// *episode* (a [`Injector::push_batch`] of spawned jobs, a
/// [`Injector::steal_batch_and_pop`] refill) rather than one lock per
/// task. Workers refill from it only when their own deque runs dry.
pub struct Injector<T> {
    items: Mutex<std::collections::VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// A new empty injector.
    #[must_use]
    pub fn new() -> Self {
        Self {
            items: Mutex::new(std::collections::VecDeque::new()),
        }
    }

    /// Submit an item.
    pub fn push(&self, item: T) {
        self.items
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(item);
    }

    /// Submit a batch under a single lock acquisition (one injector
    /// episode regardless of batch size).
    pub fn push_batch(&self, batch: impl IntoIterator<Item = T>) {
        self.items
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .extend(batch);
    }

    /// Steal the oldest item.
    pub fn steal(&self) -> Steal<T> {
        match self
            .items
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
        {
            Some(item) => Steal::Success(item),
            None => Steal::Empty,
        }
    }

    /// Move a batch into `dest` and return one item immediately.
    /// Takes up to half of the queue (at least one, at most
    /// `MAX_BATCH`), amortising injector contention.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut items = self
            .items
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let first = match items.pop_front() {
            Some(item) => item,
            None => return Steal::Empty,
        };
        let extra = (items.len() / 2).min(MAX_BATCH - 1);
        if extra > 0 {
            // Preserve FIFO order for the batch: the worker pops LIFO,
            // so push the batch in reverse.
            let batch: Vec<T> = items.drain(..extra).collect();
            drop(items);
            for item in batch.into_iter().rev() {
                dest.push(item);
            }
        }
        Steal::Success(first)
    }

    /// Number of queued items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when no items are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

pub mod locked {
    //! The previous `Mutex<VecDeque>` deque substrate, preserved as
    //! the measured baseline for the scheduler ablation (E-SCHED).
    //! Same API shape and correctness semantics as the lock-free
    //! deque above; every operation takes the deque's mutex.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex, PoisonError};

    pub use super::Steal;

    struct Shared<T> {
        items: Mutex<VecDeque<T>>,
    }

    /// The owner's handle: push and pop at the back (LIFO).
    pub struct Worker<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Worker<T> {
        /// A new LIFO worker deque.
        #[must_use]
        pub fn new_lifo() -> Self {
            Self {
                shared: Arc::new(Shared { items: Mutex::new(VecDeque::new()) }),
            }
        }

        /// Push onto the owner's end.
        pub fn push(&self, item: T) {
            self.shared
                .items
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(item);
        }

        /// Pop from the owner's end (most recently pushed first).
        pub fn pop(&self) -> Option<T> {
            self.shared
                .items
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_back()
        }

        /// A thief's handle onto this deque.
        #[must_use]
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { shared: Arc::clone(&self.shared) }
        }
    }

    /// A thief's handle: steals from the front (FIFO).
    pub struct Stealer<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Self { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Stealer<T> {
        /// Steal the oldest item.
        pub fn steal(&self) -> Steal<T> {
            match self
                .shared
                .items
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
            {
                Some(item) => Steal::Success(item),
                None => Steal::Empty,
            }
        }

        /// Number of items currently visible.
        #[must_use]
        pub fn len(&self) -> usize {
            self.shared
                .items
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        /// True when no items are visible.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Global FIFO injector protected by one mutex (the baseline's
    /// per-task lock).
    pub struct Injector<T> {
        items: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// A new empty injector.
        #[must_use]
        pub fn new() -> Self {
            Self { items: Mutex::new(VecDeque::new()) }
        }

        /// Submit an item.
        pub fn push(&self, item: T) {
            self.items
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(item);
        }

        /// Steal the oldest item.
        pub fn steal(&self) -> Steal<T> {
            match self
                .items
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
            {
                Some(item) => Steal::Success(item),
                None => Steal::Empty,
            }
        }

        /// Move a batch into `dest` and return one item immediately.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut items = self
                .items
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let first = match items.pop_front() {
                Some(item) => item,
                None => return Steal::Empty,
            };
            let extra = (items.len() / 2).min(16);
            if extra > 0 {
                let batch: Vec<T> = items.drain(..extra).collect();
                drop(items);
                let mut dest_items = dest
                    .shared
                    .items
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                // Preserve FIFO order for the LIFO owner.
                for item in batch.into_iter().rev() {
                    dest_items.push_back(item);
                }
            }
            Steal::Success(first)
        }

        /// Number of queued items.
        #[must_use]
        pub fn len(&self) -> usize {
            self.items
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        /// True when no items are queued.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering as AOrd};
    use std::thread;

    #[test]
    fn worker_lifo_stealer_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        match s.steal() {
            Steal::Success(v) => assert_eq!(v, 1),
            _ => panic!("steal failed"),
        }
        assert_eq!(s.len(), 1);
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn growth_past_initial_capacity_preserves_order() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        let n = 10 * MIN_CAP;
        for i in 0..n {
            w.push(i);
        }
        assert_eq!(w.len(), n);
        // Thief drains FIFO: 0, 1, 2, ...
        for want in 0..n / 2 {
            loop {
                match s.steal() {
                    Steal::Success(v) => {
                        assert_eq!(v, want);
                        break;
                    }
                    Steal::Retry => {}
                    Steal::Empty => panic!("empty at {want}"),
                }
            }
        }
        // Owner drains LIFO: n-1, n-2, ...
        for want in (n / 2..n).rev() {
            assert_eq!(w.pop(), Some(want));
        }
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn batch_steal_moves_a_run_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        for i in 0..10 {
            w.push(i);
        }
        let thief = Worker::new_lifo();
        match s.steal_batch_and_pop(&thief) {
            Steal::Success(v) => assert_eq!(v, 0),
            _ => panic!("batch steal failed"),
        }
        // Half of 10 = 5 claimed: item 0 returned, 1..=4 in dest. The
        // dest owner pops LIFO, so the *newest* batched item is first.
        assert_eq!(thief.len(), 4);
        assert_eq!(thief.pop(), Some(4));
        assert_eq!(thief.pop(), Some(3));
        // Victim keeps 5..=9.
        assert_eq!(s.len(), 5);
        assert_eq!(w.pop(), Some(9));
    }

    #[test]
    fn batch_steal_into_same_deque_degrades_to_steal() {
        let w = Worker::new_lifo();
        w.push(7);
        let s = w.stealer();
        match s.steal_batch_and_pop(&w) {
            Steal::Success(v) => assert_eq!(v, 7),
            _ => panic!("self-steal failed"),
        }
        assert!(w.pop().is_none());
    }

    #[test]
    fn drop_nonempty_deque_drops_items_exactly_once() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Probe;
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, AOrd::SeqCst);
            }
        }
        DROPS.store(0, AOrd::SeqCst);
        {
            let w = Worker::new_lifo();
            for _ in 0..200 {
                w.push(Probe); // crosses one growth boundary
            }
            drop(w.pop()); // one dropped by hand
        }
        assert_eq!(DROPS.load(AOrd::SeqCst), 200);
    }

    #[test]
    fn concurrent_thieves_take_every_item_exactly_once() {
        const ITEMS: usize = 20_000;
        const THIEVES: usize = 4;
        let w = Worker::new_lifo();
        let sum = Arc::new(AtomicUsize::new(0));
        let taken = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..THIEVES {
            let s = w.stealer();
            let sum = Arc::clone(&sum);
            let taken = Arc::clone(&taken);
            handles.push(thread::spawn(move || {
                let local = Worker::new_lifo();
                loop {
                    match s.steal_batch_and_pop(&local) {
                        Steal::Success(v) => {
                            let mut got = v;
                            loop {
                                sum.fetch_add(got, AOrd::Relaxed);
                                taken.fetch_add(1, AOrd::Relaxed);
                                match local.pop() {
                                    Some(next) => got = next,
                                    None => break,
                                }
                            }
                        }
                        Steal::Retry => {}
                        Steal::Empty => {
                            if taken.load(AOrd::Acquire) >= ITEMS {
                                break;
                            }
                            thread::yield_now();
                        }
                    }
                }
            }));
        }
        // Owner interleaves pushes with occasional pops.
        let mut owner_sum = 0usize;
        let mut owner_taken = 0usize;
        for i in 1..=ITEMS {
            w.push(i);
            if i % 7 == 0 {
                if let Some(v) = w.pop() {
                    owner_sum += v;
                    owner_taken += 1;
                }
            }
        }
        // Owner stops taking; thieves drain the rest.
        sum.fetch_add(owner_sum, AOrd::Relaxed);
        taken.fetch_add(owner_taken, AOrd::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(taken.load(AOrd::SeqCst), ITEMS, "every item taken once");
        assert_eq!(
            sum.load(AOrd::SeqCst),
            ITEMS * (ITEMS + 1) / 2,
            "no duplicated or lost items"
        );
    }

    #[test]
    fn owner_pop_vs_thief_on_last_element() {
        // Many rounds of the 1-element race; exactly one side wins it.
        for round in 0..2_000 {
            let w = Worker::new_lifo();
            w.push(round);
            let s = w.stealer();
            let thief = thread::spawn(move || loop {
                match s.steal() {
                    Steal::Success(v) => break Some(v),
                    Steal::Retry => {}
                    Steal::Empty => break None,
                }
            });
            let mine = w.pop();
            let theirs = thief.join().unwrap();
            match (mine, theirs) {
                (Some(v), None) | (None, Some(v)) => assert_eq!(v, round),
                other => panic!("round {round}: both or neither won: {other:?}"),
            }
        }
    }

    #[test]
    fn batch_steal_vs_owner_pop_delivers_exactly_once() {
        // Regression for the single-CAS batch steal: the owner pops
        // the bottom end CAS-free (it sees top < bottom) while a
        // thief batch-steals from the top; a multi-element claim made
        // with one CAS can win an element the owner already popped
        // and deliver it twice. Small deques maximise the overlap of
        // the thief's claim range and the owner's pops.
        for round in 0..4_000u64 {
            let w = Worker::new_lifo();
            for i in 0..5 {
                w.push(round * 8 + i);
            }
            let s = w.stealer();
            let thief = thread::spawn(move || {
                let local = Worker::new_lifo();
                let mut got = Vec::new();
                loop {
                    match s.steal_batch_and_pop(&local) {
                        Steal::Success(v) => got.push(v),
                        Steal::Retry => {}
                        Steal::Empty => break,
                    }
                }
                while let Some(v) = local.pop() {
                    got.push(v);
                }
                got
            });
            let mut got = Vec::new();
            while let Some(v) = w.pop() {
                got.push(v);
            }
            got.extend(thief.join().unwrap());
            got.sort_unstable();
            let want: Vec<u64> = (0..5).map(|i| round * 8 + i).collect();
            assert_eq!(got, want, "round {round}: lost or duplicated element");
        }
    }

    #[test]
    fn injector_batch_refill() {
        let inj = Injector::new();
        let w = Worker::new_lifo();
        for i in 0..10 {
            inj.push(i);
        }
        match inj.steal_batch_and_pop(&w) {
            Steal::Success(v) => assert_eq!(v, 0),
            _ => panic!("batch pop failed"),
        }
        // The batch moved to the worker preserves FIFO order for its
        // LIFO owner: next owner pop is the oldest batched item.
        assert_eq!(w.pop(), Some(1));
    }

    #[test]
    fn injector_push_batch_is_fifo() {
        let inj = Injector::new();
        inj.push_batch(0..5);
        inj.push(5);
        for want in 0..=5 {
            match inj.steal() {
                Steal::Success(v) => assert_eq!(v, want),
                _ => panic!("steal failed at {want}"),
            }
        }
        assert!(inj.is_empty());
    }

    #[test]
    fn locked_baseline_matches_semantics() {
        let w = locked::Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(2));
        match s.steal() {
            locked::Steal::Success(v) => assert_eq!(v, 1),
            _ => panic!("locked steal failed"),
        }
        let inj = locked::Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        match inj.steal_batch_and_pop(&w) {
            locked::Steal::Success(v) => assert_eq!(v, 0),
            _ => panic!("locked batch pop failed"),
        }
        assert_eq!(w.pop(), Some(1));
    }
}
