//! Vendored shim for the subset of `crossbeam` this workspace uses.
//!
//! The build container has no network and an empty registry, so the
//! real crate cannot be fetched. Three modules are provided with the
//! same API shape and the same correctness semantics:
//!
//! * [`deque`] — `Worker`/`Stealer`/`Injector` work-stealing deques.
//!   The worker deque is a real lock-free Chase–Lev deque (atomic
//!   `top`/`bottom`, CAS-based steal); the previous mutex-based
//!   substrate survives as [`deque::locked`], kept selectable by the
//!   scheduler as the measured baseline for the E-SCHED ablation.
//! * [`queue`] — `SegQueue`, an unbounded MPMC queue (lock-based).
//! * [`epoch`] — pointer-based protected reclamation for the Treiber
//!   stack: guards count active pins and retired garbage is freed only
//!   when no guard is live (a coarse but sound epoch scheme). Note the
//!   deque does *not* use it — pinning takes a global lock, so the
//!   deque parks retired ring buffers until drop instead.

pub mod deque;

pub mod queue {
    //! Unbounded MPMC queue with the `SegQueue` API.

    use std::collections::VecDeque;
    use std::sync::{Mutex, PoisonError};

    /// An unbounded FIFO queue safe for any number of producers and
    /// consumers.
    pub struct SegQueue<T> {
        items: Mutex<VecDeque<T>>,
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> SegQueue<T> {
        /// A new empty queue.
        #[must_use]
        pub fn new() -> Self {
            Self {
                items: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueue at the back.
        pub fn push(&self, item: T) {
            self.items
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(item);
        }

        /// Dequeue from the front.
        pub fn pop(&self) -> Option<T> {
            self.items
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
        }

        /// Number of queued items.
        #[must_use]
        pub fn len(&self) -> usize {
            self.items
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        /// True when no items are queued.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

pub mod epoch {
    //! Protected reclamation for lock-free structures.
    //!
    //! A coarse, provably sound variant of epoch-based reclamation:
    //! a global collector counts live [`Guard`]s; `defer_destroy`
    //! retires garbage into the collector; garbage is reclaimed only
    //! when the live-guard count reaches zero. Between pin and unpin,
    //! all shared-pointer operations are plain atomics — the data
    //! structure itself stays non-blocking; only pin/unpin touch the
    //! collector lock.

    use std::marker::PhantomData;
    use std::sync::atomic::{AtomicPtr, Ordering};
    use std::sync::{Mutex, OnceLock, PoisonError};

    /// A deferred destructor: the address of a retired allocation plus
    /// a monomorphised drop thunk. Storing `(usize, fn)` instead of a
    /// boxed closure keeps `defer_destroy` free of `'static`/`Send`
    /// bounds, matching real crossbeam's signature (safety is the
    /// caller's contract, as upstream).
    type Deferred = (usize, unsafe fn(usize));

    #[derive(Default)]
    struct Collector {
        active_guards: usize,
        garbage: Vec<Deferred>,
    }

    fn collector() -> &'static Mutex<Collector> {
        static COLLECTOR: OnceLock<Mutex<Collector>> = OnceLock::new();
        COLLECTOR.get_or_init(|| Mutex::new(Collector::default()))
    }

    /// Pin the current thread: while the returned [`Guard`] lives, no
    /// retired garbage is reclaimed, so loaded [`Shared`] pointers stay
    /// valid.
    #[must_use]
    pub fn pin() -> Guard {
        collector()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .active_guards += 1;
        Guard { pinned: true }
    }

    /// A guard usable when the caller has exclusive access to the data
    /// structure (e.g. in `Drop`); deferred destruction runs
    /// immediately.
    ///
    /// # Safety
    /// The caller must guarantee no other thread accesses the
    /// structure concurrently.
    #[must_use]
    pub unsafe fn unprotected() -> &'static Guard {
        static UNPROTECTED: Guard = Guard { pinned: false };
        &UNPROTECTED
    }

    /// An RAII pin on the global collector.
    pub struct Guard {
        pinned: bool,
    }

    impl Guard {
        /// Retire `shared` for destruction once no guards are live.
        ///
        /// # Safety
        /// The pointer must have been unlinked from the data structure
        /// so no *new* references can be created, and must not be
        /// retired twice.
        pub unsafe fn defer_destroy<T>(&self, shared: Shared<'_, T>) {
            unsafe fn drop_thunk<T>(addr: usize) {
                // SAFETY: per `defer_destroy`'s contract, the address
                // came from `Owned::new` (a `Box`) and has been
                // unlinked; the collector runs this only when no guard
                // is live.
                drop(unsafe { Box::from_raw(addr as *mut T) });
            }
            let ptr = shared.ptr as *mut T;
            if ptr.is_null() {
                return;
            }
            let destroy: Deferred = (ptr as usize, drop_thunk::<T>);
            if self.pinned {
                collector()
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .garbage
                    .push(destroy);
            } else {
                let (addr, thunk) = destroy;
                // SAFETY: unprotected use — caller guarantees exclusive
                // access, so immediate destruction is sound.
                unsafe { thunk(addr) };
            }
        }
    }

    impl Drop for Guard {
        fn drop(&mut self) {
            if !self.pinned {
                return;
            }
            let garbage = {
                let mut c = collector()
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                c.active_guards -= 1;
                if c.active_guards == 0 {
                    std::mem::take(&mut c.garbage)
                } else {
                    Vec::new()
                }
            };
            // Run destructors outside the collector lock.
            for (addr, thunk) in garbage {
                // SAFETY: retired per `defer_destroy`'s contract and no
                // guard was live when this batch was taken.
                unsafe { thunk(addr) };
            }
        }
    }

    /// Conversion into a raw pointer, for [`Atomic`] operations that
    /// accept either [`Owned`] or [`Shared`] values.
    pub trait Pointer<T> {
        /// Surrender ownership (if any) and yield the raw pointer.
        fn into_ptr(self) -> *mut T;
        /// Rebuild from a raw pointer previously produced by
        /// [`Pointer::into_ptr`].
        ///
        /// # Safety
        /// `ptr` must come from `into_ptr` of the same impl.
        unsafe fn from_ptr(ptr: *mut T) -> Self;
    }

    /// An owned, heap-allocated value not yet published.
    pub struct Owned<T> {
        ptr: *mut T,
    }

    impl<T> Owned<T> {
        /// Allocate a new owned value.
        pub fn new(value: T) -> Self {
            Self {
                ptr: Box::into_raw(Box::new(value)),
            }
        }
    }

    impl<T> std::ops::Deref for Owned<T> {
        type Target = T;
        fn deref(&self) -> &T {
            // SAFETY: `ptr` is a live Box allocation owned by self.
            unsafe { &*self.ptr }
        }
    }

    impl<T> std::ops::DerefMut for Owned<T> {
        fn deref_mut(&mut self) -> &mut T {
            // SAFETY: exclusive ownership.
            unsafe { &mut *self.ptr }
        }
    }

    impl<T> Drop for Owned<T> {
        fn drop(&mut self) {
            if !self.ptr.is_null() {
                // SAFETY: still owned (never published).
                drop(unsafe { Box::from_raw(self.ptr) });
            }
        }
    }

    impl<T> Pointer<T> for Owned<T> {
        fn into_ptr(self) -> *mut T {
            let ptr = self.ptr;
            std::mem::forget(self);
            ptr
        }
        unsafe fn from_ptr(ptr: *mut T) -> Self {
            Self { ptr }
        }
    }

    /// A shared pointer loaded from an [`Atomic`], valid for the
    /// lifetime of the guard it was loaded under.
    pub struct Shared<'g, T> {
        ptr: *const T,
        _guard: PhantomData<&'g Guard>,
    }

    impl<T> Clone for Shared<'_, T> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<T> Copy for Shared<'_, T> {}

    impl<'g, T> Shared<'g, T> {
        /// The null shared pointer.
        #[must_use]
        pub fn null() -> Self {
            Self {
                ptr: std::ptr::null(),
                _guard: PhantomData,
            }
        }

        /// Is this the null pointer?
        #[must_use]
        pub fn is_null(&self) -> bool {
            self.ptr.is_null()
        }

        /// The raw pointer value.
        #[must_use]
        pub fn as_raw(&self) -> *const T {
            self.ptr
        }

        /// Dereference, if non-null.
        ///
        /// # Safety
        /// The pointee must not have been reclaimed; guaranteed while
        /// the guard this was loaded under is live.
        #[must_use]
        pub unsafe fn as_ref(&self) -> Option<&'g T> {
            self.ptr.as_ref()
        }

        /// Reclaim ownership of the pointee.
        ///
        /// # Safety
        /// Caller must have exclusive access to the pointee.
        #[must_use]
        pub unsafe fn into_owned(self) -> Owned<T> {
            Owned {
                ptr: self.ptr as *mut T,
            }
        }
    }

    impl<T> Pointer<T> for Shared<'_, T> {
        fn into_ptr(self) -> *mut T {
            self.ptr as *mut T
        }
        unsafe fn from_ptr(ptr: *mut T) -> Self {
            Self {
                ptr,
                _guard: PhantomData,
            }
        }
    }

    /// A failed compare-exchange: the current value and the rejected
    /// new value, returned so the caller can retry without
    /// reallocating.
    pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
        /// The value found in the atomic.
        pub current: Shared<'g, T>,
        /// The value that failed to install.
        pub new: P,
    }

    /// An atomic nullable pointer to a heap value, operated on under
    /// guards.
    pub struct Atomic<T> {
        ptr: AtomicPtr<T>,
    }

    impl<T> Atomic<T> {
        /// The null atomic pointer.
        #[must_use]
        pub fn null() -> Self {
            Self {
                ptr: AtomicPtr::new(std::ptr::null_mut()),
            }
        }

        /// Allocate `value` and point at it.
        pub fn new(value: T) -> Self {
            Self {
                ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
            }
        }

        /// Load the current pointer under `_guard`.
        pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
            Shared {
                ptr: self.ptr.load(ord),
                _guard: PhantomData,
            }
        }

        /// Store a pointer (owned or shared).
        pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
            self.ptr.store(new.into_ptr(), ord);
        }

        /// Compare-exchange: install `new` if the current value is
        /// `current`, returning the failing value and `new` otherwise.
        pub fn compare_exchange<'g, P: Pointer<T>>(
            &self,
            current: Shared<'_, T>,
            new: P,
            success: Ordering,
            failure: Ordering,
            _guard: &'g Guard,
        ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
            let new_ptr = new.into_ptr();
            match self.ptr.compare_exchange(
                current.ptr as *mut T,
                new_ptr,
                success,
                failure,
            ) {
                Ok(prev) => Ok(Shared {
                    ptr: prev,
                    _guard: PhantomData,
                }),
                Err(found) => Err(CompareExchangeError {
                    current: Shared {
                        ptr: found,
                        _guard: PhantomData,
                    },
                    // SAFETY: `new_ptr` came from `new.into_ptr()`
                    // above and was not installed.
                    new: unsafe { P::from_ptr(new_ptr) },
                }),
            }
        }
    }

    // SAFETY: the pointee is only accessed under guard discipline; T
    // crossing threads requires the usual bounds at use sites.
    unsafe impl<T: Send + Sync> Send for Atomic<T> {}
    unsafe impl<T: Send + Sync> Sync for Atomic<T> {}
}

#[cfg(test)]
mod tests {
    use super::epoch::{self, Atomic, Owned};
    use super::queue::SegQueue;
    use std::sync::atomic::Ordering;

    #[test]
    fn segqueue_fifo() {
        let q = SegQueue::new();
        q.push("a");
        q.push("b");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn epoch_defer_runs_after_unpin() {
        struct Probe(std::sync::Arc<std::sync::atomic::AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let atomic = Atomic::new(Probe(std::sync::Arc::clone(&drops)));
        {
            let guard = epoch::pin();
            let shared = atomic.load(Ordering::Acquire, &guard);
            atomic.store(
                crate::epoch::Shared::null(),
                Ordering::Release,
            );
            // SAFETY: unlinked above, retired once.
            unsafe { guard.defer_destroy(shared) };
            assert_eq!(drops.load(Ordering::SeqCst), 0, "still pinned");
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1, "freed after unpin");
    }

    #[test]
    fn epoch_cas_loop_owned_recovery() {
        let atomic: Atomic<u32> = Atomic::null();
        let guard = epoch::pin();
        let head = atomic.load(Ordering::Acquire, &guard);
        let node = Owned::new(5u32);
        assert!(atomic
            .compare_exchange(head, node, Ordering::Release, Ordering::Relaxed, &guard)
            .is_ok());
        let now = atomic.load(Ordering::Acquire, &guard);
        // SAFETY: just installed, still pinned.
        assert_eq!(unsafe { now.as_ref() }, Some(&5));
        // Clean up: take it back out.
        atomic.store(crate::epoch::Shared::null(), Ordering::Release);
        // SAFETY: unlinked, exclusive in this test.
        drop(unsafe { now.into_owned() });
    }
}
