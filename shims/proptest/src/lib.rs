//! Vendored shim for the subset of `proptest` this workspace uses.
//!
//! The build container has no network and an empty registry, so the
//! real crate cannot be fetched. This shim implements a small,
//! deterministic property-testing engine with the same *surface*:
//! the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`,
//! [`any`], numeric-range strategies, `prop::collection::vec` and
//! character-class string strategies like `"[a-z]{1,6}"`.
//!
//! Differences from real proptest, deliberately accepted:
//! * no shrinking — a failing case reports its inputs but is not
//!   minimised;
//! * the RNG seed is a deterministic hash of the test name, so runs
//!   are reproducible by construction (CI-friendly) rather than
//!   randomised per invocation.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use parc_util::rng::{SplitMix64, Xoshiro256};

pub mod test_runner {
    //! Runner configuration and the deterministic test RNG.

    use super::{SplitMix64, Xoshiro256};

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Deterministic RNG: seeded from the property's name so each test
    /// explores its own reproducible stream.
    pub struct TestRng {
        inner: Xoshiro256,
    }

    impl TestRng {
        /// Seed from an arbitrary name (typically the test function).
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0x5EED_CAFE_F00D_u64;
            for b in name.bytes() {
                seed = SplitMix64::mix(seed ^ u64::from(b));
            }
            Self {
                inner: Xoshiro256::seed_from_u64(seed),
            }
        }

        /// Seed from an explicit numeric seed — for harnesses (like
        /// corpus generators) that take seeds on the command line
        /// rather than deriving them from a test name.
        #[must_use]
        pub fn with_seed(seed: u64) -> Self {
            Self {
                inner: Xoshiro256::seed_from_u64(seed),
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.inner.next_below(bound)
        }

        /// Uniform `f64` in `[lo, hi)`.
        pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
            self.inner.gen_range_f64(lo..hi)
        }
    }
}

use test_runner::TestRng;

/// A generator of values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// A strategy always yielding clones of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a whole-domain default strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, symmetric around zero, spanning many magnitudes.
        let mag = rng.range_f64(-308.0, 308.0);
        let sign = if rng.next_u64() & 1 == 1 { 1.0 } else { -1.0 };
        sign * 10f64.powf(mag / 16.0)
    }
}

/// The `any::<T>()` whole-domain strategy.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over `T`'s whole domain.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = rng.below(span);
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                let off = rng.below(span);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.range_f64(self.start, self.end)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    #[allow(clippy::cast_possible_truncation)]
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.range_f64(f64::from(self.start), f64::from(self.end)) as f32
    }
}

/// A `&str` is a character-class pattern strategy: a sequence of
/// `[class]{m,n}` / `[class]{m}` / `[class]` atoms (plus bare literal
/// characters), generating a matching `String`. This covers the
/// pattern subset used as proptest string strategies in this
/// workspace; unsupported syntax panics loudly at generation time.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let (choices, next) = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed [ in pattern {self:?}"));
                    (parse_class(&chars[i + 1..close], self), close + 1)
                }
                '{' | '}' | ']' => panic!("unsupported pattern syntax in {self:?}"),
                c => (vec![c], i + 1),
            };
            let (lo, hi, next) = parse_repeat(&chars, next, self);
            let count = if lo == hi {
                lo
            } else {
                lo + rng.below((hi - lo + 1) as u64) as usize
            };
            for _ in 0..count {
                out.push(choices[rng.below(choices.len() as u64) as usize]);
            }
            i = next;
        }
        out
    }
}

fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    let mut choices = Vec::new();
    let mut j = 0;
    while j < body.len() {
        if j + 2 < body.len() && body[j + 1] == '-' {
            let (lo, hi) = (body[j] as u32, body[j + 2] as u32);
            assert!(lo <= hi, "inverted class range in {pattern:?}");
            for c in lo..=hi {
                choices.push(char::from_u32(c).expect("valid class char"));
            }
            j += 3;
        } else {
            choices.push(body[j]);
            j += 1;
        }
    }
    assert!(!choices.is_empty(), "empty class in {pattern:?}");
    choices
}

fn parse_repeat(chars: &[char], at: usize, pattern: &str) -> (usize, usize, usize) {
    if at >= chars.len() || chars[at] != '{' {
        return (1, 1, at);
    }
    let close = chars[at..]
        .iter()
        .position(|&c| c == '}')
        .map(|p| at + p)
        .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
    let body: String = chars[at + 1..close].iter().collect();
    let (lo, hi) = match body.split_once(',') {
        Some((l, h)) => (
            l.trim().parse().expect("repeat lower bound"),
            h.trim().parse().expect("repeat upper bound"),
        ),
        None => {
            let n = body.trim().parse().expect("repeat count");
            (n, n)
        }
    };
    (lo, hi, close + 1)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Accepted size specifications for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    /// Strategy yielding vectors of `elem`-generated values.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(elem, size)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Arbitrary, Just, Strategy};

    /// The `prop::` module path (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert a condition inside a property; failure reports the condition
/// (and optional formatted message) with the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(l == r) {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: `{:?}` != `{:?}`",
                        l,
                        r
                    ));
                }
            }
        }
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if l == r {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: `{:?}` == `{:?}`",
                        l,
                        r
                    ));
                }
            }
        }
    };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// The property-test declaration macro. Each `fn name(pat in strategy,
/// ...) { body }` becomes a `#[test]` running `config.cases`
/// deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(::std::stringify!($name));
            for case in 0..config.cases {
                let outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    ::std::panic!(
                        "property {} failed on case {}/{}: {}",
                        ::std::stringify!($name),
                        case + 1,
                        config.cases,
                        msg
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..17, b in -5i64..5, c in 1usize..=4) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((1..=4).contains(&c));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(any::<u32>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn string_patterns_match_class(s in "[a-c]{2,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5, "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn assume_skips_cases(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        let mut c = crate::test_runner::TestRng::deterministic("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn pattern_with_space_class() {
        let mut rng = crate::test_runner::TestRng::deterministic("space");
        for _ in 0..50 {
            let s = crate::Strategy::generate(&"[a-z ]{0,6}", &mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
        }
    }
}
