//! Vendored shim for the subset of `criterion` this workspace uses.
//!
//! The build container has no network and an empty registry, so the
//! real crate cannot be fetched. This shim keeps every bench target
//! compiling and runnable: it performs straightforward warm-up +
//! sampled timing and prints mean per-iteration time in a
//! criterion-like one-line format. It does no statistical analysis,
//! outlier detection, or HTML reporting.
//!
//! Surface provided: `Criterion` (builder methods, `benchmark_group`,
//! `final_summary`), `BenchmarkGroup` (`bench_function`,
//! `bench_with_input`, `finish`), `BenchmarkId`, `Bencher`
//! (`iter`, `iter_batched`), `BatchSize`, `black_box`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-exported `std::hint::black_box`: an identity function opaque to
/// the optimiser.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortises setup cost. The shim runs one setup
/// per routine call regardless of variant; the enum exists for source
/// compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Identifier for a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Timing configuration plus the entry point to benchmark groups.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before sampling.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target total sampling time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Real criterion parses CLI filters/baselines here; the shim
    /// accepts and ignores them so bench invocations keep working.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Print a closing line (real criterion prints the summary report).
    pub fn final_summary(&mut self) {
        println!("(shim criterion: all benchmarks complete)");
    }
}

/// A named collection of benchmarks sharing one `Criterion` config.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run a benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), &mut f);
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Close the group (no-op beyond source compatibility).
    pub fn finish(self) {}

    fn run(&mut self, id: BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let cfg = &*self.criterion;
        // Warm-up: repeat until the warm-up budget is spent.
        let warm_deadline = Instant::now() + cfg.warm_up_time;
        let mut bencher = Bencher { elapsed: Duration::ZERO, iters: 0 };
        while Instant::now() < warm_deadline {
            f(&mut bencher);
        }
        // Sampling: reset counters, then take `sample_size` samples
        // within (roughly) the measurement budget.
        bencher = Bencher { elapsed: Duration::ZERO, iters: 0 };
        let sample_deadline = Instant::now() + cfg.measurement_time;
        for done in 0..cfg.sample_size {
            f(&mut bencher);
            if done > 0 && Instant::now() > sample_deadline {
                break;
            }
        }
        let mean = if bencher.iters == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / u32::try_from(bencher.iters.min(u64::from(u32::MAX))).unwrap_or(1)
        };
        println!(
            "{}/{}: {:>12} /iter  ({} iters)",
            self.name,
            id.id,
            format_duration(mean),
            bencher.iters
        );
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if ns >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{ns} ns")
    }
}

/// Measures closures handed to it by a benchmark body.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_iters() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50))
            .configure_from_args();
        let mut total = 0u64;
        {
            let mut group = c.benchmark_group("shim-test");
            group.bench_function("count", |b| b.iter(|| total += 1));
            group.bench_with_input(BenchmarkId::new("with-input", 4), &4u64, |b, &n| {
                b.iter_batched(|| n, |x| x * 2, BatchSize::SmallInput);
            });
            group.finish();
        }
        c.final_summary();
        assert!(total >= 3);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
        assert_eq!(BenchmarkId::from("s").id, "s");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
