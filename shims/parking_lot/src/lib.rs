//! Vendored shim for the subset of `parking_lot` this workspace uses.
//!
//! The build container has no network and an empty registry, so the
//! real crate cannot be fetched. This shim wraps `std::sync` with the
//! `parking_lot` API shape: infallible `lock()`/`read()`/`write()`
//! (panic poisoning is *recovered from*, matching `parking_lot`'s
//! no-poisoning semantics, which the resilience layer relies on), and
//! `Condvar::wait(&mut guard)` taking the guard by mutable reference.
//!
//! Only the surface actually referenced in-tree is provided: `Mutex`,
//! `MutexGuard`, `Condvar`, `WaitTimeoutResult`, `RwLock` and its
//! guards. Semantics match `parking_lot` for that surface; performance
//! characteristics are those of `std::sync`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutex that does not poison: a panic while holding the lock leaves
/// the data accessible to other threads, exactly like `parking_lot`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    #[must_use]
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never fails:
    /// poisoning from a panicked holder is silently cleared.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner),
            ),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                guard: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`]. The inner `Option` exists so a `Condvar`
/// can temporarily take the std guard during a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Did the wait end because the timeout elapsed?
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable operating on [`MutexGuard`]s by `&mut`.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified. Spurious wakeups are possible.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(inner);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.guard.take().expect("guard present");
        let (inner, res) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.guard = Some(inner);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Block until notified or the absolute `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: std::time::Instant,
    ) -> WaitTimeoutResult {
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        self.wait_for(guard, remaining)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

/// A reader-writer lock that does not poison.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock.
    #[must_use]
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// Shared-access guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// Exclusive-access guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("die while holding");
        })
        .join();
        // parking_lot semantics: no poisoning, data still reachable.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            *ready = true;
            drop(ready);
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        drop(ready);
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(7);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
