//! Experiment E-LINT: static diagnostics for the whole directive
//! fixture corpus, plus the analyser's throughput benchmark.
//!
//! For every entry in `parc_analyze::fixtures::corpus()` this runs the
//! full front end (lex → parse → rule engine) and checks the emitted
//! diagnostic codes against the fixture's expected set. Any mismatch
//! exits non-zero, which is what the CI `analyze` job gates on. The
//! static-vs-dynamic agreement matrix itself lives in
//! `tests/analyze.rs`, where each verdict is cross-validated against
//! the exhaustive explorer and the pyjama runtime.
//!
//! Artifacts:
//! * first argument (default `directive_lint.json`) — every fixture's
//!   diagnostics as JSON;
//! * second argument (default `BENCH_analyze.json`) — the
//!   programs-linted-per-second benchmark record.
//!
//! Run with: `cargo run --release --example directive_lint`

use std::fmt::Write as _;
use std::time::Instant;

use parc_analyze::diag::to_json;
use parc_analyze::fixtures;
use parc_util::Table;

fn main() {
    let mut args = std::env::args().skip(1);
    let json_path = args.next().unwrap_or_else(|| "directive_lint.json".to_string());
    let bench_path = args.next().unwrap_or_else(|| "BENCH_analyze.json".to_string());

    println!("== E-LINT: static analysis of the directive corpus ==\n");

    let mut table = Table::new(
        "fixture lint verdicts (expected vs emitted codes)",
        &["fixture", "styled on", "expected", "emitted", "dynamic", "ok"],
    );
    let mut json_entries = Vec::new();
    let mut mismatches = 0usize;
    let mut total_diags = 0usize;
    let mut sample_render = String::new();

    for fx in fixtures::corpus() {
        let analysis = parc_analyze::analyze(fx.source);
        total_diags += analysis.diagnostics.len();

        let emitted: Vec<&str> = analysis.diagnostics.iter().map(|d| d.code.as_str()).collect();
        let expected: Vec<&str> = fx.expect.iter().map(|c| c.as_str()).collect();
        let ok = emitted == expected;
        if !ok {
            mismatches += 1;
        }
        table.row(&[
            fx.name.to_string(),
            fx.styled_on.to_string(),
            join_or_dash(&expected),
            join_or_dash(&emitted),
            format!("{:?}", fx.dynamic),
            if ok { "yes".to_string() } else { "** NO **".to_string() },
        ]);

        // Keep one full caret-annotated rendering as a sample of the
        // human-facing output.
        if sample_render.is_empty() && !analysis.diagnostics.is_empty() {
            for d in &analysis.diagnostics {
                let _ = writeln!(sample_render, "{}", d.render(fx.source, fx.name));
            }
        }

        json_entries.push(format!(
            "  {{\"fixture\": \"{}\", \"diagnostics\": {}}}",
            fx.name,
            indent_json(&to_json(&analysis.diagnostics))
        ));
    }

    println!("{}", table.render());
    println!("sample rendering (first diagnosed fixture):\n\n{sample_render}");

    // Benchmark: re-lint the corpus in a tight loop. The front end is
    // pure (no I/O, no threads), so iteration count just needs to
    // outlast timer noise.
    const ROUNDS: usize = 200;
    let started = Instant::now();
    let mut bench_diags = 0usize;
    for _ in 0..ROUNDS {
        for fx in fixtures::corpus() {
            bench_diags += parc_analyze::analyze(fx.source).diagnostics.len();
        }
    }
    let elapsed = started.elapsed();
    let programs = ROUNDS * fixtures::corpus().len();
    let programs_per_sec = programs as f64 / elapsed.as_secs_f64().max(1e-9);
    let diags_per_sec = bench_diags as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "linted {programs} programs / {bench_diags} diagnostics in {:.1} ms  ({:.0} programs/s, {:.0} diagnostics/s)",
        elapsed.as_secs_f64() * 1e3,
        programs_per_sec,
        diags_per_sec
    );

    let json = format!("[\n{}\n]\n", json_entries.join(",\n"));
    std::fs::write(&json_path, json).expect("write directive_lint.json");
    println!("diagnostic export -> {json_path}");

    let bench = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"analyze\",\n",
            "  \"corpus_fixtures\": {},\n",
            "  \"corpus_diagnostics\": {},\n",
            "  \"programs_linted\": {},\n",
            "  \"elapsed_ms\": {:.3},\n",
            "  \"programs_per_sec\": {:.1},\n",
            "  \"diagnostics_per_sec\": {:.1}\n",
            "}}\n"
        ),
        fixtures::corpus().len(),
        total_diags,
        programs,
        elapsed.as_secs_f64() * 1e3,
        programs_per_sec,
        diags_per_sec
    );
    std::fs::write(&bench_path, bench).expect("write BENCH_analyze.json");
    println!("benchmark record -> {bench_path}");

    if mismatches > 0 {
        eprintln!("\n{mismatches} fixture(s) disagreed with their expected diagnostic codes");
        std::process::exit(1);
    }
    println!(
        "\nall {} fixtures match their expected diagnostics",
        fixtures::corpus().len()
    );
}

fn join_or_dash(codes: &[&str]) -> String {
    if codes.is_empty() {
        "-".to_string()
    } else {
        codes.join(", ")
    }
}

/// Re-indent a nested JSON value so it nests inside the per-fixture
/// array entries without breaking lines mid-string.
fn indent_json(json: &str) -> String {
    json.trim_end().replace('\n', "\n  ")
}
