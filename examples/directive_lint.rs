//! Experiment E-LINT: static diagnostics for the whole directive
//! fixture corpus, plus the analyser's throughput benchmark on both
//! the hand-written and the generated corpora.
//!
//! For every entry in `parc_analyze::fixtures::corpus()` this runs the
//! full front end (lex → parse → rule engine) and checks the emitted
//! diagnostic codes against the fixture's expected set. Any mismatch
//! exits non-zero, which is what the CI `analyze` job gates on. The
//! static-vs-dynamic agreement matrix itself lives in
//! `tests/analyze.rs`, where each verdict is cross-validated against
//! the exhaustive explorer and the pyjama runtime.
//!
//! On top of the fixtures, a seeded `genprog` corpus is linted for
//! throughput and cross-validated against the exhaustive explorer,
//! recording the agreement counts and the false-positive rate of the
//! MHP engine next to the old syntactic engine's on the same programs.
//!
//! Artifacts (all under `--out`, default `target/artifacts/`):
//! * `directive_lint.json` — every fixture's diagnostics as JSON,
//!   snippets included;
//! * `BENCH_analyze.json` — the programs-linted-per-second benchmark
//!   record for both corpora. The copy committed at the repo root is a
//!   reference snapshot of this file.
//!
//! Run with: `cargo run --release --example directive_lint -- [--out DIR]`

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use parc_analyze::diag::{json_escape, to_json_with_source};
use parc_analyze::{fixtures, genprog};
use parc_util::Table;

fn main() {
    let out_dir = parse_out_dir();
    std::fs::create_dir_all(&out_dir).expect("create artifact directory");

    println!("== E-LINT: static analysis of the directive corpus ==\n");

    let mut table = Table::new(
        "fixture lint verdicts (expected vs emitted codes)",
        &["fixture", "styled on", "expected", "emitted", "dynamic", "ok"],
    );
    let mut json_entries = Vec::new();
    let mut mismatches = 0usize;
    let mut total_diags = 0usize;
    let mut sample_render = String::new();

    for fx in fixtures::corpus() {
        let analysis = parc_analyze::analyze(fx.source);
        total_diags += analysis.diagnostics.len();

        let emitted: Vec<&str> = analysis.diagnostics.iter().map(|d| d.code.as_str()).collect();
        let expected: Vec<&str> = fx.expect.iter().map(|c| c.as_str()).collect();
        let ok = emitted == expected;
        if !ok {
            mismatches += 1;
        }
        table.row(&[
            fx.name.to_string(),
            fx.styled_on.to_string(),
            join_or_dash(&expected),
            join_or_dash(&emitted),
            format!("{:?}", fx.dynamic),
            if ok { "yes".to_string() } else { "** NO **".to_string() },
        ]);

        // Keep one full caret-annotated rendering as a sample of the
        // human-facing output.
        if sample_render.is_empty() && !analysis.diagnostics.is_empty() {
            for d in &analysis.diagnostics {
                let _ = writeln!(sample_render, "{}", d.render(fx.source, fx.name));
            }
        }

        json_entries.push(format!(
            "  {{\"fixture\": \"{}\", \"styled_on\": \"{}\", \"diagnostics\": {}}}",
            json_escape(fx.name),
            json_escape(fx.styled_on),
            indent_json(&to_json_with_source(&analysis.diagnostics, fx.source))
        ));
    }

    println!("{}", table.render());
    println!("sample rendering (first diagnosed fixture):\n\n{sample_render}");

    // Benchmark 1: re-lint the fixture corpus in a tight loop. The
    // front end is pure (no I/O, no threads), so iteration count just
    // needs to outlast timer noise.
    const ROUNDS: usize = 200;
    let started = Instant::now();
    let mut bench_diags = 0usize;
    for _ in 0..ROUNDS {
        for fx in fixtures::corpus() {
            bench_diags += parc_analyze::analyze(fx.source).diagnostics.len();
        }
    }
    let elapsed = started.elapsed();
    let programs = ROUNDS * fixtures::corpus().len();
    let programs_per_sec = programs as f64 / elapsed.as_secs_f64().max(1e-9);
    let diags_per_sec = bench_diags as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "linted {programs} fixture programs / {bench_diags} diagnostics in {:.1} ms  ({:.0} programs/s, {:.0} diagnostics/s)",
        elapsed.as_secs_f64() * 1e3,
        programs_per_sec,
        diags_per_sec
    );

    // Benchmark 2: the generated corpus. Lint throughput first, then
    // the full static↔dynamic cross-validation with the agreement
    // counts and the old-vs-new false-positive comparison.
    const GEN_SEED: u64 = 1;
    let gen_count = 20 * genprog::family_count();
    let corpus = genprog::generate(GEN_SEED, gen_count);
    let gen_started = Instant::now();
    let mut gen_diags = 0usize;
    for gp in &corpus {
        gen_diags += parc_analyze::analyze(&gp.source).diagnostics.len();
    }
    let gen_elapsed = gen_started.elapsed();
    let gen_programs_per_sec = corpus.len() as f64 / gen_elapsed.as_secs_f64().max(1e-9);
    println!(
        "linted {} generated programs / {gen_diags} diagnostics in {:.1} ms  ({:.0} programs/s)",
        corpus.len(),
        gen_elapsed.as_secs_f64() * 1e3,
        gen_programs_per_sec
    );

    let (stats, gen_mismatches) = genprog::cross_validate(&corpus);
    for m in &gen_mismatches {
        eprintln!("[{}] {} #{}: {:?}\n{}", m.kind, m.family, m.index, m.static_codes, m.source);
    }
    println!(
        "cross-validated {} generated programs against the explorer: \
         {} clean / {} racy / {} deadlocked, {} schedules explored",
        stats.programs,
        stats.dynamic_clean,
        stats.dynamic_racy,
        stats.dynamic_deadlocked,
        stats.schedules_explored
    );
    println!(
        "false positives on dynamically-clean programs: MHP engine {} vs syntactic engine {}",
        stats.false_positives_new, stats.false_positives_old
    );

    let json = format!("[\n{}\n]\n", json_entries.join(",\n"));
    let json_path = out_dir.join("directive_lint.json");
    std::fs::write(&json_path, json).expect("write directive_lint.json");
    println!("diagnostic export -> {}", json_path.display());

    let bench = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"analyze\",\n",
            "  \"corpus_fixtures\": {},\n",
            "  \"corpus_diagnostics\": {},\n",
            "  \"programs_linted\": {},\n",
            "  \"elapsed_ms\": {:.3},\n",
            "  \"programs_per_sec\": {:.1},\n",
            "  \"diagnostics_per_sec\": {:.1},\n",
            "  \"generated\": {{\n",
            "    \"seed\": {},\n",
            "    \"programs\": {},\n",
            "    \"lint_elapsed_ms\": {:.3},\n",
            "    \"lint_programs_per_sec\": {:.1},\n",
            "    \"parse_failures\": {},\n",
            "    \"dynamic_clean\": {},\n",
            "    \"dynamic_racy\": {},\n",
            "    \"dynamic_deadlocked\": {},\n",
            "    \"unexhausted\": {},\n",
            "    \"schedules_explored\": {},\n",
            "    \"missed_dynamic_findings\": {},\n",
            "    \"false_positives_new\": {},\n",
            "    \"false_positives_old\": {}\n",
            "  }}\n",
            "}}\n"
        ),
        fixtures::corpus().len(),
        total_diags,
        programs,
        elapsed.as_secs_f64() * 1e3,
        programs_per_sec,
        diags_per_sec,
        GEN_SEED,
        stats.programs,
        gen_elapsed.as_secs_f64() * 1e3,
        gen_programs_per_sec,
        stats.parse_failures,
        stats.dynamic_clean,
        stats.dynamic_racy,
        stats.dynamic_deadlocked,
        stats.unexhausted,
        stats.schedules_explored,
        stats.missed_dynamic_findings,
        stats.false_positives_new,
        stats.false_positives_old
    );
    let bench_path = out_dir.join("BENCH_analyze.json");
    std::fs::write(&bench_path, bench).expect("write BENCH_analyze.json");
    println!("benchmark record -> {}", bench_path.display());

    if mismatches > 0 {
        eprintln!("\n{mismatches} fixture(s) disagreed with their expected diagnostic codes");
        std::process::exit(1);
    }
    if stats.missed_dynamic_findings > 0 {
        eprintln!(
            "\nthe static engine missed {} explorer-witnessed finding(s) on the generated corpus",
            stats.missed_dynamic_findings
        );
        std::process::exit(1);
    }
    if stats.false_positives_new >= stats.false_positives_old {
        eprintln!(
            "\nMHP engine is not strictly more precise: {} FPs vs syntactic {}",
            stats.false_positives_new, stats.false_positives_old
        );
        std::process::exit(1);
    }
    println!(
        "\nall {} fixtures match their expected diagnostics; generated corpus agrees",
        fixtures::corpus().len()
    );
}

fn parse_out_dir() -> PathBuf {
    let mut out = PathBuf::from("target/artifacts");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out = PathBuf::from(args.next().expect("--out needs a directory"));
            }
            other => panic!("unknown argument {other:?} (expected --out DIR)"),
        }
    }
    out
}

fn join_or_dash(codes: &[&str]) -> String {
    if codes.is_empty() {
        "-".to_string()
    } else {
        codes.join(", ")
    }
}

/// Re-indent a nested JSON value so it nests inside the per-fixture
/// array entries without breaking lines mid-string.
fn indent_json(json: &str) -> String {
    json.trim_end().replace('\n', "\n  ")
}
