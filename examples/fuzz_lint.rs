//! Experiment E-FUZZ: cross-validate the MHP + lockset static engine
//! against the exhaustive interleaving explorer on thousands of
//! seeded, generated directive programs.
//!
//! For every seed this generates `--count` well-typed Pyjama programs
//! (`parc_analyze::genprog`), lints each with both the MHP engine and
//! the old syntactic engine, lowers it onto the `parc-explore` shims
//! for exhaustive DFS, and tallies the agreement:
//!
//! * **missed dynamic findings** — an explorer-witnessed race or
//!   deadlock with no matching static diagnostic. Gate: must be zero.
//! * **false positives** — a race/deadlock-class diagnostic on a
//!   program the explorer proves clean. Gate: the MHP engine's count
//!   must be *strictly below* the syntactic engine's on the same
//!   programs.
//!
//! Generation, linting and exploration are all pure functions of the
//! seed, so the `deterministic` section of the report (and its
//! fingerprint) is bit-identical across reruns — CI runs the harness
//! twice and diffs. Wall-clock figures live in a separate `wallclock`
//! section excluded from the fingerprint.
//!
//! Artifact: `<out>/fuzz_lint.json` (default `target/artifacts/`).
//!
//! Run with:
//! `cargo run --release --example fuzz_lint -- [--seeds 1,2,3] [--count 2000] [--out DIR]`

use std::path::PathBuf;
use std::time::Instant;

use parc_analyze::genprog;
use parc_util::Table;

struct Options {
    seeds: Vec<u64>,
    count: usize,
    out_dir: PathBuf,
}

fn main() {
    let opts = parse_args();
    std::fs::create_dir_all(&opts.out_dir).expect("create artifact directory");

    println!(
        "== E-FUZZ: static engine vs exhaustive explorer on {} x {} generated programs ==\n",
        opts.seeds.len(),
        opts.count
    );

    let mut table = Table::new(
        "per-seed agreement (static MHP+lockset engine vs exhaustive DFS)",
        &[
            "seed", "programs", "clean", "racy", "deadlocked", "schedules", "missed", "fp new",
            "fp old",
        ],
    );
    let mut seed_sections = Vec::new();
    let mut total_missed = 0usize;
    let mut total_fp_new = 0usize;
    let mut total_fp_old = 0usize;
    let mut total_programs = 0usize;
    let started = Instant::now();

    for &seed in &opts.seeds {
        let corpus = genprog::generate(seed, opts.count);
        let (stats, mismatches) = genprog::cross_validate(&corpus);
        for m in mismatches.iter().take(5) {
            eprintln!(
                "[seed {seed}] [{}] {} #{}: {:?}\n{}",
                m.kind, m.family, m.index, m.static_codes, m.source
            );
        }
        assert_eq!(stats.parse_failures, 0, "seed {seed}: generated programs must re-parse");
        table.row(&[
            seed.to_string(),
            stats.programs.to_string(),
            stats.dynamic_clean.to_string(),
            stats.dynamic_racy.to_string(),
            stats.dynamic_deadlocked.to_string(),
            stats.schedules_explored.to_string(),
            stats.missed_dynamic_findings.to_string(),
            stats.false_positives_new.to_string(),
            stats.false_positives_old.to_string(),
        ]);
        total_missed += stats.missed_dynamic_findings;
        total_fp_new += stats.false_positives_new;
        total_fp_old += stats.false_positives_old;
        total_programs += stats.programs;
        seed_sections.push(format!(
            concat!(
                "    {{\"seed\": {}, \"programs\": {}, \"parse_failures\": {}, ",
                "\"dynamic_clean\": {}, \"dynamic_racy\": {}, \"dynamic_deadlocked\": {}, ",
                "\"unexhausted\": {}, \"schedules_explored\": {}, ",
                "\"missed_dynamic_findings\": {}, ",
                "\"false_positives_new\": {}, \"false_positives_old\": {}, ",
                "\"mismatches\": {}}}"
            ),
            seed,
            stats.programs,
            stats.parse_failures,
            stats.dynamic_clean,
            stats.dynamic_racy,
            stats.dynamic_deadlocked,
            stats.unexhausted,
            stats.schedules_explored,
            stats.missed_dynamic_findings,
            stats.false_positives_new,
            stats.false_positives_old,
            mismatches.len()
        ));
    }
    let elapsed = started.elapsed();

    println!("{}", table.render());
    println!(
        "cross-validated {total_programs} programs in {:.1} s  ({:.0} programs/s end-to-end)",
        elapsed.as_secs_f64(),
        total_programs as f64 / elapsed.as_secs_f64().max(1e-9)
    );

    // Everything a rerun with the same seeds must reproduce
    // byte-for-byte goes inside `deterministic`; its FNV-1a hash is
    // the rerun fingerprint.
    let deterministic = format!(
        concat!(
            "{{\n",
            "  \"families\": {},\n",
            "  \"programs_per_seed\": {},\n",
            "  \"total_programs\": {},\n",
            "  \"total_missed_dynamic_findings\": {},\n",
            "  \"total_false_positives_new\": {},\n",
            "  \"total_false_positives_old\": {},\n",
            "  \"seeds\": [\n{}\n  ]\n",
            "}}"
        ),
        genprog::family_count(),
        opts.count,
        total_programs,
        total_missed,
        total_fp_new,
        total_fp_old,
        seed_sections.join(",\n")
    );
    let report = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"fuzz-lint\",\n",
            "  \"deterministic\": {},\n",
            "  \"fingerprint\": \"{:016x}\",\n",
            "  \"wallclock\": {{\"elapsed_ms\": {:.3}}}\n",
            "}}\n"
        ),
        indent_json(&deterministic),
        fnv1a(deterministic.as_bytes()),
        elapsed.as_secs_f64() * 1e3
    );
    let report_path = opts.out_dir.join("fuzz_lint.json");
    std::fs::write(&report_path, report).expect("write fuzz_lint.json");
    println!("fuzz report -> {}", report_path.display());

    if total_missed > 0 {
        eprintln!("\nthe static engine missed {total_missed} explorer-witnessed finding(s)");
        std::process::exit(1);
    }
    if total_fp_new >= total_fp_old {
        eprintln!(
            "\nMHP engine is not strictly more precise: {total_fp_new} FPs vs syntactic {total_fp_old}"
        );
        std::process::exit(1);
    }
    println!(
        "\nzero missed dynamic findings; MHP false positives {total_fp_new} < syntactic {total_fp_old}"
    );
}

fn parse_args() -> Options {
    let mut opts = Options {
        seeds: vec![1, 2, 3],
        count: 2000,
        out_dir: PathBuf::from("target/artifacts"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => {
                let list = args.next().expect("--seeds needs a comma-separated list");
                opts.seeds = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("seed must be a u64"))
                    .collect();
            }
            "--count" => {
                opts.count =
                    args.next().expect("--count needs a number").parse().expect("count: usize");
            }
            "--out" => {
                opts.out_dir = PathBuf::from(args.next().expect("--out needs a directory"));
            }
            other => {
                panic!("unknown argument {other:?} (expected --seeds LIST, --count N, --out DIR)")
            }
        }
    }
    assert!(!opts.seeds.is_empty(), "need at least one seed");
    opts
}

/// 64-bit FNV-1a over the deterministic report section.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Re-indent a nested JSON value so it nests one level deep.
fn indent_json(json: &str) -> String {
    json.trim_end().replace('\n', "\n  ")
}
