//! Experiment E-SOAK: supervised course workloads under seeded fault
//! storms.
//!
//! Runs the full soak matrix — every storm shape (burst, brownout,
//! flapping) × every supervision policy (one-for-one, all-for-one) —
//! with each cell supervising the resilient crawler, parallel
//! quicksort and the imaging pipeline across the storm's phases, plus
//! scripted child failures that exercise restart budgets, backoff and
//! escalation.
//!
//! Gates (any failure exits non-zero, which the CI `soak` job relies
//! on):
//! * every cell's conservation invariants hold — each spawned child
//!   incarnation is accounted as completed/failed/cancelled/restarted/
//!   escalated, supervisor threads are all joined, and the cell's task
//!   runtime drains to quiescence (spawned == executed);
//! * determinism — a duplicate cell run with the same seed but a
//!   *different worker-pool size* must reproduce the first run's
//!   fingerprint bit-for-bit (the fingerprint embeds the full
//!   supervision event log for one-for-one cells).
//!
//! Artifacts: first argument (default `BENCH_soak.json`) — the
//! machine-readable record; every field except `elapsed_ms` is
//! bit-identical across same-seed runs. Second argument: the cell seed
//! (default `0x50AC200E`, chosen so exactly one one-for-one cell
//! escalates — losing its crawl entirely — while every other cell
//! fails, restarts within budget and recovers).
//!
//! Run with: `cargo run --release --example chaos_soak`

use std::time::Instant;

use faultsim::FaultStorm;
use parc_supervise::RestartPolicy;
use parc_util::Table;
use softeng751::soak::{run_soak_cell, SoakCellReport};

/// FNV-1a over the fingerprint: a compact determinism witness for the
/// benchmark record.
fn fingerprint_hash(cell: &SoakCellReport) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in cell.fingerprint().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn main() {
    faultsim::silence_injected_panics();
    let mut args = std::env::args().skip(1);
    let bench_path = args.next().unwrap_or_else(|| "BENCH_soak.json".to_string());
    let seed = args
        .next()
        .map(|s| {
            let trimmed = s.trim_start_matches("0x");
            u64::from_str_radix(trimmed, 16)
                .or_else(|_| s.parse::<u64>())
                .expect("seed must be hex or decimal")
        })
        .unwrap_or(0x50AC_200E);
    let workers = 4usize;

    println!("== E-SOAK: supervision trees under seeded fault storms ==\n");
    println!("seed {seed:#x}, {workers} workers per cell\n");

    let started = Instant::now();
    let mut cells = Vec::new();
    for storm in FaultStorm::all(seed) {
        for policy in [RestartPolicy::OneForOne, RestartPolicy::AllForOne] {
            cells.push(run_soak_cell(&storm, policy, seed, workers));
        }
    }

    let mut table = Table::new(
        "soak matrix (storm × restart policy)",
        &[
            "storm",
            "policy",
            "scripted",
            "restarts",
            "escal.",
            "coverage",
            "worst",
            "stale",
            "shed",
            "lost",
            "invariants",
        ],
    );
    let mut violation_count = 0usize;
    for cell in &cells {
        let violations = cell.violations();
        violation_count += violations.len();
        for v in &violations {
            eprintln!("INVARIANT VIOLATION [{} {}]: {v}", cell.storm_name, cell.policy.name());
        }
        let stale: usize = cell.crawl.iter().map(|r| r.stale).sum();
        let shed: usize = cell.crawl.iter().map(|r| r.shed).sum();
        let lost: usize = cell.crawl.iter().map(|r| r.unavailable).sum();
        table.row(&[
            cell.storm_name.to_string(),
            cell.policy.name().to_string(),
            format!("{:?}", cell.scripted),
            cell.supervision.restarts_total.to_string(),
            cell.supervision.escalations.to_string(),
            format!("{:.3}", cell.mean_coverage()),
            format!("{:.3}", cell.worst_coverage()),
            stale.to_string(),
            shed.to_string(),
            lost.to_string(),
            if violations.is_empty() { "ok".to_string() } else { format!("{} BAD", violations.len()) },
        ]);
    }
    println!("{}", table.render());

    // Sample narrative: the canonical event log of the first
    // one-for-one cell (deterministic, so this text never changes for
    // a given seed).
    let sample = &cells[0];
    println!(
        "supervision event log [{} {}]:",
        sample.storm_name,
        sample.policy.name()
    );
    for line in sample.fingerprint().lines().skip_while(|l| *l != "events:").skip(1) {
        println!("  {line}");
    }

    // Determinism self-check: rerun two cells (one per policy) with a
    // different pool size; fingerprints must match bit-for-bit.
    let mut determinism_failures = 0usize;
    for idx in [0usize, 1] {
        let original = &cells[idx];
        let storm = FaultStorm::all(seed)
            .into_iter()
            .find(|s| s.name == original.storm_name)
            .expect("storm by name");
        let rerun = run_soak_cell(&storm, original.policy, seed, workers / 2);
        if rerun.fingerprint() == original.fingerprint() {
            println!(
                "\ndeterminism: [{} {}] reran on {} workers — fingerprint identical",
                original.storm_name,
                original.policy.name(),
                workers / 2
            );
        } else {
            determinism_failures += 1;
            eprintln!(
                "\nDETERMINISM FAILURE: [{} {}] fingerprint diverged on rerun:\n--- first\n{}\n--- rerun\n{}",
                original.storm_name,
                original.policy.name(),
                original.fingerprint(),
                rerun.fingerprint()
            );
        }
    }

    let elapsed = started.elapsed();

    let mut cell_json = String::new();
    for (i, cell) in cells.iter().enumerate() {
        let stale: usize = cell.crawl.iter().map(|r| r.stale).sum();
        let shed: usize = cell.crawl.iter().map(|r| r.shed).sum();
        let lost: usize = cell.crawl.iter().map(|r| r.unavailable).sum();
        let attempts: u64 = cell.crawl.iter().map(|r| r.attempts_total).sum();
        let one_for_one = cell.policy == RestartPolicy::OneForOne;
        cell_json.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"storm\": \"{}\",\n",
                "      \"policy\": \"{}\",\n",
                "      \"phases\": {},\n",
                "      \"scripted_failures\": [{}, {}, {}],\n",
                "      \"mean_coverage\": {:.6},\n",
                "      \"worst_coverage\": {:.6},\n",
                "      \"stale_served\": {},\n",
                "      \"shed\": {},\n",
                "      \"unavailable\": {},\n",
                "      \"crawl_attempts\": {},\n",
                "      \"invariants_ok\": {},\n",
                "      \"fingerprint_hash\": \"{:#018x}\"{}\n",
                "    }}{}\n"
            ),
            cell.storm_name,
            cell.policy.name(),
            cell.phases,
            cell.scripted[0],
            cell.scripted[1],
            cell.scripted[2],
            cell.mean_coverage(),
            cell.worst_coverage(),
            stale,
            shed,
            lost,
            attempts,
            cell.invariants_ok(),
            fingerprint_hash(cell),
            if one_for_one {
                format!(
                    ",\n      \"restarts_total\": {},\n      \"escalations\": {}",
                    cell.supervision.restarts_total, cell.supervision.escalations
                )
            } else {
                String::new()
            },
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    let bench = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"soak\",\n",
            "  \"seed\": \"{:#x}\",\n",
            "  \"workers\": {},\n",
            "  \"storms\": {},\n",
            "  \"policies\": 2,\n",
            "  \"cells\": [\n",
            "{}",
            "  ],\n",
            "  \"violations\": {},\n",
            "  \"determinism_failures\": {},\n",
            "  \"elapsed_ms\": {:.3}\n",
            "}}\n"
        ),
        seed,
        workers,
        FaultStorm::all(seed).len(),
        cell_json,
        violation_count,
        determinism_failures,
        elapsed.as_secs_f64() * 1e3,
    );
    std::fs::write(&bench_path, bench).expect("write BENCH_soak.json");
    println!("benchmark record -> {bench_path}");

    if violation_count > 0 || determinism_failures > 0 {
        eprintln!(
            "\n{violation_count} invariant violation(s), {determinism_failures} determinism failure(s)"
        );
        std::process::exit(1);
    }
    println!(
        "\nall {} cells sound: every child accounted, runtimes quiescent, fingerprints reproducible ({:.1} ms)",
        cells.len(),
        elapsed.as_secs_f64() * 1e3
    );
}
