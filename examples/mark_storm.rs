//! Experiment E-MARK: exactly-once marking of a million-submission
//! cohort under seeded fault storms.
//!
//! Runs the marking matrix — every arrival process (steady Poisson,
//! diurnal wave, flash crowd at the deadline) × every storm shape
//! (burst, brownout, flapping) — through the supervised, sharded,
//! checkpointed `course::pipeline`. Every cell kills markers
//! mid-batch; the claim/complete ledger guarantees no submission is
//! lost or marked twice across the supervised restarts.
//!
//! Gates (any failure exits non-zero, which the CI `mark` job relies
//! on):
//! * every cell's conservation identities hold — `submitted ==
//!   marked + shed`, zero in flight, zero duplicate or stale acks,
//!   per-shard and per-marker sums closing, degradation quantified;
//! * every cell actually exercises the fault path: kills > 0 and
//!   supervised restarts > 0, with the supervision tree's own report
//!   agreeing with the model;
//! * scale — at least 1,000,000 submissions across the matrix;
//! * determinism — one cell per arrival process reruns on 1- and
//!   3-worker pools (the matrix runs on 8) and must reproduce the
//!   8-worker fingerprint bit-for-bit.
//!
//! Artifacts: first argument (default `BENCH_marking.json`) — the
//! full per-cell accounting; every field except `elapsed_ms` is
//! bit-identical across same-seed runs and pool sizes. Second
//! argument: the seed (default `0xEA751`). A chrome trace of the
//! first cell's stages lands next to the bench file as
//! `TRACE_marking.json`.
//!
//! Run with: `cargo run --release --example mark_storm`

use std::time::Instant;

use course::pipeline::{run_cell, CellReport, PipelineConfig};
use faultsim::FaultStorm;
use parc_loadgen::ArrivalProcess;
use parc_trace::TraceHandle;
use parc_util::Table;
use partask::TaskRuntime;

const TICKS: u32 = 60;
const RATE_PER_TICK: f64 = 2400.0;
const MATRIX_WORKERS: usize = 8;
const MIN_TOTAL_SUBMISSIONS: u64 = 1_000_000;

fn shed_full(report: &CellReport) -> u64 {
    report.shards.iter().map(|s| s.shed_full).sum()
}

fn shed_drain(report: &CellReport) -> u64 {
    report.shards.iter().map(|s| s.shed_drain).sum()
}

fn main() {
    faultsim::silence_injected_panics();
    let mut args = std::env::args().skip(1);
    let bench_path = args.next().unwrap_or_else(|| "BENCH_marking.json".to_string());
    let seed = args
        .next()
        .map(|s| {
            let trimmed = s.trim_start_matches("0x");
            u64::from_str_radix(trimmed, 16)
                .or_else(|_| s.parse::<u64>())
                .expect("seed must be hex or decimal")
        })
        .unwrap_or(0xEA751);

    let cfg = PipelineConfig { seed, arrival_ticks: TICKS, ..PipelineConfig::default() };

    println!("== E-MARK: fault-tolerant auto-marking of a cohort-scale submission stream ==\n");
    println!(
        "seed {seed:#x}, {MATRIX_WORKERS} workers, {} shards x {} markers, \
         ~{RATE_PER_TICK:.0} submissions/tick for {TICKS} ticks per cell, \
         storms kill markers mid-batch in every cell\n",
        cfg.shards, cfg.markers
    );

    let started = Instant::now();
    let rt = TaskRuntime::builder().workers(MATRIX_WORKERS).build();
    let processes = ArrivalProcess::all(RATE_PER_TICK, TICKS as usize);
    let storms = FaultStorm::all(seed);

    // Chrome trace of the first cell only: enough to see every stage
    // (claims, acks, kills, reclaims, spot-checks) without a
    // gigabyte of instants.
    let collector = parc_trace::Collector::new();

    let mut cells: Vec<CellReport> = Vec::new();
    for (pi, process) in processes.iter().enumerate() {
        for (si, storm) in storms.iter().enumerate() {
            let handle =
                if pi == 0 && si == 0 { collector.handle() } else { TraceHandle::disabled() };
            let cell = run_cell(&rt, process, storm, &cfg, &handle);
            println!(
                "  [{} x {}] submitted {} marked {} shed {} kills {} restarts {} ({:.0} ms)",
                cell.arrival,
                cell.storm,
                cell.submitted,
                cell.marked,
                cell.shed,
                cell.kills,
                cell.restarts,
                cell.elapsed_ms
            );
            cells.push(cell);
        }
    }

    let trace_path = bench_path.replace("BENCH_marking", "TRACE_marking");
    let trace_path =
        if trace_path == bench_path { "TRACE_marking.json".to_string() } else { trace_path };
    std::fs::write(&trace_path, parc_trace::to_chrome_json(&collector.snapshot()))
        .expect("write marking trace");

    let mut table = Table::new(
        "marking matrix (arrival process x storm): exactly-once under mid-batch kills",
        &[
            "process", "storm", "submitted", "marked", "shed", "redone", "kills", "restarts",
            "esc", "degr.ticks", "spot", "p99 ms", "invariants",
        ],
    );
    let mut violation_count = 0usize;
    let mut fault_path_failures = 0usize;
    let mut total_submitted = 0u64;
    let mut total_marked = 0u64;
    for cell in &cells {
        let violations = cell.violations();
        violation_count += violations.len();
        for v in &violations {
            eprintln!("INVARIANT VIOLATION [{} {}]: {v}", cell.arrival, cell.storm);
        }
        if cell.kills == 0 || cell.restarts == 0 {
            fault_path_failures += 1;
            eprintln!(
                "FAULT PATH NOT EXERCISED [{} {}]: kills {} restarts {}",
                cell.arrival, cell.storm, cell.kills, cell.restarts
            );
        }
        total_submitted += cell.submitted;
        total_marked += cell.marked;
        table.row(&[
            cell.arrival.to_string(),
            cell.storm.to_string(),
            cell.submitted.to_string(),
            cell.marked.to_string(),
            cell.shed.to_string(),
            cell.redone.to_string(),
            cell.kills.to_string(),
            cell.restarts.to_string(),
            cell.escalations.to_string(),
            cell.degraded_ticks.to_string(),
            format!("{}/{}", cell.spot_run, cell.spot_eligible),
            format!("{:.0}", cell.latency.p99()),
            if violations.is_empty() { "ok".to_string() } else { format!("{} BAD", violations.len()) },
        ]);
    }
    println!("\n{}", table.render());

    // Narrative: the first cell's deterministic event log — storm
    // phases, mid-batch kills, reclaims, degradation toggles.
    let sample = &cells[0];
    println!("pipeline event log [{} {}]:", sample.arrival, sample.storm);
    for event in sample.events.iter().take(24) {
        println!("  {event}");
    }
    if sample.events.len() > 24 {
        println!("  ... {} more events", sample.events.len() - 24);
    }

    // Determinism: one cell per arrival process reruns on smaller
    // pools; the model fingerprint must not notice.
    let mut determinism_failures = 0usize;
    for (pi, process) in processes.iter().enumerate() {
        let original = &cells[pi * storms.len()];
        let storm = &storms[0];
        for workers in [1usize, 3] {
            let pool = TaskRuntime::builder().workers(workers).build();
            let rerun = run_cell(&pool, process, storm, &cfg, &TraceHandle::disabled());
            pool.shutdown();
            if rerun.fingerprint() == original.fingerprint() {
                println!(
                    "determinism: [{} {}] reran on {workers} worker(s) — fingerprint identical \
                     ({:#018x})",
                    original.arrival,
                    original.storm,
                    original.fingerprint()
                );
            } else {
                determinism_failures += 1;
                eprintln!(
                    "DETERMINISM FAILURE: [{} {}] diverged on {workers} worker(s):\n{}",
                    original.arrival,
                    original.storm,
                    first_divergence(&original.render_deterministic(), &rerun.render_deterministic())
                );
            }
        }
    }
    rt.shutdown();

    let scale_ok = total_submitted >= MIN_TOTAL_SUBMISSIONS;
    if !scale_ok {
        eprintln!(
            "SCALE GATE FAILED: {total_submitted} submissions < {MIN_TOTAL_SUBMISSIONS} required"
        );
    }

    let elapsed = started.elapsed();
    let mut cell_json = String::new();
    for (i, cell) in cells.iter().enumerate() {
        let lost = cell.submitted - cell.marked - cell.shed;
        cell_json.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"process\": \"{}\",\n",
                "      \"storm\": \"{}\",\n",
                "      \"submitted\": {},\n",
                "      \"marked\": {},\n",
                "      \"shed\": {},\n",
                "      \"shed_queue_full\": {},\n",
                "      \"shed_drain_overrun\": {},\n",
                "      \"lost\": {},\n",
                "      \"duplicates\": {},\n",
                "      \"stale_acks\": {},\n",
                "      \"in_flight\": {},\n",
                "      \"claims\": {},\n",
                "      \"reclaims\": {},\n",
                "      \"redone\": {},\n",
                "      \"kills\": {},\n",
                "      \"restarts\": {},\n",
                "      \"escalations\": {},\n",
                "      \"ticks\": {},\n",
                "      \"degraded_ticks\": {},\n",
                "      \"spot_eligible\": {},\n",
                "      \"spot_run\": {},\n",
                "      \"spot_degraded\": {},\n",
                "      \"spot_missed\": {},\n",
                "      \"students_marked\": {},\n",
                "      \"cohort_mean_best\": {:.6},\n",
                "      \"p50_ms\": {:.6},\n",
                "      \"p99_ms\": {:.6},\n",
                "      \"p999_ms\": {:.6},\n",
                "      \"mark_digest\": \"{:#018x}\",\n",
                "      \"fingerprint\": \"{:#018x}\",\n",
                "      \"invariants_ok\": {},\n",
                "      \"elapsed_ms\": {:.3}\n",
                "    }}{}\n"
            ),
            cell.arrival,
            cell.storm,
            cell.submitted,
            cell.marked,
            cell.shed,
            shed_full(cell),
            shed_drain(cell),
            lost,
            cell.duplicates,
            cell.stale_acks,
            cell.in_flight,
            cell.claims,
            cell.reclaims,
            cell.redone,
            cell.kills,
            cell.restarts,
            cell.escalations,
            cell.ticks,
            cell.degraded_ticks,
            cell.spot_eligible,
            cell.spot_run,
            cell.spot_degraded,
            cell.spot_missed,
            cell.students_marked,
            cell.cohort_mean_best,
            cell.latency.p50(),
            cell.latency.p99(),
            cell.latency.p999(),
            cell.mark_digest,
            cell.fingerprint(),
            cell.violations().is_empty(),
            cell.elapsed_ms,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    let bench = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"marking\",\n",
            "  \"seed\": \"{:#x}\",\n",
            "  \"workers\": {},\n",
            "  \"shards\": {},\n",
            "  \"markers\": {},\n",
            "  \"ticks_per_cell\": {},\n",
            "  \"rate_per_tick\": {:.1},\n",
            "  \"processes\": {},\n",
            "  \"storms\": {},\n",
            "  \"total_submitted\": {},\n",
            "  \"total_marked\": {},\n",
            "  \"scale_gate\": {},\n",
            "  \"cells\": [\n",
            "{}",
            "  ],\n",
            "  \"violations\": {},\n",
            "  \"fault_path_failures\": {},\n",
            "  \"determinism_failures\": {},\n",
            "  \"elapsed_ms\": {:.3}\n",
            "}}\n"
        ),
        seed,
        MATRIX_WORKERS,
        cfg.shards,
        cfg.markers,
        TICKS,
        RATE_PER_TICK,
        processes.len(),
        storms.len(),
        total_submitted,
        total_marked,
        scale_ok,
        cell_json,
        violation_count,
        fault_path_failures,
        determinism_failures,
        elapsed.as_secs_f64() * 1e3,
    );
    std::fs::write(&bench_path, bench).expect("write BENCH_marking.json");
    println!("\nbenchmark record -> {bench_path}");
    println!("chrome trace     -> {trace_path}");

    if violation_count > 0 || determinism_failures > 0 || fault_path_failures > 0 || !scale_ok {
        eprintln!(
            "\n{violation_count} invariant violation(s), {fault_path_failures} cell(s) without \
             kills, {determinism_failures} determinism failure(s), scale_ok={scale_ok}"
        );
        std::process::exit(1);
    }
    println!(
        "\nall {} cells sound: {total_submitted} submissions marked exactly once or shed with \
         cause, fingerprints identical across 1/3/8-worker pools ({:.1} s)",
        cells.len(),
        elapsed.as_secs_f64()
    );
}

fn first_divergence(a: &str, b: &str) -> String {
    for (la, lb) in a.lines().zip(b.lines()) {
        if la != lb {
            return format!("first divergence:\n  first: {la}\n  rerun: {lb}");
        }
    }
    "one rendering is a prefix of the other".to_string()
}
