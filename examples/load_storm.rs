//! Experiment E-LOAD: seeded traffic storms against the sharded web
//! tier.
//!
//! Runs the load matrix — every arrival process (steady Poisson,
//! diurnal wave, flash crowd) × every storm shape (burst, brownout,
//! flapping) — against a 4-replica, R=2 cluster behind the
//! consistent-hash balancer. Every cell also scripts a mid-storm
//! replica kill with a supervised restart, so each row doubles as a
//! failover drill: the conservation check proves zero acknowledged
//! pages were lost to the kill.
//!
//! Gates (any failure exits non-zero, which the CI `load` job relies
//! on):
//! * every cell's conservation identities hold — requests balance
//!   across acked/shed/failed, every hedge is deduplicated and
//!   accounted exactly once, one latency sample per ack, zero
//!   acknowledged pages lost, and the supervision tree restarted the
//!   killed replica without escalating;
//! * determinism — one cell per arrival process reruns with the same
//!   seed on a *different worker-pool size* and must reproduce the
//!   first run's report bit-for-bit (fingerprint and `==`).
//!
//! Artifacts: first argument (default `BENCH_load.json`) — sustained
//! req/s and latency quantiles against the fixed p99 budget, per
//! cell; every field except `elapsed_ms` is bit-identical across
//! same-seed runs and pool sizes. Second argument: the seed (default
//! `0x10AD_GEN` spelled as `0x10AD6E4`).
//!
//! Run with: `cargo run --release --example load_storm`

use std::time::Instant;

use faultsim::FaultStorm;
use parc_loadgen::{run_load_cell, ArrivalProcess, LoadCell, LoadCellConfig, TrafficConfig};
use parc_util::Table;
use partask::TaskRuntime;
use websim::cluster::{ClusterConfig, OutageScript};
use websim::server::ServerConfig;

/// The fixed tail budget every cell is judged against (model ms).
const P99_BUDGET_MS: f64 = 250.0;
const TICKS: usize = 36;
const RATE_PER_TICK: f64 = 14.0;

/// FNV-1a over the report fingerprint: a compact determinism witness.
fn fingerprint_hash(cell: &LoadCell) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in cell.report.fingerprint().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn cell_config(seed: u64) -> LoadCellConfig {
    let cluster = ClusterConfig {
        replicas: 4,
        replication: 2,
        seed,
        server: ServerConfig { pages: 120, time_scale: 5e-7, ..ServerConfig::default() },
        ..ClusterConfig::default()
    };
    LoadCellConfig {
        traffic: TrafficConfig { seed, ticks: TICKS, pages: 120, zipf_s: 0.9 },
        cluster,
        // Kill replica 1 a third of the way in, supervised restart
        // two thirds in — every cell is also a failover drill.
        outage: Some(OutageScript { replica: 1, kill_tick: TICKS / 3, restart_tick: 2 * TICKS / 3 }),
    }
}

fn main() {
    faultsim::silence_injected_panics();
    let mut args = std::env::args().skip(1);
    let bench_path = args.next().unwrap_or_else(|| "BENCH_load.json".to_string());
    let seed = args
        .next()
        .map(|s| {
            let trimmed = s.trim_start_matches("0x");
            u64::from_str_radix(trimmed, 16)
                .or_else(|_| s.parse::<u64>())
                .expect("seed must be hex or decimal")
        })
        .unwrap_or(0x010A_D6E4);
    let workers = 4usize;

    println!("== E-LOAD: traffic storms against the sharded web tier ==\n");
    println!(
        "seed {seed:#x}, {workers} workers, 4 replicas R=2, p99 budget {P99_BUDGET_MS} ms, \
         mid-storm kill of replica 1 in every cell\n"
    );

    let started = Instant::now();
    let rt = TaskRuntime::builder().workers(workers).build();
    let processes = ArrivalProcess::all(RATE_PER_TICK, TICKS);
    let cfg = cell_config(seed);

    let mut cells: Vec<LoadCell> = Vec::new();
    for process in &processes {
        for storm in FaultStorm::all(seed) {
            cells.push(run_load_cell(&rt, process, &storm, &cfg));
        }
    }

    let mut table = Table::new(
        "load matrix (arrival process × storm): sustained req/s at the p99 budget",
        &[
            "process", "storm", "offered", "acked", "goodput%", "p50", "p99", "p99.9", "shed",
            "hedge", "lost", "budget", "invariants",
        ],
    );
    let mut violation_count = 0usize;
    for cell in &cells {
        let violations = cell.report.violations();
        violation_count += violations.len();
        for v in &violations {
            eprintln!("INVARIANT VIOLATION [{} {}]: {v}", cell.process, cell.storm);
        }
        let goodput = if cell.offered_rps > 0.0 { cell.acked_rps / cell.offered_rps * 100.0 } else { 0.0 };
        table.row(&[
            cell.process.to_string(),
            cell.storm.to_string(),
            format!("{:.1}/s", cell.offered_rps),
            format!("{:.1}/s", cell.acked_rps),
            format!("{goodput:.1}"),
            format!("{:.0}ms", cell.p50_ms),
            format!("{:.0}ms", cell.p99_ms),
            format!("{:.0}ms", cell.p999_ms),
            cell.report.shed_total().to_string(),
            format!("{}/{}", cell.report.served_hedge, cell.report.hedges_fired),
            cell.report.lost_acked.to_string(),
            if cell.within_p99_budget(P99_BUDGET_MS) { "ok".to_string() } else { "OVER".to_string() },
            if violations.is_empty() { "ok".to_string() } else { format!("{} BAD", violations.len()) },
        ]);
    }
    println!("{}", table.render());

    // Narrative: the canonical event log of the first cell — phase
    // transitions, the kill, ejections, the supervised restart.
    let sample = &cells[0];
    println!("cluster event log [{} {}]:", sample.process, sample.storm);
    for event in &sample.report.events {
        println!("  {event}");
    }

    // Determinism self-check: one cell per arrival process reruns on
    // a different pool size; reports must match bit-for-bit.
    let mut determinism_failures = 0usize;
    let rerun_rt = TaskRuntime::builder().workers(workers / 2).build();
    for (i, process) in processes.iter().enumerate() {
        let original = &cells[i * FaultStorm::all(seed).len()];
        let storm = FaultStorm::all(seed)
            .into_iter()
            .find(|s| s.name == original.storm)
            .expect("storm by name");
        let rerun = run_load_cell(&rerun_rt, process, &storm, &cfg);
        if rerun == *original {
            println!(
                "determinism: [{} {}] reran on {} workers — report identical",
                original.process,
                original.storm,
                workers / 2
            );
        } else {
            determinism_failures += 1;
            eprintln!(
                "DETERMINISM FAILURE: [{} {}] report diverged on rerun:\n--- first\n{}\n--- rerun\n{}",
                original.process,
                original.storm,
                original.report.fingerprint(),
                rerun.report.fingerprint()
            );
        }
    }
    rerun_rt.shutdown();
    rt.shutdown();

    let elapsed = started.elapsed();

    let mut cell_json = String::new();
    for (i, cell) in cells.iter().enumerate() {
        cell_json.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"process\": \"{}\",\n",
                "      \"storm\": \"{}\",\n",
                "      \"offered_rps\": {:.6},\n",
                "      \"acked_rps\": {:.6},\n",
                "      \"p50_ms\": {:.6},\n",
                "      \"p99_ms\": {:.6},\n",
                "      \"p999_ms\": {:.6},\n",
                "      \"within_p99_budget\": {},\n",
                "      \"issued\": {},\n",
                "      \"acked\": {},\n",
                "      \"served_primary\": {},\n",
                "      \"served_hedge\": {},\n",
                "      \"served_failover\": {},\n",
                "      \"shed\": {},\n",
                "      \"failed\": {},\n",
                "      \"hedges_fired\": {},\n",
                "      \"hedge_redundant\": {},\n",
                "      \"ejections\": {},\n",
                "      \"kills\": {},\n",
                "      \"supervised_restarts\": {},\n",
                "      \"acked_pages\": {},\n",
                "      \"reserved_from_replica\": {},\n",
                "      \"lost_acked\": {},\n",
                "      \"invariants_ok\": {},\n",
                "      \"fingerprint_hash\": \"{:#018x}\"\n",
                "    }}{}\n"
            ),
            cell.process,
            cell.storm,
            cell.offered_rps,
            cell.acked_rps,
            cell.p50_ms,
            cell.p99_ms,
            cell.p999_ms,
            cell.within_p99_budget(P99_BUDGET_MS),
            cell.report.issued,
            cell.report.acked,
            cell.report.served_primary,
            cell.report.served_hedge,
            cell.report.served_failover,
            cell.report.shed_total(),
            cell.report.failed,
            cell.report.hedges_fired,
            cell.report.hedge_redundant,
            cell.report.ejections,
            cell.report.kills,
            cell.report.supervision_restarts,
            cell.report.acked_pages,
            cell.report.reserved_from_replica,
            cell.report.lost_acked,
            cell.report.violations().is_empty(),
            fingerprint_hash(cell),
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    let bench = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"load\",\n",
            "  \"seed\": \"{:#x}\",\n",
            "  \"workers\": {},\n",
            "  \"replicas\": 4,\n",
            "  \"replication\": 2,\n",
            "  \"ticks\": {},\n",
            "  \"p99_budget_ms\": {:.1},\n",
            "  \"processes\": {},\n",
            "  \"storms\": {},\n",
            "  \"cells\": [\n",
            "{}",
            "  ],\n",
            "  \"violations\": {},\n",
            "  \"determinism_failures\": {},\n",
            "  \"elapsed_ms\": {:.3}\n",
            "}}\n"
        ),
        seed,
        workers,
        TICKS,
        P99_BUDGET_MS,
        processes.len(),
        FaultStorm::all(seed).len(),
        cell_json,
        violation_count,
        determinism_failures,
        elapsed.as_secs_f64() * 1e3,
    );
    std::fs::write(&bench_path, bench).expect("write BENCH_load.json");
    println!("benchmark record -> {bench_path}");

    if violation_count > 0 || determinism_failures > 0 {
        eprintln!(
            "\n{violation_count} invariant violation(s), {determinism_failures} determinism failure(s)"
        );
        std::process::exit(1);
    }
    println!(
        "\nall {} cells sound: every request accounted, zero acked pages lost to the kill, \
         reports reproducible across pool sizes ({:.1} ms)",
        cells.len(),
        elapsed.as_secs_f64() * 1e3
    );
}
