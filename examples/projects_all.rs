//! Run all ten SoftEng 751 project scenarios end to end and print
//! their reports — the one-command smoke test of the whole
//! reproduction.
//!
//! Run with: `cargo run --release --example projects_all`

use softeng751::{run_project, Engines, ProjectId};

fn main() {
    // E10's fault-tolerant crawler injects panics on purpose; the
    // crawler contains them, so keep their backtraces off the report.
    softeng751::faultsim::silence_injected_panics();
    let engines = Engines::with_workers(4);
    let mut failures = 0;
    for id in ProjectId::all() {
        let report = run_project(id, &engines);
        print!("{}", report.render());
        println!();
        if !report.ok {
            failures += 1;
        }
    }
    engines.shutdown();
    if failures == 0 {
        println!("all 10 project scenarios passed.");
    } else {
        println!("{failures} project scenario(s) FAILED.");
        std::process::exit(1);
    }
}
